"""Tests for Definition 13: saturated edges, s, s_e and s-bar."""

import numpy as np
import pytest

from repro.core.rates import array_edge_rates
from repro.core.saturation import (
    array_max_saturated_on_route,
    array_saturated_boundaries,
    array_saturated_count,
    max_saturated_on_route,
    s_bar,
    s_bar_exact,
    saturated_edge_mask,
    saturated_remaining_expectations,
)
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh


class TestSaturatedMask:
    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8])
    def test_count_closed_form(self, n):
        """4n saturated edges for even n, 8n for odd n."""
        mesh = ArrayMesh(n)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        assert int(mask.sum()) == array_saturated_count(n)

    def test_even_boundaries(self):
        assert array_saturated_boundaries(6) == [3]
        assert array_saturated_boundaries(8) == [4]

    def test_odd_boundaries(self):
        assert array_saturated_boundaries(5) == [2, 3]
        assert array_saturated_boundaries(9) == [4, 5]

    def test_mask_location_even(self):
        """For even n the saturated right edges sit at column n/2 (1-based)."""
        n = 6
        mesh = ArrayMesh(n)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        for i in range(n):
            e = mesh.directed_edge_id(i, n // 2 - 1, "right")  # 0-based col
            assert mask[e]

    def test_lambda_invariance(self):
        """The mask does not depend on lam (rates scale uniformly)."""
        mesh = ArrayMesh(5)
        m1 = saturated_edge_mask(array_edge_rates(mesh, 0.01))
        m2 = saturated_edge_mask(array_edge_rates(mesh, 0.7))
        assert np.array_equal(m1, m2)

    def test_service_rate_shifting(self):
        """Speeding up the bottleneck edges moves saturation elsewhere."""
        rates = np.array([0.9, 0.8])
        phis = np.array([2.0, 1.0])
        mask = saturated_edge_mask(rates, phis)
        assert list(mask) == [False, True]

    def test_all_zero_rates_raise(self):
        with pytest.raises(ValueError):
            saturated_edge_mask(np.zeros(4))


class TestMaxOnRoute:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_even_is_two(self, n):
        mesh = ArrayMesh(n)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        assert max_saturated_on_route(GreedyArrayRouter(mesh), mask) == 2
        assert array_max_saturated_on_route(n) == 2

    @pytest.mark.parametrize("n", [5, 7])
    def test_odd_is_four(self, n):
        mesh = ArrayMesh(n)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        assert max_saturated_on_route(GreedyArrayRouter(mesh), mask) == 4
        assert array_max_saturated_on_route(n) == 4


class TestSBar:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_even_closed_form(self, n):
        """s-bar = 3/2 for even n — closed form and enumeration agree."""
        assert s_bar(n) == 1.5
        assert s_bar_exact(n) == pytest.approx(1.5)

    @pytest.mark.parametrize("n", [3, 5, 7, 9, 11])
    def test_odd_below_three(self, n):
        sb = s_bar(n)
        assert sb < 3.0

    def test_odd_increases_toward_three(self):
        values = [s_bar(n) for n in (5, 7, 9, 11, 13)]
        assert all(a < b for a, b in zip(values, values[1:]))
        assert values[-1] < 3.0

    def test_s_e_at_least_one(self):
        """Each s_e counts the service at e itself."""
        mesh = ArrayMesh(6)
        router = GreedyArrayRouter(mesh)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        s_e = saturated_remaining_expectations(
            router, UniformDestinations(mesh.num_nodes), mask
        )
        finite = s_e[np.isfinite(s_e)]
        assert np.all(finite >= 1.0 - 1e-12)
        assert np.all(finite <= array_max_saturated_on_route(6) + 1e-12)

    def test_s_e_nan_on_unsaturated(self):
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        s_e = saturated_remaining_expectations(
            router, UniformDestinations(mesh.num_nodes), mask
        )
        assert np.all(np.isnan(s_e[~mask]))

    def test_even_saturated_column_edges_have_se_one(self):
        """A packet at a saturated *column* edge has no saturated services
        after it (even n): s_e = 1 exactly."""
        n = 6
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        mask = saturated_edge_mask(array_edge_rates(mesh, 0.1))
        s_e = saturated_remaining_expectations(
            router, UniformDestinations(mesh.num_nodes), mask
        )
        e = mesh.directed_edge_id(n // 2 - 1, 0, "down")
        assert mask[e]
        assert s_e[e] == pytest.approx(1.0)
