"""Tests for Theorem 15 optimal allocation and the 4/n vs 6/(n+1) claim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimization import (
    budget_surplus,
    discrete_service_rates,
    optimal_capacity,
    optimal_delay,
    optimal_mean_number,
    optimal_service_rates,
    standard_capacity,
    uniform_mean_number,
)
from repro.core.rates import array_edge_rates
from repro.queueing.productform import ProductFormNetwork
from repro.topology.array_mesh import ArrayMesh


class TestTheorem15:
    def test_budget_exactly_spent(self):
        lams = np.array([0.5, 1.0, 0.2])
        costs = np.array([1.0, 2.0, 0.5])
        D = 10.0
        phi = optimal_service_rates(lams, costs, D)
        assert np.isclose((costs * phi).sum(), D)

    def test_all_queues_stable(self):
        lams = np.array([0.5, 1.0, 0.2])
        phi = optimal_service_rates(lams, 1.0, 5.0)
        assert np.all(phi > lams)

    def test_matches_paper_formula(self):
        lams = np.array([0.4, 0.9])
        costs = np.array([1.0, 3.0])
        D = 8.0
        phi = optimal_service_rates(lams, costs, D)
        dstar = D - (lams * costs).sum()
        denom = np.sqrt(lams * costs).sum()
        expected = lams + np.sqrt(lams / costs) * dstar / denom
        assert np.allclose(phi, expected)

    def test_closed_form_mean_number(self):
        lams = np.array([0.4, 0.9])
        costs = np.array([1.0, 3.0])
        D = 8.0
        phi = optimal_service_rates(lams, costs, D)
        direct = ProductFormNetwork.from_rates(lams, phi).mean_number()
        assert np.isclose(direct, optimal_mean_number(lams, costs, D))

    @given(
        st.lists(st.floats(0.1, 1.0), min_size=2, max_size=6),
        st.floats(1.2, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_optimality_against_random_feasible_allocations(self, lams, slack):
        """Property: no random feasible allocation beats Theorem 15."""
        lam = np.asarray(lams)
        D = float(lam.sum() * slack + 1.0)
        best = optimal_mean_number(lam, 1.0, D)
        rng = np.random.default_rng(0)
        for _ in range(10):
            w = rng.dirichlet(np.ones(lam.size))
            phi = lam + (D - lam.sum()) * w
            if np.any(phi <= lam):
                continue
            candidate = ProductFormNetwork.from_rates(lam, phi).mean_number()
            assert candidate >= best - 1e-9

    def test_beats_uniform_allocation(self):
        mesh = ArrayMesh(6)
        lams = array_edge_rates(mesh, 0.5)
        D = float(mesh.num_edges)
        assert optimal_mean_number(lams, 1.0, D) <= uniform_mean_number(
            lams, 1.0, D
        )

    def test_insufficient_budget_raises(self):
        with pytest.raises(ValueError, match="D_star"):
            optimal_service_rates(np.array([1.0, 1.0]), 1.0, 1.5)

    def test_optimal_delay_littles(self):
        lams = np.array([0.3, 0.6])
        assert optimal_delay(lams, 1.0, 4.0, 2.0) == pytest.approx(
            optimal_mean_number(lams, 1.0, 4.0) / 2.0
        )


class TestCapacities:
    @pytest.mark.parametrize("n", [4, 6, 10, 20])
    def test_standard_even(self, n):
        assert standard_capacity(n) == pytest.approx(4.0 / n)

    @pytest.mark.parametrize("n", [5, 7, 9])
    def test_standard_odd(self, n):
        assert standard_capacity(n) == pytest.approx(4 * n / (n * n - 1))

    @pytest.mark.parametrize("n", [4, 5, 6, 10])
    def test_optimal_is_6_over_n_plus_1(self, n):
        assert optimal_capacity(n) == pytest.approx(6.0 / (n + 1))

    @pytest.mark.parametrize("n", [4, 5, 6, 10, 21])
    def test_optimal_exceeds_standard(self, n):
        assert optimal_capacity(n) > standard_capacity(n)

    def test_dstar_positive_iff_below_optimal_capacity(self):
        """D* > 0 exactly characterises stability of the optimal network."""
        n = 6
        mesh = ArrayMesh(n)
        D = 4.0 * n * (n - 1)
        lam_below = 0.99 * optimal_capacity(n)
        lam_above = 1.01 * optimal_capacity(n)
        assert budget_surplus(array_edge_rates(mesh, lam_below), 1.0, D) > 0
        assert budget_surplus(array_edge_rates(mesh, lam_above), 1.0, D) < 0


class TestDiscreteRates:
    def test_feasible_and_within_budget(self):
        lams = np.array([0.3, 0.7, 0.5])
        menu = [0.5, 1.0, 1.5, 2.0]
        phi = discrete_service_rates(lams, 1.0, 4.5, menu)
        assert np.all(phi > lams)
        assert phi.sum() <= 4.5 + 1e-12
        assert all(p in menu for p in phi)

    def test_uses_budget_productively(self):
        """With ample budget the heuristic upgrades past the minimum."""
        lams = np.array([0.3, 0.7])
        menu = [0.5, 1.0, 2.0]
        minimal = np.array([0.5, 1.0])
        phi = discrete_service_rates(lams, 1.0, 4.0, menu)
        assert ProductFormNetwork.from_rates(lams, phi).mean_number() <= (
            ProductFormNetwork.from_rates(lams, minimal).mean_number()
        )

    def test_infeasible_menu_raises(self):
        with pytest.raises(ValueError, match="menu"):
            discrete_service_rates(np.array([1.5]), 1.0, 10.0, [0.5, 1.0])

    def test_insufficient_budget_raises(self):
        with pytest.raises(ValueError, match="budget"):
            discrete_service_rates(np.array([0.4, 0.4]), 1.0, 0.9, [0.5])
