"""Unit tests for linear array, torus, hypercube, and butterfly topologies."""

import pytest

from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus


class TestLinearArray:
    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_counts(self, n):
        line = LinearArray(n)
        assert line.num_nodes == n
        assert line.num_edges == 2 * (n - 1)

    def test_right_left_edges(self):
        line = LinearArray(4)
        assert line.edge_endpoints(line.right_edge(1)) == (1, 2)
        assert line.edge_endpoints(line.left_edge(2)) == (2, 1)

    def test_border_rejections(self):
        line = LinearArray(3)
        with pytest.raises(ValueError):
            line.right_edge(2)
        with pytest.raises(ValueError):
            line.left_edge(0)


class TestTorus:
    def test_counts(self):
        t = Torus(4)
        assert t.num_nodes == 16
        assert t.num_edges == 64  # every node has 4 outgoing edges

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Torus(2)

    def test_wraparound_edges(self):
        t = Torus(3)
        # Rightward from the last column wraps to column 0.
        e = t.directed_edge_id(1, 2, RIGHT)
        assert t.edge_endpoints(e) == (t.node_id(1, 2), t.node_id(1, 0))
        e = t.directed_edge_id(0, 1, UP)
        assert t.edge_endpoints(e) == (t.node_id(0, 1), t.node_id(2, 1))

    def test_all_directions_present_everywhere(self):
        t = Torus(3)
        for v in range(t.num_nodes):
            i, j = t.node_coords(v)
            for d in (RIGHT, LEFT, DOWN, UP):
                e = t.directed_edge_id(i, j, d)
                assert t.edge_direction(e) == d
                assert t.edge_endpoints(e)[0] == v

    def test_node_coords_roundtrip(self):
        t = Torus(4, 5)
        for v in range(t.num_nodes):
            i, j = t.node_coords(v)
            assert t.node_id(i, j) == v

    def test_regular_degree(self):
        t = Torus(3)
        for v in range(t.num_nodes):
            assert len(t.out_edges(v)) == 4
            assert len(t.in_edges(v)) == 4


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_counts(self, d):
        h = Hypercube(d)
        assert h.num_nodes == 2**d
        assert h.num_edges == d * 2**d

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Hypercube(0)

    def test_dimension_edge_flips_bit(self):
        h = Hypercube(4)
        for v in (0, 5, 15):
            for k in range(4):
                e = h.dimension_edge(v, k)
                u, w = h.edge_endpoints(e)
                assert u == v and w == v ^ (1 << k)
                assert h.edge_dimension(e) == k

    def test_hamming(self):
        h = Hypercube(4)
        assert h.hamming_distance(0b0000, 0b1011) == 3
        assert h.hamming_distance(7, 7) == 0

    def test_edges_flip_exactly_one_bit(self):
        h = Hypercube(3)
        for e in range(h.num_edges):
            u, v = h.edge_endpoints(e)
            assert h.hamming_distance(u, v) == 1


class TestButterfly:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_counts(self, d):
        b = Butterfly(d)
        assert b.num_nodes == (d + 1) * 2**d
        assert b.num_edges == d * 2 ** (d + 1)

    def test_straight_and_cross(self):
        b = Butterfly(3)
        assert b.edge_endpoints(b.straight_edge(1, 5)) == (
            b.node_id(1, 5),
            b.node_id(2, 5),
        )
        assert b.edge_endpoints(b.cross_edge(1, 5)) == (
            b.node_id(1, 5),
            b.node_id(2, 5 ^ 2),
        )

    def test_edge_level(self):
        b = Butterfly(2)
        assert b.edge_level(b.straight_edge(0, 0)) == 0
        assert b.edge_level(b.cross_edge(1, 3)) == 1

    def test_level_bounds(self):
        b = Butterfly(2)
        with pytest.raises(ValueError):
            b.straight_edge(2, 0)  # no edges out of the last level
        with pytest.raises(ValueError):
            b.node_id(3, 0)

    def test_every_internal_node_has_two_out_edges(self):
        b = Butterfly(2)
        for level in range(b.d):
            for r in range(b.rows):
                assert len(b.out_edges(b.node_id(level, r))) == 2
        for r in range(b.rows):
            assert b.out_edges(b.node_id(b.d, r)) == []
