"""Tests for the warn-only perf gate (scripts/perf_gate.py)."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, "scripts", "perf_gate.py"
)


@pytest.fixture(scope="module")
def perf_gate():
    spec = importlib.util.spec_from_file_location("perf_gate", _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _bench_json(path, medians):
    data = {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }
    path.write_text(json.dumps(data))
    return str(path)


def test_within_threshold_passes_quietly(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.1, "b": 1.9})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "WARNING" not in out
    assert "2 benchmarks within" in out


def test_regression_warns_but_never_fails(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 2.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0  # warn-only
    assert "regressed" in capsys.readouterr().out


def test_missing_baseline_benchmark_warns(perf_gate, tmp_path, capsys):
    """A benchmark that stops running must not silently look like a pass."""
    base = _bench_json(tmp_path / "base.json", {"a": 1.0, "gone": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out and "gone" in out and "missing" in out
    assert "1 baseline benchmark(s) missing" in out


def test_new_benchmark_without_baseline_is_fine(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0, "new": 5.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    assert "WARNING" not in capsys.readouterr().out


def test_no_common_benchmarks_warns_about_missing(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"b": 1.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "missing" in out and "no common benchmarks" in out


def test_unreadable_input_skips(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    assert perf_gate.main(["perf_gate", base, str(tmp_path / "nope.json")]) == 0
    assert "cannot compare" in capsys.readouterr().out


def test_strict_fails_on_regression(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 2.0})
    assert perf_gate.main(["perf_gate", base, fresh, "--strict"]) == 1
    out = capsys.readouterr().out
    assert "regressed" in out and "FAILING (--strict)" in out


def test_strict_fails_on_missing_benchmark(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0, "gone": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0})
    assert perf_gate.main(["perf_gate", base, fresh, "--strict"]) == 1


def test_strict_passes_when_clean(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.05})
    assert perf_gate.main(["perf_gate", base, fresh, "--strict"]) == 0


def test_strict_with_positional_threshold(perf_gate, tmp_path):
    """The positional threshold arg (check.sh style) composes with
    --strict: a 30% slip passes a 0.5 threshold and fails a 0.1 one."""
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.3})
    assert perf_gate.main(["perf_gate", base, fresh, "0.5", "--strict"]) == 0
    assert perf_gate.main(["perf_gate", base, fresh, "0.1", "--strict"]) == 1


def test_json_out_summary(perf_gate, tmp_path):
    import json as _json

    base = _bench_json(tmp_path / "base.json", {"a": 1.0, "b": 1.0, "gone": 2.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 3.0, "b": 1.0})
    out_path = tmp_path / "summary.json"
    rc = perf_gate.main(
        ["perf_gate", base, fresh, "--json-out", str(out_path)]
    )
    assert rc == 0  # warn-only without --strict
    summary = _json.loads(out_path.read_text())
    assert summary["ok"] is False
    assert summary["compared"] == 2
    assert summary["missing"] == ["gone"]
    assert [r["name"] for r in summary["regressions"]] == ["a"]
    assert summary["regressions"][0]["regression_pct"] == 200.0


def test_json_out_clean_run(perf_gate, tmp_path):
    import json as _json

    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0})
    out_path = tmp_path / "summary.json"
    assert perf_gate.main(
        ["perf_gate", base, fresh, "--strict", "--json-out", str(out_path)]
    ) == 0
    summary = _json.loads(out_path.read_text())
    assert summary["ok"] is True and summary["regressions"] == []


def test_json_out_records_mode(perf_gate, tmp_path):
    """The summary spells out strict vs warn-only, not just a boolean."""
    import json as _json

    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0})
    out_path = tmp_path / "summary.json"
    assert perf_gate.main(
        ["perf_gate", base, fresh, "--json-out", str(out_path)]
    ) == 0
    summary = _json.loads(out_path.read_text())
    assert summary["mode"] == "warn-only" and summary["strict"] is False
    assert perf_gate.main(
        ["perf_gate", base, fresh, "--strict", "--json-out", str(out_path)]
    ) == 0
    summary = _json.loads(out_path.read_text())
    assert summary["mode"] == "strict" and summary["strict"] is True


def test_strict_fails_on_unreadable_input(perf_gate, tmp_path, capsys):
    """--strict must not let a vanished fresh run look like a pass."""
    import json as _json

    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    out_path = tmp_path / "summary.json"
    rc = perf_gate.main(
        ["perf_gate", base, str(tmp_path / "nope.json"), "--strict",
         "--json-out", str(out_path)]
    )
    assert rc == 1
    assert "cannot compare" in capsys.readouterr().out
    summary = _json.loads(out_path.read_text())
    assert summary["ok"] is False and "skipped" in summary
    # Warn-only mode still skips quietly (local check.sh behaviour).
    assert perf_gate.main(
        ["perf_gate", base, str(tmp_path / "nope.json")]
    ) == 0


def test_no_common_benchmarks_summary_not_ok(perf_gate, tmp_path):
    """The disjoint-names early return must not report ok:true while
    strict mode exits 1 on the missing baseline benchmarks."""
    import json as _json

    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"b": 1.0})
    out_path = tmp_path / "summary.json"
    assert perf_gate.main(
        ["perf_gate", base, fresh, "--strict", "--json-out", str(out_path)]
    ) == 1
    summary = _json.loads(out_path.read_text())
    assert summary["ok"] is False
    assert summary["missing"] == ["a"]
