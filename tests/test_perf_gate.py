"""Tests for the warn-only perf gate (scripts/perf_gate.py)."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, "scripts", "perf_gate.py"
)


@pytest.fixture(scope="module")
def perf_gate():
    spec = importlib.util.spec_from_file_location("perf_gate", _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _bench_json(path, medians):
    data = {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }
    path.write_text(json.dumps(data))
    return str(path)


def test_within_threshold_passes_quietly(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.1, "b": 1.9})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "WARNING" not in out
    assert "2 benchmarks within" in out


def test_regression_warns_but_never_fails(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 2.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0  # warn-only
    assert "regressed" in capsys.readouterr().out


def test_missing_baseline_benchmark_warns(perf_gate, tmp_path, capsys):
    """A benchmark that stops running must not silently look like a pass."""
    base = _bench_json(tmp_path / "base.json", {"a": 1.0, "gone": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out and "gone" in out and "missing" in out
    assert "1 baseline benchmark(s) missing" in out


def test_new_benchmark_without_baseline_is_fine(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"a": 1.0, "new": 5.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    assert "WARNING" not in capsys.readouterr().out


def test_no_common_benchmarks_warns_about_missing(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    fresh = _bench_json(tmp_path / "fresh.json", {"b": 1.0})
    assert perf_gate.main(["perf_gate", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "missing" in out and "no common benchmarks" in out


def test_unreadable_input_skips(perf_gate, tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", {"a": 1.0})
    assert perf_gate.main(["perf_gate", base, str(tmp_path / "nope.json")]) == 0
    assert "cannot compare" in capsys.readouterr().out
