"""Tests for the statistical validation harness (repro.validation).

Three layers:

* framework units — the check registry, scoring helpers and report
  plumbing, exercised with synthetic checks that never simulate;
* facade wiring — the ``collect_delays`` / ``track_number_distribution``
  flags and pooled accessors the distribution checks depend on, on tiny
  cells;
* the live gate — the clean tree passes the real quick tier, and the
  mutation self-test: a deliberately biased service rate must trip the
  gate and be named in the report (both ``slow``-marked; the nightly CI
  lane runs them).
"""

import numpy as np
import pytest

import repro.validation as validation
from repro.sim.replication import CellSpec, ReplicationEngine
from repro.validation import framework
from repro.validation.framework import (
    GATE,
    QUICK,
    WARN,
    CheckOutcome,
    Comparison,
    ValidationCheck,
    ValidationReport,
    available_checks,
    backend_engine_params,
    get_check,
    qq_gap,
    run_validation,
    select_checks,
    thinned_ks,
    tv_distance,
    z_score,
)

TINY = dict(scenario="single", n=2, rho=0.5, warmup=20.0, horizon=300.0,
            seeds=(0, 1))


def synthetic_check(monkeypatch, name, *, severity=GATE, tier=QUICK,
                    backends=("python",), runner=None):
    """Register a non-simulating check for the duration of one test."""
    if runner is None:
        def runner(backend, processes):
            return [Comparison("m", 1.0, 1.0, 0.0, 1.0)]
    check = ValidationCheck(
        name=name, description="synthetic", severity=severity, tier=tier,
        engine="fifo", backends=backends, runner=runner,
    )
    monkeypatch.setitem(framework._REGISTRY, name, check)
    return check


# -- framework units ---------------------------------------------------

class TestComparison:
    def test_passed_at_threshold(self):
        assert Comparison("m", 1.0, 1.0, 1.0, 1.0).passed

    def test_failed_above_threshold(self):
        assert not Comparison("m", 1.0, 1.0, 1.01, 1.0).passed

    def test_nonfinite_statistic_never_passes(self):
        assert not Comparison("m", 1.0, 1.0, float("inf"), 1.0).passed
        assert not Comparison("m", 1.0, 1.0, float("nan"), 1.0).passed

    def test_as_dict_roundtrip(self):
        d = Comparison("m", 2.0, 1.0, 0.5, 1.0).as_dict()
        assert d["metric"] == "m" and d["passed"] is True

    def test_numpy_scalars_serialize(self):
        # Checks routinely hand numpy scalars in; the JSON artifact must
        # still serialize (np.bool_/np.float64 are not json types).
        import json

        c = Comparison("m", np.float64(1.0), np.float64(1.0),
                       np.float64(0.5), 1.0)
        assert json.dumps(c.as_dict())
        assert isinstance(c.passed, bool)


class TestRegistry:
    def test_duplicate_name_rejected(self, monkeypatch):
        check = synthetic_check(monkeypatch, "dup-check")
        with pytest.raises(ValueError, match="already registered"):
            framework.register_check(check)

    def test_unknown_check_lists_known_names(self):
        with pytest.raises(ValueError, match="mm1-delay"):
            get_check("no-such-check")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            ValidationCheck("x", "d", "fatal", QUICK, "fifo", ("python",),
                            lambda b, p: [])

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            ValidationCheck("x", "d", GATE, "hourly", "fifo", ("python",),
                            lambda b, p: [])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="quantum"):
            ValidationCheck("x", "d", GATE, QUICK, "quantum", ("python",),
                            lambda b, p: [])

    def test_backends_must_be_advertised_subset(self):
        with pytest.raises(ValueError, match="backends"):
            ValidationCheck("x", "d", GATE, QUICK, "fifo", ("cython",),
                            lambda b, p: [])
        with pytest.raises(ValueError, match="backends"):
            ValidationCheck("x", "d", GATE, QUICK, "fifo", (),
                            lambda b, p: [])

    def test_available_checks_sorted(self):
        names = [c.name for c in available_checks()]
        assert names == sorted(names)


class TestHelpers:
    def test_z_score_value(self):
        # half_width 1.96 <-> se 1: z is just the absolute gap.
        assert z_score(3.0, 1.0, 1.96) == pytest.approx(2.0)

    def test_z_score_degenerate_ci_is_inf(self):
        assert z_score(1.0, 1.0, 0.0) == float("inf")
        assert z_score(1.0, 1.0, float("nan")) == float("inf")

    def test_thinned_ks_exact_law_is_small(self):
        # Exact plug-in quantiles of Exp(1): KS -> 0 as m grows.
        u = (np.arange(10000) + 0.5) / 10000
        samples = -np.log(1.0 - u)
        ks = thinned_ks(samples, lambda t: 1.0 - np.exp(-t), stride=1)
        assert ks < 0.01

    def test_thinned_ks_wrong_law_is_large(self):
        u = (np.arange(10000) + 0.5) / 10000
        samples = -np.log(1.0 - u) / 0.5  # Exp(0.5) vs claimed Exp(1)
        ks = thinned_ks(samples, lambda t: 1.0 - np.exp(-t), stride=1)
        assert ks > framework.KS_GATE

    def test_thinned_ks_empty_is_inf(self):
        assert thinned_ks(np.array([]), lambda t: t) == float("inf")

    def test_qq_gap_exact_quantiles(self):
        u = (np.arange(100000) + 0.5) / 100000
        samples = -np.log(1.0 - u)
        gap = qq_gap(samples, lambda p: -np.log(1.0 - p))
        assert gap < 0.01

    def test_tv_identical_zero_disjoint_one(self):
        pmf = np.array([0.5, 0.5])
        assert tv_distance({0: 0.5, 1: 0.5}, pmf) == pytest.approx(0.0)
        assert tv_distance({5: 1.0}, pmf) == pytest.approx(1.0)

    def test_tv_charges_excess_empirical_tail(self):
        # Half the empirical mass sits beyond the pmf support.
        pmf = np.array([1.0])
        assert tv_distance({0: 0.5, 3: 0.5}, pmf) == pytest.approx(0.5)

    def test_backend_engine_params(self):
        assert backend_engine_params("python") == ()
        assert backend_engine_params("numpy") == (("backend", "numpy"),)


class TestSelection:
    def test_quick_tier_excludes_full(self):
        assert all(c.tier == QUICK for c in select_checks(tier=QUICK))

    def test_full_tier_is_superset(self):
        quick = {c.name for c in select_checks(tier=QUICK)}
        full = {c.name for c in select_checks(tier="full")}
        assert quick < full

    def test_glob_select(self):
        names = {c.name for c in select_checks(select=["littles-law-*"])}
        assert names == {"littles-law-fifo", "littles-law-slotted",
                         "littles-law-ps"}

    def test_typo_cannot_validate_nothing(self):
        with pytest.raises(ValueError, match="unknown validation check"):
            select_checks(select=["mm1-dealy"])

    def test_engine_filter(self):
        checks = select_checks(engines=["finite"])
        assert checks and all(c.engine == "finite" for c in checks)


class TestRunValidation:
    def test_synthetic_pass(self, monkeypatch):
        synthetic_check(monkeypatch, "zz-synthetic")
        report = run_validation(select=["zz-synthetic"])
        assert report.passed and len(report.outcomes) == 1

    def test_runner_exception_is_a_failed_outcome(self, monkeypatch):
        def boom(backend, processes):
            raise RuntimeError("reference cell exploded")
        synthetic_check(monkeypatch, "zz-broken", runner=boom)
        report = run_validation(select=["zz-broken"])
        assert not report.passed
        assert report.gate_failures[0].error == (
            "RuntimeError: reference cell exploded"
        )
        assert "zz-broken" in report.as_dict()["gate_failures"]

    def test_warn_failure_never_fails_the_report(self, monkeypatch):
        def miss(backend, processes):
            return [Comparison("m", 9.0, 0.0, 9.0, 1.0)]
        synthetic_check(monkeypatch, "zz-warn", severity=WARN, runner=miss)
        report = run_validation(select=["zz-warn"])
        assert report.passed
        assert [o.check for o in report.warn_failures] == ["zz-warn"]

    def test_backend_filter_and_progress_callback(self, monkeypatch):
        ran = []
        def runner(backend, processes):
            ran.append(backend)
            return [Comparison("m", 0.0, 0.0, 0.0, 1.0)]
        synthetic_check(monkeypatch, "zz-both",
                        backends=("python", "numpy"), runner=runner)
        seen = []
        report = run_validation(select=["zz-both"], backends=["numpy"],
                                on_outcome=seen.append)
        assert ran == ["numpy"]
        assert [o.backend for o in seen] == ["numpy"]
        assert len(report.outcomes) == 1

    def test_render_names_worst_offender_first(self):
        good = CheckOutcome("ok", "d", GATE, QUICK, "fifo", "python",
                            [Comparison("m", 0.0, 0.0, 0.1, 1.0)])
        bad = CheckOutcome("broken", "d", GATE, QUICK, "fifo", "python",
                           [Comparison("m", 9.0, 0.0, 9.0, 1.0)])
        text = ValidationReport(tier=QUICK, outcomes=[good, bad]).render()
        assert text.index("broken") < text.index("ok")
        assert "FAIL" in text and "1 gate failures" in text


# -- facade wiring (tiny live cells) -----------------------------------

class TestFacadeWiring:
    def test_collect_delays_pools_samples(self):
        res = ReplicationEngine(processes=1).run(
            CellSpec(engine="fifo", collect_delays=True, **TINY)
        )
        delays = res.pooled_delays()
        assert delays.size == sum(r.completed for r in res.replications)
        # Unit deterministic service floor (modulo float residue).
        assert np.all(delays > 1.0 - 1e-9)

    def test_number_distribution_mass_sums_to_one(self):
        res = ReplicationEngine(processes=1).run(
            CellSpec(engine="fifo", track_number_distribution=True, **TINY)
        )
        dist = res.pooled_number_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(k >= 0 for k in dist)

    def test_pooled_delays_requires_the_flag(self):
        res = ReplicationEngine(processes=1).run(
            CellSpec(engine="fifo", **TINY)
        )
        with pytest.raises(ValueError, match="collect_delays"):
            res.pooled_delays()

    def test_unsupported_capability_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="per-packet delay samples"):
            CellSpec(engine="rushed", collect_delays=True, **TINY)
        with pytest.raises(ValueError, match="number-in-system"):
            CellSpec(engine="slotted", track_number_distribution=True, **TINY)

    def test_numpy_backend_rejects_number_tracking(self):
        with pytest.raises(ValueError, match="numpy"):
            CellSpec(engine="fifo", track_number_distribution=True,
                     engine_params=(("backend", "numpy"),), **TINY)


# -- the live gate -----------------------------------------------------

class TestLiveGate:
    @pytest.mark.slow
    def test_clean_tree_passes_quick_tier(self):
        report = run_validation(tier=QUICK)
        assert report.passed, report.render()

    @pytest.mark.slow
    def test_injected_bias_trips_the_gate(self, monkeypatch):
        """The mutation self-test: shrink every service rate by 10% and
        the M/M/1 delay check must fail and be named in the report."""
        import repro.sim.fifo_network as fifo_network

        real = fifo_network.resolve_service_rates

        def biased(*args, **kwargs):
            return 0.9 * real(*args, **kwargs)

        monkeypatch.setattr(fifo_network, "resolve_service_rates", biased)
        report = run_validation(select=["mm1-delay"], processes=1)
        assert not report.passed
        assert report.as_dict()["gate_failures"] == ["mm1-delay"]

    @pytest.mark.slow
    def test_unbiased_control_passes(self):
        """The control leg of the mutation test: the same single check
        passes without the bias (so the test above fails for the right
        reason)."""
        report = run_validation(select=["mm1-delay"], processes=1)
        assert report.passed, report.render()


def test_public_surface_reexported():
    for name in ("run_validation", "available_checks", "ValidationCheck",
                 "ValidationReport", "register_check", "Z_GATE"):
        assert hasattr(validation, name)
