"""Good fixture for mutable-default and dead-import (never imported)."""

import json
from collections import OrderedDict
from os import path as path  # explicit re-export: exempt

__all__ = ["accumulate", "index", "path"]


def accumulate(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return json.dumps(bucket)


def index(key, table=None):
    return (table or OrderedDict()).get(key)
