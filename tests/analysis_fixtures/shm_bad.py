"""Bad fixture for the shm-hygiene rule (never imported, only parsed)."""

from multiprocessing import shared_memory


def leak_a_block(payload):
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    shm.buf[: len(payload)] = payload
    return shm.name  # no close, no unlink, no owner


def forget_to_enter(entries, publish_cells):
    batch = publish_cells(entries)  # not used as a context manager
    return batch
