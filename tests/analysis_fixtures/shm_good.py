"""Good fixture for the shm-hygiene rule (never imported, only parsed)."""

from multiprocessing import shared_memory


class OwnedBlock:
    """The owner-object pattern: close() both closes and unlinks."""

    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)

    def close(self):
        self._shm.close()
        self._shm.unlink()


def scoped_use(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf[:1])
    finally:
        shm.close()
        shm.unlink()


def scoped_publish(entries, publish_cells):
    with publish_cells(entries) as batch:
        return batch.token


def attach_only(name):
    # Worker-side attachment never owns the name: exempt.
    shm = shared_memory.SharedMemory(name=name)
    return shm
