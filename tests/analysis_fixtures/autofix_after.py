"""Autofix fixture: three dead imports to remove, three bindings to keep."""

import json
from collections import deque
from pathlib import Path as Path
from typing import List  # replint: disable=dead-import

VALUE = json.dumps({"ok": True})


def tail(items):
    q = deque(items)
    return q.pop()
