"""Bad fixture for mutable-default and dead-import (never imported)."""

import json
import os as _os_alias

from collections import OrderedDict


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket


def index(key, table={}, memo=OrderedDict()):
    return table.get(key, memo)
