"""Good hot-loop fixture: allocations hoisted, exempt, or documented.

Parsed, never imported. Everything the bad fixture does wrong is done
right here: buffers hoisted out of the loop, a ``for`` iterable that
allocates only once, and one algorithmic per-iteration record carrying
the documented escape hatch.
"""


def run(events, np):
    buf = np.zeros(4)
    rec = [0, 0, 0, 0]
    total = 0.0
    for t in events:
        rec[0] = t
        buf[0] = t
        total += rec[0] + buf[0]
        # Fresh per-event record mutated downstream: the algorithm.
        fresh = [t, 0]  # replint: disable=hot-loop-alloc
        total += fresh[0]
    for x in list(events):
        # The iterable expression runs once, not per iteration: exempt.
        total += x
    return total


def _setup(events):
    # Allocations outside any run loop are fine.
    return [list(events), {"n": len(events)}]
