"""Bad fixture for the rng-discipline rule (never imported, only parsed)."""

import time

import numpy as np


def draw_source(cdf, rng):
    # left-sided CDF bisection: the boundary-draw bug.
    return int(np.searchsorted(cdf, rng.random()))


def scalar_draws(rng, cache):
    u = rng.random()  # scalar draw outside a pinned-CDF bisection
    k = rng.poisson(3.0)  # scalar Poisson, no size=
    gap = rng.exponential(1.0)  # scalar exponential, no size=
    stamp = time.time()  # wall clock in engine code
    _key, _val = cache.popitem()  # bare popitem
    total = 0
    for edge in {1, 2, 3}:  # set iteration
        total += edge
    return u, k, gap, stamp, total
