"""Good fixture for the rng-discipline rule (never imported, only parsed)."""

import numpy as np


def draw_source(cdf, rng):
    # The sanctioned pinned-CDF draw: right-sided, scalar probe allowed.
    return int(np.searchsorted(cdf, rng.random(), side="right"))


def blocked_draws(rng, cache):
    gaps = rng.exponential(size=512)
    counts = rng.poisson(3.0, size=512)
    # A documented exception rides a suppression with a reason:
    legacy = rng.poisson(3.0)  # replint: disable=rng-discipline
    _key, _val = cache.popitem(last=False)  # explicit eviction order
    total = 0
    for edge in sorted({1, 2, 3}):  # sorted set: deterministic
        total += edge
    return gaps, counts, legacy, total
