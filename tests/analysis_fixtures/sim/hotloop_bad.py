"""Bad hot-loop fixture: eight per-iteration allocations to flag.

Parsed, never imported. The function is named ``run`` and the file lives
under an ``analysis_fixtures/sim/`` directory, so the hot-loop-alloc
rule's scope heuristics treat it as an engine run loop.
"""


def run(events, np):
    total = 0.0
    out = []
    for t in events:
        rec = [t, 0, 0, 0]
        meta = {"t": t}
        label = f"event {t}"
        msg = "event %d" % t
        note = "ev {}".format(t)
        buf = np.zeros(4)
        ids = list(meta)
        out.append(rec)
        total += buf[0] + len(ids) + len(label) + len(msg) + len(note)
    while total > len(list(out)):
        total -= 1.0
    return total


def helper(events):
    # Not a run loop: an identical allocation here must NOT be flagged.
    acc = []
    for t in events:
        acc.append([t, 0])
    return acc
