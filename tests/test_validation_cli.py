"""Tests for ``python -m repro validate`` (the CLI face of the harness).

Everything runs ``main(argv)`` in-process; the expensive live checks are
replaced by synthetic registry entries so the CLI contract — exit codes,
JSON artifact shape, strict vs report-only semantics — is tested without
simulating. ``scripts/validation_report.py`` (the CI markdown renderer)
is covered against the same JSON the CLI writes.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main
from repro.validation import framework
from repro.validation.framework import Comparison, ValidationCheck


def _load_report_script():
    path = (
        Path(__file__).parent.parent / "scripts" / "validation_report.py"
    )
    spec = importlib.util.spec_from_file_location("validation_report", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def synthetic(monkeypatch, name, *, statistic=0.0, severity="gate"):
    check = ValidationCheck(
        name=name, description="synthetic", severity=severity, tier="quick",
        engine="fifo", backends=("python",),
        runner=lambda b, p: [Comparison("m", statistic, 0.0, statistic, 1.0)],
    )
    monkeypatch.setitem(framework._REGISTRY, name, check)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.tier == "quick" and not args.strict
        assert args.select == [] and args.json_out is None

    def test_bad_tier_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--tier", "hourly"])


class TestListChecks:
    def test_lists_registered_checks(self, capsys):
        assert main(["validate", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in ("mm1-delay", "mm1k-loss", "jackson-mesh",
                     "wait-dominance", "littles-law-fifo"):
            assert name in out


class TestExitCodes:
    def test_pass_is_zero(self, monkeypatch, capsys):
        synthetic(monkeypatch, "zz-cli-pass")
        assert main(["validate", "--select", "zz-cli-pass", "--strict"]) == 0
        assert "validation: PASS" in capsys.readouterr().out

    def test_default_is_report_only(self, monkeypatch, capsys):
        synthetic(monkeypatch, "zz-cli-fail", statistic=9.0)
        assert main(["validate", "--select", "zz-cli-fail"]) == 0
        assert "validation: FAIL" in capsys.readouterr().out

    def test_strict_failure_is_nonzero(self, monkeypatch, capsys):
        synthetic(monkeypatch, "zz-cli-fail", statistic=9.0)
        assert main(["validate", "--select", "zz-cli-fail", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "zz-cli-fail [python] ... FAIL" in out

    def test_unknown_check_errors(self, capsys):
        with pytest.raises(ValueError, match="unknown validation check"):
            main(["validate", "--select", "no-such-check"])


class TestJsonArtifact:
    def test_offending_check_named_in_json(self, monkeypatch, tmp_path):
        synthetic(monkeypatch, "zz-cli-fail", statistic=9.0)
        out = tmp_path / "validation_report.json"
        rc = main(["validate", "--select", "zz-cli-fail", "--strict",
                   "--json-out", str(out)])
        assert rc == 1
        # The JSON is written even on a failing strict run — CI uploads
        # it as the artifact that names the offender.
        report = json.loads(out.read_text())
        assert report["passed"] is False
        assert report["gate_failures"] == ["zz-cli-fail"]
        comp = report["outcomes"][0]["comparisons"][0]
        assert set(comp) == {"metric", "observed", "expected", "statistic",
                             "threshold", "passed"}

    def test_markdown_renderer_roundtrip(self, monkeypatch, tmp_path):
        synthetic(monkeypatch, "zz-cli-pass")
        synthetic(monkeypatch, "zz-cli-warn", statistic=9.0, severity="warn")
        out = tmp_path / "report.json"
        main(["validate", "--select", "zz-cli-*", "--json-out", str(out)])
        mod = _load_report_script()
        md = tmp_path / "report.md"
        assert mod.main([str(out), str(md)]) == 0  # warns never gate
        text = md.read_text()
        assert "PASS" in text and "| zz-cli-warn |" in text
        assert "WARN" in text

    def test_markdown_renderer_exit_mirrors_gate(self, monkeypatch, tmp_path):
        synthetic(monkeypatch, "zz-cli-fail", statistic=9.0)
        out = tmp_path / "report.json"
        main(["validate", "--select", "zz-cli-fail", "--json-out", str(out)])
        mod = _load_report_script()
        assert mod.main([str(out)]) == 1
