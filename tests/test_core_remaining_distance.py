"""Tests for Definition 11: expected remaining distances d_e and d-bar."""

import numpy as np
import pytest

from repro.core.remaining_distance import (
    array_max_expected_remaining_distance,
    butterfly_remaining_distance,
    expected_remaining_distances,
    hypercube_max_expected_remaining_distance,
    max_expected_remaining_distance,
)
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.destinations import (
    PBiasedHypercubeDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.topology.array_mesh import ArrayMesh
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube


class TestArrayDbar:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_dbar_is_n_minus_half(self, n):
        """Paper Section 4.3: d-bar = n - 1/2 on the array, verified by
        exact enumeration against the closed form."""
        mesh = ArrayMesh(n)
        got = max_expected_remaining_distance(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        assert np.isclose(got, array_max_expected_remaining_distance(n))
        assert np.isclose(got, n - 0.5)

    def test_dbar_attained_at_corner_rightward(self):
        """The maximiser is the rightward edge out of node (1,1)."""
        n = 5
        mesh = ArrayMesh(n)
        d_e = expected_remaining_distances(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        corner_right = mesh.directed_edge_id(0, 0, "right")
        assert np.isclose(d_e[corner_right], np.nanmax(d_e))

    def test_every_de_at_least_one(self):
        """The service at e itself always counts."""
        mesh = ArrayMesh(4)
        d_e = expected_remaining_distances(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        finite = d_e[np.isfinite(d_e)]
        assert np.all(finite >= 1.0 - 1e-12)

    def test_column_edges_have_small_de(self):
        """Once in the column leg, at most n-1 services remain; d_e on a
        column edge is below the row-leg maximum."""
        n = 5
        mesh = ArrayMesh(n)
        d_e = expected_remaining_distances(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        for j in range(n):
            e = mesh.directed_edge_id(0, j, "down")
            assert d_e[e] <= n - 1

    def test_weighted_sources(self):
        """Restricting sources to the corner raises remaining distances."""
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(mesh.num_nodes)
        all_src = expected_remaining_distances(router, dests)
        corner = expected_remaining_distances(router, dests, source_nodes=[0])
        e = mesh.directed_edge_id(0, 0, "right")
        assert corner[e] == pytest.approx(all_src[e])  # only corner feeds it


class TestHypercubeDbar:
    @pytest.mark.parametrize("p", [0.2, 0.5, 0.8])
    def test_closed_form_matches_enumeration(self, p):
        d = 4
        cube = Hypercube(d)
        got = max_expected_remaining_distance(
            GreedyHypercubeRouter(cube), PBiasedHypercubeDestinations(cube, p)
        )
        assert np.isclose(got, hypercube_max_expected_remaining_distance(d, p))
        assert np.isclose(got, 1 + p * (d - 1))

    def test_p_zero_and_one(self):
        assert hypercube_max_expected_remaining_distance(5, 0.0) == 1.0
        assert hypercube_max_expected_remaining_distance(5, 1.0) == 5.0

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            hypercube_max_expected_remaining_distance(0, 0.5)


class TestButterflyDbar:
    def test_dbar_is_d(self):
        """Every route has length d; first-level queues see d remaining."""
        d = 3
        b = Butterfly(d)
        outs = [b.node_id(d, r) for r in range(b.rows)]

        class UniformOutputs:
            num_nodes = b.num_nodes

            def pmf(self, src):
                v = np.zeros(b.num_nodes)
                v[outs] = 1.0 / len(outs)
                return v

            def sample(self, src, rng):  # pragma: no cover
                return outs[int(rng.integers(len(outs)))]

        sources = [b.node_id(0, r) for r in range(b.rows)]
        got = max_expected_remaining_distance(
            ButterflyRouter(b), UniformOutputs(), source_nodes=sources
        )
        assert np.isclose(got, butterfly_remaining_distance(d))

    def test_closed_form(self):
        assert butterfly_remaining_distance(6) == 6.0


class TestEdgeCases:
    def test_uncrossed_edges_are_nan(self):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        d_e = expected_remaining_distances(
            router, UniformDestinations(9), source_nodes=[0]
        )
        # From the corner, no left edges are ever used.
        e_left = mesh.directed_edge_id(0, 1, "left")
        assert np.isnan(d_e[e_left])

    def test_no_traffic_raises(self):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        with pytest.raises(ValueError, match="match"):
            expected_remaining_distances(
                router,
                UniformDestinations(9),
                source_nodes=[0, 1],
                source_weights=[1.0],
            )
