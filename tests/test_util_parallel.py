"""Unit tests for repro.util.parallel."""

from repro.util.parallel import default_processes, pmap


def square(x):
    return x * x


class TestPmap:
    def test_serial_path(self):
        assert pmap(square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_preserves_order(self):
        items = list(range(20))
        assert pmap(square, items, processes=2) == [x * x for x in items]

    def test_empty_input(self):
        assert pmap(square, [], processes=4) == []

    def test_single_item_runs_serial(self):
        assert pmap(square, [7]) == [49]

    def test_default_processes_positive(self):
        assert default_processes() >= 1

    def test_parallel_matches_serial(self):
        items = list(range(10))
        assert pmap(square, items, processes=3) == pmap(
            square, items, processes=1
        )
