"""Tests for product-form networks and empirical stochastic dominance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.dominance import dominance_violation, empirical_dominates
from repro.queueing.mm1 import MM1Queue
from repro.queueing.productform import ProductFormNetwork


class TestProductFormNetwork:
    def test_mean_number_sums_mm1(self):
        rates = np.array([0.2, 0.5, 0.8])
        net = ProductFormNetwork.from_rates(rates)
        expected = sum(MM1Queue(r).mean_number() for r in rates)
        assert net.mean_number() == pytest.approx(expected)

    def test_network_load_is_max(self):
        net = ProductFormNetwork.from_rates(np.array([0.2, 0.9, 0.5]))
        assert net.network_load == pytest.approx(0.9)

    def test_service_rate_broadcast(self):
        net = ProductFormNetwork.from_rates(np.array([0.5, 0.5]), 2.0)
        assert np.allclose(net.loads, 0.25)

    def test_per_queue_service_rates(self):
        net = ProductFormNetwork.from_rates(
            np.array([0.5, 0.5]), np.array([1.0, 2.0])
        )
        assert np.allclose(net.loads, [0.5, 0.25])

    def test_unstable_raises(self):
        net = ProductFormNetwork.from_rates(np.array([1.0]))
        with pytest.raises(ValueError, match="unstable"):
            net.mean_number()

    def test_mean_delay_littles(self):
        rates = np.array([0.3, 0.3])
        net = ProductFormNetwork.from_rates(rates)
        assert net.mean_delay(2.0) == pytest.approx(net.mean_number() / 2.0)

    def test_queue_pmf_geometric(self):
        net = ProductFormNetwork.from_rates(np.array([0.5]))
        assert np.allclose(net.queue_pmf(0, 5), 0.5 ** np.arange(6) * 0.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ProductFormNetwork.from_rates(np.array([0.5]), np.array([1.0, 1.0]))

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            ProductFormNetwork.from_rates(np.array([-0.1]))

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.9), min_size=1, max_size=8)
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_number_nonnegative_and_monotone(self, rates):
        """Property: N >= 0, and scaling all rates up increases N."""
        lam = np.asarray(rates)
        n1 = ProductFormNetwork.from_rates(lam).mean_number()
        n2 = ProductFormNetwork.from_rates(lam * 0.5).mean_number()
        assert n1 >= 0 and n2 <= n1 + 1e-12


class TestDominance:
    def test_identical_samples_dominate(self, rng):
        x = rng.exponential(size=2000)
        assert dominance_violation(x, x) == 0.0

    def test_shifted_dominates(self, rng):
        x = rng.exponential(size=2000)
        assert empirical_dominates(x, x + 1.0)

    def test_reverse_fails(self, rng):
        x = rng.exponential(size=2000)
        assert not empirical_dominates(x + 1.0, x, tolerance=0.05)

    def test_scaled_exponential_dominates(self, rng):
        x = rng.exponential(size=4000)
        y = 2.0 * rng.exponential(size=4000)
        assert empirical_dominates(x, y, tolerance=0.03)

    def test_violation_magnitude_sane(self, rng):
        x = rng.normal(1.0, 0.1, size=4000)
        y = rng.normal(0.0, 0.1, size=4000)
        # X is ~always above Y: violation near 1.
        assert dominance_violation(x, y) > 0.9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dominance_violation(np.array([]), np.array([1.0]))
