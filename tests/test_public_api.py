"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for mod in (
            "repro.topology",
            "repro.routing",
            "repro.queueing",
            "repro.sim",
            "repro.core",
            "repro.experiments",
            "repro.util",
        ):
            importlib.import_module(mod)

    def test_quickstart_flow(self):
        """The docstring quickstart, end to end (tiny horizon)."""
        from repro import (
            ArrayMesh,
            GreedyArrayRouter,
            NetworkSimulation,
            UniformDestinations,
            bound_summary,
            lambda_for_load,
        )

        n, rho = 4, 0.6
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(mesh.num_nodes),
            lam,
            seed=1,
        )
        result = sim.run(warmup=100, horizon=1500)
        bounds = bound_summary(n, lam)
        assert bounds.lower_best <= result.mean_delay <= bounds.upper * 1.1

    def test_router_protocol_satisfied(self):
        from repro import ArrayMesh, GreedyArrayRouter, Router

        assert isinstance(GreedyArrayRouter(ArrayMesh(3)), Router)

    def test_destination_protocol_satisfied(self):
        from repro.routing.destinations import (
            DestinationDistribution,
            UniformDestinations,
        )

        assert isinstance(UniformDestinations(4), DestinationDistribution)
