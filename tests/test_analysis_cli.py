"""CLI tests for ``python -m repro.analysis`` (exit codes, JSON, listing)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def test_clean_tree_exits_zero(capsys):
    assert main([str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_bad_fixture_exits_one(capsys):
    assert main([str(FIXTURES / "shm_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "[shm-hygiene]" in out
    assert "finding(s)" in out


@pytest.mark.parametrize(
    "fixture, rule",
    [
        ("sim/rng_bad.py", "rng-discipline"),
        ("shm_bad.py", "shm-hygiene"),
        ("hygiene_bad.py", "mutable-default"),
        ("hygiene_bad.py", "dead-import"),
    ],
)
def test_each_rule_fails_its_bad_fixture(fixture, rule, capsys):
    assert main([str(FIXTURES / fixture), "--select", rule]) == 1
    assert f"[{rule}]" in capsys.readouterr().out


def test_json_report_shape(capsys):
    assert main([str(FIXTURES / "shm_bad.py"), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["ok"] is False
    assert report["files"] == 1
    assert len(report["findings"]) == 2
    first = report["findings"][0]
    assert set(first) == {"rule", "path", "line", "col", "message"}


def test_json_report_clean(capsys):
    assert main([str(FIXTURES / "shm_good.py"), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True and report["findings"] == []


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "rng-discipline",
        "backend-boundary",
        "registry-consistency",
        "shm-hygiene",
        "mutable-default",
        "dead-import",
    ):
        assert rule in out


def test_unknown_rule_exits_two(capsys):
    assert main([str(FIXTURES / "shm_good.py"), "--select", "no-such"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    assert main(["no/such/path"]) == 2
    assert "error" in capsys.readouterr().err


def test_select_accepts_comma_list(capsys):
    assert main(
        [str(FIXTURES / "hygiene_bad.py"), "--select",
         "mutable-default,dead-import"]
    ) == 1
    out = capsys.readouterr().out
    assert "[mutable-default]" in out and "[dead-import]" in out


def test_module_invocation_on_real_tree():
    """The CI lint leg verbatim: ``python -m repro.analysis src/repro``."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC_REPRO)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
