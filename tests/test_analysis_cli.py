"""CLI tests for ``python -m repro.analysis``.

Exit codes, JSON report shape (version 2: rule docs + stable
fingerprints), rule listing, the ``--fix`` autofixer against the
before/after fixtures, and the mtime-keyed result cache.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis import cache
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def test_clean_tree_exits_zero(capsys):
    assert main([str(SRC_REPRO), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_bad_fixture_exits_one(capsys):
    assert main([str(FIXTURES / "shm_bad.py"), "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "[shm-hygiene]" in out
    assert "finding(s)" in out


@pytest.mark.parametrize(
    "fixture, rule",
    [
        ("sim/rng_bad.py", "rng-discipline"),
        ("sim/hotloop_bad.py", "hot-loop-alloc"),
        ("shm_bad.py", "shm-hygiene"),
        ("hygiene_bad.py", "mutable-default"),
        ("hygiene_bad.py", "dead-import"),
    ],
)
def test_each_rule_fails_its_bad_fixture(fixture, rule, capsys):
    assert main(
        [str(FIXTURES / fixture), "--select", rule, "--no-cache"]
    ) == 1
    assert f"[{rule}]" in capsys.readouterr().out


def test_json_report_shape(capsys):
    assert main([str(FIXTURES / "shm_bad.py"), "--json", "--no-cache"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 2
    assert report["ok"] is False
    assert report["files"] == 1
    assert len(report["findings"]) == 2
    first = report["findings"][0]
    assert set(first) == {
        "rule", "path", "line", "col", "message", "doc", "fingerprint",
    }
    assert first["doc"]  # the owning rule's one-line description
    assert len(first["fingerprint"]) == 16
    int(first["fingerprint"], 16)  # hex digest prefix


def test_json_report_clean(capsys):
    assert main([str(FIXTURES / "shm_good.py"), "--json", "--no-cache"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True and report["findings"] == []


def test_json_file_written_alongside_human_report(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    assert main(
        [str(FIXTURES / "shm_bad.py"), "--no-cache",
         "--json-file", str(out_file)]
    ) == 1
    # stdout stays human-readable; the JSON goes to the file (CI uploads
    # it as an artifact even when the step fails).
    assert "[shm-hygiene]" in capsys.readouterr().out
    report = json.loads(out_file.read_text())
    assert report["version"] == 2 and len(report["findings"]) == 2


def test_fingerprints_stable_under_line_insertion(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("def f(bucket=[]):\n    return bucket\n")
    before = analyze_paths([path], select=["mutable-default"])
    path.write_text(
        "# a new comment shifts every line number\n"
        "\n"
        "def f(bucket=[]):\n    return bucket\n"
    )
    after = analyze_paths([path], select=["mutable-default"])
    assert [f.line for f in before] != [f.line for f in after]
    assert [f.fingerprint for f in before] == [f.fingerprint for f in after]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "rng-discipline",
        "backend-boundary",
        "registry-consistency",
        "golden-coverage",
        "bench-coverage",
        "hot-loop-alloc",
        "stale-suppression",
        "shm-hygiene",
        "mutable-default",
        "dead-import",
    ):
        assert rule in out


def test_unknown_rule_exits_two(capsys):
    assert main(
        [str(FIXTURES / "shm_good.py"), "--select", "no-such", "--no-cache"]
    ) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    assert main(["no/such/path", "--no-cache"]) == 2
    assert "error" in capsys.readouterr().err


def test_select_accepts_comma_list(capsys):
    assert main(
        [str(FIXTURES / "hygiene_bad.py"), "--select",
         "mutable-default,dead-import", "--no-cache"]
    ) == 1
    out = capsys.readouterr().out
    assert "[mutable-default]" in out and "[dead-import]" in out


def test_module_invocation_on_real_tree():
    """The CI lint leg verbatim: ``python -m repro.analysis src/repro``."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC_REPRO), "--no-cache"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


# -- --fix (dead-import autofixer) --------------------------------------

def test_fix_rewrites_before_fixture_to_after(tmp_path, capsys):
    target = tmp_path / "mod.py"
    shutil.copy(FIXTURES / "autofix_before.py", target)
    # After fixing, the file is clean (the remaining suppressed import is
    # consumed), so the run exits 0.
    assert main([str(target), "--fix", "--no-cache"]) == 0
    assert target.read_text() == (FIXTURES / "autofix_after.py").read_text()
    out = capsys.readouterr().out
    assert "removed dead import(s): os" in out
    assert "system" in out  # `import sys as system` reported by binding
    assert "OrderedDict" in out
    assert "deque" not in out.split("clean")[0]  # live alias untouched


def test_fix_is_idempotent(tmp_path, capsys):
    target = tmp_path / "mod.py"
    shutil.copy(FIXTURES / "autofix_before.py", target)
    assert main([str(target), "--fix", "--no-cache"]) == 0
    capsys.readouterr()
    assert main([str(target), "--fix", "--no-cache"]) == 0
    assert "removed" not in capsys.readouterr().out


def test_fix_without_flag_leaves_file_alone(tmp_path):
    target = tmp_path / "mod.py"
    shutil.copy(FIXTURES / "autofix_before.py", target)
    original = target.read_text()
    assert main([str(target), "--select", "dead-import", "--no-cache"]) == 1
    assert target.read_text() == original


# -- result cache -------------------------------------------------------

def _seed_tree(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(bucket=[]):\n    return bucket\n")
    return target, tmp_path / "cache.json"


def test_cache_roundtrip_replays_findings(tmp_path):
    target, cache_file = _seed_tree(tmp_path)
    select = ["mutable-default"]
    findings = analyze_paths([target], select=select)
    assert findings
    assert cache.load(cache_file, [target], select) is None  # cold
    cache.store(cache_file, [target], select, findings, 1)
    hit = cache.load(cache_file, [target], select)
    assert hit is not None
    replayed, num_files = hit
    assert num_files == 1
    assert replayed == findings  # fingerprints and docs included


def test_cache_invalidated_by_file_touch(tmp_path):
    target, cache_file = _seed_tree(tmp_path)
    select = ["mutable-default"]
    findings = analyze_paths([target], select=select)
    cache.store(cache_file, [target], select, findings, 1)
    # Same content, new mtime: the stat signature must invalidate.
    target.write_text(target.read_text() + "# touched\n")
    assert cache.load(cache_file, [target], select) is None


def test_cache_keyed_by_select(tmp_path):
    target, cache_file = _seed_tree(tmp_path)
    findings = analyze_paths([target], select=["mutable-default"])
    cache.store(cache_file, [target], ["mutable-default"], findings, 1)
    assert cache.load(cache_file, [target], ["dead-import"]) is None
    assert cache.load(cache_file, [target], None) is None


def test_cache_corrupt_file_is_a_miss(tmp_path):
    target, cache_file = _seed_tree(tmp_path)
    cache_file.write_text("{not json")
    assert cache.load(cache_file, [target], None) is None


def test_cli_writes_and_reuses_cache(tmp_path, capsys):
    target, cache_file = _seed_tree(tmp_path)
    argv = [str(target), "--select", "mutable-default",
            "--cache-file", str(cache_file)]
    assert main(argv) == 1
    first = capsys.readouterr().out
    assert cache_file.exists()
    # Unchanged tree: the replay must reproduce report and exit code.
    assert main(argv) == 1
    assert capsys.readouterr().out == first
    # Fixing the file invalidates the entry and flips the exit code.
    target.write_text("def f(bucket=None):\n    return bucket\n")
    assert main(argv) == 0
    assert "clean" in capsys.readouterr().out


def test_no_cache_never_touches_cache_file(tmp_path):
    target, cache_file = _seed_tree(tmp_path)
    assert main(
        [str(target), "--select", "mutable-default",
         "--cache-file", str(cache_file), "--no-cache"]
    ) == 1
    assert not cache_file.exists()


def test_fix_bypasses_cache(tmp_path):
    target, cache_file = _seed_tree(tmp_path)
    assert main(
        [str(target), "--fix", "--select", "mutable-default",
         "--cache-file", str(cache_file)]
    ) == 1
    assert not cache_file.exists()
