"""Tests for the main event-driven FIFO simulator.

Strategy: validate against closed-form queueing theory on tiny networks
(fast, tight tolerances), then check structural invariants (conservation,
determinism, Little's-Law consistency) on the array.
"""

import numpy as np
import pytest

from repro.core.rates import array_edge_rates, lambda_for_load
from repro.core.saturation import saturated_edge_mask
from repro.core.upper_bound import delay_upper_bound
from repro.queueing.md1 import MD1Queue
from repro.queueing.mm1 import MM1Queue
from repro.routing.base import TabulatedRouter
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.topology.linear import LinearArray

from _helpers import AlwaysNodeZero, BoundaryRNG


class AcrossOnly:
    """2-node destination law: always the other node (one M/D/1 per edge)."""

    num_nodes = 2

    def sample(self, src, rng):
        return 1 - src

    def pmf(self, src):
        v = np.zeros(2)
        v[1 - src] = 1.0
        return v


def two_node_router():
    line = LinearArray(2)
    return TabulatedRouter(
        line, {(0, 1): [0], (1, 0): [1], (0, 0): [], (1, 1): []}
    )


class TestSingleQueueTheory:
    def test_md1_delay(self):
        lam = 0.6
        sim = NetworkSimulation(two_node_router(), AcrossOnly(), lam, seed=1)
        res = sim.run(200, 15000)
        assert res.mean_delay == pytest.approx(MD1Queue(lam).mean_delay(), rel=0.03)

    def test_mm1_delay(self):
        lam = 0.6
        sim = NetworkSimulation(
            two_node_router(), AcrossOnly(), lam, service="exponential", seed=2
        )
        res = sim.run(200, 15000)
        assert res.mean_delay == pytest.approx(MM1Queue(lam).mean_delay(), rel=0.05)

    def test_md1_number(self):
        lam = 0.5
        sim = NetworkSimulation(two_node_router(), AcrossOnly(), lam, seed=3)
        res = sim.run(200, 15000)
        # Two independent M/D/1 queues at rate lam each.
        assert res.mean_number == pytest.approx(
            2 * MD1Queue(lam).mean_number(), rel=0.05
        )

    def test_service_rate_scaling(self):
        """Doubling every phi at fixed lam behaves like a M/D/1 with
        service 0.5."""
        lam = 0.6
        sim = NetworkSimulation(
            two_node_router(), AcrossOnly(), lam, service_rates=2.0, seed=4
        )
        res = sim.run(200, 10000)
        assert res.mean_delay == pytest.approx(
            MD1Queue(lam, service=0.5).mean_delay(), rel=0.05
        )


class TestArrayInvariants:
    @pytest.fixture(scope="class")
    def array_run(self):
        n, rho = 4, 0.7
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        mask = saturated_edge_mask(array_edge_rates(mesh, lam))
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(mesh.num_nodes),
            lam,
            saturated_mask=mask,
            seed=7,
        )
        return sim.run(200, 4000, track_utilization=True), lam, n, mesh

    def test_conservation(self, array_run):
        res, _, _, _ = array_run
        # Drain guarantees every measured packet completed.
        assert res.generated == res.completed

    def test_littles_law(self, array_run):
        res, _, _, _ = array_run
        assert res.littles_law_gap < 0.06

    def test_below_upper_bound(self, array_run):
        res, lam, n, _ = array_run
        assert res.mean_delay <= delay_upper_bound(n, lam) * 1.05

    def test_above_trivial_bound(self, array_run):
        res, _, n, _ = array_run
        from repro.core.distances import mean_distance

        assert res.mean_delay >= mean_distance(n) * 0.98

    def test_utilization_matches_theorem6(self, array_run):
        res, lam, _, mesh = array_run
        rates = array_edge_rates(mesh, lam)
        assert np.abs(res.utilization - rates).max() < 0.05

    def test_remaining_services_band(self, array_run):
        """1 <= r <= max route length; and r < nbar2 (Table II's claim)."""
        res, _, n, _ = array_run
        assert 1.0 <= res.r <= 2 * (n - 1)
        assert res.r < 2 * n / 3

    def test_saturated_remaining_band(self, array_run):
        res, _, n, _ = array_run
        from repro.core.saturation import s_bar

        assert 0.0 < res.r_saturated < s_bar(n)

    def test_zero_hop_fraction(self, array_run):
        """P(dst == src) = 1/n^2."""
        res, _, n, _ = array_run
        frac = res.zero_hop / res.generated
        assert frac == pytest.approx(1.0 / (n * n), rel=0.35)


class TestSourceDrawBoundary:
    """node_rate=[0.0, 1.0]: a boundary draw must never pick the dead source."""

    def test_zero_rate_source_never_generates(self, monkeypatch):
        real = np.random.default_rng
        monkeypatch.setattr(
            np.random, "default_rng", lambda seed=None: BoundaryRNG(real(seed))
        )
        sim = NetworkSimulation(
            two_node_router(), AlwaysNodeZero(), [0.0, 1.0], seed=11
        )
        res = sim.run(0, 300)
        # Packets from source 0 would be zero-hop (dst == 0); with the
        # boundary draw fixed, every packet originates at source 1.
        assert res.generated > 0
        assert res.zero_hop == 0

    def test_dead_source_edge_stays_idle(self):
        sim = NetworkSimulation(
            two_node_router(), AcrossOnly(), [0.0, 1.0], seed=12
        )
        res = sim.run(0, 500, track_utilization=True)
        assert res.generated > 0
        assert res.utilization[0] == 0.0  # edge 0 -> 1 never used
        assert res.utilization[1] > 0.0


class TestMaximaWindow:
    """Maxima must cover only the measurement window, not the warmup.

    The trick: warmup affects measurement only, never dynamics, so runs
    with the same seed and the same total time share one trajectory. A
    seed whose congestion peak lands in the first half must therefore
    report strictly smaller maxima when that half is declared warmup.
    """

    @staticmethod
    def _run(warmup, horizon):
        mesh = ArrayMesh(4)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(16), 0.5, seed=11
        )
        return sim.run(warmup, horizon, track_maxima=True)

    def test_warmup_peak_excluded(self):
        full = self._run(0, 1000)
        windowed = self._run(500, 500)
        assert windowed.max_queue_length < full.max_queue_length
        assert windowed.max_delay < full.max_delay

    def test_window_maxima_bounded_by_full_run(self):
        full = self._run(0, 1000)
        for warmup in (200, 400, 800):
            w = self._run(warmup, 1000 - warmup)
            assert w.max_queue_length <= full.max_queue_length
            assert w.max_delay <= full.max_delay

    def test_standing_backlog_at_warmup_counts(self):
        """A queue built during warmup that still stands when the window
        opens was observed in the window: it must seed max_queue even if
        no packet joins it before the horizon."""
        # Critical load (rho = 1 per edge) builds a deep backlog over the
        # warmup; the window is too short for appends to rebuild it.
        res = NetworkSimulation(
            two_node_router(), AcrossOnly(), 1.0, seed=5
        ).run(100, 0.4, track_maxima=True)
        assert res.max_queue_length >= 10


class TestDeterminismAndOptions:
    def test_same_seed_same_result(self):
        mesh = ArrayMesh(3)
        args = (
            GreedyArrayRouter(mesh),
            UniformDestinations(9),
            0.3,
        )
        r1 = NetworkSimulation(*args, seed=42).run(50, 500)
        r2 = NetworkSimulation(*args, seed=42).run(50, 500)
        assert r1.mean_delay == r2.mean_delay
        assert r1.mean_number == r2.mean_number
        assert r1.generated == r2.generated

    def test_different_seed_different_result(self):
        mesh = ArrayMesh(3)
        args = (GreedyArrayRouter(mesh), UniformDestinations(9), 0.3)
        r1 = NetworkSimulation(*args, seed=1).run(50, 500)
        r2 = NetworkSimulation(*args, seed=2).run(50, 500)
        assert r1.mean_delay != r2.mean_delay

    def test_collect_delays(self):
        mesh = ArrayMesh(3)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.2, seed=5
        )
        res = sim.run(20, 300, collect_delays=True)
        assert res.delays is not None
        assert len(res.delays) == res.completed
        assert np.isclose(res.delays.mean(), res.mean_delay, rtol=1e-9)

    def test_number_distribution(self):
        mesh = ArrayMesh(3)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.2, seed=5
        )
        res = sim.run(20, 300, track_number_distribution=True)
        dist = res.number_distribution
        assert dist is not None
        assert sum(dist.values()) == pytest.approx(1.0)
        mean_from_dist = sum(k * w for k, w in dist.items())
        assert mean_from_dist == pytest.approx(res.mean_number, rel=1e-6)

    def test_no_saturated_mask_gives_nan(self):
        mesh = ArrayMesh(3)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.2, seed=5
        )
        res = sim.run(20, 200)
        assert np.isnan(res.mean_remaining_saturated)
        assert np.isnan(res.r_saturated)

    def test_source_subset(self):
        """Only listed sources generate packets."""
        mesh = ArrayMesh(3)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(9),
            1.0,
            source_nodes=[0],
            seed=6,
        )
        res = sim.run(10, 200, track_utilization=True)
        # Left/up edges never used from the corner source.
        for e in range(mesh.num_edges):
            if mesh.edge_direction(e) in ("left", "up"):
                assert res.utilization[e] == 0.0

    def test_invalid_args(self):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        with pytest.raises(ValueError):
            NetworkSimulation(router, dests, 0.2, service="gaussian")
        with pytest.raises(ValueError):
            NetworkSimulation(router, dests, -0.2)
        with pytest.raises(ValueError):
            NetworkSimulation(router, dests, 0.2, service_rates=np.zeros(3))
        sim = NetworkSimulation(router, dests, 0.2)
        with pytest.raises(ValueError):
            sim.run(-1.0, 100)
        with pytest.raises(ValueError):
            sim.run(10, 0)
