"""Tests for destination distributions: pmf/sample agreement and laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.destinations import (
    GeometricStopDestinations,
    HotSpotDestinations,
    MatrixDestinations,
    PBiasedHypercubeDestinations,
    PermutationDestinations,
    UniformDestinations,
)
from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube


def empirical_pmf(dist, src, rng, samples=4000):
    counts = np.zeros(dist.num_nodes)
    for _ in range(samples):
        counts[dist.sample(src, rng)] += 1
    return counts / samples


class TestUniformDestinations:
    def test_pmf_uniform(self):
        d = UniformDestinations(9)
        assert np.allclose(d.pmf(3), 1 / 9)

    def test_sample_matches_pmf(self, rng):
        d = UniformDestinations(6)
        emp = empirical_pmf(d, 0, rng)
        assert np.abs(emp - 1 / 6).max() < 0.03

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformDestinations(0)


class TestMatrixDestinations:
    def test_pmf_rows(self):
        p = np.array([[0.5, 0.5], [0.1, 0.9]])
        d = MatrixDestinations(p)
        assert np.allclose(d.pmf(1), [0.1, 0.9])

    def test_sample_matches_pmf(self, rng):
        p = np.array([[0.2, 0.8], [0.7, 0.3]])
        d = MatrixDestinations(p)
        emp = empirical_pmf(d, 0, rng)
        assert np.abs(emp - p[0]).max() < 0.03

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MatrixDestinations(np.ones((2, 3)) / 3)

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            MatrixDestinations(np.array([[0.5, 0.6], [0.5, 0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MatrixDestinations(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_never_samples_zero_probability_destination(self, rng):
        """CDF sampling must skip zero-mass columns, even on boundary draws."""
        p = np.array([[0.0, 0.5, 0.5], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        d = MatrixDestinations(p)
        for src in range(3):
            support = set(np.nonzero(p[src])[0])
            drawn = {d.sample(src, rng) for _ in range(500)}
            assert drawn <= support

    def test_cdf_sampling_matches_pmf(self, rng):
        p = np.array([[0.1, 0.6, 0.3], [0.5, 0.0, 0.5], [0.2, 0.2, 0.6]])
        d = MatrixDestinations(p)
        emp = empirical_pmf(d, 2, rng, samples=8000)
        assert np.abs(emp - p[2]).max() < 0.025

    def test_top_draw_never_hits_trailing_zero_column(self):
        """u = 1 - ulp must map into the support even when rounding leaves
        the last nonzero cumsum below 1 (the top sliver belongs to the
        last *positive* column, not a trailing zero one)."""

        class TopDraw:
            def random(self):
                return np.nextafter(1.0, 0.0)

        gen = np.random.default_rng(99)
        for _ in range(50):
            p = np.zeros((4, 4))
            for row in range(4):
                k = int(gen.integers(1, 4))  # leave 4-k trailing zeros
                vals = gen.random(k)
                p[row, :k] = vals / vals.sum()
            d = MatrixDestinations(p)
            for src in range(4):
                drawn = d.sample(src, TopDraw())
                assert p[src, drawn] > 0


class TestHotSpotDestinations:
    def test_pmf_sums_to_one(self):
        d = HotSpotDestinations(9, hot_node=4, h=0.3)
        assert np.isclose(d.pmf(0).sum(), 1.0)

    def test_pmf_shape(self):
        d = HotSpotDestinations(10, hot_node=7, h=0.4)
        pmf = d.pmf(3)
        assert pmf[7] == pytest.approx(0.4 + 0.6 / 10)
        others = np.delete(pmf, 7)
        assert np.allclose(others, 0.6 / 10)

    def test_zero_mass_recovers_uniform(self):
        d = HotSpotDestinations(8, hot_node=2, h=0.0)
        assert np.allclose(d.pmf(0), UniformDestinations(8).pmf(0))

    def test_full_mass_is_degenerate(self, rng):
        d = HotSpotDestinations(8, hot_node=5, h=1.0)
        assert all(d.sample(0, rng) == 5 for _ in range(50))

    def test_sample_matches_pmf(self, rng):
        d = HotSpotDestinations(6, hot_node=1, h=0.35)
        emp = empirical_pmf(d, 0, rng, samples=8000)
        assert np.abs(emp - d.pmf(0)).max() < 0.025

    def test_validation(self):
        with pytest.raises(ValueError):
            HotSpotDestinations(0)
        with pytest.raises(ValueError):
            HotSpotDestinations(4, hot_node=4)
        with pytest.raises(ValueError):
            HotSpotDestinations(4, hot_node=0, h=1.5)


class TestPermutationDestinations:
    def test_sample_is_deterministic(self, rng):
        d = PermutationDestinations([2, 0, 1])
        assert [d.sample(s, rng) for s in range(3)] == [2, 0, 1]

    def test_pmf_is_one_hot(self):
        d = PermutationDestinations([1, 2, 0])
        for src in range(3):
            pmf = d.pmf(src)
            assert pmf.sum() == 1.0
            assert pmf[d.sample(src, None)] == 1.0

    def test_sample_matches_pmf(self, rng):
        d = PermutationDestinations([3, 2, 1, 0])
        for src in range(4):
            emp = empirical_pmf(d, src, rng, samples=50)
            assert np.array_equal(emp, d.pmf(src))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            PermutationDestinations([0, 0, 1])
        with pytest.raises(ValueError):
            PermutationDestinations([[0, 1], [1, 0]])

    def test_transpose_on_mesh(self):
        mesh = ArrayMesh(3)
        d = PermutationDestinations.transpose(mesh)
        for i in range(3):
            for j in range(3):
                assert d.sample(mesh.node_id(i, j), None) == mesh.node_id(j, i)

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            PermutationDestinations.transpose(ArrayMesh(2, 3))

    def test_bit_reversal(self):
        d = PermutationDestinations.bit_reversal(8)
        # 3-bit reversals: 000->000, 001->100, 010->010, 011->110, ...
        assert [d.sample(v, None) for v in range(8)] == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_bit_reversal_is_involution(self):
        d = PermutationDestinations.bit_reversal(16)
        for v in range(16):
            assert d.sample(d.sample(v, None), None) == v

    def test_bit_reversal_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            PermutationDestinations.bit_reversal(12)


class TestPBiasedHypercube:
    @pytest.mark.parametrize("p", [0.0, 0.3, 0.5, 1.0])
    def test_pmf_sums_to_one(self, p):
        cube = Hypercube(4)
        d = PBiasedHypercubeDestinations(cube, p)
        for src in (0, 7, 15):
            assert np.isclose(d.pmf(src).sum(), 1.0)

    def test_half_is_uniform(self):
        cube = Hypercube(3)
        d = PBiasedHypercubeDestinations(cube, 0.5)
        assert np.allclose(d.pmf(5), 1 / 8)

    def test_pmf_by_hamming_distance(self):
        cube = Hypercube(3)
        p = 0.2
        d = PBiasedHypercubeDestinations(cube, p)
        pmf = d.pmf(0)
        for dst in range(8):
            k = cube.hamming_distance(0, dst)
            assert np.isclose(pmf[dst], p**k * (1 - p) ** (3 - k))

    def test_sample_matches_pmf(self, rng):
        cube = Hypercube(3)
        d = PBiasedHypercubeDestinations(cube, 0.3)
        emp = empirical_pmf(d, 5, rng, samples=6000)
        assert np.abs(emp - d.pmf(5)).max() < 0.03

    def test_extreme_p(self, rng):
        cube = Hypercube(3)
        stay = PBiasedHypercubeDestinations(cube, 0.0)
        flip = PBiasedHypercubeDestinations(cube, 1.0)
        assert stay.sample(6, rng) == 6
        assert flip.sample(6, rng) == 6 ^ 0b111


class TestGeometricStop:
    def test_pmf_sums_to_one(self):
        mesh = ArrayMesh(5)
        d = GeometricStopDestinations(mesh, 0.5)
        for src in (0, 12, 24):
            assert np.isclose(d.pmf(src).sum(), 1.0)

    def test_nearby_bias(self):
        """Closer destinations are more likely than distant ones."""
        mesh = ArrayMesh(7)
        d = GeometricStopDestinations(mesh, 0.5)
        center = mesh.node_id(3, 3)
        pmf = d.pmf(center).reshape(7, 7)
        assert pmf[3, 3] > pmf[3, 4] > pmf[3, 5]
        # The border absorbs the truncated tail, so the last two tie.
        assert pmf[3, 5] == pytest.approx(pmf[3, 6])

    def test_sample_matches_pmf(self, rng):
        mesh = ArrayMesh(4)
        d = GeometricStopDestinations(mesh, 0.5)
        src = mesh.node_id(1, 2)
        emp = empirical_pmf(d, src, rng, samples=8000)
        assert np.abs(emp - d.pmf(src)).max() < 0.025

    def test_markovian_stop_parameter_range(self):
        with pytest.raises(ValueError):
            GeometricStopDestinations(ArrayMesh(4), 0.0)
        with pytest.raises(ValueError):
            GeometricStopDestinations(ArrayMesh(4), 1.0)

    @given(st.integers(0, 24), st.floats(0.1, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_pmf_is_distribution(self, src, stop):
        mesh = ArrayMesh(5)
        d = GeometricStopDestinations(mesh, stop)
        pmf = d.pmf(src)
        assert np.all(pmf >= 0)
        assert np.isclose(pmf.sum(), 1.0)
