"""Tests for destination distributions: pmf/sample agreement and laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.destinations import (
    GeometricStopDestinations,
    MatrixDestinations,
    PBiasedHypercubeDestinations,
    UniformDestinations,
)
from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube


def empirical_pmf(dist, src, rng, samples=4000):
    counts = np.zeros(dist.num_nodes)
    for _ in range(samples):
        counts[dist.sample(src, rng)] += 1
    return counts / samples


class TestUniformDestinations:
    def test_pmf_uniform(self):
        d = UniformDestinations(9)
        assert np.allclose(d.pmf(3), 1 / 9)

    def test_sample_matches_pmf(self, rng):
        d = UniformDestinations(6)
        emp = empirical_pmf(d, 0, rng)
        assert np.abs(emp - 1 / 6).max() < 0.03

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformDestinations(0)


class TestMatrixDestinations:
    def test_pmf_rows(self):
        p = np.array([[0.5, 0.5], [0.1, 0.9]])
        d = MatrixDestinations(p)
        assert np.allclose(d.pmf(1), [0.1, 0.9])

    def test_sample_matches_pmf(self, rng):
        p = np.array([[0.2, 0.8], [0.7, 0.3]])
        d = MatrixDestinations(p)
        emp = empirical_pmf(d, 0, rng)
        assert np.abs(emp - p[0]).max() < 0.03

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MatrixDestinations(np.ones((2, 3)) / 3)

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            MatrixDestinations(np.array([[0.5, 0.6], [0.5, 0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MatrixDestinations(np.array([[1.5, -0.5], [0.5, 0.5]]))


class TestPBiasedHypercube:
    @pytest.mark.parametrize("p", [0.0, 0.3, 0.5, 1.0])
    def test_pmf_sums_to_one(self, p):
        cube = Hypercube(4)
        d = PBiasedHypercubeDestinations(cube, p)
        for src in (0, 7, 15):
            assert np.isclose(d.pmf(src).sum(), 1.0)

    def test_half_is_uniform(self):
        cube = Hypercube(3)
        d = PBiasedHypercubeDestinations(cube, 0.5)
        assert np.allclose(d.pmf(5), 1 / 8)

    def test_pmf_by_hamming_distance(self):
        cube = Hypercube(3)
        p = 0.2
        d = PBiasedHypercubeDestinations(cube, p)
        pmf = d.pmf(0)
        for dst in range(8):
            k = cube.hamming_distance(0, dst)
            assert np.isclose(pmf[dst], p**k * (1 - p) ** (3 - k))

    def test_sample_matches_pmf(self, rng):
        cube = Hypercube(3)
        d = PBiasedHypercubeDestinations(cube, 0.3)
        emp = empirical_pmf(d, 5, rng, samples=6000)
        assert np.abs(emp - d.pmf(5)).max() < 0.03

    def test_extreme_p(self, rng):
        cube = Hypercube(3)
        stay = PBiasedHypercubeDestinations(cube, 0.0)
        flip = PBiasedHypercubeDestinations(cube, 1.0)
        assert stay.sample(6, rng) == 6
        assert flip.sample(6, rng) == 6 ^ 0b111


class TestGeometricStop:
    def test_pmf_sums_to_one(self):
        mesh = ArrayMesh(5)
        d = GeometricStopDestinations(mesh, 0.5)
        for src in (0, 12, 24):
            assert np.isclose(d.pmf(src).sum(), 1.0)

    def test_nearby_bias(self):
        """Closer destinations are more likely than distant ones."""
        mesh = ArrayMesh(7)
        d = GeometricStopDestinations(mesh, 0.5)
        center = mesh.node_id(3, 3)
        pmf = d.pmf(center).reshape(7, 7)
        assert pmf[3, 3] > pmf[3, 4] > pmf[3, 5]
        # The border absorbs the truncated tail, so the last two tie.
        assert pmf[3, 5] == pytest.approx(pmf[3, 6])

    def test_sample_matches_pmf(self, rng):
        mesh = ArrayMesh(4)
        d = GeometricStopDestinations(mesh, 0.5)
        src = mesh.node_id(1, 2)
        emp = empirical_pmf(d, src, rng, samples=8000)
        assert np.abs(emp - d.pmf(src)).max() < 0.025

    def test_markovian_stop_parameter_range(self):
        with pytest.raises(ValueError):
            GeometricStopDestinations(ArrayMesh(4), 0.0)
        with pytest.raises(ValueError):
            GeometricStopDestinations(ArrayMesh(4), 1.0)

    @given(st.integers(0, 24), st.floats(0.1, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_pmf_is_distribution(self, src, stop):
        mesh = ArrayMesh(5)
        d = GeometricStopDestinations(mesh, stop)
        pmf = d.pmf(src)
        assert np.all(pmf >= 0)
        assert np.isclose(pmf.sum(), 1.0)
