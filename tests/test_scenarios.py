"""Tests for the scenario registry and its load calibration."""

import numpy as np
import pytest

from repro.core.rates import edge_rates_from_routing, lambda_for_load
from repro.scenarios import (
    Scenario,
    available_scenarios,
    build_network,
    get_scenario,
    register,
    resolve_cell,
)
from repro.sim.replication import CellSpec


class TestRegistry:
    def test_builtins_present(self):
        names = {s.name for s in available_scenarios()}
        assert {
            "uniform",
            "randomized",
            "hotspot",
            "transpose",
            "bitreversal",
            "geometric",
            "torus",
        } <= names

    def test_unknown_scenario_names_known_ones(self):
        with pytest.raises(ValueError, match="uniform"):
            get_scenario("frobnicate")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(Scenario("uniform", "dup", lambda n: None))

    def test_listing_is_sorted(self):
        names = [s.name for s in available_scenarios()]
        assert names == sorted(names)


class TestBuildNetwork:
    @pytest.mark.parametrize(
        "name,n,nodes",
        [
            ("uniform", 4, 16),
            ("randomized", 4, 16),
            ("hotspot", 4, 16),
            ("transpose", 4, 16),
            ("geometric", 4, 16),
            ("torus", 4, 16),
            ("bitreversal", 3, 8),  # n is the hypercube dimension
        ],
    )
    def test_destinations_cover_topology(self, name, n, nodes):
        net = build_network(name, n)
        assert net.destinations.num_nodes == nodes
        assert net.router.topology.num_nodes == nodes
        pmf = net.destinations.pmf(0)
        assert pmf.shape == (nodes,)
        assert np.isclose(pmf.sum(), 1.0)

    def test_hotspot_params_forwarded(self):
        net = build_network("hotspot", 4, h=0.5, hot_node=3)
        assert net.destinations.h == 0.5
        assert net.destinations.hot_node == 3

    def test_hotspot_defaults_to_center(self):
        net = build_network("hotspot", 5)
        assert net.destinations.hot_node == 12  # (2, 2) on the 5x5 mesh


class TestCalibration:
    def test_uniform_honours_conventions(self):
        for convention in ("exact", "table1"):
            spec = CellSpec(
                scenario="uniform", n=5, rho=0.8, convention=convention
            )
            rate, mask = resolve_cell(spec)
            assert rate == lambda_for_load(5, 0.8, convention)
            assert mask is None

    def test_generic_calibration_hits_target_load(self):
        """Non-standard workloads: max edge load equals rho exactly."""
        for name in ("hotspot", "transpose", "geometric", "torus"):
            spec = CellSpec(scenario=name, n=4, rho=0.7)
            rate, _ = resolve_cell(spec)
            net = build_network(name, 4)
            rates = edge_rates_from_routing(net.router, net.destinations, rate)
            assert rates.max() == pytest.approx(0.7, rel=1e-12), name

    def test_explicit_node_rate_wins(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.9, node_rate=0.01)
        rate, _ = resolve_cell(spec)
        assert rate == 0.01

    def test_saturated_mask_matches_closed_form(self):
        from repro.core.rates import array_edge_rates
        from repro.core.saturation import saturated_edge_mask
        from repro.topology.array_mesh import ArrayMesh

        spec = CellSpec(
            scenario="uniform", n=5, rho=0.9, convention="table1",
            track_saturated=True,
        )
        rate, mask = resolve_cell(spec)
        expect = saturated_edge_mask(array_edge_rates(ArrayMesh(5), rate))
        assert np.array_equal(mask, expect)

    def test_hotspot_saturates_near_hot_node(self):
        spec = CellSpec(
            scenario="hotspot", n=4, rho=0.7, track_saturated=True,
            params=(("h", 0.6),),
        )
        _, mask = resolve_cell(spec)
        net = build_network("hotspot", 4, h=0.6)
        hot = net.destinations.hot_node
        # Every saturated edge points at the hot node (its in-edges are
        # the bottleneck under heavy hot-spot mass).
        heads = {net.router.topology.edge_endpoints(e)[1] for e in np.where(mask)[0]}
        assert hot in heads
