"""Tests for the Section 5.2 higher-dimensional array analysis.

Every closed form is verified against the generic enumeration machinery
(the same cross-validation the 2-D case gets against Theorem 6).
"""

import numpy as np
import pytest

from repro.core.distances import mean_route_length
from repro.core.kd_bounds import (
    kd_asymptotic_gap_even,
    kd_boundary_rate,
    kd_capacity,
    kd_delay_upper_bound,
    kd_edge_rates,
    kd_lambda_for_load,
    kd_max_expected_remaining_distance,
    kd_mean_distance,
    kd_s_bar_even,
)
from repro.core.rates import edge_rates_from_routing
from repro.core.remaining_distance import max_expected_remaining_distance
from repro.core.saturation import (
    saturated_edge_mask,
    saturated_remaining_expectations,
)
from repro.core.upper_bound import delay_upper_bound, delay_upper_bound_generic
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyKDRouter
from repro.topology.array_mesh import KDArray


def kd_system(m, k):
    array = KDArray((m,) * k)
    return array, GreedyKDRouter(array), UniformDestinations(array.num_nodes)


class TestKDEdgeRates:
    @pytest.mark.parametrize(("m", "k"), [(3, 2), (4, 2), (3, 3), (2, 4)])
    def test_closed_form_matches_enumeration(self, m, k):
        array, router, dests = kd_system(m, k)
        lam = 0.2
        closed = kd_edge_rates(array, lam)
        generic = edge_rates_from_routing(router, dests, lam)
        assert np.allclose(closed, generic)

    def test_boundary_rate_matches_2d_theorem6(self):
        # In 2-D, the k-D formula must coincide with Theorem 6.
        from repro.core.rates import array_edge_rate

        m, lam = 7, 0.3
        for i in range(1, m):
            assert kd_boundary_rate(m, 2, lam, i) == pytest.approx(
                array_edge_rate(m, lam, 1, i, "right")
            )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            kd_edge_rates(KDArray((3, 4)), 0.1)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            kd_edge_rates(object(), 0.1)

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            kd_boundary_rate(4, 2, 0.1, 0)
        with pytest.raises(ValueError):
            kd_boundary_rate(4, 2, 0.1, 4)


class TestKDScalars:
    @pytest.mark.parametrize(("m", "k"), [(3, 2), (4, 3), (5, 2), (2, 5)])
    def test_mean_distance_matches_enumeration(self, m, k):
        _, router, dests = kd_system(m, k)
        assert mean_route_length(router, dests) == pytest.approx(
            kd_mean_distance(m, k)
        )

    def test_capacity_independent_of_k(self):
        assert kd_capacity(6, 2) == kd_capacity(6, 5) == pytest.approx(4 / 6)
        assert kd_capacity(5, 3) == pytest.approx(20 / 24)

    def test_lambda_for_load(self):
        assert kd_lambda_for_load(4, 3, 0.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            kd_lambda_for_load(4, 3, 1.0)

    def test_2d_specialisation(self):
        from repro.core.distances import mean_distance

        assert kd_mean_distance(9, 2) == pytest.approx(mean_distance(9))


class TestKDUpperBound:
    def test_2d_matches_theorem7(self):
        m, lam = 6, 0.4
        assert kd_delay_upper_bound(m, 2, lam) == pytest.approx(
            delay_upper_bound(m, lam)
        )

    @pytest.mark.parametrize(("m", "k"), [(3, 3), (4, 3), (2, 4)])
    def test_matches_generic_product_form(self, m, k):
        array, router, dests = kd_system(m, k)
        lam = 0.5 * kd_capacity(m, k)
        rates = kd_edge_rates(array, lam)
        generic = delay_upper_bound_generic(rates, lam * array.num_nodes)
        assert kd_delay_upper_bound(m, k, lam) == pytest.approx(generic)

    def test_unstable_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            kd_delay_upper_bound(4, 3, kd_capacity(4, 3))

    def test_kd_routing_is_layered(self):
        """Dimension-order routing layers the k-D array (the Lemma 2
        banding argument generalises); verified constructively."""
        from repro.core.layering import layering_from_follows, verify_layering

        _, router, _ = kd_system(3, 3)
        labels = layering_from_follows(router)
        assert labels is not None
        assert verify_layering(router, labels)


class TestKDRemainingDistance:
    @pytest.mark.parametrize(("m", "k"), [(3, 2), (4, 2), (3, 3), (2, 4)])
    def test_dbar_closed_form(self, m, k):
        _, router, dests = kd_system(m, k)
        got = max_expected_remaining_distance(router, dests)
        assert got == pytest.approx(kd_max_expected_remaining_distance(m, k))

    def test_2d_specialisation(self):
        assert kd_max_expected_remaining_distance(8, 2) == pytest.approx(7.5)


class TestKDSaturation:
    @pytest.mark.parametrize(("m", "k"), [(4, 2), (4, 3), (2, 4), (6, 2)])
    def test_sbar_even_closed_form(self, m, k):
        array, router, dests = kd_system(m, k)
        mask = saturated_edge_mask(kd_edge_rates(array, 0.1))
        s_e = saturated_remaining_expectations(router, dests, mask)
        finite = s_e[np.isfinite(s_e)]
        assert finite.max() == pytest.approx(kd_s_bar_even(m, k))

    def test_2d_recovers_paper_constants(self):
        assert kd_s_bar_even(6, 2) == 1.5
        assert kd_asymptotic_gap_even(6, 2) == 3.0

    def test_gap_is_k_plus_one(self):
        for k in (2, 3, 4, 5):
            assert kd_asymptotic_gap_even(4, k) == pytest.approx(k + 1)

    def test_odd_side_rejected(self):
        with pytest.raises(ValueError, match="even"):
            kd_s_bar_even(5, 3)
