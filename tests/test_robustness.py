"""Robustness and failure-mode tests: overload, extreme parameters, and
report plumbing."""

import numpy as np
import pytest

from repro.experiments.runner import ReportSection, render_report
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh


class TestOverload:
    def test_unstable_network_backlog_grows(self):
        """Past capacity, the in-flight count at the horizon grows with the
        horizon — the simulator degrades honestly instead of hiding it."""
        n = 4
        lam = 1.3 * 4.0 / n  # 130% of capacity
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(mesh.num_nodes)
        short = NetworkSimulation(router, dests, lam, seed=1).run(0, 400)
        long = NetworkSimulation(router, dests, lam, seed=1).run(0, 1600)
        assert long.in_flight_at_end > 1.5 * short.in_flight_at_end

    def test_littles_gap_flags_overload(self):
        n = 4
        lam = 1.3 * 4.0 / n
        mesh = ArrayMesh(n)
        res = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(16), lam, seed=2
        ).run(100, 1200)
        # The two estimators diverge badly out of equilibrium.
        assert res.littles_law_gap > 0.10


class TestExtremeParameters:
    def test_tiny_horizon_still_coherent(self):
        mesh = ArrayMesh(3)
        res = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.2, seed=3
        ).run(0, 1.0)
        assert res.generated == res.completed
        assert res.mean_number >= 0

    def test_very_light_traffic_delay_is_distance(self):
        """At vanishing load every packet sails through: T ~= n-bar."""
        from repro.core.distances import mean_distance

        n = 4
        mesh = ArrayMesh(n)
        res = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(16), 1e-3, seed=4
        ).run(0, 200_000)
        assert res.mean_delay == pytest.approx(mean_distance(n), rel=0.1)

    def test_zero_warmup(self):
        mesh = ArrayMesh(3)
        res = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3, seed=5
        ).run(0, 500)
        assert res.generated > 0

    def test_single_node_pair_traffic(self):
        """Degenerate: all traffic from one corner to the opposite one."""

        class CornerToCorner:
            num_nodes = 9

            def pmf(self, src):
                v = np.zeros(9)
                v[8] = 1.0
                return v

            def sample(self, src, rng):
                return 8

        mesh = ArrayMesh(3)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh),
            CornerToCorner(),
            0.5,
            source_nodes=[0],
            seed=6,
        )
        res = sim.run(100, 2000)
        # A single M/D/1 bottleneck chain of 4 unit hops at rho=0.5:
        # the first queue queues, later ones never do (departures are
        # spaced >= 1 apart), so T = MD1 delay + 3.
        from repro.queueing.md1 import MD1Queue

        expected = MD1Queue(0.5).mean_delay() + 3.0
        assert res.mean_delay == pytest.approx(expected, rel=0.05)

    def test_ps_with_per_edge_rates(self):
        mesh = ArrayMesh(3)
        phis = np.full(mesh.num_edges, 2.0)
        res = PSNetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(9),
            0.3,
            service_rates=phis,
            seed=7,
        ).run(100, 1000)
        assert res.generated == res.completed

    def test_slotted_tau_scaling(self):
        """tau = 0.5 halves the service time: delays shrink accordingly."""
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        coarse = SlottedNetworkSimulation(
            router, dests, 0.3, tau=1.0, seed=8
        ).run(100, 2000)
        fine = SlottedNetworkSimulation(
            router, dests, 0.3, tau=0.5, seed=8
        ).run(200, 4000)
        assert fine.mean_delay < coarse.mean_delay


class TestReportPlumbing:
    def test_render_report_sections(self):
        sections = [
            ReportSection("Good", "body-1", []),
            ReportSection("Bad", "body-2", ["claim violated"]),
        ]
        out = render_report(sections)
        assert "## Good" in out and "## Bad" in out
        assert "PASS" in out
        assert "claim violated" in out

    def test_section_render_shapes(self):
        s = ReportSection("T", "content", [])
        assert "```" in s.render()
