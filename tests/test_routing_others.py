"""Tests for randomized greedy, torus, hypercube, butterfly routing."""

import numpy as np
import pytest

from repro.routing.base import TabulatedRouter
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter, ring_step
from repro.topology.array_mesh import ArrayMesh
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus


class TestRandomizedGreedy:
    def test_canonical_path_is_row_first(self):
        mesh = ArrayMesh(4)
        rnd = RandomizedGreedyArrayRouter(mesh)
        directions = [mesh.edge_direction(e) for e in rnd.path(0, 15)]
        assert directions == ["right"] * 3 + ["down"] * 3

    def test_sample_mixes_both_orders(self, rng):
        mesh = ArrayMesh(4)
        rnd = RandomizedGreedyArrayRouter(mesh)
        seen = set()
        for _ in range(100):
            path = rnd.sample_path(0, 15, rng)
            mesh.validate_path(path, 0, 15)
            seen.add(mesh.edge_direction(path[0]))
        assert seen == {"right", "down"}

    def test_extreme_probabilities(self, rng):
        mesh = ArrayMesh(4)
        always_row = RandomizedGreedyArrayRouter(mesh, 1.0)
        always_col = RandomizedGreedyArrayRouter(mesh, 0.0)
        for _ in range(10):
            assert mesh.edge_direction(always_row.sample_path(0, 15, rng)[0]) == "right"
            assert mesh.edge_direction(always_col.sample_path(0, 15, rng)[0]) == "down"

    def test_mix_fraction_near_p(self, rng):
        mesh = ArrayMesh(4)
        rnd = RandomizedGreedyArrayRouter(mesh, 0.25)
        rows = sum(
            mesh.edge_direction(rnd.sample_path(0, 15, rng)[0]) == "right"
            for _ in range(2000)
        )
        assert 0.18 < rows / 2000 < 0.32

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandomizedGreedyArrayRouter(ArrayMesh(3), 1.5)


class TestRingStep:
    def test_same_position(self):
        assert ring_step(2, 2, 5) == 0

    def test_shorter_forward(self):
        assert ring_step(0, 1, 5) == 1

    def test_shorter_backward(self):
        assert ring_step(0, 4, 5) == -1

    def test_tie_resolves_forward(self):
        assert ring_step(0, 2, 4) == 1


class TestGreedyTorus:
    def test_all_pairs_valid_and_shortest(self):
        t = Torus(4)
        router = GreedyTorusRouter(t)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                path = router.path(s, d)
                t.validate_path(path, s, d)
                i1, j1 = t.node_coords(s)
                i2, j2 = t.node_coords(d)
                ring = lambda a, b, m: min((b - a) % m, (a - b) % m)  # noqa: E731
                assert len(path) == ring(i1, i2, 4) + ring(j1, j2, 4)

    def test_wraparound_taken_when_shorter(self):
        t = Torus(5)
        router = GreedyTorusRouter(t)
        # Column 0 -> column 4 should go left once (wrap), not right 4x.
        path = router.path(t.node_id(0, 0), t.node_id(0, 4))
        assert len(path) == 1
        assert t.edge_direction(path[0]) == "left"

    def test_column_first_variant(self):
        t = Torus(4)
        router = GreedyTorusRouter(t, column_first=True)
        path = router.path(t.node_id(0, 0), t.node_id(2, 1))
        assert t.edge_direction(path[0]) in ("down", "up")


class TestGreedyHypercube:
    def test_all_pairs_valid_and_hamming_length(self):
        cube = Hypercube(4)
        router = GreedyHypercubeRouter(cube)
        for s in range(16):
            for d in range(16):
                path = router.path(s, d)
                cube.validate_path(path, s, d)
                assert len(path) == cube.hamming_distance(s, d)

    def test_canonical_dimension_order(self):
        cube = Hypercube(4)
        router = GreedyHypercubeRouter(cube)
        dims = [cube.edge_dimension(e) for e in router.path(0b0000, 0b1111)]
        assert dims == sorted(dims) == [0, 1, 2, 3]


class TestButterflyRouter:
    def test_unique_path_properties(self):
        b = Butterfly(3)
        router = ButterflyRouter(b)
        for r1 in range(8):
            for r2 in range(8):
                path = router.path(b.node_id(0, r1), b.node_id(3, r2))
                b.validate_path(path, b.node_id(0, r1), b.node_id(3, r2))
                assert len(path) == 3

    def test_straight_when_same_row(self):
        b = Butterfly(2)
        router = ButterflyRouter(b)
        path = router.path(b.node_id(0, 2), b.node_id(2, 2))
        assert list(path) == [b.straight_edge(0, 2), b.straight_edge(1, 2)]

    def test_rejects_wrong_levels(self):
        b = Butterfly(2)
        router = ButterflyRouter(b)
        with pytest.raises(ValueError, match="level-0"):
            router.path(b.node_id(1, 0), b.node_id(2, 0))
        with pytest.raises(ValueError, match="destinations"):
            router.path(b.node_id(0, 0), b.node_id(1, 0))


class TestTabulatedRouter:
    def test_serves_table_paths(self):
        mesh = ArrayMesh(3)
        inner = {(0, 1): [mesh.edge_id(0, 1)], (0, 0): []}
        router = TabulatedRouter(mesh, inner)
        assert router.path(0, 1) == (mesh.edge_id(0, 1),)
        assert router.path(0, 0) == ()

    def test_validates_at_construction(self):
        mesh = ArrayMesh(3)
        with pytest.raises(ValueError):
            TabulatedRouter(mesh, {(0, 2): [mesh.edge_id(0, 1)]})

    def test_missing_pair_raises(self):
        router = TabulatedRouter(ArrayMesh(3), {})
        with pytest.raises(KeyError):
            router.path(0, 1)
