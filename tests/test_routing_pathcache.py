"""Tests for the shared path-cache arena (repro.routing.pathcache)."""

import numpy as np
import pytest

from repro.routing.base import TabulatedRouter
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.greedy import GreedyArrayRouter, GreedyKDRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.pathcache import (
    DENSE_NODE_LIMIT,
    KDLegCache,
    MeshLegCache,
    PathArena,
    PathCache,
    RandomizedGreedyPathCache,
    SampledPathInterner,
    TorusLegCache,
    _deterministic_builder,
    path_cache_for,
)
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.topology.array_mesh import ArrayMesh, KDArray
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus


class TestPathArena:
    def test_offsets_and_views(self):
        arena = PathArena()
        o1 = arena.add([3, 1, 4])
        o2 = arena.add((1, 5))
        assert (o1, o2) == (0, 3)
        assert arena.view(o1, 3) == (3, 1, 4)
        assert arena.view(o2, 2) == (1, 5)
        assert len(arena) == 5

    def test_as_array_tracks_growth(self):
        arena = PathArena()
        arena.add([7, 8])
        a = arena.as_array()
        assert a.dtype == np.int32 and a.tolist() == [7, 8]
        arena.add([9])
        assert arena.as_array().tolist() == [7, 8, 9]

    def test_edges_list_identity_is_stable(self):
        """Engines bind arena.edges once; growth must happen in place."""
        arena = PathArena()
        ref = arena.edges
        arena.add(list(range(100)))
        assert ref is arena.edges and len(ref) == 100


@pytest.mark.parametrize(
    "router_factory",
    [
        lambda: GreedyArrayRouter(ArrayMesh(4)),
        lambda: GreedyArrayRouter(ArrayMesh(3, 5), column_first=True),
        lambda: GreedyTorusRouter(Torus(4)),
        lambda: GreedyTorusRouter(Torus(5), column_first=True),
        lambda: GreedyTorusRouter(Torus(3, 6)),
        lambda: GreedyHypercubeRouter(Hypercube(3)),
        lambda: GreedyHypercubeRouter(Hypercube(4)),
        lambda: GreedyKDRouter(KDArray((3, 4, 2))),
        lambda: GreedyKDRouter(KDArray((3, 4, 2)), dimension_order=(2, 0, 1)),
    ],
)
def test_cache_matches_router_on_all_pairs(router_factory):
    router = router_factory()
    cache = path_cache_for(router)
    n = router.topology.num_nodes
    for s in range(n):
        for d in range(n):
            assert cache.path(s, d) == router.path(s, d), (s, d)


def test_butterfly_cache_matches_router_on_all_valid_pairs():
    """Butterfly parity over every (input, output) pair — the only pairs
    the unique-path scheme routes."""
    b = Butterfly(3)
    router = ButterflyRouter(b)
    cache = path_cache_for(router)
    for rs in range(b.rows):
        for rd in range(b.rows):
            src, dst = b.node_id(0, rs), b.node_id(b.d, rd)
            assert cache.path(src, dst) == router.path(src, dst), (rs, rd)


class TestSpecialisedBuilders:
    """path_cache_for must resolve a real specialised miss-path builder —
    not the generic router.path walk — for every shipped deterministic
    topology."""

    @pytest.mark.parametrize(
        "router_factory",
        [
            lambda: GreedyTorusRouter(Torus(4)),
            lambda: GreedyHypercubeRouter(Hypercube(3)),
            lambda: ButterflyRouter(Butterfly(2)),
            lambda: GreedyKDRouter(KDArray((3, 3, 3))),
        ],
    )
    def test_specialised_builder_is_wired(self, router_factory):
        router = router_factory()
        assert _deterministic_builder(router) is not None
        cache = path_cache_for(router)
        assert isinstance(cache, PathCache)
        assert cache._build_path != router.path  # not the generic walk

    def test_mesh_router_keeps_its_grid_walk(self):
        """The mesh routers' per-direction grid walk is already leg-shaped;
        no specialised builder overrides it."""
        router = GreedyArrayRouter(ArrayMesh(4))
        assert _deterministic_builder(router) is None

    def test_torus_leg_cache_memoizes(self):
        router = GreedyTorusRouter(Torus(5))
        legs = TorusLegCache(router)
        leg = legs.row_leg(2, 0, 4)  # wraps the short way
        assert leg == router._leg(2, 0, 4, horizontal=True)[0]
        assert legs.row_leg(2, 0, 4) is leg  # memoized object
        col = legs.col_leg(1, 4, 3)
        assert col == router._leg(1, 3, 4, horizontal=False)[0]

    def test_kd_leg_cache_memoizes_and_tracks_end_node(self):
        arr = KDArray((3, 4, 2))
        router = GreedyKDRouter(arr)
        legs = KDLegCache(arr)
        src = 0
        coords = arr.node_coords(src)
        edges, end = legs.leg(src, 1, coords[1], 3)
        assert arr.node_coords(end)[1] == 3
        assert legs.leg(src, 1, coords[1], 3) == (edges, end)  # memo hit
        # Leg edges agree with the router walking only that axis.
        dst = end
        assert tuple(edges) == router.path(src, dst)


class TestPathCache:
    def test_lazy_memoization(self):
        router = GreedyArrayRouter(ArrayMesh(3))
        cache = PathCache(router)
        assert len(cache) == 0
        off, ln = cache.offlen(0, 8)
        assert ln == len(router.path(0, 8))
        assert len(cache) == 1
        # Second lookup returns the identical view without rebuilding.
        assert cache.offlen(0, 8) == (off, ln)
        assert len(cache) == 1

    def test_precompute_all(self):
        router = GreedyArrayRouter(ArrayMesh(3))
        cache = PathCache(router, precompute=True)
        assert len(cache) == 81
        assert cache.path(2, 7) == router.path(2, 7)

    def test_shared_arena(self):
        mesh = ArrayMesh(3)
        arena = PathArena()
        a = PathCache(GreedyArrayRouter(mesh), arena=arena)
        b = PathCache(GreedyArrayRouter(mesh, column_first=True), arena=arena)
        a.offlen(0, 8)
        b.offlen(0, 8)
        assert a.arena is b.arena is arena
        assert len(arena) == 8  # two 4-hop paths, one arena

    def test_offlen_batch_dense_gather(self):
        router = GreedyArrayRouter(ArrayMesh(4))
        cache = PathCache(router)
        assert cache.num_nodes <= DENSE_NODE_LIMIT
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 16, size=50)
        dsts = rng.integers(0, 16, size=50)
        offs, lens = cache.offlen_batch(srcs, dsts)
        for s, d, off, ln in zip(srcs, dsts, offs, lens):
            assert cache.arena.view(int(off), int(ln)) == router.path(int(s), int(d))

    def test_offlen_batch_duplicate_misses_intern_once(self):
        """A batch repeating a missing pair must append the path to the
        shared append-only arena exactly once, not once per occurrence."""
        router = GreedyArrayRouter(ArrayMesh(4))
        cache = PathCache(router)
        srcs = np.array([0, 0, 0, 0])
        dsts = np.array([15, 15, 15, 15])
        offs, lens = cache.offlen_batch(srcs, dsts)
        assert len(cache.arena) == len(router.path(0, 15))
        assert set(offs.tolist()) == {0}
        assert len(cache) == 1

    def test_offlen_batch_without_dense_tables(self):
        router = GreedyArrayRouter(ArrayMesh(4))
        cache = PathCache(router)
        cache._dense_off = cache._dense_len = None  # simulate a big network
        srcs = np.array([0, 3, 7])
        dsts = np.array([15, 3, 1])
        offs, lens = cache.offlen_batch(srcs, dsts)
        for s, d, off, ln in zip(srcs, dsts, offs, lens):
            assert cache.arena.view(int(off), int(ln)) == router.path(int(s), int(d))

    def test_consumes_no_rng(self):
        cache = PathCache(GreedyArrayRouter(ArrayMesh(3)))
        assert cache.consumes_rng is False

    def test_butterfly_lazy_cache_only_touches_valid_pairs(self):
        b = Butterfly(2)
        router = ButterflyRouter(b)
        cache = path_cache_for(router)
        src, dst = b.node_id(0, 0), b.node_id(2, 3)
        assert cache.path(src, dst) == router.path(src, dst)
        with pytest.raises(ValueError):
            cache.path(dst, src)  # invalid pairs still raise via the router


class TestMeshLegCache:
    def test_legs_match_router_legs(self):
        router = GreedyArrayRouter(ArrayMesh(4, 6))
        legs = MeshLegCache(router)
        assert legs.row_leg(2, 1, 5) == router._row_leg(2, 1, 5)
        assert legs.row_leg(2, 5, 1) == router._row_leg(2, 5, 1)
        assert legs.col_leg(0, 3, 2) == router._col_leg(0, 3, 2)
        # Memoized: the same list object comes back.
        assert legs.row_leg(2, 1, 5) is legs.row_leg(2, 1, 5)


class TestRandomizedGreedyPathCache:
    def test_both_tables_match_the_two_orders(self):
        mesh = ArrayMesh(4)
        router = RandomizedGreedyArrayRouter(mesh)
        cache = RandomizedGreedyPathCache(router)
        rf = GreedyArrayRouter(mesh, column_first=False)
        cf = GreedyArrayRouter(mesh, column_first=True)
        for s in range(16):
            for d in range(16):
                assert cache.row_first.path(s, d) == rf.path(s, d)
                assert cache.col_first.path(s, d) == cf.path(s, d)

    def test_coin_draw_matches_uncached_router(self):
        """sample_offlen consumes exactly the rng.random() the uncached
        scheme consumes, and picks the same order."""
        mesh = ArrayMesh(4)
        router = RandomizedGreedyArrayRouter(mesh, row_first_probability=0.3)
        cache = RandomizedGreedyPathCache(router)
        a = np.random.default_rng(42)
        b = np.random.default_rng(42)
        for s, d in [(0, 15), (3, 12), (5, 5), (1, 2)] * 10:
            off, ln = cache.sample_offlen(s, d, a)
            assert cache.arena.view(off, ln) == router.sample_path(s, d, b)
        # Streams advanced identically.
        assert a.random() == b.random()

    def test_batch_coins_match_scalar_coins(self):
        mesh = ArrayMesh(4)
        router = RandomizedGreedyArrayRouter(mesh, row_first_probability=0.5)
        cache = RandomizedGreedyPathCache(router)
        rng = np.random.default_rng(7)
        srcs = rng.integers(0, 16, size=200)
        dsts = rng.integers(0, 16, size=200)
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        offs, lens = cache.sample_offlen_batch(srcs, dsts, a)
        for i, (s, d) in enumerate(zip(srcs.tolist(), dsts.tolist())):
            want = cache.sample_offlen(s, d, b)
            assert (int(offs[i]), int(lens[i])) == want

    def test_shared_arena_across_tables(self):
        cache = RandomizedGreedyPathCache(RandomizedGreedyArrayRouter(ArrayMesh(3)))
        assert cache.row_first.arena is cache.arena
        assert cache.col_first.arena is cache.arena


class TestSampledPathInterner:
    def test_rebuilds_but_interns(self):
        router = GreedyArrayRouter(ArrayMesh(3))
        interner = SampledPathInterner(router)
        rng = np.random.default_rng(0)
        ol1 = interner.sample_offlen(0, 8, rng)
        ol2 = interner.sample_offlen(0, 8, rng)
        assert ol1 == ol2  # same arena slot, no duplicate storage
        assert interner.arena.view(*ol1) == router.path(0, 8)

    def test_preserves_randomized_stream(self):
        mesh = ArrayMesh(3)
        router = RandomizedGreedyArrayRouter(mesh)
        interner = SampledPathInterner(router)
        a = np.random.default_rng(1)
        b = np.random.default_rng(1)
        for _ in range(20):
            ol = interner.sample_offlen(0, 8, a)
            assert interner.arena.view(*ol) == router.sample_path(0, 8, b)
        assert a.random() == b.random()


class TestPathCacheFor:
    def test_dispatch(self):
        mesh = ArrayMesh(3)
        assert isinstance(path_cache_for(GreedyArrayRouter(mesh)), PathCache)
        assert isinstance(
            path_cache_for(RandomizedGreedyArrayRouter(mesh)),
            RandomizedGreedyPathCache,
        )

        class WeirdRouter:
            """Structurally a Router but unknown to the cache layer."""

            def __init__(self, topology):
                self.topology = topology

            def path(self, src, dst):
                return (0,) if src != dst else ()

            def sample_path(self, src, dst, rng):
                return self.path(src, dst)

        assert isinstance(
            path_cache_for(WeirdRouter(LinearArray(2))), SampledPathInterner
        )

    def test_tabulated_router_is_deterministic(self):
        line = LinearArray(2)
        router = TabulatedRouter(
            line, {(0, 1): [0], (1, 0): [1], (0, 0): [], (1, 1): []}
        )
        cache = path_cache_for(router)
        assert isinstance(cache, PathCache)
        assert cache.path(0, 1) == (0,)
