"""Tests for the Theorem 7 upper bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import mean_distance
from repro.core.rates import array_edge_rates, lambda_for_load
from repro.core.upper_bound import (
    delay_upper_bound,
    delay_upper_bound_generic,
    number_upper_bound,
    number_upper_bound_generic,
)
from repro.topology.array_mesh import ArrayMesh


class TestTheorem7ClosedForm:
    def test_paper_display_formula(self):
        """(1/(lam n^2)) sum_e lam_e/(1-lam_e) equals the displayed
        (4/(lam n)) sum_i 1/(n/(lam i(n-i)) - 1)."""
        n, lam = 9, 0.3
        displayed = (4.0 / (lam * n)) * sum(
            1.0 / ((n / (lam * i * (n - i))) - 1.0) for i in range(1, n)
        )
        assert delay_upper_bound(n, lam) == pytest.approx(displayed)

    def test_generic_matches_closed_form(self):
        n, lam = 6, 0.4
        mesh = ArrayMesh(n)
        rates = array_edge_rates(mesh, lam)
        assert delay_upper_bound_generic(rates, lam * n * n) == pytest.approx(
            delay_upper_bound(n, lam)
        )
        assert number_upper_bound_generic(rates) == pytest.approx(
            number_upper_bound(n, lam)
        )

    def test_unstable_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            delay_upper_bound(6, 4.0 / 6)

    def test_zero_rate_number(self):
        assert number_upper_bound(5, 0.0) == 0.0

    @given(st.integers(2, 15), st.floats(0.05, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_above_trivial_bound(self, n, rho):
        """The upper bound must exceed the mean distance n-bar."""
        lam = lambda_for_load(n, rho, "exact")
        assert delay_upper_bound(n, lam) > mean_distance(n) * 0.999

    @given(st.integers(2, 12), st.floats(0.05, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_load(self, n, rho):
        lam = lambda_for_load(n, rho, "exact")
        assert delay_upper_bound(n, lam * 1.05) > delay_upper_bound(n, lam)

    def test_blows_up_near_capacity(self):
        n = 8
        t1 = delay_upper_bound(n, lambda_for_load(n, 0.99))
        t2 = delay_upper_bound(n, lambda_for_load(n, 0.999))
        assert t2 > 5 * t1

    def test_light_traffic_limit(self):
        """As lam -> 0 the bound tends to n-bar + (light MM1 correction)."""
        n = 10
        t = delay_upper_bound(n, 1e-9)
        assert t == pytest.approx(mean_distance(n), rel=1e-6)
