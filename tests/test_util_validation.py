"""Unit tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_in_range,
    check_load,
    check_positive,
    check_probability,
    check_side,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive(0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_rejects_negative_even_when_not_strict(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            check_positive(-1.0, strict=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_positive("3")

    def test_rejects_bool(self):
        # bools are ints in Python; we refuse them as rates.
        with pytest.raises(TypeError):
            check_positive(True)

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="lam"):
            check_positive(-1, "lam")

    def test_coerces_int_to_float(self):
        out = check_positive(3)
        assert isinstance(out, float) and out == 3.0


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_open_interval_rejects_bounds(self):
        with pytest.raises(ValueError):
            check_probability(0.0, open_interval=True)
        with pytest.raises(ValueError):
            check_probability(1.0, open_interval=True)
        assert check_probability(0.5, open_interval=True) == 0.5


class TestCheckLoad:
    def test_accepts_zero(self):
        assert check_load(0.0) == 0.0

    def test_rejects_one(self):
        with pytest.raises(ValueError, match="stable"):
            check_load(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_load(-0.2)

    def test_accepts_heavy_load(self):
        assert check_load(0.999) == 0.999


class TestCheckSide:
    def test_accepts_min(self):
        assert check_side(2) == 2

    def test_rejects_below_min(self):
        with pytest.raises(ValueError):
            check_side(1)

    def test_custom_minimum(self):
        assert check_side(3, minimum=3) == 3
        with pytest.raises(ValueError):
            check_side(2, minimum=3)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_side(4.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_side(True)


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range(1.0, 1.0, 2.0) == 1.0
        assert check_in_range(2.0, 1.0, 2.0) == 2.0

    def test_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, 1.0, 2.0, inclusive=False)
        assert check_in_range(1.5, 1.0, 2.0, inclusive=False) == 1.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(3.0, 1.0, 2.0)
