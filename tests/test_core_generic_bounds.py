"""Tests for the topology-generic bound assembly."""

import numpy as np
import pytest

from repro.core.generic_bounds import generic_bounds
from repro.core.lower_bounds import bound_summary
from repro.core.rates import lambda_for_load
from repro.routing.destinations import (
    PBiasedHypercubeDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus


class TestAgainstArrayClosedForms:
    @pytest.mark.parametrize(("n", "rho"), [(4, 0.5), (5, 0.8), (6, 0.9)])
    def test_matches_array_bound_summary(self, n, rho):
        """The generic machinery must reproduce the array closed forms."""
        lam = lambda_for_load(n, rho, "exact")
        mesh = ArrayMesh(n)
        gb = generic_bounds(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes), lam
        )
        b = bound_summary(n, lam)
        assert gb.upper == pytest.approx(b.upper)
        assert gb.lower_copy == pytest.approx(b.lower_copy)
        assert gb.lower_markov == pytest.approx(b.lower_markov)
        assert gb.lower_saturated == pytest.approx(b.lower_saturated)
        assert gb.lower_trivial == pytest.approx(b.lower_trivial)
        assert gb.d_max == 2 * (n - 1)
        assert gb.d_bar == pytest.approx(n - 0.5)
        assert gb.network_load == pytest.approx(rho)

    def test_consistency_flag(self):
        mesh = ArrayMesh(4)
        gb = generic_bounds(
            GreedyArrayRouter(mesh), UniformDestinations(16), 0.3
        )
        assert gb.is_consistent()
        assert gb.lower_best <= gb.upper


class TestTorus:
    def test_no_upper_bound_when_not_layered(self):
        torus = Torus(4)
        router = GreedyTorusRouter(torus)
        dests = UniformDestinations(torus.num_nodes)
        gb = generic_bounds(
            router, dests, 0.1, layered=False, markovian=False
        )
        assert gb.upper is None
        assert gb.lower_markov is None
        assert gb.lower_copy > 0
        assert gb.lower_saturated > 0
        assert gb.is_consistent()  # vacuous without an upper bound

    def test_torus_mean_distance_halved(self):
        """Wraparound halves per-axis distances vs the open array."""
        torus = Torus(6)
        gb = generic_bounds(
            GreedyTorusRouter(torus),
            UniformDestinations(torus.num_nodes),
            0.05,
            layered=False,
            markovian=False,
        )
        # mean ring distance on a 6-ring = (0+1+1+2+2+3)/6 = 1.5 per axis.
        assert gb.mean_distance == pytest.approx(3.0)


class TestHypercube:
    def test_matches_section_45_closed_forms(self):
        from repro.core.hypercube_bounds import (
            hypercube_delay_upper_bound,
            hypercube_markov_lower_bound,
        )

        d, p, rho = 4, 0.5, 0.6
        lam = rho / p
        cube = Hypercube(d)
        gb = generic_bounds(
            GreedyHypercubeRouter(cube),
            PBiasedHypercubeDestinations(cube, p),
            lam,
        )
        assert gb.upper == pytest.approx(hypercube_delay_upper_bound(d, lam, p))
        assert gb.lower_markov == pytest.approx(
            hypercube_markov_lower_bound(d, lam, p)
        )
        assert gb.d_bar == pytest.approx(1 + p * (d - 1))
        assert gb.mean_distance == pytest.approx(d * p)
        # Every hypercube edge is saturated by symmetry.
        assert gb.s_max == gb.d_max == d


class TestValidation:
    def test_unstable_raises(self):
        mesh = ArrayMesh(4)
        with pytest.raises(ValueError, match="unstable"):
            generic_bounds(
                GreedyArrayRouter(mesh), UniformDestinations(16), 1.0
            )

    def test_rate_sequence_mismatch(self):
        mesh = ArrayMesh(4)
        with pytest.raises(ValueError):
            generic_bounds(
                GreedyArrayRouter(mesh),
                UniformDestinations(16),
                [0.1, 0.1],
                source_nodes=[0, 1, 2],
            )

    def test_zero_rate_rejected(self):
        mesh = ArrayMesh(4)
        with pytest.raises(ValueError):
            generic_bounds(
                GreedyArrayRouter(mesh),
                UniformDestinations(16),
                [0.0],
                source_nodes=[0],
            )
