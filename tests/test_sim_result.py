"""Tests for the SimResult record's derived quantities."""

import math

from repro.sim.result import SimResult


def make_result(**overrides):
    base = dict(
        warmup=10.0,
        horizon=100.0,
        seed=0,
        generated=100,
        completed=100,
        zero_hop=5,
        in_flight_at_end=3,
        mean_number=20.0,
        mean_remaining=60.0,
        mean_remaining_saturated=10.0,
        mean_delay=4.0,
        delay_half_width=0.2,
        mean_delay_littles=4.1,
        total_rate=5.0,
    )
    base.update(overrides)
    return SimResult(**base)


class TestRatios:
    def test_r(self):
        assert make_result().r == 3.0

    def test_r_saturated(self):
        assert make_result().r_saturated == 0.5

    def test_nan_when_empty(self):
        res = make_result(mean_number=0.0)
        assert math.isnan(res.r)
        assert math.isnan(res.r_saturated)


class TestLittlesGap:
    def test_small_gap(self):
        assert make_result().littles_law_gap < 0.03

    def test_zero_for_exact(self):
        assert make_result(mean_delay_littles=4.0).littles_law_gap == 0.0

    def test_relative_scaling(self):
        res = make_result(mean_delay=8.0, mean_delay_littles=4.0)
        assert res.littles_law_gap == 0.5


class TestSummaryLine:
    def test_contains_key_numbers(self):
        line = make_result().summary_line()
        assert "T=4.000" in line
        assert "r=3.000" in line
        assert "packets=100" in line
