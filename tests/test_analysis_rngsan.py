"""Tests for rngsan, the runtime determinism sanitizer.

Covers the four contracts: tracing is draw-stream transparent (traced
runs return bit-identical results), traces round-trip through disk, the
differ localizes an *injected* divergence to the first divergent draw's
callsite, and the ``REPRO_RNGSAN=1`` environment activation records
through :func:`repro.sim.rng.make_rng` without any engine opting in.
"""

import json

import pytest

from repro.analysis import rngsan
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim import rng as simrng
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.kernels import python_backend
from repro.topology.array_mesh import ArrayMesh


def _run_cell(seed=7, rate=0.12):
    """One small deterministic-service FIFO cell (the fifo engine)."""
    mesh = ArrayMesh(5)
    sim = NetworkSimulation(
        GreedyArrayRouter(mesh), UniformDestinations(25), rate, seed=seed
    )
    return sim.run(5.0, 60.0)


def _result_key(res):
    return (res.generated, res.completed, res.mean_delay, res.mean_number)


# -- tracing transparency ----------------------------------------------

def test_traced_run_is_bit_identical_to_untraced():
    plain = _run_cell()
    with rngsan.trace(label="transparency") as tracer:
        traced = _run_cell()
    assert tracer.draws  # something was recorded...
    assert _result_key(traced) == _result_key(plain)  # ...invisibly


def test_trace_restores_factory_and_supports_nesting():
    assert simrng._FACTORY is None
    with rngsan.trace(outer=1) as outer:
        with rngsan.trace(inner=1) as inner:
            _run_cell()
        # Leaving the inner block restores the *outer* tracer, not None.
        assert simrng._FACTORY == outer.make
    assert simrng._FACTORY is None
    assert inner.draws and not outer.draws


def test_tracer_records_generator_metadata():
    with rngsan.trace(cell="meta") as tracer:
        _run_cell(seed=7)
    trace = tracer.to_trace()
    assert trace.meta["cell"] == "meta"
    gens = trace.meta["generators"]
    assert len(gens) == 1
    assert gens[0]["seed"] == "7"
    assert gens[0]["engine"] == "fifo"
    assert gens[0]["backend"] == "python"
    assert gens[0]["start"] == 0


# -- round-trip and diff ------------------------------------------------

def test_trace_roundtrip(tmp_path):
    with rngsan.trace(cell="roundtrip") as tracer:
        _run_cell()
    trace = tracer.to_trace()
    path = trace.save(tmp_path / "a.trace")
    loaded = rngsan.Trace.load(path)
    assert loaded.draws == trace.draws
    assert loaded.meta == trace.meta


def test_identical_runs_have_no_divergence():
    with rngsan.trace() as ta:
        _run_cell()
    with rngsan.trace() as tb:
        _run_cell()
    assert rngsan.first_divergence(ta.to_trace(), tb.to_trace()) is None


def test_injected_divergence_localized_to_callsite(monkeypatch, tmp_path):
    """The acceptance check: shrink the kernel's RNG block size in one of
    two otherwise-identical runs and rngsan must name the first divergent
    draw — an exponential block drawn inside python_backend.py."""
    with rngsan.trace() as ta:
        _run_cell()
    monkeypatch.setattr(python_backend, "_BLOCK", 512)
    with rngsan.trace() as tb:
        _run_cell()
    a, b = ta.to_trace(), tb.to_trace()
    div = rngsan.first_divergence(a, b)
    assert div is not None
    assert div.a[0] == "exponential" and div.b[0] == "exponential"
    assert {div.a[1], div.b[1]} == {8192, 512}
    assert "python_backend.py" in div.a[2]
    rendered = div.render()
    assert "exponential" in rendered and "python_backend.py" in rendered


def test_length_only_divergence_reported_at_stream_end():
    a = rngsan.Trace(draws=[["random", None, "x.py:1"]])
    b = rngsan.Trace(draws=[])
    div = rngsan.first_divergence(a, b)
    assert div is not None and div.index == 0
    assert div.a == ["random", None, "x.py:1"] and div.b is None
    assert "<stream ended>" in div.render()


def test_trace_version_mismatch_rejected(tmp_path):
    bad = tmp_path / "bad.trace"
    bad.write_text(json.dumps({"version": 99, "meta": {}, "draws": []}))
    with pytest.raises(ValueError, match="version"):
        rngsan.Trace.load(bad)


# -- the diff CLI -------------------------------------------------------

def _save_pair(tmp_path, monkeypatch=None):
    with rngsan.trace() as ta:
        _run_cell()
    if monkeypatch is not None:
        monkeypatch.setattr(python_backend, "_BLOCK", 512)
    with rngsan.trace() as tb:
        _run_cell()
    pa = ta.to_trace().save(tmp_path / "a.trace")
    pb = tb.to_trace().save(tmp_path / "b.trace")
    return str(pa), str(pb)


def test_diff_cli_identical_exits_zero(tmp_path, capsys):
    pa, pb = _save_pair(tmp_path)
    assert rngsan.main(["diff", pa, pb]) == 0
    assert "identical draw streams" in capsys.readouterr().out


def test_diff_cli_divergence_exits_one_and_names_callsite(
    tmp_path, monkeypatch, capsys
):
    pa, pb = _save_pair(tmp_path, monkeypatch)
    assert rngsan.main(["diff", pa, pb]) == 1
    out = capsys.readouterr().out
    assert "streams diverge" in out
    assert "exponential" in out
    assert "python_backend.py" in out


def test_diff_cli_json(tmp_path, monkeypatch, capsys):
    pa, pb = _save_pair(tmp_path, monkeypatch)
    assert rngsan.main(["diff", pa, pb, "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["identical"] is False
    assert report["divergence"]["a"][0] == "exponential"
    capsys.readouterr()
    assert rngsan.main(["diff", pa, pa, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["identical"] is True and report["divergence"] is None


def test_diff_cli_missing_file_exits_two(tmp_path, capsys):
    assert rngsan.main(
        ["diff", str(tmp_path / "no.trace"), str(tmp_path / "nope.trace")]
    ) == 2
    assert "error" in capsys.readouterr().err


# -- environment activation (REPRO_RNGSAN=1) ----------------------------

def test_env_activation_records_and_flushes(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RNGSAN", "1")
    monkeypatch.setenv("REPRO_RNGSAN_DIR", str(tmp_path))
    monkeypatch.setattr(rngsan, "_ENV_TRACER", None)
    try:
        plain = _run_cell()  # make_rng lazily installs the env tracer
        path = rngsan.flush_env_tracer()
        assert path is not None and path.exists()
        trace = rngsan.Trace.load(path)
        assert trace.meta["source"] == "REPRO_RNGSAN"
        assert trace.meta["generators"][0]["engine"] == "fifo"
        assert trace.draws
        # Env tracing is transparent too.
        assert _result_key(plain) == _result_key(_run_cell())
    finally:
        simrng.uninstall_factory()


def test_flush_is_noop_without_draws(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RNGSAN_DIR", str(tmp_path))
    monkeypatch.setattr(rngsan, "_ENV_TRACER", None)
    assert rngsan.flush_env_tracer() is None
    assert not (tmp_path / "rngsan.trace").exists()


def test_no_env_no_factory():
    monkey_free = _run_cell()  # plain path: no factory ever installed
    assert simrng._FACTORY is None
    assert monkey_free.generated > 0
