"""Shared fixtures: small canonical networks used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh


@pytest.fixture
def mesh4() -> ArrayMesh:
    """A 4x4 (even-sided) mesh."""
    return ArrayMesh(4)


@pytest.fixture
def mesh5() -> ArrayMesh:
    """A 5x5 (odd-sided) mesh."""
    return ArrayMesh(5)


@pytest.fixture
def router4(mesh4) -> GreedyArrayRouter:
    """Greedy router on the 4x4 mesh."""
    return GreedyArrayRouter(mesh4)


@pytest.fixture
def router5(mesh5) -> GreedyArrayRouter:
    """Greedy router on the 5x5 mesh."""
    return GreedyArrayRouter(mesh5)


@pytest.fixture
def uniform4(mesh4) -> UniformDestinations:
    """Uniform destinations on the 4x4 mesh."""
    return UniformDestinations(mesh4.num_nodes)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for sampling tests."""
    return np.random.default_rng(12345)
