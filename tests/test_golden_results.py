"""Golden-result regression tests: same-seed bit-identity of both engines.

The fixtures in ``tests/golden/engine_results.json`` were generated from
the *pre-path-cache* engines (see ``tests/golden/regen.py``). Every cell
must reproduce them exactly — not approximately — on the current engines:
the path-cache arena, the monotone-merge event loop, the vectorized slot
kernels and any future hot-path work are only admissible if the RNG draw
order, event ordering and floating-point accumulation order all stay
observably unchanged. A single ulp of drift fails these tests.
"""

import json
import math
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "golden"))
from regen import FLOAT_FIELDS, build_cases  # noqa: E402

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "engine_results.json")


@pytest.fixture(scope="module")
def fresh():
    """All golden cells re-simulated on the current engines."""
    return build_cases()


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _cell_names():
    with open(GOLDEN_PATH) as fh:
        return sorted(json.load(fh))


@pytest.mark.parametrize("name", _cell_names())
def test_cell_bit_identical(name, golden, fresh):
    """Every recorded field matches exactly (ints, float bit patterns, and
    the utilization checksum where tracked)."""
    want, got = golden[name], fresh[name]
    assert set(got) == set(want), f"{name}: recorded field set changed"
    for field, w in want.items():
        assert got[field] == w, (
            f"{name}.{field}: expected {w}, got {got[field]} "
            f"(bit-level drift)"
        )


def test_fixture_covers_all_five_engines(golden):
    """The acceptance scenarios are pinned for every engine, including
    the PR-3-ported rushed and PS simulators, the finite-buffer loss
    engine (both the buffer_size=None fifo-identity cells and nonzero
    drop cells), the legacy slotted draw order (batch_rng=False, the
    *_compat cells) and the declarative facade path (the api_* cells)."""
    names = set(golden)
    for required in (
        "event_uniform_det",
        "event_hotspot",
        "slotted_uniform",
        "slotted_hotspot",
        "slotted_maxima",
        "slotted_uniform_compat",
        "slotted_hotspot_compat",
        "slotted_randomized_compat",
        "rushed_uniform",
        "rushed_peredge_service",
        "rushed_sat_maxima",
        "ps_uniform",
        "ps_hotspot",
        "finite_none_uniform",
        "finite_none_exp",
        "finite_uniform_k0",
        "finite_hotspot_k1",
        "finite_peredge_k1",
        "finite_sat_k1",
        "api_fifo_uniform",
        "api_rushed_uniform",
        "api_ps_hotspot",
        "api_slotted_uniform_compat",
        "api_finite_hotspot_k1",
    ):
        assert required in names


def test_api_cells_match_direct_cells(golden):
    """The declarative facade (CellSpec -> registry -> ReplicationEngine)
    is a pure dispatch layer: a cell reached through it is bit-identical
    to the same cell built by hand (same constructor args, same seed)."""
    for api, direct in (
        ("api_fifo_uniform", "event_uniform_det"),
        ("api_rushed_uniform", "rushed_uniform"),
        ("api_ps_hotspot", "ps_hotspot"),
        ("api_slotted_uniform_compat", "slotted_uniform_compat"),
        ("api_finite_hotspot_k1", "finite_hotspot_k1"),
    ):
        assert golden[api] == golden[direct], (api, direct)


def test_finite_none_cells_match_fifo_cells(golden):
    """The finite engine with buffer_size=None is the FIFO engine,
    bit-for-bit: the finite_none_* cells use the exact constructor args
    of their event_* twins and must encode identically (in particular,
    no drop fields appear — node_drops is None on the delegated path)."""
    for fin, fifo in (
        ("finite_none_uniform", "event_uniform_det"),
        ("finite_none_exp", "event_uniform_exp"),
    ):
        assert "dropped" not in golden[fin], fin
        assert golden[fin] == golden[fifo], (fin, fifo)


def test_finite_cells_pin_nonzero_drops(golden):
    """At least two scenarios (uniform and hotspot) pin nonzero drop
    counts, and every finite cell conserves packets:
    completed + dropped == generated."""
    droppers = ("finite_uniform_k0", "finite_hotspot_k1",
                "finite_peredge_k1", "finite_sat_k1")
    for name in droppers:
        cell = golden[name]
        assert cell["dropped"] > 0, name
        assert cell["dropped"] == cell["node_drops_sum"], name
        assert cell["completed"] + cell["dropped"] == cell["generated"], name


def test_rushed_options_leave_base_stats_unchanged(golden):
    """rushed_sat_maxima runs the exact workload of rushed_uniform with
    the new tracking options on: every base statistic must match
    bit-for-bit (the options add observers, not behaviour), while the
    tracked fields become real values."""
    base, tracked = golden["rushed_uniform"], golden["rushed_sat_maxima"]
    option_fields = {"mean_remaining_saturated", "max_delay",
                     "max_queue_length"}
    for field, value in base.items():
        if field in option_fields:
            continue
        assert tracked[field] == value, field
    assert base["mean_remaining_saturated"] == "nan"
    assert tracked["mean_remaining_saturated"] != "nan"
    assert base["max_queue_length"] == -1
    assert tracked["max_queue_length"] >= 0
    assert tracked["max_delay"] != "nan"


def test_fixture_floats_are_exact_hex(golden):
    """Fixtures store float bit patterns, not decimal approximations."""
    for name, fields in golden.items():
        for field in FLOAT_FIELDS:
            v = fields[field]
            if v != "nan":
                assert float.fromhex(v) == float.fromhex(v)  # parses
                assert "0x" in v


def test_cached_and_uncached_engines_agree():
    """use_path_cache=False replays the pre-cache per-packet rebuild and
    must produce the exact same trajectory."""
    from repro.routing.destinations import HotSpotDestinations
    from repro.routing.greedy import GreedyArrayRouter
    from repro.sim.fifo_network import NetworkSimulation
    from repro.topology.array_mesh import ArrayMesh

    mesh = ArrayMesh(4)
    router = GreedyArrayRouter(mesh)
    dests = HotSpotDestinations(16, hot_node=5, h=0.3)
    runs = [
        NetworkSimulation(
            router, dests, 0.1, seed=3, use_path_cache=flag
        ).run(10, 120, track_maxima=True)
        for flag in (True, False)
    ]
    a, b = runs
    for field in ("generated", "completed", "zero_hop", "mean_number",
                  "mean_remaining", "mean_delay", "delay_half_width",
                  "max_delay", "max_queue_length"):
        va, vb = getattr(a, field), getattr(b, field)
        assert va == vb or (math.isnan(va) and math.isnan(vb)), field


def test_shared_cache_state_does_not_leak_into_results():
    """A warm shared cache (replication pattern) changes nothing."""
    from repro.routing.destinations import UniformDestinations
    from repro.routing.greedy import GreedyArrayRouter
    from repro.routing.pathcache import path_cache_for
    from repro.sim.fifo_network import NetworkSimulation
    from repro.sim.slotted import SlottedNetworkSimulation
    from repro.topology.array_mesh import ArrayMesh

    mesh = ArrayMesh(4)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(16)
    shared = path_cache_for(router)
    # Warm the cache with a different seed first.
    NetworkSimulation(router, dests, 0.2, seed=99, path_cache=shared).run(5, 60)
    warm = NetworkSimulation(
        router, dests, 0.2, seed=5, path_cache=shared
    ).run(5, 60)
    cold = NetworkSimulation(router, dests, 0.2, seed=5).run(5, 60)
    assert warm.mean_delay == cold.mean_delay
    assert warm.mean_number == cold.mean_number

    SlottedNetworkSimulation(
        router, dests, 0.2, seed=99, path_cache=shared
    ).run(5, 60)
    warm_s = SlottedNetworkSimulation(
        router, dests, 0.2, seed=5, path_cache=shared
    ).run(5, 60)
    cold_s = SlottedNetworkSimulation(router, dests, 0.2, seed=5).run(5, 60)
    assert warm_s.mean_delay == cold_s.mean_delay
    assert warm_s.mean_number == cold_s.mean_number


def test_calendar_queue_matches_heap_queue_exactly():
    """The calendar queue is a pure data-structure swap for the heap in
    the stochastic-service loop: identical pop order, identical outputs."""
    from repro.routing.destinations import UniformDestinations
    from repro.routing.greedy import GreedyArrayRouter
    from repro.sim.fifo_network import NetworkSimulation
    from repro.topology.array_mesh import ArrayMesh

    mesh = ArrayMesh(4)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(16)
    runs = [
        NetworkSimulation(
            router, dests, 0.25, service="exponential", seed=19, event_queue=kind
        ).run(10, 150, track_maxima=True, collect_delays=True)
        for kind in ("calendar", "heap")
    ]
    cal, heap = runs
    assert cal.mean_number == heap.mean_number
    assert cal.mean_remaining == heap.mean_remaining
    assert cal.mean_delay == heap.mean_delay
    assert cal.max_delay == heap.max_delay
    assert cal.max_queue_length == heap.max_queue_length
    assert cal.delays.tolist() == heap.delays.tolist()


def test_rushed_merge_loop_matches_event_queue_loop_exactly():
    """The rushed engine's monotone-merge loop replays the event-queue
    loop's (time, seq) order exactly (same contract as the FIFO engine)."""
    from repro.routing.destinations import UniformDestinations
    from repro.routing.greedy import GreedyArrayRouter
    from repro.sim.rushed_network import RushedNetworkSimulation
    from repro.topology.array_mesh import ArrayMesh

    mesh = ArrayMesh(4)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(16)

    merge = RushedNetworkSimulation(router, dests, 0.25, seed=11)
    assert merge._uniform_service
    res_merge = merge.run(10, 150)

    results = []
    for kind in ("calendar", "heap"):
        forced = RushedNetworkSimulation(
            router, dests, 0.25, seed=11, event_queue=kind
        )
        forced._uniform_service = False  # force the event-queue loop
        results.append(forced.run(10, 150))

    for res in results:
        assert res_merge.mean_number == res.mean_number
        assert res_merge.mean_delay == res.mean_delay
        assert res_merge.delay_half_width == res.delay_half_width
        assert res_merge.utilization.tolist() == res.utilization.tolist()


def test_merge_loop_matches_heap_loop_exactly():
    """The monotone-merge event loop is a pure data-structure swap: forcing
    the same workload through the heap loop reproduces every statistic
    bit-for-bit (same events, same order, same arithmetic)."""
    from repro.routing.destinations import UniformDestinations
    from repro.routing.greedy import GreedyArrayRouter
    from repro.sim.fifo_network import NetworkSimulation
    from repro.topology.array_mesh import ArrayMesh

    mesh = ArrayMesh(4)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(16)

    merge = NetworkSimulation(router, dests, 0.25, seed=11)
    assert merge._uniform_service
    res_merge = merge.run(10, 150, track_maxima=True, collect_delays=True)

    heap = NetworkSimulation(router, dests, 0.25, seed=11)
    heap._uniform_service = False  # force the general heap loop
    res_heap = heap.run(10, 150, track_maxima=True, collect_delays=True)

    assert res_merge.mean_number == res_heap.mean_number
    assert res_merge.mean_remaining == res_heap.mean_remaining
    assert res_merge.mean_delay == res_heap.mean_delay
    assert res_merge.delay_half_width == res_heap.delay_half_width
    assert res_merge.max_delay == res_heap.max_delay
    assert res_merge.max_queue_length == res_heap.max_queue_length
    assert res_merge.delays.tolist() == res_heap.delays.tolist()
