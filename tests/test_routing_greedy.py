"""Unit and property tests for greedy array routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.greedy import GreedyArrayRouter, GreedyKDRouter
from repro.topology.array_mesh import ArrayMesh, KDArray


class TestGreedyArrayRouter:
    def test_empty_path_for_same_node(self, router4):
        assert router4.path(5, 5) == ()

    def test_row_first_order(self):
        """The paper's scheme: all row edges precede all column edges."""
        mesh = ArrayMesh(5)
        router = GreedyArrayRouter(mesh)
        src, dst = mesh.node_id(0, 0), mesh.node_id(3, 4)
        path = router.path(src, dst)
        directions = [mesh.edge_direction(e) for e in path]
        # 4 horizontal then 3 vertical.
        assert directions == ["right"] * 4 + ["down"] * 3

    def test_column_first_order(self):
        mesh = ArrayMesh(5)
        router = GreedyArrayRouter(mesh, column_first=True)
        src, dst = mesh.node_id(0, 0), mesh.node_id(3, 4)
        directions = [mesh.edge_direction(e) for e in router.path(src, dst)]
        assert directions == ["down"] * 3 + ["right"] * 4

    def test_all_pairs_valid_and_shortest(self, mesh4, router4):
        for s in range(mesh4.num_nodes):
            for t in range(mesh4.num_nodes):
                path = router4.path(s, t)
                mesh4.validate_path(path, s, t)
                i1, j1 = mesh4.node_coords(s)
                i2, j2 = mesh4.node_coords(t)
                assert len(path) == abs(i1 - i2) + abs(j1 - j2)

    def test_leftward_and_upward_paths(self):
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        src, dst = mesh.node_id(3, 3), mesh.node_id(1, 0)
        directions = [mesh.edge_direction(e) for e in router.path(src, dst)]
        assert directions == ["left"] * 3 + ["up"] * 2

    def test_sample_path_is_deterministic(self, router4, rng):
        assert router4.sample_path(0, 15, rng) == router4.path(0, 15)

    def test_path_length_helper(self, router4):
        assert router4.path_length(0, 15) == 6

    @given(st.integers(0, 35), st.integers(0, 35))
    @settings(max_examples=80, deadline=None)
    def test_path_never_revisits_a_node(self, s, t):
        mesh = ArrayMesh(6)
        router = GreedyArrayRouter(mesh)
        path = router.path(s, t)
        visited = [s]
        at = s
        for e in path:
            at = mesh.edge_endpoints(e)[1]
            visited.append(at)
        assert len(set(visited)) == len(visited)


class TestGreedyKDRouter:
    def test_2d_column_major_matches_row_first_length(self):
        kd = KDArray((4, 4))
        router = GreedyKDRouter(kd)
        for s in range(16):
            for t in range(16):
                cs, ct = kd.node_coords(s), kd.node_coords(t)
                expected = sum(abs(a - b) for a, b in zip(cs, ct))
                path = router.path(s, t)
                kd.validate_path(path, s, t)
                assert len(path) == expected

    def test_3d_paths_valid(self):
        kd = KDArray((2, 3, 2))
        router = GreedyKDRouter(kd)
        for s in range(kd.num_nodes):
            for t in range(kd.num_nodes):
                kd.validate_path(router.path(s, t), s, t)

    def test_dimension_order_respected(self):
        kd = KDArray((3, 3))
        router = GreedyKDRouter(kd, dimension_order=(1, 0))
        # Correcting axis 1 first means stride-1 moves come first.
        path = router.path(kd.node_id((0, 0)), kd.node_id((2, 2)))
        first_two = [kd.edge_endpoints(e) for e in path[:2]]
        assert all(v - u == 1 for u, v in first_two)  # axis-1 steps

    def test_bad_dimension_order(self):
        with pytest.raises(ValueError):
            GreedyKDRouter(KDArray((3, 3)), dimension_order=(0, 0))

    def test_kd_mean_distance_matches_2d_formula(self):
        """Cross-check: mean path length on KDArray((n,n)) equals n-bar."""
        from repro.core.distances import mean_distance
        from repro.routing.destinations import UniformDestinations
        from repro.core.distances import mean_route_length

        kd = KDArray((4, 4))
        router = GreedyKDRouter(kd)
        got = mean_route_length(router, UniformDestinations(kd.num_nodes))
        assert np.isclose(got, mean_distance(4))
