"""Tests for the Lemma 3 stopping chain: exact uniformity and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.markov_chain import (
    MOVING_LEFT,
    MOVING_RIGHT,
    STOPPED,
    LineStopChain,
)


class TestLemma3Uniformity:
    @given(st.integers(2, 30))
    @settings(max_examples=25, deadline=None)
    def test_pmf_is_exactly_uniform_from_every_entry(self, n):
        """Lemma 3: the chain stops uniformly, whatever the entry point."""
        chain = LineStopChain(n)
        for k in range(n):
            assert np.allclose(chain.destination_pmf(k), 1.0 / n)

    def test_initial_distribution_sums_to_one(self):
        chain = LineStopChain(7)
        for k in range(7):
            init = chain.initial_distribution(k)
            assert np.isclose(sum(init.values()), 1.0)
            assert init[STOPPED] == pytest.approx(1 / 7)

    def test_border_entry_cannot_move_outward(self):
        chain = LineStopChain(5)
        assert chain.initial_distribution(0)[MOVING_LEFT] == 0.0
        assert chain.initial_distribution(4)[MOVING_RIGHT] == 0.0

    def test_forced_stop_at_borders(self):
        chain = LineStopChain(5)
        assert chain.stop_probability(0, MOVING_LEFT) == 1.0
        assert chain.stop_probability(4, MOVING_RIGHT) == 1.0

    def test_paper_stop_probabilities(self):
        """Paper (1-based): moving left, stop at node j w.p. 1/j."""
        chain = LineStopChain(6)
        # 0-based node j corresponds to the paper's j+1.
        for j in range(6):
            assert chain.stop_probability(j, MOVING_LEFT) == pytest.approx(
                1.0 / (j + 1)
            )
            assert chain.stop_probability(j, MOVING_RIGHT) == pytest.approx(
                1.0 / (6 - j)
            )

    def test_invalid_args(self):
        chain = LineStopChain(4)
        with pytest.raises(ValueError):
            chain.destination_pmf(4)
        with pytest.raises(ValueError):
            chain.stop_probability(1, "sideways")
        with pytest.raises(ValueError):
            chain.stop_probability(9, MOVING_LEFT)


class TestSampling:
    def test_sample_matches_uniform(self, rng):
        n = 6
        chain = LineStopChain(n)
        counts = np.zeros(n)
        for _ in range(6000):
            counts[chain.sample(2, rng)] += 1
        assert np.abs(counts / 6000 - 1 / n).max() < 0.03

    def test_sample_route_contiguous(self, rng):
        chain = LineStopChain(8)
        for _ in range(50):
            route = chain.sample_route(3, rng)
            assert route[0] == 3
            steps = np.diff(route)
            assert len(set(np.sign(steps))) <= 1  # monotone
            assert np.all(np.abs(steps) == 1) or len(route) == 1

    def test_sample_stays_on_line(self, rng):
        chain = LineStopChain(3)
        for k in range(3):
            for _ in range(100):
                assert 0 <= chain.sample(k, rng) < 3
