"""Distributional tests: the M/D/1 embedded-chain pmf, and the simulator's
queue-length distribution against it — the strongest single validation of
the event engine (it checks the whole law, not just means)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.md1 import MD1Queue
from repro.queueing.mm1 import MM1Queue
from repro.routing.base import TabulatedRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.linear import LinearArray


class TestMD1Pmf:
    @given(st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_pmf_sums_to_one_and_mean_matches_pk(self, rho):
        q = MD1Queue(rho)
        kmax = 300
        pmf = q.number_pmf(kmax)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)
        mean = float((np.arange(kmax + 1) * pmf).sum())
        assert mean == pytest.approx(q.mean_number(), rel=1e-6)

    def test_p0_is_one_minus_rho(self):
        assert MD1Queue(0.6).number_pmf(5)[0] == pytest.approx(0.4)

    def test_lighter_tail_than_mm1(self):
        """Deterministic service has a strictly lighter tail than
        exponential at equal load."""
        rho = 0.8
        md1 = MD1Queue(rho).number_pmf(80)
        mm1 = MM1Queue(rho).number_pmf(80)
        tail_md1 = 1.0 - md1[:40].sum()
        tail_mm1 = 1.0 - mm1[:40].sum()
        assert tail_md1 < tail_mm1

    def test_entries_essentially_nonnegative(self):
        pmf = MD1Queue(0.9).number_pmf(200)
        assert pmf.min() > -1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            MD1Queue(1.1).number_pmf(10)
        with pytest.raises(ValueError):
            MD1Queue(0.5).number_pmf(-1)


class OneWay:
    """All packets go 0 -> 1: the network is a single M/D/1 queue."""

    num_nodes = 2

    def pmf(self, src):
        v = np.zeros(2)
        v[1] = 1.0
        return v

    def sample(self, src, rng):
        return 1


class TestEngineDistributionMatchesMD1:
    @pytest.mark.parametrize("rho", [0.4, 0.75])
    def test_number_in_system_distribution(self, rho):
        """Simulated time-weighted P(N = k) vs the embedded-chain pmf."""
        line = LinearArray(2)
        router = TabulatedRouter(line, {(0, 1): [0]})
        sim = NetworkSimulation(
            router, OneWay(), rho, source_nodes=[0], seed=61
        )
        res = sim.run(500, 30000, track_number_distribution=True)
        theory = MD1Queue(rho).number_pmf(60)
        for k in range(12):
            empirical = res.number_distribution.get(k, 0.0)
            assert empirical == pytest.approx(theory[k], abs=0.012), (rho, k)

    def test_exponential_variant_matches_mm1_distribution(self):
        rho = 0.6
        line = LinearArray(2)
        router = TabulatedRouter(line, {(0, 1): [0]})
        sim = NetworkSimulation(
            router, OneWay(), rho, source_nodes=[0], service="exponential", seed=62
        )
        res = sim.run(500, 30000, track_number_distribution=True)
        theory = MM1Queue(rho).number_pmf(60)
        for k in range(10):
            empirical = res.number_distribution.get(k, 0.0)
            assert empirical == pytest.approx(theory[k], abs=0.015), k
