"""Tests for the PS, rushed (Theorem 10), and slotted simulators."""

import numpy as np
import pytest

from repro.core.md1_approx import md1_network_number
from repro.core.rates import array_edge_rates, lambda_for_load
from repro.core.upper_bound import number_upper_bound
from repro.queueing.md1 import MD1Queue
from repro.queueing.mm1 import MM1Queue
from repro.routing.base import TabulatedRouter
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.topology.linear import LinearArray

from _helpers import AlwaysNodeZero, BoundaryRNG


class AcrossOnly:
    num_nodes = 2

    def sample(self, src, rng):
        return 1 - src

    def pmf(self, src):
        v = np.zeros(2)
        v[1 - src] = 1.0
        return v


def two_node_router():
    line = LinearArray(2)
    return TabulatedRouter(
        line, {(0, 1): [0], (1, 0): [1], (0, 0): [], (1, 1): []}
    )


class TestPSSimulator:
    def test_single_queue_matches_mm1(self):
        """M/D/1-input PS queue has the M/M/1 equilibrium (insensitivity)."""
        lam = 0.6
        res = PSNetworkSimulation(
            two_node_router(), AcrossOnly(), lam, seed=11
        ).run(200, 8000)
        assert res.mean_delay == pytest.approx(MM1Queue(lam).mean_delay(), rel=0.08)

    @pytest.mark.slow
    def test_array_matches_product_form(self):
        n, rho = 3, 0.6
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        res = PSNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), lam, seed=12
        ).run(300, 5000)
        assert res.mean_number == pytest.approx(
            number_upper_bound(n, lam), rel=0.12
        )

    @pytest.mark.slow
    def test_dominates_fifo(self):
        """Theorem 5: E[N_FIFO] <= E[N_PS] on the same workload."""
        n, rho = 3, 0.7
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        fifo = NetworkSimulation(router, dests, lam, seed=13).run(300, 4000)
        ps = PSNetworkSimulation(router, dests, lam, seed=14).run(300, 4000)
        assert fifo.mean_number <= ps.mean_number * 1.05

    def test_conservation_and_littles(self):
        mesh = ArrayMesh(3)
        res = PSNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3, seed=15
        ).run(100, 2000)
        assert res.generated == res.completed
        assert res.littles_law_gap < 0.12

    def test_determinism(self):
        mesh = ArrayMesh(3)
        mk = lambda: PSNetworkSimulation(  # noqa: E731
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3, seed=9
        ).run(50, 500)
        a, b = mk(), mk()
        assert a.mean_delay == b.mean_delay


class TestRushedSimulator:
    @pytest.mark.slow
    def test_total_copies_match_independent_md1_sum(self):
        """The pivot of Theorem 10: E[N1] = sum over edges of the M/D/1
        mean, despite the copies being correlated."""
        n, rho = 4, 0.7
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        res = RushedNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(16), lam, seed=21
        ).run(300, 6000)
        expected = md1_network_number(array_edge_rates(mesh, lam), variant="pk")
        assert res.mean_number == pytest.approx(expected, rel=0.06)

    @pytest.mark.slow
    def test_per_edge_occupancy_is_md1(self):
        """Marginally, each queue is an M/D/1 queue."""
        n, rho = 3, 0.6
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        res = RushedNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), lam, seed=22
        ).run(300, 8000)
        rates = array_edge_rates(mesh, lam)
        busiest = int(np.argmax(rates))
        expected = MD1Queue(rates[busiest]).mean_number()
        assert res.utilization[busiest] == pytest.approx(expected, rel=0.12)

    @pytest.mark.slow
    def test_makespan_below_fifo_delay(self):
        """The rushed system is faster: per-packet makespan (all copies
        served) is below the FIFO network delay on average."""
        n, rho = 4, 0.8
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(16)
        rushed = RushedNetworkSimulation(router, dests, lam, seed=23).run(200, 3000)
        fifo = NetworkSimulation(router, dests, lam, seed=24).run(200, 3000)
        assert rushed.mean_delay < fifo.mean_delay

    def test_conservation(self):
        mesh = ArrayMesh(3)
        res = RushedNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3, seed=25
        ).run(50, 800)
        assert res.generated == res.completed


class TestRushedCapabilities:
    """The capability-parity options (saturated-copy tracking and
    per-packet maxima) added when the registry flags flipped."""

    def _net(self, n=4):
        mesh = ArrayMesh(n)
        return mesh, GreedyArrayRouter(mesh), UniformDestinations(n * n)

    def test_options_do_not_change_base_statistics(self):
        """The new observers add no RNG draws and no float operations to
        the tracked quantities: base fields stay bit-identical."""
        mesh, router, dests = self._net()
        mask = np.arange(mesh.num_edges) % 3 == 0
        plain = RushedNetworkSimulation(router, dests, 0.25, seed=31).run(
            20, 300
        )
        tracked = RushedNetworkSimulation(
            router, dests, 0.25, seed=31, saturated_mask=mask
        ).run(20, 300, track_maxima=True)
        assert plain.mean_number == tracked.mean_number
        assert plain.mean_delay == tracked.mean_delay
        assert plain.delay_half_width == tracked.delay_half_width
        assert plain.utilization.tolist() == tracked.utilization.tolist()
        assert np.isnan(plain.mean_remaining_saturated)
        assert plain.max_queue_length == -1

    def test_saturated_copies_bounded_by_total(self):
        mesh, router, dests = self._net()
        mask = np.arange(mesh.num_edges) % 2 == 0
        res = RushedNetworkSimulation(
            router, dests, 0.25, seed=32, saturated_mask=mask
        ).run(20, 400)
        assert 0.0 < res.mean_remaining_saturated < res.mean_remaining
        # All-edges mask: every copy is a saturated copy.
        res_all = RushedNetworkSimulation(
            router, dests, 0.25, seed=32,
            saturated_mask=np.ones(mesh.num_edges, dtype=bool),
        ).run(20, 400)
        assert res_all.mean_remaining_saturated == res_all.mean_remaining

    def test_maxima_bound_the_averages(self):
        mesh, router, dests = self._net()
        res = RushedNetworkSimulation(router, dests, 0.3, seed=33).run(
            30, 500, track_maxima=True
        )
        assert res.max_delay >= res.mean_delay
        assert res.max_queue_length >= 0

    def test_mask_length_validated(self):
        mesh, router, dests = self._net()
        with pytest.raises(ValueError):
            RushedNetworkSimulation(
                router, dests, 0.2, saturated_mask=[True, False]
            )

    def test_registry_flags_flipped(self):
        from repro.sim.registry import get_engine

        info = get_engine("rushed")
        assert info.supports_saturated and info.supports_maxima

    def test_tracking_through_cellspec(self):
        from repro.sim.replication import CellSpec, ReplicationEngine

        spec = CellSpec(
            scenario="uniform", n=4, rho=0.6, engine="rushed",
            warmup=20, horizon=300, seeds=(3,),
            track_saturated=True, track_maxima=True,
        )
        res = ReplicationEngine(processes=1).run(spec).replications[0]
        assert res.mean_remaining_saturated > 0
        assert res.max_delay > 0 and res.max_queue_length >= 0


class TestEngineParityValidation:
    """PR-3 engine-gap closure: rushed and PS validate inputs and draw
    sources exactly like the fifo/slotted engines (util.validation)."""

    @pytest.fixture(params=[RushedNetworkSimulation, PSNetworkSimulation])
    def engine(self, request):
        return request.param

    def test_rejects_negative_node_rate_entries(self, engine):
        """Mirrors test_sim_fifo / the slotted validation cases: a negative
        entry must be rejected even when the total is positive."""
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        with pytest.raises(ValueError):
            engine(router, dests, [-0.5, 1.0, 0.1] + [0.1] * 6)
        with pytest.raises(ValueError):
            engine(router, dests, [0.0] * 9)
        with pytest.raises(ValueError):
            engine(router, dests, [0.1, 0.2])  # wrong length
        with pytest.raises(ValueError):
            engine(router, dests, -0.2)  # negative scalar
        with pytest.raises(ValueError):
            engine(router, dests, 0.2, source_nodes=[])

    def test_rejects_bad_service_rates_and_windows(self, engine):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        with pytest.raises(ValueError):
            engine(router, dests, 0.2, service_rates=np.zeros(3))
        sim = engine(router, dests, 0.2)
        with pytest.raises(ValueError):
            sim.run(-1.0, 100)
        with pytest.raises(ValueError):
            sim.run(10, 0)

    def test_zero_rate_source_never_generates(self, engine, monkeypatch):
        """node_rate=[0.0, 1.0] regression for the side='left' source draw
        (the bug PR 1 fixed in the fifo/slotted engines): a draw landing
        exactly on the CDF boundary u = 0.0 must not pick the dead source."""
        real = np.random.default_rng
        monkeypatch.setattr(
            np.random, "default_rng", lambda seed=None: BoundaryRNG(real(seed))
        )
        res = engine(
            two_node_router(), AlwaysNodeZero(), [0.0, 1.0], seed=37
        ).run(0, 400)
        # Every packet goes to node 0, so one born at the (zero-rate)
        # source 0 would be counted in zero_hop.
        assert res.generated > 0
        assert res.zero_hop == 0

    def test_uncached_run_matches_cached_run(self, engine):
        """use_path_cache=False (per-packet rebuild) is output-neutral."""
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        cached = engine(router, dests, 0.3, seed=41).run(20, 300)
        uncached = engine(
            router, dests, 0.3, seed=41, use_path_cache=False
        ).run(20, 300)
        assert cached.mean_number == uncached.mean_number
        assert cached.mean_delay == uncached.mean_delay
        assert cached.generated == uncached.generated

    def test_shared_warm_cache_is_output_neutral(self, engine):
        """The replication pattern: a warm shared arena changes nothing."""
        from repro.routing.pathcache import path_cache_for

        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        shared = path_cache_for(router)
        engine(router, dests, 0.3, seed=99, path_cache=shared).run(10, 200)
        warm = engine(router, dests, 0.3, seed=5, path_cache=shared).run(10, 200)
        cold = engine(router, dests, 0.3, seed=5).run(10, 200)
        assert warm.mean_number == cold.mean_number
        assert warm.mean_delay == cold.mean_delay

    def test_rejects_incompatible_path_cache(self, engine):
        from repro.routing.pathcache import path_cache_for

        small = GreedyArrayRouter(ArrayMesh(3))
        big = GreedyArrayRouter(ArrayMesh(4))
        with pytest.raises(ValueError):
            engine(big, UniformDestinations(16), 0.2, path_cache=path_cache_for(small))

    def test_rejects_cache_for_different_scheme_on_same_topology(self, engine):
        """An equal-sized topology is not enough: a cache built for the
        column-first order would silently simulate the wrong routing."""
        from repro.routing.pathcache import path_cache_for

        mesh = ArrayMesh(3)
        other = path_cache_for(GreedyArrayRouter(mesh, column_first=True))
        with pytest.raises(ValueError):
            engine(
                GreedyArrayRouter(mesh),
                UniformDestinations(9),
                0.2,
                path_cache=other,
            )

    def test_rushed_rejects_bad_event_queue(self):
        mesh = ArrayMesh(3)
        with pytest.raises(ValueError):
            RushedNetworkSimulation(
                GreedyArrayRouter(mesh),
                UniformDestinations(9),
                0.2,
                event_queue="splay",
            )


class TestSlottedSimulator:
    def test_single_queue_near_md1(self):
        """Slotted delay within ~tau of the continuous M/D/1 value."""
        lam = 0.5
        res = SlottedNetworkSimulation(
            two_node_router(), AcrossOnly(), lam, seed=31
        ).run(200, 10000)
        assert abs(res.mean_delay - MD1Queue(lam).mean_delay()) <= 1.0 + 0.1

    @pytest.mark.slow
    def test_array_within_tau_of_continuous(self):
        """Section 5.2: slotted T within tau of the event-driven T."""
        n, rho = 4, 0.6
        lam = lambda_for_load(n, rho)
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(16)
        cont = NetworkSimulation(router, dests, lam, seed=32).run(200, 4000)
        slot = SlottedNetworkSimulation(router, dests, lam, seed=33).run(200, 4000)
        assert abs(slot.mean_delay - cont.mean_delay) <= 1.0 + 0.15 * cont.mean_delay

    def test_tau_scaling(self):
        """Halving tau halves the discretisation, in the same time units."""
        lam = 0.4
        res = SlottedNetworkSimulation(
            two_node_router(), AcrossOnly(), lam, tau=1.0, seed=34
        ).run(100, 5000)
        assert res.horizon == 5000.0

    def test_conservation_and_littles(self):
        mesh = ArrayMesh(3)
        res = SlottedNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3, seed=35
        ).run(100, 2000)
        assert res.generated == res.completed
        assert res.littles_law_gap < 0.1

    def test_determinism(self):
        mesh = ArrayMesh(3)
        mk = lambda: SlottedNetworkSimulation(  # noqa: E731
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3, seed=36
        ).run(50, 500)
        assert mk().mean_delay == mk().mean_delay

    def test_invalid_windows(self):
        mesh = ArrayMesh(3)
        sim = SlottedNetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.3
        )
        with pytest.raises(ValueError):
            sim.run(-1, 100)
        with pytest.raises(ValueError):
            sim.run(10, 0)

    def test_rejects_negative_node_rate_entries(self):
        """Aligned with the event engine via util.validation.check_node_rates:
        a negative entry must be rejected even when the total is positive."""
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        with pytest.raises(ValueError):
            SlottedNetworkSimulation(router, dests, [-0.5, 1.0, 0.1] + [0.1] * 6)
        with pytest.raises(ValueError):
            SlottedNetworkSimulation(router, dests, [0.0] * 9)
        with pytest.raises(ValueError):
            SlottedNetworkSimulation(router, dests, [0.1, 0.2])  # wrong length

    def test_zero_rate_source_never_generates(self, monkeypatch):
        """node_rate=[0.0, 1.0] regression for the side='left' source draw.

        Forces the first source draw to land exactly on the CDF boundary
        u = 0.0 (a measure-zero event left to chance), which the old
        ``side='left'`` search resolved to the zero-rate source.
        """
        real = np.random.default_rng
        monkeypatch.setattr(
            np.random, "default_rng", lambda seed=None: BoundaryRNG(real(seed))
        )
        # batch_rng=False: the scalar per-packet draw is the path the old
        # bug lived on (the batched draw's boundary safety is covered by
        # the EngineCommon policy tests).
        res = SlottedNetworkSimulation(
            two_node_router(), AlwaysNodeZero(), [0.0, 1.0], seed=37
        ).run(0, 400, batch_rng=False)
        # Every packet goes to node 0, so one born at the (zero-rate)
        # source 0 would be counted in zero_hop.
        assert res.generated > 0
        assert res.zero_hop == 0
