"""Tests for the multi-seed replication engine and its CI pooling."""

import dataclasses

import numpy as np
import pytest

from repro.sim.replication import (
    CellSpec,
    ReplicatedResult,
    ReplicationEngine,
    replicate,
)
from repro.sim.result import SimResult


def _fake_result(mean_delay, *, half_width=0.5, mean_number=10.0, seed=0):
    """A minimal SimResult carrying the fields pooling reads."""
    return SimResult(
        warmup=0.0,
        horizon=100.0,
        seed=seed,
        generated=100,
        completed=100,
        zero_hop=1,
        in_flight_at_end=0,
        mean_number=mean_number,
        mean_remaining=2.0 * mean_number,
        mean_remaining_saturated=float("nan"),
        mean_delay=mean_delay,
        delay_half_width=half_width,
        mean_delay_littles=mean_delay,
        total_rate=1.0,
    )


def _pooled_of(values):
    spec = CellSpec(n=4, rho=0.5, seeds=tuple(range(len(values))))
    return ReplicatedResult(
        spec=spec,
        node_rate=0.1,
        replications=[_fake_result(v, seed=k) for k, v in enumerate(values)],
    )


class TestCellSpecValidation:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="quantum")

    def test_rejects_unknown_service(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, service="gaussian")

    def test_rejects_slotted_exponential(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="slotted", service="exponential")

    def test_requires_some_rate(self):
        with pytest.raises(ValueError):
            CellSpec(rho=None, node_rate=None)

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, seeds=())

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, seeds=(3, 3))

    def test_with_params_merges(self):
        spec = CellSpec(scenario="hotspot", rho=0.5, params=(("h", 0.2),))
        spec2 = spec.with_params(h=0.4, hot_node=3)
        assert spec2.params_dict == {"h": 0.4, "hot_node": 3}
        assert spec.params_dict == {"h": 0.2}  # original untouched

    def test_replications_counts_seeds(self):
        assert CellSpec(rho=0.5, seeds=(1, 2, 3)).replications == 3


class TestCIPooling:
    def test_mean_is_average_of_replications(self):
        pooled = _pooled_of([1.0, 2.0, 3.0, 4.0])
        assert pooled.mean_delay == pytest.approx(2.5)

    def test_half_width_matches_t_formula(self):
        values = [1.0, 2.0, 3.0, 4.0]
        pooled = _pooled_of(values)
        se = np.std(values, ddof=1) / np.sqrt(len(values))
        assert pooled.delay_half_width == pytest.approx(1.96 * se)

    def test_single_replication_falls_back_to_within_run_ci(self):
        pooled = _pooled_of([2.0])
        assert pooled.mean_delay == 2.0
        assert pooled.delay_half_width == 0.5  # the run's own batch means

    def test_identical_replications_have_zero_width(self):
        pooled = _pooled_of([3.0, 3.0, 3.0])
        assert pooled.delay_half_width == 0.0

    def test_number_pooling(self):
        pooled = _pooled_of([1.0, 2.0])
        assert pooled.mean_number == pytest.approx(10.0)
        assert pooled.number_half_width == pytest.approx(0.0)

    def test_generated_sums(self):
        assert _pooled_of([1.0, 2.0, 3.0]).generated == 300

    def test_nan_values_are_dropped(self):
        pooled = _pooled_of([1.0, 2.0])
        pooled.replications[0].mean_delay = float("nan")
        assert pooled.mean_delay == pytest.approx(2.0)

    def test_render_has_per_rep_and_pooled_rows(self):
        text = _pooled_of([1.0, 2.0]).render()
        assert "pooled" in text and "seed" in text
        assert "+/-" in text


class TestReplicationEngine:
    SPEC = CellSpec(
        scenario="uniform", n=4, rho=0.6, warmup=50, horizon=400, seeds=(1, 2, 3, 4)
    )

    def test_parallel_matches_serial(self):
        serial = ReplicationEngine(processes=1).run(self.SPEC)
        parallel = ReplicationEngine(processes=4).run(self.SPEC)
        assert [r.mean_delay for r in serial.replications] == [
            r.mean_delay for r in parallel.replications
        ]

    def test_replications_follow_seed_order(self):
        pooled = ReplicationEngine(processes=1).run(self.SPEC)
        assert [r.seed for r in pooled.replications] == list(self.SPEC.seeds)

    def test_distinct_seeds_distinct_trajectories(self):
        pooled = ReplicationEngine(processes=1).run(self.SPEC)
        delays = [r.mean_delay for r in pooled.replications]
        assert len(set(delays)) == len(delays)

    def test_replication_matches_direct_simulation(self):
        from repro.core.rates import lambda_for_load
        from repro.routing.destinations import UniformDestinations
        from repro.routing.greedy import GreedyArrayRouter
        from repro.sim.fifo_network import NetworkSimulation
        from repro.topology.array_mesh import ArrayMesh

        mesh = ArrayMesh(4)
        lam = lambda_for_load(4, 0.6, "exact")
        direct = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(16), lam, seed=1
        ).run(50, 400)
        pooled = ReplicationEngine(processes=1).run(self.SPEC)
        assert pooled.replications[0].mean_delay == direct.mean_delay
        assert pooled.replications[0].mean_number == direct.mean_number

    def test_run_many_preserves_cell_order(self):
        specs = [
            dataclasses.replace(self.SPEC, rho=rho, seeds=(7,))
            for rho in (0.3, 0.6)
        ]
        out = ReplicationEngine(processes=1).run_many(specs)
        assert [o.spec.rho for o in out] == [0.3, 0.6]
        # Heavier load queues longer.
        assert out[0].mean_delay < out[1].mean_delay

    def test_run_many_node_rate_is_per_cell(self):
        """Regression: mixed-load batches must report each cell's *own*
        resolved rate (an off-by-one once attributed the previous spec's
        rate to the next cell)."""
        from repro.scenarios import resolve_cell

        specs = [
            dataclasses.replace(self.SPEC, rho=rho, seeds=(1, 2))
            for rho in (0.3, 0.6, 0.9)
        ]
        for nproc in (1, 3):
            out = ReplicationEngine(processes=nproc).run_many(specs)
            for spec, res in zip(specs, out):
                assert res.node_rate == resolve_cell(spec)[0]

    def test_run_many_empty_batch(self):
        assert ReplicationEngine(processes=1).run_many([]) == []
        assert ReplicationEngine(processes=4).run_many([]) == []

    def test_run_many_on_result_fires_in_serial_order(self):
        specs = [
            dataclasses.replace(self.SPEC, rho=rho, seeds=(7,))
            for rho in (0.3, 0.6)
        ]
        seen = []
        ReplicationEngine(processes=1).run_many(
            specs, on_result=lambda res: seen.append(res.spec.rho)
        )
        assert seen == [0.3, 0.6]

    def test_convenience_wrapper(self):
        assert replicate(self.SPEC, processes=1).mean_delay == ReplicationEngine(
            processes=1
        ).run(self.SPEC).mean_delay


class TestCrossEngineParity:
    @pytest.mark.slow
    def test_slotted_matches_event_on_torus(self):
        """Section 5.2: slotted delay differs from continuous by <= tau."""
        base = dict(
            scenario="torus", n=4, rho=0.5, warmup=200, horizon=2000,
            seeds=(1, 2, 3, 4),
        )
        event = replicate(CellSpec(engine="event", **base), processes=1)
        slotted = replicate(CellSpec(engine="slotted", **base), processes=1)
        tol = 0.5 + 3.0 * (event.delay_half_width + slotted.delay_half_width)
        assert abs(event.mean_delay - slotted.mean_delay) < tol

    def test_slotted_engine_through_spec(self):
        spec = CellSpec(
            scenario="uniform", n=4, rho=0.5, engine="slotted",
            warmup=50, horizon=400, seeds=(1, 2),
        )
        pooled = replicate(spec, processes=1)
        assert pooled.mean_delay > 0
        assert all(r.completed == r.generated for r in pooled.replications)
