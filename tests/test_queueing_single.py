"""Tests for single-queue theory: M/G/1, M/M/1, M/D/1, Little's Law."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.littleslaw import (
    littles_law_number,
    littles_law_residual,
    littles_law_time,
)
from repro.queueing.md1 import MD1Queue
from repro.queueing.mg1 import (
    MG1Queue,
    pollaczek_khinchin_number,
    pollaczek_khinchin_wait,
)
from repro.queueing.mm1 import MM1Queue

loads = st.floats(min_value=0.01, max_value=0.95)


class TestPollaczekKhinchin:
    def test_md1_special_case(self):
        # rho + rho^2/(2(1-rho)) at rho=0.5: 0.5 + 0.25 = 0.75
        assert pollaczek_khinchin_number(0.5, 1.0, 1.0) == pytest.approx(0.75)

    def test_mm1_special_case(self):
        # exponential service: N = rho/(1-rho)
        assert pollaczek_khinchin_number(0.5, 1.0, 2.0) == pytest.approx(1.0)

    def test_unstable_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            pollaczek_khinchin_number(1.0, 1.0, 1.0)

    def test_impossible_moments(self):
        with pytest.raises(ValueError, match="impossible"):
            pollaczek_khinchin_number(0.5, 1.0, 0.5)

    def test_wait_zero_at_zero_load(self):
        assert pollaczek_khinchin_wait(0.0, 1.0, 1.0) == 0.0

    @given(loads)
    @settings(max_examples=40, deadline=None)
    def test_exponential_doubles_constant_tail_term(self, rho):
        """The paper's Lemma 9 engine: E[S^2] doubles between constant and
        exponential service, so the queueing (non-rho) term doubles."""
        const = pollaczek_khinchin_number(rho, 1.0, 1.0)
        expo = pollaczek_khinchin_number(rho, 1.0, 2.0)
        assert np.isclose(expo - rho, 2.0 * (const - rho))


class TestMG1Queue:
    def test_delay_is_wait_plus_service(self):
        q = MG1Queue(lam=0.4, es=1.0, es2=1.5)
        assert q.mean_delay() == pytest.approx(q.mean_wait() + 1.0)

    def test_queue_length_littles(self):
        q = MG1Queue(lam=0.4, es=1.0, es2=1.5)
        assert q.mean_queue_length() == pytest.approx(0.4 * q.mean_wait())

    def test_stability_flag(self):
        assert MG1Queue(0.5, 1.0, 1.0).stable
        assert not MG1Queue(1.2, 1.0, 1.0).stable

    def test_invalid_moments_raise(self):
        with pytest.raises(ValueError):
            MG1Queue(0.5, 2.0, 1.0)


class TestMM1Queue:
    @given(loads)
    @settings(max_examples=40, deadline=None)
    def test_closed_forms_consistent(self, rho):
        q = MM1Queue(lam=rho, phi=1.0)
        assert np.isclose(q.mean_number(), rho / (1 - rho))
        assert np.isclose(q.mean_delay(), 1 / (1 - rho))
        # Little's Law ties them together.
        assert np.isclose(q.mean_number(), q.mean_delay() * rho)

    def test_matches_pk(self):
        assert MM1Queue(0.7).matches_pollaczek_khinchin()

    def test_scaled_service_rate(self):
        q = MM1Queue(lam=1.0, phi=2.0)
        assert q.load == 0.5
        assert q.mean_delay() == pytest.approx(1.0)

    def test_pmf_geometric(self):
        q = MM1Queue(0.5)
        pmf = q.number_pmf(10)
        assert np.allclose(pmf, 0.5 ** np.arange(11) * 0.5)

    def test_unstable_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            MM1Queue(1.5).mean_number()


class TestMD1Queue:
    @given(loads)
    @settings(max_examples=40, deadline=None)
    def test_mm1_ratio_in_lemma9_band(self, rho):
        """Lemma 9: matched M/M/1 holds between 1x and 2x the M/D/1 count."""
        ratio = MD1Queue(rho).mm1_ratio()
        assert 1.0 <= ratio <= 2.0

    def test_ratio_limits(self):
        assert MD1Queue(1e-6).mm1_ratio() == pytest.approx(1.0, abs=1e-3)
        assert MD1Queue(0.9999).mm1_ratio() == pytest.approx(2.0, abs=1e-3)

    def test_wait_less_than_mm1(self):
        md1, mm1 = MD1Queue(0.8), MM1Queue(0.8)
        assert md1.mean_wait() < mm1.mean_wait()

    def test_scaled_service(self):
        q = MD1Queue(lam=0.25, service=2.0)
        assert q.load == 0.5
        # time-scaling: same as unit queue at rho=.5 with time doubled
        assert q.mean_delay() == pytest.approx(2 * MD1Queue(0.5).mean_delay())

    def test_unstable(self):
        q = MD1Queue(1.1)
        assert not q.stable
        with pytest.raises(ValueError):
            q.mean_number()


class TestLittlesLaw:
    def test_roundtrip(self):
        n = littles_law_number(delay=2.5, rate=4.0)
        assert littles_law_time(n, 4.0) == pytest.approx(2.5)

    def test_residual_zero_for_consistent(self):
        assert littles_law_residual(10.0, 2.5, 4.0) == 0.0

    def test_residual_positive_for_inconsistent(self):
        assert littles_law_residual(12.0, 2.5, 4.0) > 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            littles_law_time(1.0, 0.0)
