"""Tests for the rectangular-array analysis (Section 2.1's remark)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import mean_distance, mean_route_length
from repro.core.rates import array_edge_rates
from repro.core.rectangular import (
    rect_capacity,
    rect_delay_upper_bound,
    rect_lambda_for_load,
    rect_md1_estimate,
    rect_mean_distance,
    squarest_shape,
)
from repro.core.upper_bound import delay_upper_bound, delay_upper_bound_generic
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh

sides = st.integers(min_value=2, max_value=7)


class TestRectangularClosedForms:
    @given(sides, sides)
    @settings(max_examples=25, deadline=None)
    def test_mean_distance_matches_enumeration(self, r, c):
        mesh = ArrayMesh(r, c)
        got = mean_route_length(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        assert got == pytest.approx(rect_mean_distance(r, c))

    def test_square_specialisations(self):
        assert rect_mean_distance(6, 6) == pytest.approx(mean_distance(6))
        assert rect_delay_upper_bound(6, 6, 0.3) == pytest.approx(
            delay_upper_bound(6, 0.3)
        )

    @given(sides, sides)
    @settings(max_examples=20, deadline=None)
    def test_upper_bound_matches_generic(self, r, c):
        mesh = ArrayMesh(r, c)
        lam = 0.5 * rect_capacity(r, c)
        rates = array_edge_rates(mesh, lam)
        generic = delay_upper_bound_generic(rates, lam * mesh.num_nodes)
        assert rect_delay_upper_bound(r, c, lam) == pytest.approx(generic)

    @given(sides, sides)
    @settings(max_examples=25, deadline=None)
    def test_capacity_is_bottleneck_inverse(self, r, c):
        mesh = ArrayMesh(r, c)
        lam = rect_capacity(r, c)
        rates = array_edge_rates(mesh, lam)
        assert rates.max() == pytest.approx(1.0)

    def test_longer_axis_dominates(self):
        # Stretching one axis lowers capacity despite adding links.
        assert rect_capacity(4, 8) == pytest.approx(0.5)
        assert rect_capacity(4, 8) < rect_capacity(4, 4)
        assert rect_capacity(4, 8) == rect_capacity(8, 4)

    def test_lambda_for_load(self):
        assert rect_lambda_for_load(4, 6, 0.5) == pytest.approx(0.5 * 4 / 6)
        with pytest.raises(ValueError):
            rect_lambda_for_load(4, 6, 1.0)

    def test_estimate_below_upper_bound(self):
        lam = 0.6 * rect_capacity(3, 7)
        assert rect_md1_estimate(3, 7, lam) < rect_delay_upper_bound(3, 7, lam)

    def test_unstable_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            rect_delay_upper_bound(4, 6, rect_capacity(4, 6))
        with pytest.raises(ValueError, match="unstable"):
            rect_md1_estimate(4, 6, rect_capacity(4, 6))


class TestRectangularSimulation:
    def test_simulated_rectangle_respects_bound(self):
        r, c = 3, 6
        lam = 0.7 * rect_capacity(r, c)
        mesh = ArrayMesh(r, c)
        from repro.sim.fifo_network import NetworkSimulation

        res = NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(mesh.num_nodes),
            lam,
            seed=51,
        ).run(200, 2500)
        assert res.mean_delay <= rect_delay_upper_bound(r, c, lam) * 1.05
        assert res.mean_delay >= rect_mean_distance(r, c) * 0.98


class TestSquarestShape:
    def test_perfect_square(self):
        assert squarest_shape(36) == (6, 6)

    def test_rectangle(self):
        assert squarest_shape(24) == (4, 6)

    def test_prime_rejected(self):
        with pytest.raises(ValueError):
            squarest_shape(13)

    def test_squarer_is_better(self):
        """Equal node budget: the squarer mesh has more capacity and
        shorter routes."""
        r1, c1 = squarest_shape(36)  # 6x6
        cap_sq = rect_capacity(r1, c1)
        cap_strip = rect_capacity(2, 18)
        assert cap_sq > cap_strip
        assert rect_mean_distance(r1, c1) < rect_mean_distance(2, 18)
