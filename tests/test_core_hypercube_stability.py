"""Tests for Section 4.5 hypercube/butterfly gaps and stability predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypercube_bounds import (
    butterfly_gap,
    hypercube_delay_upper_bound,
    hypercube_edge_rate,
    hypercube_gap_copy,
    hypercube_gap_markov,
    hypercube_limit_scaled_bounds,
    hypercube_load,
    hypercube_markov_lower_bound,
    hypercube_mean_distance,
    st_limit_bracket,
)
from repro.core.stability import capacity, capacity_gain, is_stable, stability_margin


class TestHypercubeGaps:
    @given(st.integers(1, 16), st.floats(0.01, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_our_gap_below_2d(self, d, p):
        """Paper: 2(dp + 1 - p) < 2d for all p in (0, 1)."""
        assert hypercube_gap_markov(d, p) <= hypercube_gap_copy(d) + 1e-12
        if d > 1:
            assert hypercube_gap_markov(d, p) < hypercube_gap_copy(d)

    def test_uniform_case_d_plus_one(self):
        """p = 1/2 gives gap d + 1 (the paper's 'more usual case')."""
        for d in (3, 5, 10):
            assert hypercube_gap_markov(d, 0.5) == pytest.approx(d + 1)

    def test_small_p_approaches_two(self):
        assert hypercube_gap_markov(10, 1e-9) == pytest.approx(2.0, abs=1e-6)

    def test_butterfly_matches_st(self):
        for d in (2, 4, 8):
            assert butterfly_gap(d) == hypercube_gap_copy(d) == 2 * d

    def test_st_bracket(self):
        lo, hi = st_limit_bracket(6, 0.5)
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(3.0)


class TestHypercubeBounds:
    def test_edge_rate_and_load(self):
        assert hypercube_edge_rate(5, 1.2, 0.5) == pytest.approx(0.6)
        assert hypercube_load(5, 1.2, 0.5) == pytest.approx(0.6)

    def test_mean_distance(self):
        assert hypercube_mean_distance(8, 0.25) == 2.0

    @given(st.integers(2, 10), st.floats(0.1, 0.9), st.floats(0.1, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_lower_below_upper(self, d, p, rho):
        lam = rho / p
        lower = hypercube_markov_lower_bound(d, lam, p)
        upper = hypercube_delay_upper_bound(d, lam, p)
        assert lower <= upper + 1e-12

    def test_upper_is_dp_over_one_minus_rho(self):
        d, p, rho = 6, 0.5, 0.8
        lam = rho / p
        assert hypercube_delay_upper_bound(d, lam, p) == pytest.approx(
            d * p / (1 - rho)
        )

    def test_gap_realised_in_limit(self):
        """(1-rho)(UB - dp) over (1-rho)(LB - dp) tends to the gap ratio."""
        d, p = 5, 0.5
        lo_99, hi_99 = hypercube_limit_scaled_bounds(d, p, 0.9999)
        # hi -> dp; lo -> dp / (2(dp+1-p)), so hi/lo -> gap.
        assert hi_99 / lo_99 == pytest.approx(
            hypercube_gap_markov(d, p), rel=0.02
        )
        assert hi_99 == pytest.approx(d * p, rel=0.01)

    def test_unstable_raises(self):
        with pytest.raises(ValueError):
            hypercube_delay_upper_bound(4, 2.0, 0.5)


class TestStability:
    def test_is_stable_basic(self):
        assert is_stable(np.array([0.5, 0.9]))
        assert not is_stable(np.array([0.5, 1.0]))

    def test_margin_parameter(self):
        assert not is_stable(np.array([0.95]), margin=0.1)
        assert is_stable(np.array([0.85]), margin=0.1)

    def test_per_edge_service_rates(self):
        assert is_stable(np.array([1.5]), np.array([2.0]))

    def test_capacity_dispatch(self):
        assert capacity(6, configured="standard") == pytest.approx(4 / 6)
        assert capacity(6, configured="optimal") == pytest.approx(6 / 7)
        with pytest.raises(ValueError):
            capacity(6, configured="quantum")

    def test_capacity_gain_even(self):
        """(3/2) n/(n+1) for even n."""
        for n in (4, 6, 10):
            assert capacity_gain(n) == pytest.approx(1.5 * n / (n + 1))

    def test_stability_margin_sign(self):
        n = 6
        assert stability_margin(n, 0.5 * capacity(n)) == pytest.approx(0.5)
        assert stability_margin(n, 1.2 * capacity(n)) < 0

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            is_stable(np.array([0.5]), margin=1.0)
