"""Tests for the M/M/1/K loss queue (repro.queueing.mm1k)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing.mm1 import MM1Queue
from repro.queueing.mm1k import MM1KQueue

loads = st.floats(min_value=0.05, max_value=3.0)
capacities = st.integers(min_value=1, max_value=30)


class TestConstruction:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            MM1KQueue(lam=0.0, capacity=2)
        with pytest.raises(ValueError):
            MM1KQueue(lam=0.5, phi=-1.0, capacity=2)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            MM1KQueue(lam=0.5, capacity=0)
        with pytest.raises(ValueError, match="capacity"):
            MM1KQueue(lam=0.5, capacity=2.5)

    def test_from_buffer_translation(self):
        # buffer_size counts waiting room only; system capacity adds the
        # packet in service.
        assert MM1KQueue.from_buffer(0.8, 2).capacity == 3

    def test_overload_allowed(self):
        # No stability condition: the truncated chain is ergodic at any
        # positive load.
        q = MM1KQueue(lam=2.0, capacity=3)
        assert 0.0 < q.blocking_probability() < 1.0


class TestClosedForms:
    def test_truncated_geometric_hand_value(self):
        # rho=0.8, K=3: pi_3 = 0.8^3 / (1 + .8 + .64 + .512) = 0.173...
        q = MM1KQueue.from_buffer(0.8, 2)
        assert q.blocking_probability() == pytest.approx(0.512 / 2.952)

    def test_rho_one_is_uniform(self):
        q = MM1KQueue(lam=1.0, phi=1.0, capacity=4)
        assert q.number_pmf() == pytest.approx(np.full(5, 0.2))
        assert q.mean_number() == pytest.approx(2.0)

    @given(lam=loads, capacity=capacities)
    def test_pmf_is_a_distribution(self, lam, capacity):
        pmf = MM1KQueue(lam=lam, capacity=capacity).number_pmf()
        assert pmf.size == capacity + 1
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0)

    @given(lam=loads, capacity=capacities)
    def test_flow_balance(self, lam, capacity):
        # Accepted rate = service rate x busy fraction (the departure
        # rate of the birth-death chain in equilibrium). Tolerance covers
        # the pmf's uniform snap inside np.isclose(rho, 1) of rho = 1.
        q = MM1KQueue(lam=lam, capacity=capacity)
        assert q.throughput() == pytest.approx(q.phi * q.utilization(), rel=1e-4)

    @given(lam=st.floats(min_value=0.05, max_value=0.95))
    def test_large_capacity_converges_to_mm1(self, lam):
        q = MM1KQueue(lam=lam, capacity=200)
        ref = MM1Queue(lam)
        assert q.blocking_probability() < 1e-4
        assert q.mean_number() == pytest.approx(ref.mean_number(), rel=1e-3)
        assert q.mean_delay() == pytest.approx(ref.mean_delay(), rel=1e-3)

    def test_capacity_one_is_erlang_loss(self):
        # K=1 is the M/M/1/1 (Erlang-B with one server): B = a/(1+a).
        q = MM1KQueue(lam=0.6, capacity=1)
        assert q.blocking_probability() == pytest.approx(0.6 / 1.6)
        assert q.mean_number() == pytest.approx(q.utilization())

    def test_blocking_increases_with_load(self):
        blocks = [
            MM1KQueue(lam=lam, capacity=3).blocking_probability()
            for lam in (0.2, 0.5, 0.8, 1.2, 2.0)
        ]
        assert blocks == sorted(blocks)

    def test_mean_delay_is_littles_law_on_accepted_rate(self):
        q = MM1KQueue.from_buffer(0.8, 2)
        assert q.mean_delay() * q.throughput() == pytest.approx(q.mean_number())
