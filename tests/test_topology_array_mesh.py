"""Unit tests for repro.topology.array_mesh."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP, ArrayMesh, KDArray


class TestArrayMeshStructure:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_edge_count(self, n):
        mesh = ArrayMesh(n)
        assert mesh.num_edges == 4 * n * (n - 1)

    def test_rectangular(self):
        mesh = ArrayMesh(3, 5)
        assert mesh.num_nodes == 15
        # 2 * (rows*(cols-1) + (rows-1)*cols) edges.
        assert mesh.num_edges == 2 * (3 * 4 + 2 * 5)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ArrayMesh(1)

    def test_node_coords_roundtrip(self):
        mesh = ArrayMesh(4, 3)
        for v in range(mesh.num_nodes):
            i, j = mesh.node_coords(v)
            assert mesh.node_id(i, j) == v

    def test_node_id_bounds(self):
        mesh = ArrayMesh(3)
        with pytest.raises(ValueError):
            mesh.node_id(3, 0)
        with pytest.raises(ValueError):
            mesh.node_coords(9)

    def test_upper_left_is_zero(self):
        assert ArrayMesh(5).node_id(0, 0) == 0


class TestDirectedEdges:
    def test_right_edge_endpoints(self):
        mesh = ArrayMesh(3)
        e = mesh.directed_edge_id(1, 0, RIGHT)
        assert mesh.edge_endpoints(e) == (mesh.node_id(1, 0), mesh.node_id(1, 1))

    def test_left_edge_endpoints(self):
        mesh = ArrayMesh(3)
        e = mesh.directed_edge_id(1, 2, LEFT)
        assert mesh.edge_endpoints(e) == (mesh.node_id(1, 2), mesh.node_id(1, 1))

    def test_down_edge_endpoints(self):
        mesh = ArrayMesh(3)
        e = mesh.directed_edge_id(0, 2, DOWN)
        assert mesh.edge_endpoints(e) == (mesh.node_id(0, 2), mesh.node_id(1, 2))

    def test_up_edge_endpoints(self):
        mesh = ArrayMesh(3)
        e = mesh.directed_edge_id(2, 1, UP)
        assert mesh.edge_endpoints(e) == (mesh.node_id(2, 1), mesh.node_id(1, 1))

    def test_border_edges_rejected(self):
        mesh = ArrayMesh(3)
        with pytest.raises(ValueError):
            mesh.directed_edge_id(0, 2, RIGHT)
        with pytest.raises(ValueError):
            mesh.directed_edge_id(0, 0, LEFT)
        with pytest.raises(ValueError):
            mesh.directed_edge_id(2, 0, DOWN)
        with pytest.raises(ValueError):
            mesh.directed_edge_id(0, 0, UP)

    def test_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            ArrayMesh(3).directed_edge_id(0, 0, "diagonal")

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_direction_blocks_consistent(self, n):
        """edge_direction agrees with directed_edge_id for every edge."""
        mesh = ArrayMesh(n)
        seen = set()
        for i in range(n):
            for j in range(n):
                for direction, ok in (
                    (RIGHT, j < n - 1),
                    (LEFT, j > 0),
                    (DOWN, i < n - 1),
                    (UP, i > 0),
                ):
                    if ok:
                        e = mesh.directed_edge_id(i, j, direction)
                        assert mesh.edge_direction(e) == direction
                        assert mesh.edge_info(e) == (direction, i, j)
                        seen.add(e)
        assert seen == set(range(mesh.num_edges))

    def test_every_neighbor_pair_has_both_edges(self):
        mesh = ArrayMesh(4)
        for v in range(mesh.num_nodes):
            i, j = mesh.node_coords(v)
            for di, dj in ((0, 1), (1, 0)):
                if i + di < 4 and j + dj < 4:
                    w = mesh.node_id(i + di, j + dj)
                    assert mesh.has_edge(v, w) and mesh.has_edge(w, v)

    def test_side_property(self):
        assert ArrayMesh(4).side == 4
        with pytest.raises(ValueError):
            _ = ArrayMesh(3, 4).side


class TestKDArray:
    def test_matches_2d_mesh_structure(self):
        kd = KDArray((3, 3))
        mesh = ArrayMesh(3)
        assert kd.num_nodes == mesh.num_nodes
        assert kd.num_edges == mesh.num_edges

    def test_3d_counts(self):
        kd = KDArray((2, 3, 4))
        assert kd.num_nodes == 24
        # directed edges = 2 * sum over axes of (d_axis-1) * prod(others)
        expected = 2 * ((1 * 12) + (2 * 8) + (3 * 6))
        assert kd.num_edges == expected

    def test_coord_roundtrip(self):
        kd = KDArray((2, 3, 2))
        for v in range(kd.num_nodes):
            assert kd.node_id(kd.node_coords(v)) == v

    def test_blocks_partition_edges(self):
        kd = KDArray((3, 2))
        spans = [kd.block(a, s) for a in range(2) for s in (+1, -1)]
        covered = set()
        for lo, hi in spans:
            covered |= set(range(lo, hi))
        assert covered == set(range(kd.num_edges))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            KDArray((1, 3))
        with pytest.raises(ValueError):
            KDArray(())

    @given(st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_edges_connect_unit_steps(self, dims):
        """Property: every edge connects coordinates differing by one unit
        along exactly one axis."""
        kd = KDArray(tuple(dims))
        for e in range(kd.num_edges):
            u, v = kd.edge_endpoints(e)
            cu, cv = kd.node_coords(u), kd.node_coords(v)
            diffs = [abs(a - b) for a, b in zip(cu, cv)]
            assert sum(diffs) == 1 and max(diffs) == 1
