"""Tests for n-bar / n-bar-2 and generic route-length statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import (
    max_route_length,
    mean_axis_displacement,
    mean_distance,
    mean_distance_excluding_self,
    mean_route_length,
)
from repro.routing.destinations import (
    PBiasedHypercubeDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube


class TestClosedForms:
    @given(st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_nbar_formula(self, n):
        """n-bar = (2/3)(n - 1/n), from brute-force expectation."""
        coords = np.arange(1, n + 1)
        exact_axis = np.abs(coords[:, None] - coords[None, :]).mean()
        assert np.isclose(mean_distance(n), 2 * exact_axis)
        assert np.isclose(mean_axis_displacement(n), exact_axis)

    @given(st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_nbar2_is_2n_over_3(self, n):
        assert np.isclose(mean_distance_excluding_self(n), 2 * n / 3)

    @given(st.integers(2, 30))
    @settings(max_examples=30, deadline=None)
    def test_nbar2_relation(self, n):
        """n-bar-2 = n-bar * n^2/(n^2 - 1)."""
        assert np.isclose(
            mean_distance_excluding_self(n),
            mean_distance(n) * n * n / (n * n - 1),
        )

    def test_paper_values(self):
        # Table II's n-bar-2 column: 3.333, 6.667, 10, 13.333.
        assert mean_distance_excluding_self(5) == pytest.approx(10 / 3)
        assert mean_distance_excluding_self(10) == pytest.approx(20 / 3)
        assert mean_distance_excluding_self(15) == pytest.approx(10.0)
        assert mean_distance_excluding_self(20) == pytest.approx(40 / 3)


class TestGenericMeanRouteLength:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_matches_nbar_on_array(self, n):
        mesh = ArrayMesh(n)
        got = mean_route_length(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        assert np.isclose(got, mean_distance(n))

    def test_hypercube_dp(self):
        """Section 4.5: mean distance is d*p."""
        d, p = 4, 0.3
        cube = Hypercube(d)
        got = mean_route_length(
            GreedyHypercubeRouter(cube), PBiasedHypercubeDestinations(cube, p)
        )
        assert np.isclose(got, d * p)

    def test_source_weights(self):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(9)
        corner_only = mean_route_length(
            router, dests, source_nodes=[0], source_weights=[1.0]
        )
        # Corner sources travel further than average.
        assert corner_only > mean_distance(3)

    def test_weight_validation(self):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        with pytest.raises(ValueError):
            mean_route_length(
                router,
                UniformDestinations(9),
                source_nodes=[0, 1],
                source_weights=[1.0],
            )


class TestMaxRouteLength:
    @pytest.mark.parametrize("n", [2, 4, 5, 7])
    def test_array_diameter(self, n):
        """Theorem 10's d = 2(n-1) on the array."""
        mesh = ArrayMesh(n)
        assert max_route_length(GreedyArrayRouter(mesh)) == 2 * (n - 1)

    def test_hypercube_diameter(self):
        cube = Hypercube(4)
        assert max_route_length(GreedyHypercubeRouter(cube)) == 4

    def test_restricted_sources(self):
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        center = mesh.node_id(1, 1)
        got = max_route_length(router, source_nodes=[center])
        assert got == 2 + 2  # to the far corner
