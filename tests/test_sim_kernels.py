"""Tests for the kernels layer: backend selection, the numpy backend's
two-backend contract (seed stability + distribution-level parity with the
python reference), its validation errors, the optional-dependency
boundary, and the level cache / arena gather machinery it rides on."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.routing.base import TabulatedRouter
from repro.routing.destinations import (
    HotSpotDestinations,
    PermutationDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.pathcache import PathArena, path_cache_for
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.finite_buffer import FiniteBufferNetworkSimulation
from repro.sim.kernels import (
    FIFO_KERNEL,
    KERNEL_BACKENDS,
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    check_backend,
    get_kernel,
    numpy_available,
)
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.replication import CellSpec, replicate
from repro.sim.registry import get_engine
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus

from _helpers import AlwaysNodeZero

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# Selection layer.


class TestBackendSelection:
    def test_backend_vocabulary(self):
        assert KERNEL_BACKENDS == (PYTHON_BACKEND, NUMPY_BACKEND)
        assert check_backend("python") == "python"
        assert check_backend("numpy") == "numpy"  # numpy is installed here

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="python/numpy"):
            check_backend("jax")

    def test_numpy_is_available_in_this_environment(self):
        assert numpy_available()

    def test_get_kernel_unknown_kernel(self):
        with pytest.raises(ValueError, match="no 'warp' kernel"):
            get_kernel("warp", PYTHON_BACKEND)

    def test_engines_reject_bad_backend(self):
        mesh = ArrayMesh(4)
        for cls in (NetworkSimulation, SlottedNetworkSimulation):
            with pytest.raises(ValueError, match="python/numpy"):
                cls(
                    GreedyArrayRouter(mesh),
                    UniformDestinations(16),
                    0.1,
                    backend="fortran",
                )


# ----------------------------------------------------------------------
# Numpy-backend validation errors.


class TestNumpyBackendRejections:
    def _fifo(self, **kw):
        mesh = ArrayMesh(4)
        return NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(16),
            0.2,
            backend=NUMPY_BACKEND,
            **kw,
        )

    def _slotted(self):
        mesh = ArrayMesh(4)
        return SlottedNetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(16),
            0.2,
            backend=NUMPY_BACKEND,
        )

    @pytest.mark.parametrize(
        "opt",
        ["track_utilization", "track_number_distribution", "track_maxima"],
    )
    def test_fifo_rejects_unsupported_tracking(self, opt):
        with pytest.raises(ValueError, match="backend='python'"):
            self._fifo().run(0, 50, **{opt: True})

    def test_fifo_rejects_exponential_service(self):
        mesh = ArrayMesh(4)
        with pytest.raises(ValueError, match="uniform-deterministic"):
            NetworkSimulation(
                GreedyArrayRouter(mesh),
                UniformDestinations(16),
                0.2,
                service="exponential",
                backend=NUMPY_BACKEND,
            )

    def test_slotted_rejects_track_maxima(self):
        with pytest.raises(ValueError, match="backend='python'"):
            self._slotted().run(0, 50, track_maxima=True)

    def test_slotted_rejects_compat_rng(self):
        with pytest.raises(ValueError, match="batch_rng"):
            self._slotted().run(0, 50, batch_rng=False)

    def test_finite_rejects_numpy_with_caps(self):
        mesh = ArrayMesh(4)
        with pytest.raises(ValueError, match="finite buffers"):
            FiniteBufferNetworkSimulation(
                GreedyArrayRouter(mesh),
                UniformDestinations(16),
                0.2,
                buffer_size=4,
                backend=NUMPY_BACKEND,
            )

    def test_finite_without_caps_delegates_to_numpy_fifo(self):
        mesh = ArrayMesh(4)
        args = (GreedyArrayRouter(mesh), UniformDestinations(16), 0.2)
        fin = FiniteBufferNetworkSimulation(
            *args, buffer_size=None, backend=NUMPY_BACKEND, seed=5
        ).run(10, 200)
        fifo = NetworkSimulation(
            *args, backend=NUMPY_BACKEND, seed=5
        ).run(10, 200)
        assert fin.mean_delay == fifo.mean_delay
        assert fin.generated == fifo.generated


class TestCycleRejection:
    """The max-plus level sweep needs a feedforward edge-precedence
    graph; wrap-around and coin-dependent routes create cycles, which
    the kernel must reject with a pointer back to the reference."""

    def test_torus_routes_are_rejected(self):
        router = GreedyTorusRouter(Torus(4))
        sim = NetworkSimulation(
            router, UniformDestinations(16), 0.2, backend=NUMPY_BACKEND
        )
        with pytest.raises(ValueError, match="backend='python'"):
            sim.run(0, 100)

    def test_python_backend_still_runs_the_torus(self):
        router = GreedyTorusRouter(Torus(4))
        res = NetworkSimulation(router, UniformDestinations(16), 0.2).run(
            0, 100
        )
        assert res.generated > 0


# ----------------------------------------------------------------------
# The two-backend contract: seed stability and distribution parity.


def _mesh_sims(engine_cls, dests_factory, n, rate, seed, backend):
    mesh = ArrayMesh(n)
    return engine_cls(
        GreedyArrayRouter(mesh),
        dests_factory(n * n),
        rate,
        seed=seed,
        backend=backend,
    )


class TestSeedStability:
    @pytest.mark.parametrize("engine_cls", [NetworkSimulation, SlottedNetworkSimulation])
    def test_same_seed_same_result(self, engine_cls):
        horizon = (10, 300) if engine_cls is SlottedNetworkSimulation else (10.0, 300.0)
        a = _mesh_sims(engine_cls, UniformDestinations, 4, 0.2, 9, NUMPY_BACKEND).run(*horizon)
        b = _mesh_sims(engine_cls, UniformDestinations, 4, 0.2, 9, NUMPY_BACKEND).run(*horizon)
        assert a.mean_delay == b.mean_delay
        assert a.mean_number == b.mean_number
        assert a.generated == b.generated
        assert a.completed == b.completed


class TestDistributionParity:
    """Same law, same load: the two backends must estimate the same
    system (they are different samplings of one distribution). Same
    tolerance discipline as the slotted batch_rng parity tests."""

    @pytest.mark.parametrize(
        "dests_factory",
        [
            lambda n: UniformDestinations(n),
            lambda n: HotSpotDestinations(n, hot_node=7, h=0.3),
            lambda n: PermutationDestinations.transpose(ArrayMesh(6)),
        ],
        ids=["uniform", "hotspot", "transpose"],
    )
    @pytest.mark.parametrize(
        "engine_cls", [NetworkSimulation, SlottedNetworkSimulation],
        ids=["fifo", "slotted"],
    )
    def test_backends_estimate_the_same_system(self, engine_cls, dests_factory):
        slotted = engine_cls is SlottedNetworkSimulation
        window = (50, 1500) if slotted else (50.0, 1500.0)
        py = _mesh_sims(engine_cls, dests_factory, 6, 0.2, 1, PYTHON_BACKEND).run(*window)
        nu = _mesh_sims(engine_cls, dests_factory, 6, 0.2, 2, NUMPY_BACKEND).run(*window)
        tol = 0.35 + 3.0 * (py.delay_half_width + nu.delay_half_width)
        assert abs(py.mean_delay - nu.mean_delay) < tol
        assert nu.generated == pytest.approx(py.generated, rel=0.1)
        assert nu.completed > 0
        # The Little's-Law gap is a property of the workload (the hotspot
        # cell runs congested), not the backend: both must see the same one.
        assert nu.littles_law_gap == pytest.approx(py.littles_law_gap, abs=0.15)

    def test_uniform_4x4_is_workload_identical(self):
        """Under one draw block the batched streams coincide with the
        reference order for the uniform fast-id path, so the runs are
        not merely statistically close but equal."""
        py = _mesh_sims(
            NetworkSimulation, UniformDestinations, 4, 0.2, 3, PYTHON_BACKEND
        ).run(20.0, 400.0)
        nu = _mesh_sims(
            NetworkSimulation, UniformDestinations, 4, 0.2, 3, NUMPY_BACKEND
        ).run(20.0, 400.0)
        assert nu.generated == py.generated
        assert nu.mean_delay == pytest.approx(py.mean_delay, rel=1e-12)
        assert nu.mean_number == pytest.approx(py.mean_number, rel=1e-12)

    def test_slotted_uniform_4x4_shares_the_workload(self):
        """Per-slot Poisson blocks concatenate identically, so the two
        backends simulate the *same arrivals*; only equal-eligibility
        service ties may swap, which perturbs individual delays without
        moving the workload. Counts are exact, the mean is pinned far
        inside statistical tolerance."""
        py = _mesh_sims(
            SlottedNetworkSimulation, UniformDestinations, 4, 0.2, 3, PYTHON_BACKEND
        ).run(20, 400)
        nu = _mesh_sims(
            SlottedNetworkSimulation, UniformDestinations, 4, 0.2, 3, NUMPY_BACKEND
        ).run(20, 400)
        assert nu.generated == py.generated
        assert nu.zero_hop == py.zero_hop
        assert nu.mean_delay == pytest.approx(py.mean_delay, rel=0.01)
        assert nu.mean_number == pytest.approx(py.mean_number, rel=0.01)

    def test_collected_delays_match_summary(self):
        for engine_cls, window in [
            (NetworkSimulation, (10.0, 300.0)),
            (SlottedNetworkSimulation, (10, 300)),
        ]:
            res = _mesh_sims(
                engine_cls, UniformDestinations, 4, 0.2, 5, NUMPY_BACKEND
            ).run(*window, collect_delays=True)
            assert res.delays is not None
            assert len(res.delays) == res.completed
            assert float(np.sum(res.delays)) / len(res.delays) == pytest.approx(
                res.mean_delay, rel=1e-9
            )

    def test_saturated_tracking_parity(self):
        """mean_remaining_saturated is supported (unlike the maxima)
        and must estimate the same R_s as the reference."""
        mesh = ArrayMesh(6)
        mask = np.zeros(mesh.num_edges, dtype=bool)
        mask[: mesh.num_edges // 2] = True
        kw = dict(saturated_mask=mask)
        py = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(36), 0.2, seed=1, **kw
        ).run(50.0, 1500.0)
        nu = NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(36),
            0.2,
            seed=2,
            backend=NUMPY_BACKEND,
            **kw,
        ).run(50.0, 1500.0)
        assert nu.mean_remaining_saturated == pytest.approx(
            py.mean_remaining_saturated, abs=0.3 + 0.2 * py.mean_remaining_saturated
        )


class TestRandomizedRouterParity:
    def test_randomized_greedy_runs_on_numpy(self):
        """Coin draws ride the sampled-path cache; the level sweep must
        either solve the realised routes or reject them — never return
        silently wrong numbers. On the 4x4 mesh the realised visit
        orders stay feedforward-consistent often enough to solve."""
        mesh = ArrayMesh(4)
        router = RandomizedGreedyArrayRouter(mesh)
        try:
            res = NetworkSimulation(
                router, UniformDestinations(16), 0.2, seed=3,
                backend=NUMPY_BACKEND,
            ).run(10.0, 300.0)
        except ValueError as err:
            assert "backend='python'" in str(err)
            return
        assert res.completed > 0
        assert res.littles_law_gap < 0.25


# ----------------------------------------------------------------------
# Batched boundary draws (the side='right' contract, batch edition).


class BatchBoundaryRNG:
    """Wrap a Generator so the first *batched* ``random(m)`` call returns
    0.0 in its first element — the measure-zero CDF-boundary draw that
    the reference loops guard with ``side='right'``."""

    def __init__(self, inner):
        self._inner = inner
        self._first = True

    def random(self, *args, **kwargs):
        out = self._inner.random(*args, **kwargs)
        if self._first and args and np.ndim(out) == 1 and len(out):
            self._first = False
            out[0] = 0.0
        return out

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _two_node_router():
    line = LinearArray(2)
    return TabulatedRouter(
        line, {(0, 1): [0], (1, 0): [1], (0, 0): [], (1, 1): []}
    )


class TestBatchedSourceDrawBoundary:
    """node_rate=[0.0, 1.0]: a boundary draw in the blocked source batch
    must never pick the dead source (regression for the batched
    analogue of the side='left' bug)."""

    @pytest.mark.parametrize(
        "engine_cls, window",
        [(NetworkSimulation, (0.0, 300.0)), (SlottedNetworkSimulation, (0, 300))],
        ids=["fifo", "slotted"],
    )
    def test_zero_rate_source_never_generates(self, engine_cls, window, monkeypatch):
        real = np.random.default_rng
        monkeypatch.setattr(
            np.random, "default_rng", lambda seed=None: BatchBoundaryRNG(real(seed))
        )
        sim = engine_cls(
            _two_node_router(),
            AlwaysNodeZero(),
            [0.0, 1.0],
            seed=11,
            backend=NUMPY_BACKEND,
        )
        res = sim.run(*window)
        # Packets from source 0 would be zero-hop (dst == 0); with the
        # boundary draw handled, every packet originates at source 1.
        assert res.generated > 0
        assert res.zero_hop == 0


# ----------------------------------------------------------------------
# Level cache and arena gather.


class TestKernelLevelCache:
    def test_levels_cached_and_reused(self):
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        cache = path_cache_for(router)
        sim = NetworkSimulation(
            router, UniformDestinations(16), 0.2, seed=1,
            path_cache=cache, backend=NUMPY_BACKEND,
        )
        sim.run(0.0, 200.0)
        lvl = cache._kernel_levels
        assert lvl is not None
        NetworkSimulation(
            router, UniformDestinations(16), 0.2, seed=2,
            path_cache=cache, backend=NUMPY_BACKEND,
        ).run(0.0, 200.0)
        # Second run revalidates and keeps the cached assignment.
        assert cache._kernel_levels is lvl

    def test_cache_growth_matches_fresh_cache(self):
        """A shared cache that grew (new pairs, stale level vector) must
        produce the same trajectory as a fresh cache — revalidation, not
        staleness."""
        mesh = ArrayMesh(5)
        router = GreedyArrayRouter(mesh)
        shared = path_cache_for(router)
        # Warm with a narrow workload, then run a wide one on the grown cache.
        NetworkSimulation(
            router,
            HotSpotDestinations(25, hot_node=3, h=0.9),
            0.1,
            seed=1,
            path_cache=shared,
            backend=NUMPY_BACKEND,
        ).run(0.0, 100.0)
        grown = NetworkSimulation(
            router, UniformDestinations(25), 0.2, seed=4,
            path_cache=shared, backend=NUMPY_BACKEND,
        ).run(10.0, 300.0)
        fresh = NetworkSimulation(
            router, UniformDestinations(25), 0.2, seed=4,
            path_cache=path_cache_for(router), backend=NUMPY_BACKEND,
        ).run(10.0, 300.0)
        assert grown.mean_delay == fresh.mean_delay
        assert grown.mean_number == fresh.mean_number
        assert grown.generated == fresh.generated


class TestPathArenaGather:
    def _arena_with(self, paths):
        arena = PathArena()
        offlens = [(arena.add(p), len(p)) for p in paths]
        return arena, offlens

    def test_fast_path_matches_concatenation(self):
        arena, offlens = self._arena_with([[3, 1, 4], [1, 5], [9, 2, 6, 5]])
        offs = np.array([o for o, _ in offlens], dtype=np.int64)
        lens = np.array([ln for _, ln in offlens], dtype=np.int64)
        got = arena.gather(offs, lens)
        assert got.tolist() == [3, 1, 4, 1, 5, 9, 2, 6, 5]

    def test_zero_length_paths_use_fallback(self):
        arena, offlens = self._arena_with([[3, 1, 4], [1, 5]])
        offs = np.array([offlens[0][0], offlens[1][0], offlens[0][0]])
        lens = np.array([3, 0, 2])
        got = arena.gather(offs, lens)
        assert got.tolist() == [3, 1, 4, 3, 1]

    def test_repeated_and_out_of_order_views(self):
        arena, offlens = self._arena_with([[7, 8], [2, 4, 6]])
        offs = np.array([offlens[1][0], offlens[0][0], offlens[1][0]])
        lens = np.array([3, 2, 3])
        got = arena.gather(offs, lens)
        assert got.tolist() == [2, 4, 6, 7, 8, 2, 4, 6]


# ----------------------------------------------------------------------
# Optional-dependency boundary (subprocess isolation).


class TestOptionalDependencyBoundary:
    def _run(self, code):
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_python_backend_never_imports_numpy_backend(self):
        """backend='python' runs must not touch the vectorized module;
        a meta-path blocker turns any import attempt into a hard fail."""
        code = f"""
import sys
sys.path.insert(0, {SRC!r})

class Blocker:
    def find_spec(self, name, path=None, target=None):
        if name == "repro.sim.kernels.numpy_backend":
            raise ImportError("numpy_backend imported during a python-backend run")
        return None

sys.meta_path.insert(0, Blocker())

from repro.routing.greedy import GreedyArrayRouter
from repro.routing.destinations import UniformDestinations
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.sim.finite_buffer import FiniteBufferNetworkSimulation
from repro.topology.array_mesh import ArrayMesh

mesh = ArrayMesh(4)
args = (GreedyArrayRouter(mesh), UniformDestinations(16), 0.2)
assert NetworkSimulation(*args, seed=1).run(0, 100).generated > 0
assert SlottedNetworkSimulation(*args, seed=1).run(0, 100).generated > 0
assert FiniteBufferNetworkSimulation(*args, buffer_size=2, seed=1).run(0, 100).generated > 0
assert "repro.sim.kernels.numpy_backend" not in sys.modules
print("BOUNDARY-OK")
"""
        proc = self._run(code)
        assert proc.returncode == 0, proc.stderr
        assert "BOUNDARY-OK" in proc.stdout

    def test_kernels_package_works_without_numpy(self):
        """With numpy unfindable, the selection layer still imports
        (loaded standalone — the engines themselves require numpy, the
        *selection module* is the numpy-free boundary), reports
        unavailability, and raises the actionable error."""
        kernels_init = str(
            Path(SRC) / "repro" / "sim" / "kernels" / "__init__.py"
        )
        code = f"""
import importlib.util
import sys
sys.path = [p for p in sys.path if "site-packages" not in p and "dist-packages" not in p]
spec = importlib.util.spec_from_file_location("kernels_standalone", {kernels_init!r})
kernels = importlib.util.module_from_spec(spec)
spec.loader.exec_module(kernels)
assert not kernels.numpy_available()
assert kernels.check_backend("python") == "python"
try:
    kernels.check_backend("numpy")
except ValueError as err:
    assert "fast" in str(err) and "backend='python'" in str(err), err
else:
    raise AssertionError("check_backend('numpy') should have raised")
print("NO-NUMPY-OK")
"""
        proc = self._run(code)
        assert proc.returncode == 0, proc.stderr
        assert "NO-NUMPY-OK" in proc.stdout


# ----------------------------------------------------------------------
# Registry and facade integration.


class TestRegistryBackendParam:
    def test_kernel_engines_advertise_both_backends(self):
        for name in ("fifo", "slotted", "finite"):
            assert get_engine(name).backends == KERNEL_BACKENDS
        for name in ("rushed", "ps"):
            assert get_engine(name).backends == (PYTHON_BACKEND,)

    def test_backend_param_listed(self):
        for name in ("fifo", "slotted", "finite"):
            param = get_engine(name).param("backend")
            assert param.choices == KERNEL_BACKENDS
            assert param.default == PYTHON_BACKEND

    def test_spec_rejects_numpy_with_track_maxima(self):
        with pytest.raises(ValueError, match="track_maxima"):
            CellSpec(
                scenario="uniform",
                n=4,
                node_rate=0.3,
                track_maxima=True,
                engine_params=(("backend", "numpy"),),
            )

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="python/numpy"):
            CellSpec(
                scenario="uniform",
                n=4,
                node_rate=0.3,
                engine_params=(("backend", "mlx"),),
            )

    @pytest.mark.parametrize("engine", ["fifo", "slotted", "finite"])
    def test_numpy_replication_runs(self, engine):
        spec = CellSpec(
            scenario="uniform",
            n=4,
            node_rate=0.3,
            engine=engine,
            warmup=10,
            horizon=150,
            seeds=(0, 1),
            engine_params=(("backend", "numpy"),),
        )
        pooled = replicate(spec, processes=1)
        assert all(r.completed > 0 for r in pooled.replications)

    def test_slotted_cell_splits_constructor_and_run_params(self):
        spec = CellSpec(
            scenario="uniform",
            n=4,
            node_rate=0.3,
            engine="slotted",
            warmup=10,
            horizon=150,
            seeds=(0,),
            engine_params=(("backend", "python"), ("batch_rng", False)),
        )
        pooled = replicate(spec, processes=1)
        assert pooled.replications[0].completed > 0


class TestPSEventQueue:
    def _spec(self, **ep):
        return CellSpec(
            scenario="uniform",
            n=4,
            node_rate=0.3,
            engine="ps",
            warmup=10,
            horizon=200,
            seeds=(0,),
            engine_params=tuple(sorted(ep.items())),
        )

    def test_all_queue_kinds_are_bit_identical(self):
        results = [
            replicate(self._spec(event_queue=kind), processes=1)
            for kind in ("calendar", "calendar-fixed", "heap")
        ]
        base = results[0].replications[0]
        for pooled in results[1:]:
            rep = pooled.replications[0]
            assert rep.mean_delay == base.mean_delay
            assert rep.mean_number == base.mean_number
            assert rep.generated == base.generated

    def test_constructor_validates_kind(self):
        mesh = ArrayMesh(4)
        with pytest.raises(ValueError, match="event_queue"):
            PSNetworkSimulation(
                GreedyArrayRouter(mesh),
                UniformDestinations(16),
                0.2,
                event_queue="fibonacci",
            )
