"""Tests for the shared-memory replication fan-out.

The contract under test: publishing a batch's cell state into shared
memory and running replications on a warm pool changes *nothing* about
the results — same-seed outputs are bit-identical to the serial
in-process path for every registered engine — while the per-job payload
shrinks to a token-sized tuple and every shared block is unlinked.
"""

import pickle

import numpy as np
import pytest

from repro.scenarios import resolve_cell
from repro.sim import sharedcells
from repro.sim.replication import CellSpec, ReplicationEngine
from repro.sim.sharedcells import (
    SharedCellBatch,
    publish_cells,
    run_seed_chunk,
    warm_cell,
)

WINDOW = dict(warmup=30, horizon=250)


def _resolved(spec):
    return (spec, *resolve_cell(spec))


class TestPublish:
    def test_snapshot_published_for_small_network(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        with publish_cells([_resolved(spec)]) as batch:
            meta = pickle.loads(
                bytes(
                    batch._shm.buf[batch.token[1] : batch.token[1] + batch.token[2]]
                )
            )["cells"][0]
            assert "cache" in meta
            assert meta["cache"]["kind"] == "deterministic"
            assert meta["node_rate"] == pytest.approx(resolve_cell(spec)[0])

    def test_randomized_cache_publishes_both_orders(self):
        spec = CellSpec(scenario="randomized", n=4, rho=0.5, **WINDOW)
        with publish_cells([_resolved(spec)]) as batch:
            meta = pickle.loads(
                bytes(
                    batch._shm.buf[batch.token[1] : batch.token[1] + batch.token[2]]
                )
            )["cells"][0]
            assert meta["cache"]["kind"] == "randomized"
            assert {"row_off", "row_len", "col_off", "col_len"} <= set(
                meta["cache"]
            )

    def test_job_payload_is_token_sized(self):
        """The acceptance criterion: no network/arena in the pickled job."""
        spec = CellSpec(scenario="uniform", n=8, rho=0.8, **WINDOW)
        with publish_cells([_resolved(spec)]) as batch:
            job = (batch.token, 0, 0, spec.seeds)
            assert len(pickle.dumps(job)) < 512

    def test_close_is_idempotent_and_unlinks(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        batch = SharedCellBatch([_resolved(spec)])
        name = batch.token[0]
        batch.close()
        batch.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_warm_cell_precomputes_small_networks(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        _net, cache = warm_cell(spec)
        assert cache.complete

    def test_warm_cell_skips_large_networks(self):
        side = sharedcells.PRECOMPUTE_NODE_LIMIT  # side**2 nodes >> limit
        spec = CellSpec(scenario="uniform", n=side, rho=0.5, **WINDOW)
        _net, cache = warm_cell(spec)
        assert not cache.complete


class TestRunSeedChunk:
    def test_chunk_matches_serial_run(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.6, seeds=(3, 4), **WINDOW)
        serial = ReplicationEngine(processes=1).run(spec)
        with publish_cells([_resolved(spec)]) as batch:
            idx, pos, reps = run_seed_chunk((batch.token, 0, 0, spec.seeds))
        assert (idx, pos) == (0, 0)
        assert [r.mean_delay for r in reps] == [
            r.mean_delay for r in serial.replications
        ]

    def test_adopted_cache_is_complete_readonly_snapshot(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.6, **WINDOW)
        with publish_cells([_resolved(spec)]) as batch:
            # Clear the in-process memo so adoption actually runs (in a
            # real pool the worker process starts with its own memo).
            sharedcells._NETWORK_MEMO.clear()
            attached = sharedcells._AttachedBatch(batch.token)
            try:
                meta = attached.registry["cells"][0]
                _net, cache = sharedcells._adopt_cell(
                    meta["spec"], meta, attached
                )
                assert cache.complete
                assert not cache._dense_off.flags.writeable
                # The adopted arena view is the shared block itself.
                assert cache.arena.as_array().dtype == np.int32
            finally:
                # Drop the adopted views before closing the attachment so
                # the shared block releases cleanly.
                sharedcells._NETWORK_MEMO.clear()
                del cache
                attached.release()


@pytest.mark.parametrize("engine", ["fifo", "slotted", "rushed", "finite", "ps"])
class TestParallelBitIdentity:
    """Same seeds, shared-memory pool vs serial: bit-identical results."""

    def test_engine_parity(self, engine):
        spec = CellSpec(
            scenario="uniform", n=4, rho=0.6, engine=engine,
            seeds=(0, 1, 2, 3), **WINDOW,
        )
        serial = ReplicationEngine(processes=1).run(spec)
        parallel = ReplicationEngine(processes=2).run(spec)
        for s, p in zip(serial.replications, parallel.replications):
            assert s.mean_delay == p.mean_delay
            assert s.mean_number == p.mean_number
            assert s.generated == p.generated
            assert s.r == p.r or (np.isnan(s.r) and np.isnan(p.r))


class TestStreamingFold:
    def test_mixed_batch_matches_serial(self):
        specs = [
            CellSpec(scenario="uniform", n=4, rho=0.5, seeds=(0, 1, 2), **WINDOW),
            CellSpec(scenario="hotspot", n=4, rho=0.7, seeds=(5,), **WINDOW),
            CellSpec(
                scenario="uniform", n=4, rho=0.9, seeds=(7, 8),
                track_saturated=True, **WINDOW,
            ),
        ]
        serial = ReplicationEngine(processes=1).run_many(specs)
        parallel = ReplicationEngine(processes=3).run_many(specs)
        for s, p in zip(serial, parallel):
            assert s.node_rate == p.node_rate
            assert [r.seed for r in p.replications] == list(p.spec.seeds)
            for rs, rp in zip(s.replications, p.replications):
                assert rs.mean_delay == rp.mean_delay
                assert rs.generated == rp.generated

    def test_on_result_streams_every_cell(self):
        specs = [
            CellSpec(scenario="uniform", n=4, rho=r, seeds=(0, 1), **WINDOW)
            for r in (0.4, 0.6)
        ]
        seen = []
        out = ReplicationEngine(processes=2).run_many(
            specs, on_result=lambda res: seen.append(res.spec.rho)
        )
        assert sorted(seen) == [0.4, 0.6]
        assert [o.spec.rho for o in out] == [0.4, 0.6]
