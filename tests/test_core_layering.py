"""Tests for Lemma 2 layering, the generic validator, and the torus
obstruction (Section 6)."""

import numpy as np
import pytest

from repro.core.layering import (
    array_layering_labels,
    find_layering_obstruction,
    follows_digraph,
    layering_from_follows,
    render_figure1,
    verify_layering,
)
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.topology.array_mesh import ArrayMesh
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus


class TestLemma2Labels:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_labelling_layers_the_array(self, n):
        mesh = ArrayMesh(n)
        labels = array_layering_labels(mesh)
        assert verify_layering(GreedyArrayRouter(mesh), labels)

    def test_label_values_match_paper_table(self):
        """Spot-check the four formulas at specific edges (1-based paper)."""
        n = 5
        mesh = ArrayMesh(n)
        labels = array_layering_labels(mesh)
        # right edge ((2,3),(2,4)): label j = 3  ->  0-based (1,2)
        assert labels[mesh.directed_edge_id(1, 2, "right")] == 3
        # left edge ((2,4),(2,3)): label n - j = 2
        assert labels[mesh.directed_edge_id(1, 3, "left")] == 2
        # down edge ((2,3),(3,3)): label n + i - 1 = 6
        assert labels[mesh.directed_edge_id(1, 2, "down")] == 6
        # up edge ((3,3),(2,3)): label 2n - i - 1 = 7 with i = 2
        assert labels[mesh.directed_edge_id(2, 2, "up")] == 7

    def test_row_labels_below_column_labels(self):
        n = 6
        mesh = ArrayMesh(n)
        labels = array_layering_labels(mesh)
        h = mesh.horizontal_edge_count()
        assert labels[: 2 * h].max() == n - 1
        assert labels[2 * h :].min() == n

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            array_layering_labels(ArrayMesh(3, 4))

    def test_render_contains_labels(self):
        text = render_figure1(3)
        assert "R1" in text and "D" in text


class TestVerifyLayering:
    def test_rejects_bad_labelling(self, mesh4, router4):
        labels = np.zeros(mesh4.num_edges, dtype=int)  # all equal: not strict
        assert not verify_layering(router4, labels)

    def test_shape_mismatch(self, router4):
        with pytest.raises(ValueError):
            verify_layering(router4, np.zeros(3))

    def test_butterfly_level_labels_layer(self):
        b = Butterfly(3)
        router = ButterflyRouter(b)
        labels = np.array([b.edge_level(e) for e in range(b.num_edges)])
        sources = [b.node_id(0, r) for r in range(b.rows)]
        dests = [b.node_id(3, r) for r in range(b.rows)]
        assert verify_layering(router, labels, source_nodes=sources, dest_nodes=dests)

    def test_hypercube_dimension_labels_layer(self):
        cube = Hypercube(3)
        router = GreedyHypercubeRouter(cube)
        labels = np.array(
            [cube.edge_dimension(e) for e in range(cube.num_edges)]
        )
        assert verify_layering(router, labels)


class TestFollowsDigraphAndObstruction:
    def test_array_is_acyclic_with_topo_labels(self, mesh4, router4):
        auto = layering_from_follows(router4)
        assert auto is not None
        assert verify_layering(router4, auto)

    def test_array_no_obstruction(self, router4):
        assert find_layering_obstruction(router4) is None

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_torus_has_obstruction(self, n):
        """Section 6: greedy on the torus routes around directed rings, so
        no layering exists; the witness is a cycle in the follows graph."""
        router = GreedyTorusRouter(Torus(n))
        cycle = find_layering_obstruction(router)
        assert cycle is not None and len(cycle) >= 2

    def test_torus_layering_from_follows_is_none(self):
        assert layering_from_follows(GreedyTorusRouter(Torus(4))) is None

    def test_torus_3_is_degenerately_layerable(self):
        """Shortest-way greedy on the 3x3 torus has legs of at most one
        edge, so no ring is ever traversed and a layering exists — the
        degenerate exception documented in repro.core.layering."""
        router = GreedyTorusRouter(Torus(3))
        labels = layering_from_follows(router)
        assert labels is not None
        assert verify_layering(router, labels)

    def test_follows_digraph_edges_are_consecutive_pairs(self, mesh4, router4):
        g = follows_digraph(router4)
        for a, b in g.edges():
            # consecutive edges must share the intermediate node
            assert mesh4.edge_endpoints(a)[1] == mesh4.edge_endpoints(b)[0]
