"""Tests for the Section 4.2 M/D/1 estimate — including the digit-exact
reproduction of every printed Table I estimate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.md1_approx import (
    delay_md1_estimate,
    lemma9_ratio,
    md1_network_number,
)
from repro.core.rates import lambda_for_load
from repro.core.upper_bound import delay_upper_bound
from repro.queueing.md1 import MD1Queue

#: Every T(Est.) value printed in the paper's Table I.
PAPER_TABLE1_EST = {
    (5, 0.2): 3.256, (5, 0.5): 3.722, (5, 0.8): 5.984,
    (5, 0.9): 8.970, (5, 0.95): 12.877, (5, 0.99): 21.384,
    (10, 0.2): 6.711, (10, 0.5): 7.641, (10, 0.8): 12.183,
    (10, 0.9): 18.444, (10, 0.95): 28.014, (10, 0.99): 77.309,
    (15, 0.2): 10.123, (15, 0.5): 11.518, (15, 0.8): 18.329,
    (15, 0.9): 27.718, (15, 0.95): 41.990, (15, 0.99): 103.312,
    (20, 0.2): 13.523, (20, 0.5): 15.383, (20, 0.8): 24.465,
    (20, 0.9): 36.983, (20, 0.95): 56.015, (20, 0.99): 141.127,
}


class TestPaperTableExact:
    @pytest.mark.parametrize(("n", "rho"), sorted(PAPER_TABLE1_EST))
    def test_reproduces_printed_estimate(self, n, rho):
        """The 'paper' variant with the table1 load convention reproduces
        the journal's printed estimate to the printed precision."""
        lam = lambda_for_load(n, rho, "table1")
        est = delay_md1_estimate(n, lam, variant="paper")
        assert est == pytest.approx(PAPER_TABLE1_EST[(n, rho)], abs=5e-4)

    def test_paper_display_formula_identity(self):
        """The per-edge 'paper' term equals the journal's display
        a[(n-a)^2 + n^2] / (2 n^2 (n-a)) summed form."""
        n, rho = 7, 0.6
        lam = 4 * rho / n
        displayed = (4.0 / (lam * n)) * sum(
            (lam * i * (n - i))
            * ((n - lam * i * (n - i)) ** 2 + n * n)
            / (2 * n * n * (n - lam * i * (n - i)))
            for i in range(1, n)
        )
        assert delay_md1_estimate(n, lam, variant="paper") == pytest.approx(
            displayed
        )


class TestVariants:
    @given(st.integers(3, 20), st.floats(0.05, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_pk_above_paper_variant(self, n, rho):
        """The textbook estimate includes the residual-service term the
        paper's display drops, so it is strictly larger at positive load."""
        lam = lambda_for_load(n, rho, "table1")
        pk = delay_md1_estimate(n, lam, variant="pk")
        paper = delay_md1_estimate(n, lam, variant="paper")
        assert pk > paper

    @given(st.integers(3, 15), st.floats(0.05, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_estimate_below_upper_bound(self, n, rho):
        """Both estimate variants sit below the Theorem 7 (M/M/1) bound."""
        lam = lambda_for_load(n, rho, "table1")
        ub = delay_upper_bound(n, lam)
        assert delay_md1_estimate(n, lam, variant="pk") <= ub + 1e-12
        assert delay_md1_estimate(n, lam, variant="paper") <= ub + 1e-12

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            delay_md1_estimate(5, 0.1, variant="nope")

    def test_unstable_rate(self):
        with pytest.raises(ValueError, match="unstable"):
            delay_md1_estimate(6, 4.0 / 6, variant="pk")


class TestNetworkNumber:
    def test_pk_sums_md1_queues(self):
        rates = np.array([0.2, 0.5, 0.7])
        expected = sum(MD1Queue(r).mean_number() for r in rates)
        assert md1_network_number(rates, variant="pk") == pytest.approx(expected)

    def test_zero_rates_contribute_nothing(self):
        assert md1_network_number(np.array([0.0, 0.0])) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            md1_network_number(np.array([-0.1]))


class TestLemma9:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.97), min_size=1, max_size=10)
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_between_one_and_two(self, rates):
        ratio = lemma9_ratio(np.asarray(rates))
        assert 1.0 - 1e-12 <= ratio <= 2.0 + 1e-12

    def test_light_limit(self):
        assert lemma9_ratio(np.array([1e-9])) == pytest.approx(1.0, abs=1e-6)

    def test_heavy_limit(self):
        assert lemma9_ratio(np.array([0.99999])) == pytest.approx(2.0, abs=1e-3)

    def test_no_traffic(self):
        assert lemma9_ratio(np.array([0.0])) == 1.0
