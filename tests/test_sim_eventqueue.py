"""Tests for the calendar queue (repro.sim.eventqueue).

The only contract that matters is *heapq-identical pop order*: the
simulators' golden fixtures pin outputs, so any ordering drift in the
queue is a correctness bug, not a performance detail.
"""

import heapq
import random

import pytest

from repro.sim.eventqueue import (
    CALENDAR,
    HEAP,
    CalendarQueue,
    HeapEventQueue,
    make_event_queue,
)


def _random_workload(rng, width, steps=400):
    """Interleaved push/pop trace compared item-by-item against heapq."""
    cq = CalendarQueue(width)
    h = []
    seq = 0
    t = 0.0
    while steps:
        steps -= 1
        if rng.random() < 0.55 or not h:
            for _ in range(rng.randint(1, 3)):
                item = (
                    t + rng.expovariate(1.0) * rng.choice([0.01, 1.0, 40.0]),
                    seq,
                    rng.randint(-1, 5),
                    None,
                )
                cq.push(item)
                heapq.heappush(h, item)
                seq += 1
        else:
            got, want = cq.pop(), heapq.heappop(h)
            assert got == want
            t = got[0]
    while h:
        assert cq.pop() == heapq.heappop(h)
    assert len(cq) == 0 and not cq


class TestCalendarQueue:
    @pytest.mark.parametrize("width", [1e-3, 0.05, 1.0, 7.3])
    def test_matches_heapq_order_exactly(self, width):
        rng = random.Random(width)
        for _ in range(20):
            _random_workload(rng, width)

    def test_simultaneous_events_pop_in_seq_order(self):
        cq = CalendarQueue(0.5)
        items = [(1.0, s, s % 3, None) for s in range(10)]
        for item in reversed(items):
            cq.push(item)
        assert [cq.pop() for _ in items] == items

    def test_same_bucket_push_during_processing(self):
        """A push into the active bucket lands in exact order."""
        cq = CalendarQueue(10.0)  # everything in one bucket
        cq.push((1.0, 0, 0, None))
        cq.push((5.0, 1, 0, None))
        assert cq.pop() == (1.0, 0, 0, None)
        cq.push((3.0, 2, 0, None))  # active-bucket insert
        assert cq.pop() == (3.0, 2, 0, None)
        assert cq.pop() == (5.0, 1, 0, None)

    def test_defensive_early_push_stays_ordered(self):
        """A push behind the active bucket (impossible in the engines,
        guarded anyway) still pops in exact order."""
        cq = CalendarQueue(1.0)
        cq.push((5.5, 0, 0, None))
        assert cq.pop() == (5.5, 0, 0, None)  # active bucket is now day 5
        cq.push((0.5, 1, 0, None))  # behind the active day
        cq.push((5.7, 2, 0, None))
        assert cq.pop() == (0.5, 1, 0, None)
        assert cq.pop() == (5.7, 2, 0, None)
        assert len(cq) == 0

    def test_pop_empty_raises(self):
        cq = CalendarQueue(1.0)
        with pytest.raises(IndexError):
            cq.pop()
        cq.push((1.0, 0, 0, None))
        cq.pop()
        with pytest.raises(IndexError):
            cq.pop()

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            CalendarQueue(0.0)
        with pytest.raises(ValueError):
            CalendarQueue(-1.0)


class TestMakeEventQueue:
    def test_dispatch(self):
        assert isinstance(make_event_queue(CALENDAR, width=1.0), CalendarQueue)
        assert isinstance(make_event_queue(HEAP, width=1.0), HeapEventQueue)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_event_queue("splay", width=1.0)

    def test_heap_adapter_matches_heapq(self):
        q = HeapEventQueue()
        items = [(3.0, 0), (1.0, 1), (2.0, 2)]
        for item in items:
            q.push(item)
        assert len(q) == 3 and q
        assert [q.pop() for _ in items] == sorted(items)
        assert not q
