"""Tests for the calendar queue (repro.sim.eventqueue).

The only contract that matters is *heapq-identical pop order*: the
simulators' golden fixtures pin outputs, so any ordering drift in the
queue is a correctness bug, not a performance detail.
"""

import heapq
import random

import pytest

from repro.sim.eventqueue import (
    CALENDAR,
    CALENDAR_FIXED,
    HEAP,
    CalendarQueue,
    HeapEventQueue,
    make_event_queue,
)


def _random_workload(rng, width, steps=400):
    """Interleaved push/pop trace compared item-by-item against heapq."""
    cq = CalendarQueue(width)
    h = []
    seq = 0
    t = 0.0
    while steps:
        steps -= 1
        if rng.random() < 0.55 or not h:
            for _ in range(rng.randint(1, 3)):
                item = (
                    t + rng.expovariate(1.0) * rng.choice([0.01, 1.0, 40.0]),
                    seq,
                    rng.randint(-1, 5),
                    None,
                )
                cq.push(item)
                heapq.heappush(h, item)
                seq += 1
        else:
            got, want = cq.pop(), heapq.heappop(h)
            assert got == want
            t = got[0]
    while h:
        assert cq.pop() == heapq.heappop(h)
    assert len(cq) == 0 and not cq


class TestCalendarQueue:
    @pytest.mark.parametrize("width", [1e-3, 0.05, 1.0, 7.3])
    def test_matches_heapq_order_exactly(self, width):
        rng = random.Random(width)
        for _ in range(20):
            _random_workload(rng, width)

    def test_simultaneous_events_pop_in_seq_order(self):
        cq = CalendarQueue(0.5)
        items = [(1.0, s, s % 3, None) for s in range(10)]
        for item in reversed(items):
            cq.push(item)
        assert [cq.pop() for _ in items] == items

    def test_same_bucket_push_during_processing(self):
        """A push into the active bucket lands in exact order."""
        cq = CalendarQueue(10.0)  # everything in one bucket
        cq.push((1.0, 0, 0, None))
        cq.push((5.0, 1, 0, None))
        assert cq.pop() == (1.0, 0, 0, None)
        cq.push((3.0, 2, 0, None))  # active-bucket insert
        assert cq.pop() == (3.0, 2, 0, None)
        assert cq.pop() == (5.0, 1, 0, None)

    def test_defensive_early_push_stays_ordered(self):
        """A push behind the active bucket (impossible in the engines,
        guarded anyway) still pops in exact order."""
        cq = CalendarQueue(1.0)
        cq.push((5.5, 0, 0, None))
        assert cq.pop() == (5.5, 0, 0, None)  # active bucket is now day 5
        cq.push((0.5, 1, 0, None))  # behind the active day
        cq.push((5.7, 2, 0, None))
        assert cq.pop() == (0.5, 1, 0, None)
        assert cq.pop() == (5.7, 2, 0, None)
        assert len(cq) == 0

    def test_pop_empty_raises(self):
        cq = CalendarQueue(1.0)
        with pytest.raises(IndexError):
            cq.pop()
        cq.push((1.0, 0, 0, None))
        cq.pop()
        with pytest.raises(IndexError):
            cq.pop()

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            CalendarQueue(0.0)
        with pytest.raises(ValueError):
            CalendarQueue(-1.0)


class TestAdaptiveWidths:
    """Brown's-rule resizing: the width tracks the event population, and
    rebucketing never perturbs the heapq pop order."""

    def _backlog(self, queue, n, scale, seed=5):
        rng = random.Random(seed)
        items = []
        for s in range(n):
            items.append((rng.expovariate(1.0) * scale + 1.0, s, 0, None))
        for item in items:
            queue.push(item)
        return sorted(items)

    def test_resize_triggers_and_adapts_width(self):
        """A backlog far above the resize floor with a wildly wrong
        initial width gets re-estimated to the event spacing scale."""
        cq = CalendarQueue(1e6)  # absurd initial width
        want = self._backlog(cq, 2000, 10.0)
        got = [cq.pop() for _ in want]
        assert got == want
        assert cq.resize_count >= 1
        # Brown's estimate: ~3x the average separation of the sampled
        # earliest events — orders of magnitude below the initial guess.
        assert cq.width < 1e3

    def test_fixed_mode_never_resizes(self):
        cq = CalendarQueue(1e6, adaptive=False)
        want = self._backlog(cq, 2000, 10.0)
        assert [cq.pop() for _ in want] == want
        assert cq.resize_count == 0
        assert cq.width == 1e6

    def test_adaptive_matches_heapq_with_interleaved_pushes(self):
        """The full DES pattern — pops interleaved with pushes at and
        after the current time — across multiple resizes."""
        rng = random.Random(99)
        cq = CalendarQueue(1e5)
        h = []
        seq = 0
        for _ in range(1500):
            item = (rng.expovariate(1.0) * 25.0, seq, 0, None)
            cq.push(item)
            heapq.heappush(h, item)
            seq += 1
        while h:
            got, want = cq.pop(), heapq.heappop(h)
            assert got == want
            if rng.random() < 0.5:
                item = (got[0] + rng.expovariate(2.0), seq, 1, None)
                cq.push(item)
                heapq.heappush(h, item)
                seq += 1
        assert not cq
        assert cq.resize_count >= 1

    def test_early_items_survive_a_resize(self):
        """Defensively-queued early items are folded into the rebucketed
        map without losing their place in the total order."""
        cq = CalendarQueue(1.0)
        cq.push((5.5, 0, 0, None))
        assert cq.pop() == (5.5, 0, 0, None)
        cq.push((0.5, 1, 0, None))  # behind the active day -> early heap
        # Pile on enough future work to cross the resize floor.
        want = self._backlog(cq, 1500, 3.0, seed=7)
        assert cq.pop() == (0.5, 1, 0, None)
        rest = [cq.pop() for _ in want]
        assert rest == want
        assert len(cq) == 0


class TestMakeEventQueue:
    def test_dispatch(self):
        cal = make_event_queue(CALENDAR, width=1.0)
        assert isinstance(cal, CalendarQueue) and cal._adaptive
        fixed = make_event_queue(CALENDAR_FIXED, width=1.0)
        assert isinstance(fixed, CalendarQueue) and not fixed._adaptive
        assert isinstance(make_event_queue(HEAP, width=1.0), HeapEventQueue)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_event_queue("splay", width=1.0)

    def test_heap_adapter_matches_heapq(self):
        q = HeapEventQueue()
        items = [(3.0, 0), (1.0, 1), (2.0, 2)]
        for item in items:
            q.push(item)
        assert len(q) == 3 and q
        assert [q.pop() for _ in items] == sorted(items)
        assert not q
