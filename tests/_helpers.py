"""Shared helpers for the engine regression tests."""

from __future__ import annotations

import numpy as np


class AlwaysNodeZero:
    """Destination law sending every packet to node 0 (src 0 is zero-hop)."""

    num_nodes = 2

    def sample(self, src, rng):
        return 0

    def pmf(self, src):
        v = np.zeros(2)
        v[0] = 1.0
        return v


class BoundaryRNG:
    """Wrap a Generator so the first bare ``random()`` call returns 0.0.

    A draw landing exactly on a CDF boundary is measure-zero, so the
    regressions for the ``side='left'`` source-selection bug force it.
    """

    def __init__(self, inner):
        self._inner = inner
        self._first = True

    def random(self, *args, **kwargs):
        if self._first and not args and not kwargs:
            self._first = False
            return 0.0
        return self._inner.random(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)
