"""Tests for the engine registry and the extracted constructor policy.

Covers the three regression surfaces the registry redesign introduced:

* :class:`repro.sim.enginecommon.EngineCommon` — the shared source-rate /
  fast-id / pinned-CDF policy block, including the load-bearing
  identity-vs-sorted fast-id ordering difference between the slotted and
  event-driven engines, and the boundary-safe source-CDF draw;
* :mod:`repro.sim.registry` — name/alias resolution and the typed
  ``engine_params`` metadata;
* the facade round trip — every registered engine runs end-to-end through
  ``CellSpec -> ReplicationEngine.run`` on a small cell.
"""

import numpy as np
import pytest

from repro.routing.destinations import HotSpotDestinations, UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.enginecommon import (
    IDENTITY_IDS,
    NO_FAST_IDS,
    SORTED_IDS,
    EngineCommon,
    resolve_saturated_mask,
    resolve_service_rates,
)
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.registry import (
    available_engines,
    canonical_engine,
    engine_names,
    get_engine,
)
from repro.sim.replication import CellSpec, ReplicationEngine
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh


def _mesh(n=4):
    return GreedyArrayRouter(ArrayMesh(n))


class TestFastIdOrdering:
    """Slotted requires the identity source order for its fast-id batch
    draw; the event-driven engines only require sorted order. That
    difference is load-bearing: losing it would either disable the event
    engines' fast path for permuted-but-complete source lists, or
    silently corrupt the slotted compat kernel's replay of the legacy
    stream (where a drawn id *is* the source's index)."""

    PERMUTED = [1, 0] + list(range(2, 16))  # full node set, not identity

    def test_sorted_mode_accepts_permuted_full_set(self):
        c = EngineCommon(
            _mesh(), UniformDestinations(16), 0.2,
            source_nodes=self.PERMUTED, fast_id_order=SORTED_IDS,
        )
        assert c.fast_ids

    def test_identity_mode_rejects_permuted_full_set(self):
        c = EngineCommon(
            _mesh(), UniformDestinations(16), 0.2,
            source_nodes=self.PERMUTED, fast_id_order=IDENTITY_IDS,
        )
        assert not c.fast_ids

    def test_identity_mode_accepts_identity_order(self):
        c = EngineCommon(
            _mesh(), UniformDestinations(16), 0.2,
            source_nodes=list(range(16)), fast_id_order=IDENTITY_IDS,
        )
        assert c.fast_ids

    def test_no_fast_ids_mode(self):
        c = EngineCommon(
            _mesh(), UniformDestinations(16), 0.2, fast_id_order=NO_FAST_IDS
        )
        assert not c.fast_ids

    def test_engines_wire_their_required_order(self):
        """The regression that matters end-to-end: the same permuted
        source list flips _fast_ids between the engine families."""
        router = _mesh()
        dests = UniformDestinations(16)
        fifo = NetworkSimulation(router, dests, 0.2, source_nodes=self.PERMUTED)
        rushed = RushedNetworkSimulation(
            router, dests, 0.2, source_nodes=self.PERMUTED
        )
        slotted = SlottedNetworkSimulation(
            router, dests, 0.2, source_nodes=self.PERMUTED
        )
        assert fifo._fast_ids and rushed._fast_ids
        assert not slotted._fast_ids
        assert SlottedNetworkSimulation(
            router, dests, 0.2, source_nodes=list(range(16))
        )._fast_ids

    def test_non_uniform_dests_disable_fast_ids(self):
        c = EngineCommon(
            _mesh(), HotSpotDestinations(16, hot_node=5, h=0.3), 0.2
        )
        assert not c.fast_ids

    def test_partial_source_set_disables_fast_ids(self):
        c = EngineCommon(
            _mesh(), UniformDestinations(16), 0.2, source_nodes=[0, 1, 2]
        )
        assert not c.fast_ids

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            EngineCommon(
                _mesh(), UniformDestinations(16), 0.2, fast_id_order="best"
            )


class TestSourceCdfBoundary:
    """The pinned source CDF must survive a draw landing exactly on a
    boundary: side='right' search never selects a zero-rate source."""

    def test_boundary_draw_skips_leading_zero_rate_source(self):
        c = EngineCommon(_mesh(2), UniformDestinations(4), [0.0, 1.0, 1.0, 1.0])
        # u = 0.0 is exactly the CDF value of the dead source.
        idx = int(np.searchsorted(c.source_cdf, 0.0, side="right"))
        assert c.node_rates[idx] > 0

    def test_boundary_draw_at_internal_edges(self):
        c = EngineCommon(_mesh(2), UniformDestinations(4), [0.5, 0.0, 0.5, 1.0])
        for u in c.source_cdf[:-1]:  # every internal boundary value
            idx = int(np.searchsorted(c.source_cdf, float(u), side="right"))
            assert c.node_rates[idx] > 0

    def test_top_of_cdf_is_pinned(self):
        c = EngineCommon(_mesh(2), UniformDestinations(4), [1.0, 1.0, 1.0, 0.0])
        assert c.source_cdf[-1] == 1.0
        # The top sliver belongs to the last *positive*-rate source.
        idx = int(np.searchsorted(c.source_cdf, np.nextafter(1.0, 0.0),
                                  side="right"))
        assert c.node_rates[idx] > 0

    def test_every_engine_exposes_the_pinned_cdf(self):
        router = _mesh()
        dests = UniformDestinations(16)
        rates = [0.0] + [0.1] * 15
        for cls in (NetworkSimulation, SlottedNetworkSimulation,
                    RushedNetworkSimulation, PSNetworkSimulation):
            sim = cls(router, dests, rates)
            assert sim._source_cdf[0] == 0.0  # dead source owns no mass
            assert sim._source_cdf[-1] == 1.0


class TestCommonValidation:
    def test_empty_sources_rejected_everywhere(self):
        router = _mesh()
        dests = UniformDestinations(16)
        for cls in (NetworkSimulation, SlottedNetworkSimulation,
                    RushedNetworkSimulation, PSNetworkSimulation):
            with pytest.raises(ValueError):
                cls(router, dests, 0.2, source_nodes=[])

    def test_service_rate_helper(self):
        assert resolve_service_rates(2.0, 3).tolist() == [2.0, 2.0, 2.0]
        with pytest.raises(ValueError):
            resolve_service_rates([1.0, 2.0], 3)
        with pytest.raises(ValueError):
            resolve_service_rates(0.0, 3)

    def test_saturated_mask_helper(self):
        assert resolve_saturated_mask(None, 4) is None
        assert resolve_saturated_mask([True, False, True, False], 4) == [
            True, False, True, False]
        with pytest.raises(ValueError):
            resolve_saturated_mask([True], 4)


class TestRegistryLookup:
    def test_five_engines_registered(self):
        assert engine_names() == ["fifo", "finite", "ps", "rushed", "slotted"]

    def test_event_alias_resolves_to_fifo(self):
        assert canonical_engine("event") == "fifo"
        assert get_engine("event") is get_engine("fifo")

    def test_unknown_engine_lists_known_names(self):
        with pytest.raises(ValueError, match="fifo"):
            canonical_engine("quantum")

    def test_metadata_shape(self):
        for e in available_engines():
            assert e.description
            assert "deterministic" in e.services
            for p in e.params:
                assert p.doc and p.describe().startswith(p.name + "=")

    def test_param_validation(self):
        fifo = get_engine("fifo")
        fifo.validate_params({"event_queue": "heap", "service_rates": 2.0})
        fifo.validate_params({"service_rates": (1.0, 2.0)})
        with pytest.raises(ValueError):
            fifo.validate_params({"event_queue": "splay"})
        with pytest.raises(ValueError):
            fifo.validate_params({"turbo": True})
        slotted = get_engine("slotted")
        slotted.validate_params({"batch_rng": False})
        with pytest.raises(ValueError):
            slotted.validate_params({"batch_rng": "yes"})


class TestSpecEngineParams:
    def test_unknown_engine_param_raises_at_spec_time(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="fifo", engine_params=(("turbo", 1),))

    def test_ill_typed_engine_param_raises_at_spec_time(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="slotted",
                     engine_params=(("batch_rng", "yes"),))

    def test_duplicate_engine_params_rejected(self):
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="fifo",
                     engine_params=(("event_queue", "heap"),
                                    ("event_queue", "calendar")))

    def test_engine_canonicalised(self):
        assert CellSpec(rho=0.5, engine="event").engine == "fifo"

    def test_unsupported_service_rejected(self):
        for engine in ("slotted", "rushed", "ps"):
            with pytest.raises(ValueError):
                CellSpec(rho=0.5, engine=engine, service="exponential")

    def test_unsupported_tracking_rejected(self):
        # Only PS still lacks the tracking options: the rushed engine
        # gained saturated_mask/track_maxima with the capability-parity
        # work, so its flags now accept both.
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="ps", track_saturated=True)
        with pytest.raises(ValueError):
            CellSpec(rho=0.5, engine="ps", track_maxima=True)
        CellSpec(rho=0.5, engine="rushed", track_saturated=True,
                 track_maxima=True)

    def test_rho_with_rescaled_service_rates_rejected(self):
        """Both rho calibrations assume unit service rates; a rescaled
        phi must force an explicit node_rate instead of silently making
        "rho" mean a different load."""
        with pytest.raises(ValueError, match="unit service rates"):
            CellSpec(rho=0.9, engine="fifo",
                     engine_params=(("service_rates", 0.5),))
        with pytest.raises(ValueError, match="unit service rates"):
            CellSpec(rho=0.9, engine="ps",
                     engine_params=(("service_rates", (2.0, 2.0)),))
        # Unit rates are the calibration's assumption: allowed with rho.
        CellSpec(rho=0.9, engine="fifo",
                 engine_params=(("service_rates", 1.0),))
        # An explicit node_rate carries no calibration claim: allowed.
        CellSpec(node_rate=0.2, engine="fifo",
                 engine_params=(("service_rates", 0.5),))

    def test_with_engine_params_merges(self):
        spec = CellSpec(node_rate=0.2, engine="fifo",
                        engine_params=(("event_queue", "heap"),))
        spec2 = spec.with_engine_params(service_rates=2.0)
        assert spec2.engine_params_dict == {
            "event_queue": "heap", "service_rates": 2.0}
        assert spec.engine_params_dict == {"event_queue": "heap"}


class TestRegistryRoundTrip:
    """Every registered engine must round-trip through the declarative
    facade on a small cell: CellSpec -> registry -> ReplicationEngine."""

    @pytest.mark.parametrize("engine", ["fifo", "slotted", "rushed", "ps"])
    def test_engine_round_trips_through_cellspec(self, engine):
        spec = CellSpec(
            scenario="uniform", n=4, rho=0.5, engine=engine,
            warmup=20, horizon=200, seeds=(1, 2),
        )
        pooled = ReplicationEngine(processes=1).run(spec)
        assert pooled.spec.engine == engine
        assert len(pooled.replications) == 2
        assert pooled.mean_delay > 0
        assert all(r.completed == r.generated for r in pooled.replications)
        assert [r.seed for r in pooled.replications] == [1, 2]

    def test_engine_params_flow_through_run(self):
        """event_queue=heap must be bit-identical to the calendar default,
        and the slotted batch_rng opt-out must change the draw stream."""
        base = dict(scenario="uniform", n=4, rho=0.5, service="exponential",
                    warmup=20, horizon=200, seeds=(3,))
        cal = ReplicationEngine(processes=1).run(CellSpec(**base))
        heap = ReplicationEngine(processes=1).run(
            CellSpec(**base, engine_params=(("event_queue", "heap"),))
        )
        assert cal.mean_delay == heap.mean_delay
        s = dict(scenario="uniform", n=4, rho=0.5, engine="slotted",
                 warmup=20, horizon=200, seeds=(3,))
        batch = ReplicationEngine(processes=1).run(CellSpec(**s))
        compat = ReplicationEngine(processes=1).run(
            CellSpec(**s, engine_params=(("batch_rng", False),))
        )
        assert batch.generated != compat.generated or (
            batch.mean_delay != compat.mean_delay
        )

    def test_mixed_engine_batch_does_not_cross_engines(self):
        """run_many over all four engines at once: the memo key includes
        the engine name + engine_params, so each cell's result matches
        the same cell run alone."""
        specs = [
            CellSpec(scenario="uniform", n=4, rho=0.5, engine=e,
                     warmup=20, horizon=200, seeds=(5,))
            for e in ("fifo", "slotted", "rushed", "ps")
        ]
        eng = ReplicationEngine(processes=1)
        batch = eng.run_many(specs)
        for spec, pooled in zip(specs, batch):
            alone = ReplicationEngine(processes=1).run(spec)
            assert pooled.mean_delay == alone.mean_delay, spec.engine
            assert pooled.mean_number == alone.mean_number, spec.engine
