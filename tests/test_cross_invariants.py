"""Cross-module property tests: the paper's identities under hypothesis.

These tie several layers together — router, traffic solver, closed forms,
bounds — and are the reproduction's strongest internal consistency net.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import mean_distance, mean_route_length
from repro.core.lower_bounds import bound_summary
from repro.core.md1_approx import delay_md1_estimate
from repro.core.rates import (
    array_edge_rates,
    edge_rates_from_routing,
    lambda_for_load,
)
from repro.core.remaining_distance import expected_remaining_distances
from repro.core.upper_bound import delay_upper_bound
from repro.routing.destinations import (
    GeometricStopDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh

sides = st.integers(min_value=2, max_value=6)
loads = st.floats(min_value=0.05, max_value=0.9)


class TestOrderingChain:
    @given(sides, loads)
    @settings(max_examples=30, deadline=None)
    def test_bound_ordering_chain(self, n, rho):
        """n-bar <= estimate <= upper bound, and every lower bound below
        the upper bound, at every stable operating point."""
        lam = lambda_for_load(n, rho, "exact")
        b = bound_summary(n, lam)
        assert mean_distance(n) <= b.estimate + 1e-12
        assert b.estimate <= b.upper + 1e-12
        assert b.is_consistent()

    @given(sides, loads)
    @settings(max_examples=30, deadline=None)
    def test_estimate_variants_ordered(self, n, rho):
        lam = lambda_for_load(n, rho, "table1")
        assert delay_md1_estimate(n, lam, variant="paper") <= delay_md1_estimate(
            n, lam, variant="pk"
        )


class TestTrafficIdentities:
    @given(sides, st.floats(0.01, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_flow_conservation_generic(self, n, lam):
        """sum_e lam_e = (mean route length) * (total external rate),
        for the *generic* solver on the array."""
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(mesh.num_nodes)
        rates = edge_rates_from_routing(router, dests, lam)
        nbar = mean_route_length(router, dests)
        assert np.isclose(rates.sum(), nbar * lam * mesh.num_nodes)

    @given(sides, st.floats(0.2, 0.8))
    @settings(max_examples=15, deadline=None)
    def test_flow_conservation_nonuniform(self, n, stop):
        """The same identity holds for the Section 5.2 distance-biased law."""
        mesh = ArrayMesh(n)
        router = GreedyArrayRouter(mesh)
        dests = GeometricStopDestinations(mesh, stop)
        lam = 0.2
        rates = edge_rates_from_routing(router, dests, lam)
        nbar = mean_route_length(router, dests)
        assert np.isclose(rates.sum(), nbar * lam * mesh.num_nodes)

    @given(sides)
    @settings(max_examples=15, deadline=None)
    def test_symmetry_of_rates(self, n):
        """Theorem 6 rates are symmetric under the array's symmetries:
        reversing an edge's direction across the middle gives equal rates."""
        mesh = ArrayMesh(n)
        rates = array_edge_rates(mesh, 0.3)
        for i in range(n):
            for j in range(n - 1):
                right = rates[mesh.directed_edge_id(i, j, "right")]
                # Mirror column: right edge at column j <-> at column n-2-j.
                mirrored = rates[mesh.directed_edge_id(i, n - 2 - j, "right")]
                assert right == pytest.approx(mirrored)

    @given(sides)
    @settings(max_examples=10, deadline=None)
    def test_row_column_transpose_symmetry(self, n):
        mesh = ArrayMesh(n)
        rates = array_edge_rates(mesh, 0.3)
        for k in range(n - 1):
            r = rates[mesh.directed_edge_id(0, k, "right")]
            d = rates[mesh.directed_edge_id(k, 0, "down")]
            assert r == pytest.approx(d)


class TestRemainingDistanceBounds:
    @given(sides)
    @settings(max_examples=10, deadline=None)
    def test_de_between_one_and_diameter(self, n):
        mesh = ArrayMesh(n)
        d_e = expected_remaining_distances(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes)
        )
        finite = d_e[np.isfinite(d_e)]
        assert np.all(finite >= 1.0 - 1e-12)
        assert np.all(finite <= 2 * (n - 1) + 1e-12)

    @given(sides)
    @settings(max_examples=10, deadline=None)
    def test_dbar_monotone_in_n(self, n):
        """d-bar = n - 1/2 grows with n."""
        from repro.core.remaining_distance import (
            array_max_expected_remaining_distance as dbar,
        )

        assert dbar(n + 1) > dbar(n)


class TestUpperBoundAgainstSimulatorFreeTruth:
    @given(sides, loads)
    @settings(max_examples=25, deadline=None)
    def test_upper_bound_diverges_monotonically(self, n, rho):
        lam1 = lambda_for_load(n, rho, "exact")
        lam2 = lambda_for_load(n, rho * 0.5, "exact")
        assert delay_upper_bound(n, lam1) >= delay_upper_bound(n, lam2)
