"""Cross-layer integration tests: full workflows through the public API.

Each test exercises a realistic end-to-end scenario: topology + router +
destination law -> traffic analysis -> bounds -> simulation -> comparison.
Horizons are modest; tolerances are sized accordingly.
"""

import numpy as np
import pytest

from repro import (
    ArrayMesh,
    Butterfly,
    ButterflyRouter,
    GeometricStopDestinations,
    GreedyArrayRouter,
    GreedyKDRouter,
    KDArray,
    NetworkSimulation,
    UniformDestinations,
)
from repro.core.generic_bounds import generic_bounds
from repro.core.rates import edge_rates_from_routing
from repro.core.upper_bound import delay_upper_bound_generic


class UniformOutputs:
    """Butterfly destination law: uniform over the level-d outputs."""

    def __init__(self, butterfly: Butterfly):
        self.b = butterfly
        self.num_nodes = butterfly.num_nodes
        self.outs = [
            butterfly.node_id(butterfly.d, r) for r in range(butterfly.rows)
        ]

    def pmf(self, src):
        v = np.zeros(self.num_nodes)
        v[self.outs] = 1.0 / len(self.outs)
        return v

    def sample(self, src, rng):
        return self.outs[int(rng.integers(len(self.outs)))]


class TestButterflyEndToEnd:
    """The Section 4.5 butterfly: simulate with level-0 sources only."""

    @pytest.fixture(scope="class")
    def setup(self):
        b = Butterfly(3)
        router = ButterflyRouter(b)
        dests = UniformOutputs(b)
        sources = [b.node_id(0, r) for r in range(b.rows)]
        rho = 0.7
        lam = 2 * rho  # each edge carries lam/2
        sim = NetworkSimulation(
            router, dests, lam, source_nodes=sources, seed=17
        )
        res = sim.run(150, 2500, track_utilization=True)
        return b, router, dests, sources, lam, res

    def test_every_route_is_d_hops(self, setup):
        b, _router, _dests, _sources, _lam, res = setup
        # All packets traverse exactly d edges: r == mean remaining over a
        # uniformly-progressing population == (d+1)/2.
        assert res.r == pytest.approx((b.d + 1) / 2, rel=0.15)

    def test_utilisation_uniform(self, setup):
        b, router, dests, sources, lam, res = setup
        rates = edge_rates_from_routing(
            router, dests, lam, source_nodes=sources
        )
        assert np.allclose(rates, lam / 2)
        assert np.abs(res.utilization - lam / 2).max() < 0.06

    def test_sandwich(self, setup):
        b, router, dests, sources, lam, res = setup
        gb = generic_bounds(router, dests, lam, source_nodes=sources)
        assert gb.d_max == b.d
        assert gb.lower_best <= res.mean_delay * 1.10
        assert res.mean_delay <= gb.upper * 1.10

    def test_no_zero_hop_packets(self, setup):
        _b, _router, _dests, _sources, _lam, res = setup
        assert res.zero_hop == 0  # sources and destinations are disjoint


class TestKDArrayEndToEnd:
    def test_3d_simulation_respects_kd_bound(self):
        from repro.core.kd_bounds import kd_delay_upper_bound, kd_lambda_for_load

        m, k = 3, 3
        lam = kd_lambda_for_load(m, k, 0.7)
        array = KDArray((m,) * k)
        router = GreedyKDRouter(array)
        dests = UniformDestinations(array.num_nodes)
        res = NetworkSimulation(router, dests, lam, seed=27).run(150, 2000)
        assert res.mean_delay <= kd_delay_upper_bound(m, k, lam) * 1.05

    def test_2d_kd_matches_array_mesh_statistically(self):
        """KDArray((n,n)) + dimension-order routing is the same system as
        ArrayMesh(n) + column-first greedy; delays must agree."""
        n, lam = 4, 0.4
        kd = KDArray((n, n))
        r1 = NetworkSimulation(
            GreedyKDRouter(kd), UniformDestinations(kd.num_nodes), lam, seed=31
        ).run(200, 2500)
        mesh = ArrayMesh(n)
        r2 = NetworkSimulation(
            GreedyArrayRouter(mesh, column_first=True),
            UniformDestinations(mesh.num_nodes),
            lam,
            seed=32,
        ).run(200, 2500)
        assert r1.mean_delay == pytest.approx(r2.mean_delay, rel=0.08)


class TestNonUniformEndToEnd:
    def test_locality_respects_its_own_bound(self):
        mesh = ArrayMesh(5)
        router = GreedyArrayRouter(mesh)
        local = GeometricStopDestinations(mesh, 0.5)
        lam = 0.5
        rates = edge_rates_from_routing(router, local, lam)
        assert rates.max() < 1.0  # stable at a rate far above uniform capacity
        ub = delay_upper_bound_generic(rates, lam * mesh.num_nodes)
        res = NetworkSimulation(router, local, lam, seed=41).run(200, 2500)
        assert res.mean_delay <= ub * 1.05

    def test_locality_beats_uniform_at_same_rate(self):
        mesh = ArrayMesh(5)
        router = GreedyArrayRouter(mesh)
        lam = 0.35
        uni = NetworkSimulation(
            router, UniformDestinations(mesh.num_nodes), lam, seed=42
        ).run(200, 2000)
        loc = NetworkSimulation(
            router, GeometricStopDestinations(mesh, 0.5), lam, seed=43
        ).run(200, 2000)
        assert loc.mean_delay < uni.mean_delay

    def test_generic_bounds_for_locality(self):
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        local = GeometricStopDestinations(mesh, 0.5)
        gb = generic_bounds(router, local, 0.4)
        assert gb.is_consistent()
        assert gb.mean_distance < 2.0  # strong locality

    def test_weighted_sources_end_to_end(self):
        """Hot-spot traffic: one corner generates 10x the rest."""
        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(mesh.num_nodes)
        rates = [10.0 * 0.02] + [0.02] * 15
        gb = generic_bounds(
            router, dests, rates, source_nodes=list(range(16))
        )
        sim = NetworkSimulation(
            router, dests, rates, source_nodes=list(range(16)), seed=44
        )
        res = sim.run(200, 3000)
        assert gb.lower_best <= res.mean_delay * 1.15
        assert res.mean_delay <= gb.upper * 1.15
