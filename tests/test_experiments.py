"""Tests for the experiment harness (small, fast configurations)."""

import numpy as np
import pytest

from repro.experiments import configs, figure1, figure2, grid
from repro.experiments import table1, table2, table3
from repro.experiments.bounds_sweep import QUICK_SWEEP, SweepConfig
from repro.experiments.bounds_sweep import run as run_sweep
from repro.experiments.bounds_sweep import shape_checks as sweep_checks
from repro.experiments.optimal_config import OptimalConfig
from repro.experiments.optimal_config import run as run_optimal
from repro.experiments.optimal_config import shape_checks as optimal_checks
from repro.experiments.hypercube_bounds import HypercubeConfig
from repro.experiments.hypercube_bounds import run as run_hypercube
from repro.experiments.hypercube_bounds import shape_checks as hc_checks
from repro.experiments.randomized_greedy import RandomizedConfig
from repro.experiments.randomized_greedy import run as run_randomized
from repro.experiments.randomized_greedy import shape_checks as rand_checks

TINY = configs.GridConfig(
    ns=(4,),
    rhos=(0.3, 0.7),
    base_warmup=40.0,
    base_horizon=400.0,
    congestion_cap=3.0,
)


class TestGrid:
    def test_specs_cover_grid(self):
        specs = grid.grid_specs(TINY)
        assert len(specs) == 2
        assert {s.rho for s in specs} == {0.3, 0.7}

    def test_seeds_distinct_per_cell(self):
        specs = grid.grid_specs(configs.QUICK)
        seeds = {s.seed for s in specs}
        assert len(seeds) == len(specs)

    def test_warmup_scales_with_congestion(self):
        cfg = configs.QUICK
        assert cfg.warmup_for(0.9) > cfg.warmup_for(0.2)
        assert cfg.horizon_for(0.99) <= cfg.base_horizon * cfg.congestion_cap

    def test_simulate_cell_fields(self):
        cell = grid.simulate_cell(grid.grid_specs(TINY)[0])
        assert cell.t_sim > 0
        assert cell.t_upper >= cell.t_sim * 0.9
        assert cell.generated > 0
        assert 1.0 <= cell.r <= 2 * (4 - 1)


class TestTables:
    @pytest.fixture(scope="class")
    def tiny_cells(self):
        return grid.run_grid(TINY, processes=1)

    def test_table1_renders_and_checks(self, tiny_cells):
        res = table1.Table1Result(cells=tiny_cells)
        out = res.render()
        assert "T(Sim.)" in out and "T(Est. paper)" in out
        assert table1.shape_checks(res) == []

    def test_table2_renders_and_checks(self, tiny_cells):
        res = table2.Table2Result(cells=tiny_cells)
        out = res.render()
        assert "r (Sim.)" in out
        assert table2.shape_checks(res) == []

    def test_table3_runs(self):
        cfg = table3.Table3Config(
            ns=(4, 5), rhos=(0.8,), base_warmup=80.0, base_horizon=800.0
        )
        res = table3.run(cfg, processes=1)
        assert "rs (Sim.)" in res.render()
        assert table3.shape_checks(res) == []


class TestFigures:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_figure1_layered(self, n):
        res = figure1.run(n)
        assert res.layered
        assert res.row_label_range == (1, n - 1)
        assert res.col_label_range == (n, 2 * n - 2)

    def test_figure2_even_odd(self):
        even, odd = figure2.run_pair(4, 5)
        assert even.max_on_route == 2 and odd.max_on_route == 4
        assert even.s_bar == 1.5 and odd.s_bar < 3.0
        assert "#" in even.text and "#" in odd.text


class TestBoundsSweep:
    def test_analytic_only_sweep(self):
        cfg = SweepConfig(ns=(4, 5), rhos=(0.5, 0.9), simulate=False)
        res = run_sweep(cfg)
        assert sweep_checks(res) == []
        assert all(p.t_sim is None for p in res.points)

    def test_render(self):
        cfg = SweepConfig(ns=(4,), rhos=(0.5,), simulate=False)
        out = run_sweep(cfg).render()
        assert "UB Thm7" in out and "LB Thm14" in out


class TestOtherExperiments:
    def test_optimal_config_quick(self):
        cfg = OptimalConfig(
            n=4, load_fractions=(0.5,), warmup=60.0, horizon=800.0
        )
        res = run_optimal(cfg)
        assert optimal_checks(res) == []
        assert res.optimal_capacity > res.standard_capacity

    def test_hypercube_quick(self):
        cfg = HypercubeConfig(
            gap_dims=(3, 4), gap_ps=(0.25, 0.5), sim_d=3, warmup=80.0, horizon=800.0
        )
        res = run_hypercube(cfg)
        assert hc_checks(res) == []

    def test_randomized_quick(self):
        cfg = RandomizedConfig(
            n=4, rho=0.6, seeds=(5,), warmup=60.0, horizon=600.0
        )
        res = run_randomized(cfg, processes=1)
        assert rand_checks(res) == []
        assert res.standard_bottleneck == pytest.approx(
            res.randomized_bottleneck
        )
