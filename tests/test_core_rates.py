"""Tests for Theorem 6 rates, the generic traffic solver, and load math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import mean_distance
from repro.core.rates import (
    array_edge_rate,
    array_edge_rates,
    edge_rates_from_routing,
    lambda_for_load,
    load_for_lambda,
    max_edge_rate,
    total_external_rate,
)
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.destinations import (
    GeometricStopDestinations,
    PBiasedHypercubeDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.topology.array_mesh import ArrayMesh
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube


class TestTheorem6ClosedForms:
    def test_paper_table_formulas(self):
        """The four Theorem 6 entries, checked symbolically at (i, j)."""
        n, lam = 7, 0.3
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                assert array_edge_rate(n, lam, i, j, "left") == pytest.approx(
                    (lam / n) * (j - 1) * (n - j + 1)
                )
                assert array_edge_rate(n, lam, i, j, "right") == pytest.approx(
                    (lam / n) * j * (n - j)
                )
                assert array_edge_rate(n, lam, i, j, "up") == pytest.approx(
                    (lam / n) * (i - 1) * (n - i + 1)
                )
                assert array_edge_rate(n, lam, i, j, "down") == pytest.approx(
                    (lam / n) * i * (n - i)
                )

    def test_border_edges_have_zero_rate(self):
        # A left edge out of column 1 does not exist; rate formula gives 0.
        assert array_edge_rate(5, 1.0, 1, 1, "left") == 0.0
        assert array_edge_rate(5, 1.0, 1, 1, "up") == 0.0

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_closed_form_matches_generic_solver(self, n):
        """Theorem 6 == exact expectation over all (src, dst) pairs."""
        mesh = ArrayMesh(n)
        lam = 0.2
        closed = array_edge_rates(mesh, lam)
        generic = edge_rates_from_routing(
            GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes), lam
        )
        assert np.allclose(closed, generic)

    def test_rectangular_rates_conserve_flow(self):
        """Sum of edge rates = mean distance * total arrival rate."""
        mesh = ArrayMesh(3, 5)
        lam = 0.1
        rates = array_edge_rates(mesh, lam)
        from repro.core.distances import mean_route_length

        router = GreedyArrayRouter(mesh)
        nbar = mean_route_length(router, UniformDestinations(mesh.num_nodes))
        assert rates.sum() == pytest.approx(nbar * lam * mesh.num_nodes)

    @given(st.integers(2, 10), st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_flow_conservation_identity(self, n, lam):
        """The paper's Section 5.1 identity: sum_e lam_e = n-bar lam n^2."""
        mesh = ArrayMesh(n)
        rates = array_edge_rates(mesh, lam)
        assert np.isclose(
            rates.sum(), mean_distance(n) * total_external_rate(n, lam)
        )


class TestLoadConversions:
    def test_even_max_rate(self):
        assert max_edge_rate(8, 0.5) == pytest.approx(1.0)

    def test_odd_max_rate(self):
        assert max_edge_rate(5, 1.0) == pytest.approx(24 / 20)

    def test_lambda_roundtrip_exact(self):
        for n in (4, 5, 9, 10):
            lam = lambda_for_load(n, 0.7, "exact")
            assert load_for_lambda(n, lam) == pytest.approx(0.7)

    def test_table1_convention_is_4rho_over_n(self):
        for n in (5, 10, 15, 20):
            assert lambda_for_load(n, 0.9, "table1") == pytest.approx(3.6 / n)

    def test_conventions_agree_for_even_n(self):
        assert lambda_for_load(6, 0.5, "exact") == lambda_for_load(
            6, 0.5, "table1"
        )

    def test_table1_under_loads_odd_n(self):
        lam = lambda_for_load(5, 0.9, "table1")
        assert load_for_lambda(5, lam) < 0.9

    def test_unknown_convention(self):
        with pytest.raises(ValueError, match="convention"):
            lambda_for_load(5, 0.5, "bogus")

    def test_rejects_rho_one(self):
        with pytest.raises(ValueError):
            lambda_for_load(5, 1.0)


class TestGenericSolverOtherTopologies:
    def test_hypercube_uniform_rate_lam_p(self):
        """Section 4.5: every directed edge carries lam * p."""
        d, lam, p = 4, 0.3, 0.3
        cube = Hypercube(d)
        rates = edge_rates_from_routing(
            GreedyHypercubeRouter(cube),
            PBiasedHypercubeDestinations(cube, p),
            lam,
        )
        assert np.allclose(rates, lam * p)

    def test_butterfly_uniform_rates(self):
        """Uniform input->output traffic loads every edge equally."""
        d, lam = 3, 0.4
        b = Butterfly(d)
        sources = [b.node_id(0, r) for r in range(b.rows)]
        outs = [b.node_id(d, r) for r in range(b.rows)]

        class UniformOutputs:
            num_nodes = b.num_nodes

            def pmf(self, src):
                v = np.zeros(b.num_nodes)
                v[outs] = 1.0 / len(outs)
                return v

            def sample(self, src, rng):
                return outs[int(rng.integers(len(outs)))]

        rates = edge_rates_from_routing(
            ButterflyRouter(b), UniformOutputs(), lam, source_nodes=sources
        )
        assert np.allclose(rates, lam / 2.0)

    def test_geometric_stop_rates_below_uniform_peak(self):
        """Distance-biased destinations unload the middle of the array."""
        mesh = ArrayMesh(6)
        router = GreedyArrayRouter(mesh)
        lam = 0.3
        uni = edge_rates_from_routing(
            router, UniformDestinations(mesh.num_nodes), lam
        )
        geo = edge_rates_from_routing(
            router, GeometricStopDestinations(mesh, 0.5), lam
        )
        assert geo.max() < uni.max()

    def test_per_node_rates_sequence(self):
        mesh = ArrayMesh(3)
        router = GreedyArrayRouter(mesh)
        only_node_0 = [1.0] + [0.0] * 8
        rates = edge_rates_from_routing(
            router,
            UniformDestinations(9),
            only_node_0,
            source_nodes=list(range(9)),
        )
        # Node 0 routes right then down: no left/up edge carries anything.
        for e in range(mesh.num_edges):
            if mesh.edge_direction(e) in ("left", "up"):
                assert rates[e] == 0.0

    def test_rate_sequence_length_mismatch(self):
        mesh = ArrayMesh(3)
        with pytest.raises(ValueError):
            edge_rates_from_routing(
                GreedyArrayRouter(mesh),
                UniformDestinations(9),
                [1.0, 2.0],
                source_nodes=[0, 1, 2],
            )
