"""Unit tests for the persistent warm worker pools."""

import os

import pytest

from repro.util.workerpool import (
    WorkerPool,
    get_pool,
    resolve_processes,
    shutdown_pools,
)


def square(x):
    return x * x


class TestResolveProcesses:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "7")
        assert resolve_processes(3) == 3

    def test_env_var_used_when_no_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "5")
        assert resolve_processes() == 5

    def test_invalid_env_var_falls_back_to_cpu(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "banana")
        assert resolve_processes() == resolve_processes(os.cpu_count() or 1)

    def test_nonpositive_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "0")
        assert resolve_processes() >= 1

    def test_floor_is_one(self):
        assert resolve_processes(0) == 1
        assert resolve_processes(-4) == 1

    def test_env_var_reaches_pmap(self, monkeypatch):
        from repro.util.parallel import pmap

        monkeypatch.setenv("REPRO_PROCESSES", "1")
        # Serial path: works even for lambdas, which cannot be pickled —
        # proof no pool was involved.
        assert pmap(lambda x: x + 1, [1, 2]) == [2, 3]


class TestWorkerPool:
    def test_lazy_no_processes_until_parallel_call(self):
        pool = WorkerPool(processes=2)
        assert not pool.started
        assert pool.map(square, [3]) == [9]  # single item: still serial
        assert not pool.started

    def test_serial_pool_never_starts(self):
        with WorkerPool(processes=1) as pool:
            assert pool.map(square, range(10)) == [x * x for x in range(10)]
            assert not pool.started

    def test_parallel_map_matches_serial(self):
        with WorkerPool(processes=2) as pool:
            items = list(range(12))
            assert pool.map(square, items) == [x * x for x in items]
            assert pool.started

    def test_pool_is_reused_across_calls(self):
        with WorkerPool(processes=2) as pool:
            pool.map(square, range(4))
            first = pool._pool
            pool.map(square, range(4))
            assert pool._pool is first

    def test_shutdown_is_idempotent_and_restartable(self):
        pool = WorkerPool(processes=2)
        pool.map(square, range(4))
        pool.shutdown()
        pool.shutdown()
        assert not pool.started
        assert pool.map(square, range(4)) == [x * x for x in range(4)]
        pool.shutdown()

    def test_imap_unordered_yields_all_results(self):
        with WorkerPool(processes=2) as pool:
            out = sorted(pool.imap_unordered(square, range(8)))
            assert out == sorted(x * x for x in range(8))

    def test_imap_unordered_serial_preserves_input_order(self):
        pool = WorkerPool(processes=1)
        assert list(pool.imap_unordered(square, range(5))) == [
            x * x for x in range(5)
        ]
        assert not pool.started


class TestSharedPools:
    def test_get_pool_keyed_by_worker_count(self):
        try:
            assert get_pool(2) is get_pool(2)
            assert get_pool(2) is not get_pool(3)
        finally:
            shutdown_pools()

    def test_shutdown_pools_clears_registry(self):
        a = get_pool(2)
        shutdown_pools()
        assert get_pool(2) is not a
        shutdown_pools()

    def test_pmap_draws_from_shared_pool(self):
        try:
            pool = get_pool(2)
            from repro.util.parallel import pmap

            assert pmap(square, range(6), processes=2) == [
                x * x for x in range(6)
            ]
            assert pool.started
        finally:
            shutdown_pools()
