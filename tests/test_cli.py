"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bounds_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert args.n == 10 and args.rho == 0.9

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_bounds_output(self, capsys):
        assert main(["bounds", "-n", "6", "--rho", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "Thm 7" in out and "Thm 14" in out
        assert "gap upper/best-lower" in out

    def test_bounds_odd_n_labelled(self, capsys):
        main(["bounds", "-n", "5", "--rho", "0.5"])
        assert "(odd n)" in capsys.readouterr().out

    def test_simulate_sandwich(self, capsys):
        rc = main(
            [
                "simulate",
                "-n",
                "4",
                "--rho",
                "0.6",
                "--warmup",
                "100",
                "--horizon",
                "1200",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "sandwich: OK" in out
        assert "max queue" in out

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform", "hotspot", "transpose", "bitreversal", "torus"):
            assert name in out

    def test_simulate_replications_pools_ci(self, capsys):
        rc = main(
            [
                "simulate",
                "--scenario",
                "hotspot",
                "-n",
                "4",
                "--rho",
                "0.6",
                "--replications",
                "3",
                "--processes",
                "1",
                "--warmup",
                "50",
                "--horizon",
                "400",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "ReplicatedResult" in out and "pooled" in out
        assert "R=3" in out
        # Non-standard scenario: the bound sandwich does not apply.
        assert "sandwich" not in out

    def test_simulate_slotted_engine(self, capsys):
        rc = main(
            [
                "simulate",
                "--scenario",
                "transpose",
                "--engine",
                "slotted",
                "-n",
                "4",
                "--rho",
                "0.5",
                "--replications",
                "2",
                "--processes",
                "1",
                "--warmup",
                "50",
                "--horizon",
                "300",
            ]
        )
        assert rc == 0
        assert "engine=slotted" in capsys.readouterr().out

    def test_engines_listing(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("fifo", "finite", "slotted", "rushed", "ps"):
            assert name in out
        assert "event" in out  # the alias is listed
        assert "batch_rng" in out and "event_queue" in out
        assert "buffer_size" in out  # the finite engine's knob
        assert "finite.buffer_size" in out  # per-engine param details
        assert "deterministic/exponential" in out

    def test_simulate_rushed_engine(self, capsys):
        rc = main(
            [
                "simulate",
                "--engine",
                "rushed",
                "-n",
                "4",
                "--rho",
                "0.6",
                "--replications",
                "2",
                "--processes",
                "1",
                "--warmup",
                "30",
                "--horizon",
                "200",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine=rushed" in out
        # The makespan is not sandwich-comparable: no bound check printed.
        assert "sandwich" not in out

    def test_simulate_ps_engine(self, capsys):
        rc = main(
            [
                "simulate",
                "--engine",
                "ps",
                "-n",
                "4",
                "--rho",
                "0.6",
                "--processes",
                "1",
                "--warmup",
                "30",
                "--horizon",
                "200",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine=ps" in out
        assert "sandwich" not in out

    def test_simulate_engine_param(self, capsys):
        rc = main(
            [
                "simulate",
                "--engine",
                "slotted",
                "-n",
                "4",
                "--rho",
                "0.5",
                "--engine-param",
                "batch_rng=false",
                "--processes",
                "1",
                "--warmup",
                "30",
                "--horizon",
                "200",
            ]
        )
        assert rc == 0
        assert "engine=slotted" in capsys.readouterr().out

    def test_simulate_numpy_backend(self, capsys):
        """backend=numpy is reachable from the CLI: simulate drops the
        (display-only) per-packet maxima the vectorized kernels cannot
        track instead of tripping the CellSpec guard."""
        rc = main(
            [
                "simulate",
                "-n",
                "4",
                "--rho",
                "0.5",
                "--engine-param",
                "backend=numpy",
                "--processes",
                "1",
                "--warmup",
                "30",
                "--horizon",
                "200",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine=fifo" in out
        assert "sandwich" in out
        assert "max delay" not in out  # maxima tracking dropped, not nan

    def test_simulate_unknown_engine_param_lists_valid_params(self):
        """A bad --engine-param key exits with usage-style help listing
        every valid key for the *chosen* engine (not a bare registry
        traceback)."""
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "simulate",
                    "-n",
                    "4",
                    "--rho",
                    "0.5",
                    "--engine-param",
                    "turbo=1",
                    "--processes",
                    "1",
                ]
            )
        msg = str(exc_info.value)
        assert "turbo" in msg
        assert "'fifo'" in msg
        assert "event_queue" in msg and "service_rates" in msg
        # fifo has no buffer_size: the listing is engine-specific.
        assert "buffer_size" not in msg

    def test_simulate_engine_param_listing_is_per_engine(self):
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "simulate",
                    "--engine",
                    "finite",
                    "-n",
                    "4",
                    "--rho",
                    "0.5",
                    "--engine-param",
                    "turbo=1",
                ]
            )
        msg = str(exc_info.value)
        assert "'finite'" in msg and "buffer_size" in msg

    def test_simulate_ill_typed_engine_param_lists_valid_params(self):
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    "simulate",
                    "--engine",
                    "finite",
                    "-n",
                    "4",
                    "--rho",
                    "0.5",
                    "--engine-param",
                    "buffer_size=-3",
                ]
            )
        msg = str(exc_info.value)
        assert "buffer_size" in msg and "non-negative" in msg

    def test_simulate_finite_engine_prints_loss(self, capsys):
        rc = main(
            [
                "simulate",
                "--engine",
                "finite",
                "-n",
                "4",
                "--rho",
                "0.9",
                "--engine-param",
                "buffer_size=1",
                "--replications",
                "2",
                "--processes",
                "1",
                "--warmup",
                "30",
                "--horizon",
                "200",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine=finite" in out
        assert "loss:" in out and "dropped" in out
        # Loss-engine delay is survivors-only: no sandwich claim printed.
        assert "sandwich" not in out

    def test_finite_sweep_command(self, capsys):
        rc = main(["finite", "-n", "4", "--processes", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Loss vs buffer size" in out
        assert "inf" in out  # the infinite-buffer baseline row
        assert "CHECK FAILURE" not in out

    def test_sweep_command_runs_and_resumes(self, capsys, tmp_path):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "defaults": {
                        "scenario": "uniform",
                        "n": 4,
                        "warmup": 20,
                        "horizon": 120,
                        "seeds": [0, 1],
                    },
                    "grid": {"rho": [0.4, 0.7]},
                }
            )
        )
        out = tmp_path / "out"
        assert main(
            ["sweep", str(spec), "-o", str(out), "--processes", "1"]
        ) == 0
        text = capsys.readouterr().out
        assert "2 ran, 0 resumed" in text
        assert (out / "aggregate.csv").exists()
        # Second run resumes everything from the checkpoints.
        assert main(
            ["sweep", str(spec), "-o", str(out), "--processes", "1"]
        ) == 0
        assert "0 ran, 2 resumed" in capsys.readouterr().out

    def test_sweep_default_output_dir(self, capsys, tmp_path, monkeypatch):
        import json

        spec = tmp_path / "tiny.json"
        spec.write_text(
            json.dumps(
                {
                    "cells": [
                        {
                            "scenario": "uniform",
                            "n": 4,
                            "rho": 0.5,
                            "warmup": 20,
                            "horizon": 120,
                            "seeds": [0],
                        }
                    ]
                }
            )
        )
        assert main(["sweep", str(spec), "--processes", "1"]) == 0
        assert (tmp_path / "tiny_out" / "aggregate.json").exists()

    def test_simulate_scenario_param(self, capsys):
        rc = main(
            [
                "simulate",
                "--scenario",
                "hotspot",
                "-n",
                "4",
                "--rho",
                "0.5",
                "--param",
                "h=0.5",
                "--processes",
                "1",
                "--warmup",
                "30",
                "--horizon",
                "200",
            ]
        )
        assert rc == 0

    def test_simulate_bad_param_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--param", "not-a-pair"])

    def test_simulate_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            main(["simulate", "--scenario", "frobnicate"])

    def test_simulate_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="fifo"):
            main(["simulate", "--engine", "quantum"])

    def test_figure1(self, capsys):
        assert main(["figure1", "-n", "3"]) == 0
        assert "layering" in capsys.readouterr().out

    def test_figure2(self, capsys):
        assert main(["figure2", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "odd n=5" in out and "#" in out


class TestMaximaTracking:
    def test_maxima_reported(self):
        from repro.routing.destinations import UniformDestinations
        from repro.routing.greedy import GreedyArrayRouter
        from repro.sim.fifo_network import NetworkSimulation
        from repro.topology.array_mesh import ArrayMesh

        mesh = ArrayMesh(4)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(16), 0.5, seed=8
        )
        res = sim.run(50, 800, track_maxima=True)
        assert res.max_delay >= res.mean_delay
        assert res.max_queue_length >= 1

    def test_maxima_disabled_by_default(self):
        import math

        from repro.routing.destinations import UniformDestinations
        from repro.routing.greedy import GreedyArrayRouter
        from repro.sim.fifo_network import NetworkSimulation
        from repro.topology.array_mesh import ArrayMesh

        mesh = ArrayMesh(3)
        res = NetworkSimulation(
            GreedyArrayRouter(mesh), UniformDestinations(9), 0.2, seed=8
        ).run(20, 200)
        assert math.isnan(res.max_delay)
        assert res.max_queue_length == -1

    def test_max_queue_grows_with_load(self):
        from repro.routing.destinations import UniformDestinations
        from repro.routing.greedy import GreedyArrayRouter
        from repro.sim.fifo_network import NetworkSimulation
        from repro.topology.array_mesh import ArrayMesh

        mesh = ArrayMesh(4)
        router = GreedyArrayRouter(mesh)
        dests = UniformDestinations(16)
        light = NetworkSimulation(router, dests, 0.1, seed=9).run(
            100, 1500, track_maxima=True
        )
        heavy = NetworkSimulation(router, dests, 0.22, seed=9).run(
            100, 1500, track_maxima=True
        )
        assert heavy.max_queue_length > light.max_queue_length
