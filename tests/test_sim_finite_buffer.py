"""Tests for the finite-buffer loss engine.

Three contracts:

* **fifo identity** — ``buffer_size=None`` delegates to the FIFO engine
  (bit-identical; also pinned by the ``finite_none_*`` golden cells),
  and a buffer too large to ever fill runs the finite loop with the
  exact same draws, event order and float accumulation as the FIFO
  loops;
* **drop accounting** — conservation (``completed + dropped ==
  generated``), warmup-boundary exclusion, per-node attribution, and
  the loss CI surfaced through ``ReplicationEngine``;
* **validation** — scalar vs per-node ``buffer_size`` errors at
  :class:`CellSpec` construction (registry-typed) and at engine
  construction (length checks).
"""

import math

import numpy as np
import pytest

from repro.routing.destinations import HotSpotDestinations, UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.finite_buffer import (
    FiniteBufferNetworkSimulation,
    resolve_buffer_size,
)
from repro.sim.replication import CellSpec, ReplicationEngine
from repro.topology.array_mesh import ArrayMesh

HUGE = 10**9

FIELDS = (
    "generated", "completed", "zero_hop", "in_flight_at_end",
    "mean_number", "mean_remaining", "mean_delay", "delay_half_width",
    "mean_delay_littles", "max_delay", "max_queue_length",
)


def _same(a, b):
    for f in FIELDS:
        va, vb = getattr(a, f), getattr(b, f)
        assert va == vb or (
            isinstance(va, float) and math.isnan(va) and math.isnan(vb)
        ), f


class TestFifoIdentity:
    def test_none_delegates_to_fifo(self, router4, uniform4):
        fifo = NetworkSimulation(router4, uniform4, 0.2, seed=3).run(
            10, 120, track_maxima=True, collect_delays=True
        )
        fin = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.2, seed=3, buffer_size=None
        ).run(10, 120, track_maxima=True, collect_delays=True)
        _same(fifo, fin)
        assert fin.delays.tolist() == fifo.delays.tolist()
        assert fin.node_drops is None and fin.dropped == 0
        assert fin.loss_probability == 0.0

    def test_huge_buffer_runs_finite_loop_bit_identically(
        self, router4, uniform4
    ):
        """The finite merge loop performs the FIFO loop's exact
        arithmetic when nothing drops (the admission test consumes no
        randomness)."""
        fifo = NetworkSimulation(router4, uniform4, 0.2, seed=3).run(
            10, 120, track_maxima=True, collect_delays=True
        )
        fin = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.2, seed=3, buffer_size=HUGE
        ).run(10, 120, track_maxima=True, collect_delays=True)
        _same(fifo, fin)
        assert fin.delays.tolist() == fifo.delays.tolist()
        assert fin.dropped == 0
        assert fin.node_drops.sum() == 0

    @pytest.mark.parametrize("service_kw", [
        {"service": "exponential"},
        {"service_rates": None},  # filled per-edge below
    ])
    def test_huge_buffer_event_queue_loop_bit_identical(
        self, router4, uniform4, service_kw
    ):
        """Same contract on the stochastic-service (event-queue) loop."""
        kw = dict(service_kw)
        if kw.get("service_rates", 1.0) is None:
            kw["service_rates"] = 1.0 + 0.5 * (
                np.arange(router4.topology.num_edges) % 4 == 0
            )
        fifo = NetworkSimulation(router4, uniform4, 0.2, seed=5, **kw).run(
            10, 120, collect_delays=True
        )
        fin = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.2, seed=5, buffer_size=HUGE, **kw
        ).run(10, 120, collect_delays=True)
        _same(fifo, fin)
        assert fin.delays.tolist() == fifo.delays.tolist()

    def test_event_queue_kinds_agree_with_drops(self, router4, uniform4):
        """Calendar (adaptive), calendar-fixed and heap produce the same
        trajectory even when packets drop."""
        runs = [
            FiniteBufferNetworkSimulation(
                router4, uniform4, 0.3, seed=7, buffer_size=1,
                service="exponential", event_queue=kind,
            ).run(10, 150, collect_delays=True)
            for kind in ("calendar", "calendar-fixed", "heap")
        ]
        for other in runs[1:]:
            assert runs[0].dropped == other.dropped
            assert runs[0].node_drops.tolist() == other.node_drops.tolist()
            assert runs[0].delays.tolist() == other.delays.tolist()
            assert runs[0].mean_number == other.mean_number


class TestDropAccounting:
    def test_conservation_and_nonzero_loss(self, router4, uniform4):
        res = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.25, seed=11, buffer_size=1
        ).run(20, 300)
        assert res.dropped > 0
        assert res.completed + res.dropped == res.generated
        assert res.node_drops.sum() == res.dropped
        assert 0.0 < res.loss_probability < 1.0

    def test_zero_buffer_is_pure_loss(self, router4, uniform4):
        """buffer_size=0: no waiting room at all — a packet that finds
        its next edge busy is dropped, so no queue ever forms."""
        res = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.3, seed=13, buffer_size=0
        ).run(10, 200, track_maxima=True)
        assert res.dropped > 0
        assert res.completed + res.dropped == res.generated
        assert res.max_queue_length == 0
        # Survivors never wait: delay == hop count, bounded by the mesh
        # diameter.
        assert res.max_delay <= 2 * (4 - 1)

    def test_drops_before_warmup_do_not_count(self, router4, uniform4):
        """A buffer that is full (and dropping) across the warmup
        boundary contributes no phantom drops: only packets born in the
        window are counted, so conservation holds against the measured
        ``generated`` alone even under sustained overload."""
        res = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.6, seed=17, buffer_size=0
        ).run(80, 40)
        # Overloaded from t=0: drops certainly happened before warmup.
        assert res.generated > 0 and res.dropped > 0
        assert res.completed + res.dropped == res.generated
        # And with a window starting at 0, strictly more drops are seen
        # on the same trajectory.
        full = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.6, seed=17, buffer_size=0
        ).run(0, 120)
        assert full.dropped > res.dropped

    def test_per_node_buffers_attribute_drops(self, router4, uniform4):
        """Nodes with zero waiting room take every drop; roomy nodes
        take none."""
        n = router4.topology.num_nodes
        sizes = tuple(0 if v < n // 2 else HUGE for v in range(n))
        res = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.3, seed=19, buffer_size=sizes
        ).run(10, 200)
        assert res.dropped > 0
        assert res.node_drops[: n // 2].sum() == res.dropped
        assert res.node_drops[n // 2:].sum() == 0

    def test_loss_decreases_with_buffer_size(self, router4, uniform4):
        losses = []
        for k in (0, 2, 8):
            res = FiniteBufferNetworkSimulation(
                router4, uniform4, 0.25, seed=23, buffer_size=k
            ).run(20, 400)
            losses.append(res.loss_probability)
        assert losses[0] > losses[1] > losses[2]

    def test_saturated_tracking_consistent_under_drops(
        self, router4, uniform4
    ):
        mask = np.arange(router4.topology.num_edges) % 3 == 0
        res = FiniteBufferNetworkSimulation(
            router4, uniform4, 0.3, seed=29, buffer_size=1,
            saturated_mask=mask,
        ).run(10, 200)
        assert res.dropped > 0
        assert 0.0 < res.mean_remaining_saturated < res.mean_remaining

    def test_replication_pools_loss_ci(self):
        spec = CellSpec(
            scenario="uniform", n=4, rho=0.9, engine="finite",
            warmup=20, horizon=300, seeds=(1, 2, 3),
            engine_params=(("buffer_size", 1),),
        )
        pooled = ReplicationEngine(processes=1).run(spec)
        assert pooled.dropped > 0
        assert 0.0 < pooled.loss_probability < 1.0
        assert np.isfinite(pooled.loss_half_width)
        assert pooled.loss_half_width > 0


class TestValidation:
    def test_scalar_validation_at_spec_construction(self):
        for bad in (-1, 2.5, True, "big", (1, -2), (0.5,), [1, 2]):
            with pytest.raises(ValueError):
                CellSpec(
                    rho=0.5, engine="finite",
                    engine_params=(("buffer_size", bad),),
                )

    def test_valid_specs_construct(self):
        CellSpec(rho=0.5, engine="finite")
        CellSpec(rho=0.5, engine="finite",
                 engine_params=(("buffer_size", None),))
        CellSpec(rho=0.5, engine="finite",
                 engine_params=(("buffer_size", 0),))
        CellSpec(rho=0.5, engine="finite",
                 engine_params=(("buffer_size", (1, 2, 3)),))

    def test_per_node_length_checked_at_engine_construction(
        self, router4, uniform4
    ):
        with pytest.raises(ValueError, match="16 entries"):
            FiniteBufferNetworkSimulation(
                router4, uniform4, 0.2, buffer_size=(1, 2, 3)
            )

    def test_resolver(self):
        assert resolve_buffer_size(None, 3) is None
        assert resolve_buffer_size(2, 3) == [2, 2, 2]
        assert resolve_buffer_size((0, 1, 2), 3) == [0, 1, 2]
        with pytest.raises(ValueError):
            resolve_buffer_size(-1, 3)
        with pytest.raises(ValueError):
            resolve_buffer_size(True, 3)
        with pytest.raises(ValueError):
            resolve_buffer_size((1, 2), 3)
        with pytest.raises(ValueError):
            resolve_buffer_size((1, 2, -3), 3)

    def test_exponential_service_supported_through_spec(self):
        spec = CellSpec(
            scenario="uniform", n=4, rho=0.6, engine="finite",
            service="exponential", warmup=10, horizon=150, seeds=(5,),
            engine_params=(("buffer_size", 2),),
        )
        res = ReplicationEngine(processes=1).run(spec).replications[0]
        assert res.completed + res.dropped == res.generated
