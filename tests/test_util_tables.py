"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, format_float


class TestFormatFloat:
    def test_default_digits(self):
        assert format_float(3.14159) == "3.142"

    def test_custom_digits(self):
        assert format_float(3.14159, 1) == "3.1"

    def test_string_passthrough(self):
        assert format_float("x") == "x"

    def test_none_renders_dash(self):
        assert format_float(None) == "-"


class TestTable:
    def test_renders_title_and_headers(self):
        t = Table(title="T", headers=["a", "b"])
        out = t.render()
        assert out.splitlines()[0] == "T"
        assert "a" in out and "b" in out

    def test_row_formatting(self):
        t = Table(title="", headers=["n", "x"])
        t.add_row([5, 1.23456])
        assert "1.235" in t.render()

    def test_row_length_mismatch(self):
        t = Table(title="", headers=["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            t.add_row([1])

    def test_column_alignment(self):
        t = Table(title="", headers=["col"], float_digits=2)
        t.add_row([1.0])
        t.add_row([100.0])
        lines = t.render().splitlines()
        # All data lines have the same width (right-justified).
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_float_digits_respected(self):
        t = Table(title="", headers=["x"], float_digits=1)
        t.add_row([2.71828])
        assert "2.7" in t.render()
        assert "2.72" not in t.render()

    def test_str_matches_render(self):
        t = Table(title="q", headers=["x"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_empty_title_omitted(self):
        t = Table(title="", headers=["x"])
        assert t.render().splitlines()[0].strip() == "x"
