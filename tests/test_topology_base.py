"""Unit tests for repro.topology.base.Topology."""

import pytest

from repro.topology.base import Topology


def tiny() -> Topology:
    return Topology(3, [(0, 1), (1, 2), (2, 0)], name="tri")


class TestConstruction:
    def test_counts(self):
        t = tiny()
        assert t.num_nodes == 3
        assert t.num_edges == 3

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="outside"):
            Topology(2, [(0, 2)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(2, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology(2, [(0, 1), (0, 1)])


class TestLookup:
    def test_edge_id_roundtrip(self):
        t = tiny()
        for e in range(t.num_edges):
            u, v = t.edge_endpoints(e)
            assert t.edge_id(u, v) == e

    def test_has_edge(self):
        t = tiny()
        assert t.has_edge(0, 1)
        assert not t.has_edge(1, 0)

    def test_missing_edge_raises(self):
        with pytest.raises(KeyError):
            tiny().edge_id(1, 0)

    def test_edges_iteration(self):
        t = tiny()
        triples = list(t.edges())
        assert triples == [(0, 0, 1), (1, 1, 2), (2, 2, 0)]

    def test_out_in_edges(self):
        t = tiny()
        assert t.out_edges(0) == [0]
        assert t.in_edges(0) == [2]


class TestPathValidation:
    def test_valid_path(self):
        tiny().validate_path([0, 1], 0, 2)

    def test_empty_path_same_node(self):
        tiny().validate_path([], 1, 1)

    def test_discontinuous_path(self):
        with pytest.raises(ValueError, match="discontinuity"):
            tiny().validate_path([1], 0, 2)

    def test_wrong_destination(self):
        with pytest.raises(ValueError, match="destination"):
            tiny().validate_path([0], 0, 2)


class TestNetworkx:
    def test_roundtrip(self):
        g = tiny().to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[0][1]["edge_id"] == 0
