"""Tests for Theorems 8, 10, 12, 14 and the bound summary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import mean_distance
from repro.core.lower_bounds import (
    asymptotic_gap,
    best_lower_bound,
    bound_summary,
    copy_lower_bound,
    markov_lower_bound,
    saturated_lower_bound,
    st_lower_bound,
    trivial_lower_bound,
)
from repro.core.rates import lambda_for_load


class TestTheorem8:
    def test_even_prefactor(self):
        assert st_lower_bound(6, 0.0) == pytest.approx(0.5)

    def test_odd_prefactor(self):
        assert st_lower_bound(5, 0.0) == pytest.approx(0.5 - 1 / 25)

    def test_oblivious_stronger_than_any(self):
        for rho in (0.3, 0.8, 0.95):
            assert st_lower_bound(6, rho, oblivious=True) > st_lower_bound(
                6, rho, oblivious=False
            )

    def test_any_scheme_formula(self):
        n, rho = 8, 0.9
        f = 0.5
        assert st_lower_bound(n, rho, oblivious=False) == pytest.approx(
            f * (1 + rho / (2 * n * (1 - rho)))
        )

    def test_diverges_at_capacity(self):
        assert st_lower_bound(6, 0.9999) > 1000 * st_lower_bound(6, 0.5)

    def test_rejects_rho_one(self):
        with pytest.raises(ValueError):
            st_lower_bound(6, 1.0)


class TestCopyAndMarkovBounds:
    @given(st.integers(3, 14), st.floats(0.1, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_markov_improves_copy_by_d_over_dbar(self, n, rho):
        """Thm 12 / Thm 10 = d / d-bar = 2(n-1)/(n-1/2) exactly."""
        lam = lambda_for_load(n, rho, "exact")
        ratio = markov_lower_bound(n, lam) / copy_lower_bound(n, lam)
        assert np.isclose(ratio, 2 * (n - 1) / (n - 0.5))

    @given(st.integers(3, 12), st.floats(0.2, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_all_lower_bounds_below_upper(self, n, rho):
        lam = lambda_for_load(n, rho, "exact")
        b = bound_summary(n, lam)
        assert b.is_consistent()

    def test_copy_bound_within_4n_minus_4_of_upper(self):
        """Paper: Thm 10's delay bound is within 4n-4 of the upper bound
        (the factor 2 from Lemma 9 times the copy count d = 2(n-1));
        check the claimed gap is an upper bound on the actual gap."""
        n = 8
        for rho in (0.5, 0.9, 0.99):
            lam = lambda_for_load(n, rho)
            b = bound_summary(n, lam)
            assert b.upper / b.lower_copy <= 4 * n - 4 + 1e-9

    def test_markov_bound_within_2n_minus_1(self):
        n = 9
        for rho in (0.5, 0.9, 0.99):
            lam = lambda_for_load(n, rho)
            b = bound_summary(n, lam)
            assert b.upper / b.lower_markov <= 2 * n - 1 + 1e-9


class TestTheorem14:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_even_gap_approaches_three(self, n):
        """As rho -> 1, UB / saturated LB -> 2 * s-bar = 3 for even n."""
        lam = lambda_for_load(n, 0.9999)
        b = bound_summary(n, lam)
        assert b.upper / b.lower_saturated == pytest.approx(3.0, rel=0.02)

    @pytest.mark.parametrize("n", [5, 7, 9])
    def test_odd_gap_below_six(self, n):
        lam = lambda_for_load(n, 0.9999)
        b = bound_summary(n, lam)
        gap = b.upper / b.lower_saturated
        assert gap < 6.0
        assert gap == pytest.approx(asymptotic_gap(n), rel=0.02)

    def test_saturated_dominates_at_heavy_load(self):
        n = 8
        lam = lambda_for_load(n, 0.999)
        b = bound_summary(n, lam)
        assert b.lower_saturated == pytest.approx(b.lower_best)

    def test_non_markovian_variant_weaker(self):
        n, rho = 6, 0.95
        lam = lambda_for_load(n, rho)
        # s = 2 > s-bar = 1.5 for even n, so dividing by s gives less.
        assert saturated_lower_bound(n, lam, markovian=False) < saturated_lower_bound(
            n, lam, markovian=True
        )

    def test_asymptotic_gap_values(self):
        assert asymptotic_gap(6) == pytest.approx(3.0)
        assert asymptotic_gap(8) == pytest.approx(3.0)
        assert asymptotic_gap(5) == pytest.approx(2 * (8 / 3), rel=1e-9)
        assert asymptotic_gap(7) < 6.0


class TestBestAndSummary:
    def test_trivial_wins_at_light_load(self):
        n = 10
        lam = lambda_for_load(n, 0.1)
        assert best_lower_bound(n, lam) == pytest.approx(mean_distance(n))

    def test_summary_fields_coherent(self):
        n, rho = 6, 0.8
        lam = lambda_for_load(n, rho)
        b = bound_summary(n, lam)
        assert b.rho == pytest.approx(rho)
        assert b.lower_best == max(
            b.lower_trivial,
            b.lower_st_any,
            b.lower_st_oblivious,
            b.lower_copy,
            b.lower_markov,
            b.lower_saturated,
        )
        assert b.gap == pytest.approx(b.upper / b.lower_best)

    def test_best_matches_summary(self):
        n, rho = 7, 0.9
        lam = lambda_for_load(n, rho)
        assert best_lower_bound(n, lam) == pytest.approx(
            bound_summary(n, lam).lower_best
        )

    def test_estimate_between_best_lower_and_upper(self):
        n, rho = 8, 0.7
        lam = lambda_for_load(n, rho)
        b = bound_summary(n, lam)
        assert b.lower_best <= b.estimate <= b.upper
