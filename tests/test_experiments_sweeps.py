"""Tests for the resumable sweep runner."""

import json

import pytest

from repro.experiments.sweeps import (
    cell_id,
    load_sweep_spec,
    run_sweep,
)
from repro.sim.replication import CellSpec

WINDOW = dict(warmup=20, horizon=120)

SPEC_JSON = {
    "defaults": {
        "scenario": "uniform",
        "warmup": 20,
        "horizon": 120,
        "seeds": [0, 1],
    },
    "grid": {"n": [4], "rho": [0.4, 0.7]},
    "cells": [
        {"scenario": "hotspot", "n": 4, "rho": 0.5, "params": {"h": 0.3}}
    ],
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_JSON))
    return path


class TestSpecLoading:
    def test_json_grid_cross_product_plus_cells(self, spec_file):
        specs = load_sweep_spec(spec_file)
        assert len(specs) == 3
        assert [s.rho for s in specs] == [0.4, 0.7, 0.5]
        assert specs[2].scenario == "hotspot"
        assert specs[2].params_dict == {"h": 0.3}
        assert all(s.seeds == (0, 1) for s in specs)

    def test_csv_rows(self, tmp_path):
        path = tmp_path / "spec.csv"
        path.write_text(
            "scenario,n,rho,seeds,warmup,horizon,engine_params\n"
            "uniform,4,0.4,0;1,20,120,\n"
            "uniform,4,0.7,2,20,120,event_queue=heap\n"
        )
        specs = load_sweep_spec(path)
        assert len(specs) == 2
        assert specs[0].seeds == (0, 1)
        assert specs[1].seeds == (2,)
        assert specs[1].engine_params_dict == {"event_queue": "heap"}

    def test_empty_spec_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="no cells"):
            load_sweep_spec(path)

    def test_bad_field_reports_cell(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"cells": [{"rho": 0.5, "sides": 4}]}))
        with pytest.raises(ValueError, match="bad sweep cell"):
            load_sweep_spec(path)


class TestCellId:
    def test_deterministic(self):
        a = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        b = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        assert cell_id(a) == cell_id(b)

    def test_sensitive_to_every_field(self):
        base = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        variants = [
            CellSpec(scenario="uniform", n=4, rho=0.6, **WINDOW),
            CellSpec(scenario="uniform", n=4, rho=0.5, seeds=(9,), **WINDOW),
            CellSpec(scenario="uniform", n=4, rho=0.5, warmup=20, horizon=121),
        ]
        assert len({cell_id(s) for s in [base, *variants]}) == 4

    def test_readable_slug(self):
        cid = cell_id(CellSpec(scenario="hotspot", n=6, rho=0.5, **WINDOW))
        assert cid.startswith("hotspot-fifo-n6-")


class TestRunSweep:
    def test_fresh_run_writes_checkpoints_and_aggregate(self, spec_file, tmp_path):
        out = tmp_path / "out"
        run = run_sweep(spec_file, out, processes=1)
        assert run.ran == 3 and run.resumed == 0
        assert sorted(p.parent.name for p in out.glob("cells/*/result.json")) == sorted(
            run.cell_ids
        )
        agg = json.loads(run.aggregate_json.read_text())
        assert [c["cell_id"] for c in agg["cells"]] == run.cell_ids
        assert run.aggregate_csv.read_text().count("\n") == 4  # header + 3

    def test_rerun_skips_everything(self, spec_file, tmp_path):
        out = tmp_path / "out"
        run_sweep(spec_file, out, processes=1)
        again = run_sweep(spec_file, out, processes=1)
        assert again.ran == 0 and again.resumed == 3

    def test_kill_and_resume_matches_fresh_run(self, spec_file, tmp_path):
        """The acceptance criterion: interrupt mid-sweep, rerun, completed
        cells are skipped and the aggregate is byte-identical."""
        fresh = tmp_path / "fresh"
        run_sweep(spec_file, fresh, processes=1)

        class Interrupt(Exception):
            pass

        hits = []

        def bomb(cid):
            hits.append(cid)
            if len(hits) == 1:
                raise Interrupt(cid)

        resumed = tmp_path / "resumed"
        with pytest.raises(Interrupt):
            run_sweep(spec_file, resumed, processes=1, on_cell_complete=bomb)
        survivors = list(resumed.glob("cells/*/result.json"))
        assert len(survivors) == 1  # the interrupt left one checkpoint

        run = run_sweep(spec_file, resumed, processes=1)
        assert run.resumed == 1 and run.ran == 2
        assert (resumed / "aggregate.json").read_bytes() == (
            fresh / "aggregate.json"
        ).read_bytes()
        assert (resumed / "aggregate.csv").read_bytes() == (
            fresh / "aggregate.csv"
        ).read_bytes()

    def test_torn_checkpoint_is_rerun(self, spec_file, tmp_path):
        out = tmp_path / "out"
        run = run_sweep(spec_file, out, processes=1)
        victim = out / "cells" / run.cell_ids[0] / "result.json"
        victim.write_text('{"cell_id": ')  # simulate a torn write
        again = run_sweep(spec_file, out, processes=1)
        assert again.ran == 1 and again.resumed == 2
        assert json.loads(victim.read_text())["cell_id"] == run.cell_ids[0]

    def test_duplicate_cells_rejected(self, tmp_path):
        spec = CellSpec(scenario="uniform", n=4, rho=0.5, **WINDOW)
        with pytest.raises(ValueError, match="duplicate sweep cells"):
            run_sweep([spec, spec], tmp_path / "out", processes=1)

    def test_accepts_in_memory_specs(self, tmp_path):
        specs = [
            CellSpec(scenario="uniform", n=4, rho=r, seeds=(0,), **WINDOW)
            for r in (0.4, 0.6)
        ]
        run = run_sweep(specs, tmp_path / "out", processes=1)
        assert run.ran == 2
        assert "Sweep" in run.render()


class TestScenarioSweepWiring:
    def test_to_cell_specs_matches_run(self):
        from repro.experiments.scenario_sweep import QUICK_SCEN, to_cell_specs

        specs = to_cell_specs(QUICK_SCEN)
        assert [s.scenario for s in specs] == list(QUICK_SCEN.scenarios)
        assert all(s.rho == QUICK_SCEN.rho for s in specs)

    def test_run_resumable_checkpoints_cells(self, tmp_path):
        import dataclasses

        from repro.experiments import scenario_sweep

        cfg = dataclasses.replace(
            scenario_sweep.QUICK_SCEN,
            scenarios=("hotspot",),
            warmup=20.0,
            horizon=120.0,
            seeds=(1,),
            n=4,
        )
        run = scenario_sweep.run_resumable(
            cfg, str(tmp_path / "scen"), processes=1
        )
        assert run.ran == 1
        run2 = scenario_sweep.run_resumable(
            cfg, str(tmp_path / "scen"), processes=1
        )
        assert run2.resumed == 1 and run2.ran == 0
