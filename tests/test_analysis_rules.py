"""Per-rule tests for the replint framework (repro.analysis).

The fixture snippets under ``tests/analysis_fixtures/`` are parsed, never
imported; each rule has a bad fixture it must flag and a good fixture it
must leave clean. The rng fixtures live in an ``analysis_fixtures/sim/``
subdirectory so the rule's sim-scope heuristics trigger naturally.
"""

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, analyze_paths

FIXTURES = Path(__file__).parent / "analysis_fixtures"
KERNELS_INIT = (
    Path(__file__).parent.parent / "src" / "repro" / "sim" / "kernels" / "__init__.py"
)


def run(paths, select=None):
    return analyze_paths(paths, select=select)


def rules_hit(findings):
    return {f.rule for f in findings}


# -- registry sanity ---------------------------------------------------

def test_all_eleven_rules_registered():
    assert set(RULES) == {
        "rng-discipline",
        "backend-boundary",
        "registry-consistency",
        "golden-coverage",
        "bench-coverage",
        "validation-coverage",
        "hot-loop-alloc",
        "stale-suppression",
        "shm-hygiene",
        "mutable-default",
        "dead-import",
    }


# -- rng-discipline ----------------------------------------------------

def test_rng_bad_fixture_flags_every_pattern():
    findings = run([FIXTURES / "sim" / "rng_bad.py"], select=["rng-discipline"])
    assert len(findings) == 8
    messages = "\n".join(f.message for f in findings)
    assert "side='right'" in messages or "side=\"right\"" in messages
    assert "time.time" in messages
    assert "popitem" in messages
    assert "set" in messages


def test_rng_good_fixture_clean():
    assert run([FIXTURES / "sim" / "rng_good.py"], select=["rng-discipline"]) == []


# -- shm-hygiene -------------------------------------------------------

def test_shm_bad_fixture_flags_leak_and_unentered_publish():
    findings = run([FIXTURES / "shm_bad.py"], select=["shm-hygiene"])
    assert len(findings) == 2
    messages = "\n".join(f.message for f in findings)
    assert "SharedMemory(create=True)" in messages
    assert "publish_cells" in messages


def test_shm_good_fixture_clean():
    assert run([FIXTURES / "shm_good.py"], select=["shm-hygiene"]) == []


# -- mutable-default / dead-import -------------------------------------

def test_hygiene_bad_fixture_counts():
    findings = run(
        [FIXTURES / "hygiene_bad.py"], select=["mutable-default", "dead-import"]
    )
    assert sum(f.rule == "mutable-default" for f in findings) == 3
    assert sum(f.rule == "dead-import" for f in findings) == 2


def test_hygiene_good_fixture_clean():
    assert run(
        [FIXTURES / "hygiene_good.py"], select=["mutable-default", "dead-import"]
    ) == []


# -- suppression comments ----------------------------------------------

def _write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


def test_same_line_suppression(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        def f(bucket=[]):  # replint: disable=mutable-default
            return bucket
        """,
    )
    assert run([path], select=["mutable-default"]) == []


def test_disable_next_suppression(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        # replint: disable-next=mutable-default
        def f(bucket=[]):
            return bucket
        """,
    )
    assert run([path], select=["mutable-default"]) == []


def test_disable_file_suppression(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        # replint: disable-file=mutable-default
        def f(bucket=[]):
            return bucket

        def g(table={}):
            return table
        """,
    )
    assert run([path], select=["mutable-default"]) == []


def test_disable_all_token(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        import json

        def f(bucket=[]):  # replint: disable=all
            return bucket
        """,
    )
    findings = run([path])
    # The same-line `all` silences mutable-default but not the dead
    # import two lines up.
    assert rules_hit(findings) == {"dead-import"}


def test_unsuppressed_finding_still_reported(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        def f(bucket=[]):  # replint: disable=dead-import
            return bucket
        """,
    )
    # Suppressing the *wrong* rule must not silence the finding.
    assert rules_hit(run([path], select=["mutable-default"])) == {
        "mutable-default"
    }


# -- backend-boundary --------------------------------------------------

def test_synthetic_numpy_import_in_kernels_init(tmp_path):
    """The satellite check: a module-level ``import numpy`` injected into
    a copy of the real kernels/__init__.py must be caught statically."""
    kernels = tmp_path / "kernels"
    kernels.mkdir()
    target = kernels / "__init__.py"
    shutil.copy(KERNELS_INIT, target)
    target.write_text(
        target.read_text().replace(
            "import importlib.util",
            "import importlib.util\nimport numpy",
            1,
        )
    )
    findings = run([target], select=["backend-boundary"])
    assert any("numpy-free" in f.message for f in findings)


def test_clean_kernels_init_copy_passes(tmp_path):
    kernels = tmp_path / "kernels"
    kernels.mkdir()
    shutil.copy(KERNELS_INIT, kernels / "__init__.py")
    assert run([kernels / "__init__.py"], select=["backend-boundary"]) == []


def test_module_level_numpy_backend_import_flagged(tmp_path):
    path = _write(
        tmp_path,
        "engine.py",
        """
        from repro.sim.kernels import numpy_backend

        def run(sim):
            return numpy_backend.run_fifo(sim)
        """,
    )
    findings = run([path], select=["backend-boundary"])
    assert len(findings) == 1
    assert "module level" in findings[0].message


def test_function_level_numpy_backend_outside_lazy_site_flagged(tmp_path):
    path = _write(
        tmp_path,
        "engine.py",
        """
        def sneaky(sim):
            from repro.sim.kernels import numpy_backend
            return numpy_backend.run_fifo(sim)
        """,
    )
    findings = run([path], select=["backend-boundary"])
    assert len(findings) == 1
    assert "sneaky" in findings[0].message


def test_indirect_chain_to_numpy_reported(tmp_path):
    """The closure check names the offending module-level import chain."""
    pkg = tmp_path / "pkg"
    (pkg / "kernels").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "helper.py").write_text("import numpy\n")
    (pkg / "kernels" / "__init__.py").write_text("from pkg import helper\n")
    findings = run([pkg], select=["backend-boundary"])
    chain = [f for f in findings if "->" in f.message]
    assert chain, findings
    assert "pkg.kernels -> pkg.helper -> numpy" in chain[0].message


# -- registry-consistency ----------------------------------------------

REGISTRY_SRC = (
    Path(__file__).parent.parent / "src" / "repro" / "sim" / "registry.py"
)


def test_real_registry_consistent():
    assert run([REGISTRY_SRC], select=["registry-consistency"]) == []


def test_registry_rule_skipped_when_registry_not_analyzed():
    findings = run(
        [FIXTURES / "hygiene_good.py"], select=["registry-consistency"]
    )
    assert findings == []


def test_tampered_engine_param_flagged(monkeypatch):
    """Metadata drift: an EngineParam naming no constructor parameter."""
    import dataclasses

    import repro.sim.registry as registry

    fifo = registry.get_engine("fifo")
    bogus = registry.EngineParam(
        name="no_such_knob", kind=registry.BOOL, default=False, doc="bogus"
    )
    tampered = dataclasses.replace(fifo, params=fifo.params + (bogus,))
    monkeypatch.setitem(registry._REGISTRY, "fifo", tampered)
    findings = run([REGISTRY_SRC], select=["registry-consistency"])
    assert any("no_such_knob" in f.message for f in findings)


def test_tampered_backends_choices_flagged(monkeypatch):
    """A backend EngineParam whose choices drift from Engine.backends."""
    import dataclasses

    import repro.sim.registry as registry

    fifo = registry.get_engine("fifo")
    params = tuple(
        dataclasses.replace(p, choices=("python",))
        if p.name == "backend"
        else p
        for p in fifo.params
    )
    tampered = dataclasses.replace(fifo, params=params)
    monkeypatch.setitem(registry._REGISTRY, "fifo", tampered)
    findings = run([REGISTRY_SRC], select=["registry-consistency"])
    assert any("differ from Engine.backends" in f.message for f in findings)


# -- hot-loop-alloc ----------------------------------------------------

def test_hotloop_bad_fixture_flags_every_alloc():
    findings = run(
        [FIXTURES / "sim" / "hotloop_bad.py"], select=["hot-loop-alloc"]
    )
    assert len(findings) == 8
    messages = "\n".join(f.message for f in findings)
    for label in (
        "List display",
        "Dict display",
        "f-string",
        "%-formatting",
        "str.format() call",
        "np.zeros() call",
        "list() call",
    ):
        assert label in messages, label
    # Identical code outside a run loop stays silent.
    assert "helper" not in messages


def test_hotloop_good_fixture_clean():
    assert run(
        [FIXTURES / "sim" / "hotloop_good.py"], select=["hot-loop-alloc"]
    ) == []


def test_hotloop_rule_ignores_non_sim_paths(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        def run(events):
            out = []
            for t in events:
                out.append([t, 0])
            return out
        """,
    )
    assert run([path], select=["hot-loop-alloc"]) == []


# -- golden-coverage / bench-coverage ----------------------------------

def _register_synthetic_engine(monkeypatch, name="priority", **overrides):
    """A sixth engine cloned from fifo but pinned by no artifact."""
    import dataclasses

    import repro.sim.registry as registry

    fifo = registry.get_engine("fifo")
    synthetic = dataclasses.replace(fifo, name=name, aliases=(), **overrides)
    monkeypatch.setitem(registry._REGISTRY, name, synthetic)
    return synthetic


def test_real_registry_fully_covered_by_golden_and_bench():
    assert run(
        [REGISTRY_SRC], select=["golden-coverage", "bench-coverage"]
    ) == []


def test_coverage_rules_skip_when_registry_not_analyzed():
    assert run(
        [FIXTURES / "hygiene_good.py"],
        select=["golden-coverage", "bench-coverage"],
    ) == []


def test_unpinned_synthetic_engine_trips_golden_coverage(monkeypatch):
    """The acceptance check: a registered engine with no golden cell is
    a finding, even though every test still passes."""
    _register_synthetic_engine(monkeypatch)
    findings = run([REGISTRY_SRC], select=["golden-coverage"])
    assert len(findings) == 1
    assert "'priority'" in findings[0].message
    assert "no golden cell" in findings[0].message


def test_unpinned_synthetic_engine_trips_bench_coverage(monkeypatch):
    _register_synthetic_engine(monkeypatch)
    findings = run([REGISTRY_SRC], select=["bench-coverage"])
    assert any(
        "'priority'" in f.message and "BENCH_" in f.message for f in findings
    )


def test_untracked_capability_trips_golden_coverage(monkeypatch):
    """An engine claiming supports_maxima with no maxima-tracking cell.

    The ps engine has direct and api golden cells, so only the tampered
    capability sub-check can fire — every ps cell records
    max_queue_length as -1, proving the rule reads the recorded cell
    *values*, not just fixture names.
    """
    import dataclasses

    import repro.sim.registry as registry

    ps = registry.get_engine("ps")
    tampered = dataclasses.replace(ps, supports_maxima=True)
    monkeypatch.setitem(registry._REGISTRY, "ps", tampered)
    findings = run([REGISTRY_SRC], select=["golden-coverage"])
    assert len(findings) == 1
    assert "'ps'" in findings[0].message
    assert "track_maxima" in findings[0].message


def test_unbenched_backend_trips_bench_coverage(monkeypatch):
    import dataclasses

    import repro.sim.registry as registry

    fifo = registry.get_engine("fifo")
    tampered = dataclasses.replace(
        fifo, backends=fifo.backends + ("cython",)
    )
    monkeypatch.setitem(registry._REGISTRY, "fifo", tampered)
    findings = run([REGISTRY_SRC], select=["bench-coverage"])
    assert len(findings) == 1
    assert "'cython'" in findings[0].message


# -- validation-coverage -------------------------------------------------

def test_real_registry_fully_covered_by_validation_checks():
    assert run([REGISTRY_SRC], select=["validation-coverage"]) == []


def test_validation_coverage_skips_when_registry_not_analyzed():
    assert run(
        [FIXTURES / "hygiene_good.py"], select=["validation-coverage"]
    ) == []


def test_unvalidated_synthetic_engine_trips_validation_coverage(monkeypatch):
    """A sixth engine with no gate-severity check is a finding even
    though the validation run itself would pass (it never runs)."""
    _register_synthetic_engine(monkeypatch)
    findings = run([REGISTRY_SRC], select=["validation-coverage"])
    assert len(findings) == 1
    assert "'priority'" in findings[0].message
    assert "no gate-severity validation check" in findings[0].message


def test_unvalidated_backend_trips_validation_coverage(monkeypatch):
    """An advertised kernel backend no gate check runs on is a finding
    — a biased vectorized solver must not merge unvalidated."""
    import dataclasses

    import repro.sim.registry as registry

    fifo = registry.get_engine("fifo")
    tampered = dataclasses.replace(fifo, backends=fifo.backends + ("cython",))
    monkeypatch.setitem(registry._REGISTRY, "fifo", tampered)
    findings = run([REGISTRY_SRC], select=["validation-coverage"])
    assert len(findings) == 1
    assert "'cython'" in findings[0].message
    assert "no gate-severity validation check runs on that backend" in (
        findings[0].message
    )


# -- stale-suppression --------------------------------------------------

def test_unused_suppression_flagged_on_full_run(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        VALUE = 1  # replint: disable=mutable-default
        """,
    )
    findings = run([path])
    assert rules_hit(findings) == {"stale-suppression"}
    assert "mutable-default" in findings[0].message


def test_used_suppression_not_stale(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        def f(bucket=[]):  # replint: disable=mutable-default
            return bucket
        """,
    )
    assert run([path]) == []


def test_select_does_not_make_unexecuted_suppressions_stale(tmp_path):
    # disable=mutable-default can only be judged when mutable-default
    # actually ran; under --select dead-import it is left alone even
    # though stale-suppression itself is selected.
    path = _write(
        tmp_path,
        "mod.py",
        """
        VALUE = 1  # replint: disable=mutable-default
        """,
    )
    assert run([path], select=["dead-import", "stale-suppression"]) == []


def test_disable_file_under_select_consumed_not_stale(tmp_path):
    # The satellite matrix: disable-file vs --select. Selecting the
    # suppressed rule consumes the file-wide suppression (no stale
    # finding); selecting an unrelated rule leaves it unassessed.
    path = _write(
        tmp_path,
        "mod.py",
        """
        # replint: disable-file=mutable-default
        def f(bucket=[]):
            return bucket
        """,
    )
    assert run(
        [path], select=["mutable-default", "stale-suppression"]
    ) == []
    assert run([path], select=["dead-import", "stale-suppression"]) == []


def test_unused_blanket_suppression_flagged_only_on_full_run(tmp_path):
    # The satellite matrix: disable=all vs stale-suppression. The
    # blanket is dead weight on a full run, but a --select run cannot
    # judge it (most rules never executed).
    path = _write(
        tmp_path,
        "mod.py",
        """
        VALUE = 1  # replint: disable=all
        """,
    )
    full = run([path])
    assert rules_hit(full) == {"stale-suppression"}
    assert "blanket" in full[0].message
    assert run([path], select=["mutable-default", "stale-suppression"]) == []


def test_unknown_rule_suppression_always_flagged(tmp_path):
    path = _write(
        tmp_path,
        "mod.py",
        """
        VALUE = 1  # replint: disable=no-such-rule
        """,
    )
    findings = run([path], select=["stale-suppression"])
    assert rules_hit(findings) == {"stale-suppression"}
    assert "no-such-rule" in findings[0].message


def test_stale_suppression_opt_out(tmp_path):
    # Naming stale-suppression itself exempts the comment from the
    # dead-weight audit (one level only — no meta-suppression chains).
    path = _write(
        tmp_path,
        "mod.py",
        """
        VALUE = 1  # replint: disable=stale-suppression,mutable-default
        """,
    )
    assert run([path]) == []


# -- the real tree -----------------------------------------------------

def test_real_repro_tree_is_clean():
    src_repro = Path(__file__).parent.parent / "src" / "repro"
    assert run([src_repro]) == []


def test_parse_error_becomes_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    findings = run([path])
    assert [f.rule for f in findings] == ["parse-error"]
