"""Engine-level tests for the hot-path overhaul: fast-id block discipline,
slotted option parity, the batched slot kernel, and replication-level
cache sharing."""

import math

import numpy as np
import pytest

from repro.routing.destinations import (
    GeometricStopDestinations,
    HotSpotDestinations,
    PermutationDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.kernels.python_backend import _BLOCK
from repro.sim.replication import CellSpec, _cell_network, replicate
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh


class TestFastIdBlockDiscipline:
    """Satellite: the fast-id refill must happen at exactly ``2 * _BLOCK``
    consumed ids — the old ``>= 2 * _BLOCK - 1`` condition documented an
    off-by-one that would have discarded the last id of every block had
    the cursor ever been odd."""

    def test_draw_count_pinned_across_refill(self):
        """Replay the engine's documented draw order independently and pin
        the (src, dst) pairing across the id-block refill boundary.

        The run consumes > _BLOCK id pairs, so a refill that skipped or
        discarded even one id would shift every later pairing and change
        ``zero_hop`` (and ``generated`` via the gap stream) almost surely.
        """
        n_nodes = 16
        node_rate = 2.0
        total_rate = node_rate * n_nodes
        horizon = 310.0
        seed = 5

        mesh = ArrayMesh(4)
        sim = NetworkSimulation(
            GreedyArrayRouter(mesh),
            UniformDestinations(n_nodes),
            node_rate,
            seed=seed,
        )
        assert sim._fast_ids
        res = sim.run(0.0, horizon)

        # Independent replay of the documented block discipline: one
        # exponential block, one 2*_BLOCK id block, refills exactly at
        # exhaustion; deterministic service consumes no other draws.
        rng = np.random.default_rng(seed)
        exp_block = rng.exponential(size=_BLOCK)
        exp_i = 0
        id_block = rng.integers(0, n_nodes, size=2 * _BLOCK).tolist()
        id_i = 0
        gap_scale = 1.0 / total_rate
        t = exp_block[exp_i] * gap_scale
        exp_i += 1
        generated = zero_hop = 0
        while t < horizon:
            if id_i >= 2 * _BLOCK:
                id_block = rng.integers(0, n_nodes, size=2 * _BLOCK).tolist()
                id_i = 0
            src, dst = id_block[id_i], id_block[id_i + 1]
            id_i += 2
            generated += 1
            if src == dst:
                zero_hop += 1
            if exp_i >= _BLOCK:
                exp_block = rng.exponential(size=_BLOCK)
                exp_i = 0
            t = t + exp_block[exp_i] * gap_scale
            exp_i += 1

        assert generated > _BLOCK  # the id refill boundary was crossed
        assert res.generated == generated
        assert res.zero_hop == zero_hop


class TestSlottedOptionParity:
    """Satellite: slotted engine grows the event engine's ``track_maxima``
    and ``collect_delays`` options with the same warmup-window
    semantics."""

    def _sim(self, seed=3, dests=None):
        mesh = ArrayMesh(4)
        return SlottedNetworkSimulation(
            GreedyArrayRouter(mesh),
            dests or UniformDestinations(16),
            0.3,
            seed=seed,
        )

    def test_defaults_do_not_track(self):
        res = self._sim().run(10, 200)
        assert res.max_queue_length == -1
        assert math.isnan(res.max_delay)
        assert res.delays is None

    def test_collected_delays_match_summary(self):
        res = self._sim().run(10, 300, collect_delays=True)
        assert res.delays is not None
        assert len(res.delays) == res.completed
        assert float(np.sum(res.delays)) / len(res.delays) == pytest.approx(
            res.mean_delay, rel=1e-9
        )
        # Zero-hop packets contribute delay 0 at generation time.
        assert (res.delays == 0.0).sum() >= res.zero_hop

    def test_max_delay_is_worst_collected_delay(self):
        res = self._sim().run(10, 300, collect_delays=True, track_maxima=True)
        assert res.max_delay == pytest.approx(float(np.max(res.delays)))
        assert res.max_queue_length >= 1

    def test_maxima_only_cover_measurement_window(self):
        """A run whose measurement window starts after a congested warmup
        still seeds max_queue with the standing backlog (event-engine
        parity), so the maximum cannot shrink below the crossing state."""
        hot = HotSpotDestinations(16, hot_node=5, h=0.9)
        sim = SlottedNetworkSimulation(
            GreedyArrayRouter(ArrayMesh(4)), hot, 0.4, seed=7
        )
        res = sim.run(40, 80, track_maxima=True)
        assert res.max_queue_length >= 1

    def test_delays_with_warmup_exclude_warmup_packets(self):
        res = self._sim().run(50, 100, collect_delays=True)
        assert len(res.delays) == res.completed == res.generated


class TestSlottedBatchRng:
    """Satellite: blocked Poisson draws + fully batched slot kernel."""

    def _mk(self, dests, seed=11, rate=0.3, n=4, router=None):
        mesh = ArrayMesh(n)
        return SlottedNetworkSimulation(
            router or GreedyArrayRouter(mesh), dests, rate, seed=seed
        )

    def test_seed_stable(self):
        a = self._mk(UniformDestinations(16)).run(10, 300, batch_rng=True)
        b = self._mk(UniformDestinations(16)).run(10, 300, batch_rng=True)
        assert a.mean_delay == b.mean_delay
        assert a.mean_number == b.mean_number
        assert a.generated == b.generated

    @pytest.mark.parametrize(
        "dests_factory",
        [
            lambda: UniformDestinations(36),
            lambda: HotSpotDestinations(36, hot_node=7, h=0.3),
            lambda: GeometricStopDestinations(ArrayMesh(6), stop=0.5),
            lambda: PermutationDestinations.transpose(ArrayMesh(6)),
        ],
    )
    def test_statistically_consistent_with_compat_kernel(self, dests_factory):
        """Same law, same load: the two draw orders must estimate the same
        system (they are different samplings of one distribution)."""
        mesh = ArrayMesh(6)
        router = GreedyArrayRouter(mesh)
        compat = SlottedNetworkSimulation(
            router, dests_factory(), 0.2, seed=1
        ).run(50, 1500, batch_rng=False)
        batch = SlottedNetworkSimulation(
            router, dests_factory(), 0.2, seed=2
        ).run(50, 1500, batch_rng=True)
        tol = 0.35 + 3.0 * (compat.delay_half_width + batch.delay_half_width)
        assert abs(compat.mean_delay - batch.mean_delay) < tol
        assert batch.completed > 0 and batch.generated > 0

    def test_randomized_router_coins_batched(self):
        mesh = ArrayMesh(4)
        router = RandomizedGreedyArrayRouter(mesh)
        res = self._mk(UniformDestinations(16), router=router).run(
            20, 400, batch_rng=True
        )
        assert res.completed > 0
        assert res.littles_law_gap < 0.25

    def test_batch_and_compat_agree_when_stream_compatible(self):
        """For the uniform fast path the id pairs are drawn identically in
        both modes; only the Poisson count blocking differs, so generated
        counts stay close but trajectories legitimately diverge."""
        a = self._mk(UniformDestinations(16)).run(10, 500, batch_rng=False)
        b = self._mk(UniformDestinations(16)).run(10, 500, batch_rng=True)
        assert a.generated == pytest.approx(b.generated, rel=0.1)


class TestReplicationCacheSharing:
    def test_cell_network_is_memoized(self):
        spec = CellSpec(scenario="uniform", n=4, rho=0.5)
        net1, cache1 = _cell_network(spec)
        net2, cache2 = _cell_network(
            CellSpec(scenario="uniform", n=4, rho=0.9, seeds=(7,))
        )
        assert net1 is net2  # rho/seeds are not part of the cell identity
        assert cache1 is cache2
        other, _ = _cell_network(CellSpec(scenario="uniform", n=5, rho=0.5))
        assert other is not net1

    def test_shared_cache_matches_fresh_engines(self):
        """Replications through the memoized (network, cache) are
        bit-identical to fresh per-seed engines."""
        spec = CellSpec(
            scenario="uniform", n=4, node_rate=0.3,
            warmup=20, horizon=200, seeds=(0, 1, 2),
        )
        pooled = replicate(spec, processes=1)
        from repro.scenarios import build_network

        for seed, rep in zip(spec.seeds, pooled.replications):
            net = build_network("uniform", 4)
            direct = NetworkSimulation(
                net.router, net.destinations, 0.3, seed=seed
            ).run(20, 200)
            assert rep.mean_delay == direct.mean_delay
            assert rep.mean_number == direct.mean_number
            assert rep.generated == direct.generated

    def test_slotted_replication_shares_cache_too(self):
        spec = CellSpec(
            scenario="hotspot", n=4, node_rate=0.2, engine="slotted",
            warmup=20, horizon=200, seeds=(3, 4),
        )
        pooled = replicate(spec, processes=1)
        assert len(pooled.replications) == 2
        assert all(r.completed > 0 for r in pooled.replications)
