"""Tests for the batched sampling APIs (destination ``sample_batch`` and
the engines' blocked RNG draws).

Satellite contract: every destination law's ``sample_batch`` agrees with
repeated scalar ``sample`` calls in distribution, and laws flagged
``batch_stream_identical`` reproduce the scalar draws *bit-exactly* from
the same RNG state. The pmf view stays the single source of truth: both
scalar and batch empirical frequencies are checked against it.
"""

import numpy as np
import pytest

from repro.routing.destinations import (
    GeometricStopDestinations,
    HotSpotDestinations,
    MatrixDestinations,
    PBiasedHypercubeDestinations,
    PermutationDestinations,
    UniformDestinations,
)
from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube


def _laws():
    mesh = ArrayMesh(5)
    cube = Hypercube(4)
    rng = np.random.default_rng(123)
    p = rng.random((25, 25))
    p /= p.sum(axis=1, keepdims=True)
    return {
        "uniform": UniformDestinations(25),
        "matrix": MatrixDestinations(p),
        "pbiased": PBiasedHypercubeDestinations(cube, 0.3),
        "geometric": GeometricStopDestinations(mesh, stop=0.5),
        "hotspot": HotSpotDestinations(25, hot_node=7, h=0.3),
        "transpose": PermutationDestinations.transpose(mesh),
    }


LAWS = _laws()
STREAM_IDENTICAL = {"uniform", "matrix", "pbiased", "transpose"}


@pytest.mark.parametrize("name", sorted(LAWS))
def test_batch_matches_scalar_in_distribution(name):
    """Empirical batch frequencies match the exact pmf (and therefore the
    scalar sampler, which is pinned to the pmf by the existing tests)."""
    law = LAWS[name]
    src = 7 % law.num_nodes
    rng = np.random.default_rng(99)
    draws = law.sample_batch(np.full(60000, src, dtype=np.int64), rng)
    emp = np.bincount(np.asarray(draws), minlength=law.num_nodes) / len(draws)
    assert np.abs(emp - law.pmf(src)).max() < 0.01


@pytest.mark.parametrize("name", sorted(LAWS))
def test_batch_respects_per_source_laws(name):
    """Mixed-source batches draw each packet from its own source's law."""
    law = LAWS[name]
    n = law.num_nodes
    rng = np.random.default_rng(5)
    srcs = np.array([1, n - 2] * 30000, dtype=np.int64)
    draws = np.asarray(law.sample_batch(srcs, rng))
    for src in (1, n - 2):
        sel = draws[srcs == src]
        emp = np.bincount(sel, minlength=n) / len(sel)
        assert np.abs(emp - law.pmf(src)).max() < 0.012, src


@pytest.mark.parametrize("name", sorted(STREAM_IDENTICAL))
def test_flagged_laws_are_bit_identical_to_scalar_draws(name):
    """batch_stream_identical means: same RNG state in, same destinations
    out, same RNG state after — the engines rely on this to vectorize
    without breaking the same-seed contract."""
    law = LAWS[name]
    assert law.batch_stream_identical
    rng = np.random.default_rng(17)
    srcs = rng.integers(0, law.num_nodes, size=500)
    a = np.random.default_rng(42)
    b = np.random.default_rng(42)
    scalar = [law.sample(int(s), a) for s in srcs.tolist()]
    batch = np.asarray(law.sample_batch(srcs, b)).tolist()
    assert scalar == batch
    assert a.random() == b.random()  # streams advanced identically


@pytest.mark.parametrize("name", sorted(set(LAWS) - STREAM_IDENTICAL))
def test_unflagged_laws_declare_themselves(name):
    """Laws with data-dependent draw counts must not claim stream
    identity (the engines would silently break bit-compatibility)."""
    assert LAWS[name].batch_stream_identical is False


def test_permutation_batch_consumes_no_rng():
    law = LAWS["transpose"]
    assert law.consumes_rng is False
    a = np.random.default_rng(3)
    before = a.bit_generator.state["state"]["state"]
    law.sample_batch(np.arange(25), a)
    assert a.bit_generator.state["state"]["state"] == before


def test_empty_batch_is_valid():
    for name, law in LAWS.items():
        rng = np.random.default_rng(0)
        out = law.sample_batch(np.empty(0, dtype=np.int64), rng)
        assert len(out) == 0, name


def test_blocked_poisson_is_stream_identical_to_scalar():
    """The slotted engine's _BLOCK-disciplined Poisson counts are the same
    draws the per-slot scalar calls would make (NumPy array fills are
    sequential), so blocking changes only call overhead, never values."""
    lam = 13.7
    a = np.random.default_rng(8)
    b = np.random.default_rng(8)
    scalar = [int(a.poisson(lam)) for _ in range(300)]
    blocked = b.poisson(lam, size=300).tolist()
    assert scalar == blocked


def test_blocked_bounded_integers_are_stream_identical_to_scalar():
    """Same property for the engines' id blocks (event fast path, slotted
    pair kernel): one 2k draw equals 2k scalar draws."""
    a = np.random.default_rng(4)
    b = np.random.default_rng(4)
    scalar = [int(a.integers(1024)) for _ in range(200)]
    blocked = b.integers(0, 1024, size=200).tolist()
    assert scalar == blocked
