"""Tests for batch means and the time-batch accumulator."""

import numpy as np
import pytest

from repro.sim.measurement import BatchMeans, TimeBatchAccumulator, batch_means


class TestBatchMeans:
    def test_pooled_mean(self):
        sums = np.array([10.0, 20.0])
        weights = np.array([5.0, 5.0])
        bm = batch_means(sums, weights)
        assert bm.mean == pytest.approx(3.0)
        assert bm.batches == 2

    def test_empty_batches_skipped(self):
        bm = batch_means(np.array([10.0, 0.0, 20.0]), np.array([5.0, 0.0, 5.0]))
        assert bm.batches == 2

    def test_all_empty_gives_nan(self):
        bm = batch_means(np.zeros(3), np.zeros(3))
        assert np.isnan(bm.mean) and bm.batches == 0

    def test_single_batch_no_halfwidth(self):
        bm = batch_means(np.array([4.0]), np.array([2.0]))
        assert bm.mean == 2.0
        assert np.isnan(bm.half_width)

    def test_halfwidth_shrinks_with_consistency(self):
        tight = batch_means(np.array([1.0, 1.01, 0.99, 1.0]), np.ones(4))
        loose = batch_means(np.array([0.1, 2.0, 0.5, 1.5]), np.ones(4))
        assert tight.half_width < loose.half_width

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            batch_means(np.zeros(2), np.zeros(3))

    def test_known_halfwidth(self):
        """Half-width is 1.96 * sd(batch means)/sqrt(k)."""
        per_batch = np.array([1.0, 2.0, 3.0, 4.0])
        bm = batch_means(per_batch, np.ones(4))
        se = per_batch.std(ddof=1) / 2.0
        assert bm.half_width == pytest.approx(1.96 * se)


class TestTimeBatchAccumulator:
    def test_events_fall_in_correct_batches(self):
        acc = TimeBatchAccumulator(0.0, 10.0, num_batches=2)
        acc.add(1.0, 5.0)
        acc.add(7.0, 11.0)
        assert acc.sums.tolist() == [5.0, 11.0]
        assert acc.weights.tolist() == [1.0, 1.0]

    def test_out_of_window_ignored(self):
        acc = TimeBatchAccumulator(5.0, 10.0)
        acc.add(4.0, 1.0)
        acc.add(10.0, 1.0)
        assert acc.weights.sum() == 0.0

    def test_boundary_inclusion(self):
        acc = TimeBatchAccumulator(0.0, 10.0, num_batches=2)
        acc.add(0.0, 1.0)  # start included
        assert acc.weights[0] == 1.0

    def test_summary_matches_overall_mean(self):
        acc = TimeBatchAccumulator(0.0, 4.0, num_batches=4)
        values = [1.0, 2.0, 3.0, 4.0]
        for t, v in zip([0.5, 1.5, 2.5, 3.5], values):
            acc.add(t, v)
        assert acc.summary().mean == pytest.approx(np.mean(values))

    def test_weighted_add(self):
        acc = TimeBatchAccumulator(0.0, 2.0, num_batches=1)
        acc.add(0.5, 6.0, weight=2.0)
        acc.add(1.5, 2.0, weight=1.0)
        assert acc.summary().mean == pytest.approx(8.0 / 3.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TimeBatchAccumulator(5.0, 5.0)

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            TimeBatchAccumulator(0.0, 1.0, num_batches=0)
