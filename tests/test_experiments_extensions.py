"""Tests for the extension experiments: higher dimensions and the torus."""

import pytest

from repro.experiments.higher_dims import HigherDimsConfig
from repro.experiments.higher_dims import run as run_kd
from repro.experiments.higher_dims import shape_checks as kd_checks
from repro.experiments.torus import TorusConfig
from repro.experiments.torus import run as run_torus
from repro.experiments.torus import shape_checks as torus_checks


class TestHigherDims:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = HigherDimsConfig(
            table_side=4,
            table_ks=(2, 3),
            sim_side=3,
            sim_k=3,
            sim_rho=0.6,
            warmup=80.0,
            horizon=900.0,
        )
        return run_kd(cfg)

    def test_shape_checks_pass(self, result):
        assert kd_checks(result) == []

    def test_gap_column(self, result):
        for k, _nbar, _lo, _hi, gap in result.rows:
            assert gap == k + 1

    def test_render(self, result):
        out = result.render()
        assert "bound sandwich over k" in out
        assert "T(sim)" in out

    def test_sandwich(self, result):
        gb = result.sim_bounds
        assert gb.lower_best <= result.t_sim * 1.1
        assert result.t_sim <= gb.upper * 1.1


class TestTorus:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = TorusConfig(n=4, rho=0.6, warmup=80.0, horizon=900.0)
        return run_torus(cfg)

    def test_shape_checks_pass(self, result):
        assert torus_checks(result) == []

    def test_obstruction_found(self, result):
        assert result.obstruction_cycle_len >= 2

    def test_no_upper_bound(self, result):
        assert result.bounds.upper is None

    def test_torus_beats_array(self, result):
        assert result.t_sim < result.t_array_sim

    def test_render(self, result):
        out = result.render()
        assert "none (not layered)" in out
