"""Tests for the extension experiments: higher dimensions, the torus,
and the finite-buffer loss sweep."""

import pytest

from repro.experiments.finite_buffer import FiniteBufferConfig
from repro.experiments.finite_buffer import run as run_finite
from repro.experiments.finite_buffer import shape_checks as finite_checks
from repro.experiments.higher_dims import HigherDimsConfig
from repro.experiments.higher_dims import run as run_kd
from repro.experiments.higher_dims import shape_checks as kd_checks
from repro.experiments.torus import TorusConfig
from repro.experiments.torus import run as run_torus
from repro.experiments.torus import shape_checks as torus_checks


class TestHigherDims:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = HigherDimsConfig(
            table_side=4,
            table_ks=(2, 3),
            sim_side=3,
            sim_k=3,
            sim_rho=0.6,
            warmup=80.0,
            horizon=900.0,
        )
        return run_kd(cfg)

    def test_shape_checks_pass(self, result):
        assert kd_checks(result) == []

    def test_gap_column(self, result):
        for k, _nbar, _lo, _hi, gap in result.rows:
            assert gap == k + 1

    def test_render(self, result):
        out = result.render()
        assert "bound sandwich over k" in out
        assert "T(sim)" in out

    def test_sandwich(self, result):
        gb = result.sim_bounds
        assert gb.lower_best <= result.t_sim * 1.1
        assert result.t_sim <= gb.upper * 1.1


class TestTorus:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = TorusConfig(n=4, rho=0.6, warmup=80.0, horizon=900.0)
        return run_torus(cfg)

    def test_shape_checks_pass(self, result):
        assert torus_checks(result) == []

    def test_obstruction_found(self, result):
        assert result.obstruction_cycle_len >= 2

    def test_no_upper_bound(self, result):
        assert result.bounds.upper is None

    def test_torus_beats_array(self, result):
        assert result.t_sim < result.t_array_sim

    def test_render(self, result):
        out = result.render()
        assert "none (not layered)" in out


class TestFiniteBufferSweep:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = FiniteBufferConfig(
            n=4,
            rho=0.9,
            buffer_sizes=(0, 1, 4),
            warmup=40.0,
            horizon=400.0,
            seeds=(1, 2),
        )
        return run_finite(cfg, processes=1)

    def test_shape_checks_pass(self, result):
        assert finite_checks(result) == []

    def test_baseline_is_lossless(self, result):
        base = result.baseline
        assert base.spec.engine_params_dict["buffer_size"] is None
        assert base.dropped == 0 and base.loss_probability == 0.0

    def test_loss_monotone_in_buffer_size(self, result):
        losses = [p.loss_probability for p in result.pooled[:-1]]
        assert losses == sorted(losses, reverse=True)
        assert losses[0] > 0

    def test_survivor_delay_below_baseline(self, result):
        base = result.baseline
        for p in result.pooled[:-1]:
            assert p.mean_delay <= base.mean_delay * 1.02

    def test_render(self, result):
        out = result.render()
        assert "Loss vs buffer size" in out
        assert "inf" in out and "dropped" in out
