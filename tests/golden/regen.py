"""Regenerate the golden engine-result fixtures.

The fixtures pin *bit-exact* same-seed outputs of both simulation engines
on a spread of workloads (uniform, hotspot, randomized, permutation,
distance-biased, torus). They are the regression contract for every
hot-path optimisation: a refactor that changes the RNG draw order, the
event ordering, or even the floating-point accumulation order of either
engine will change at least one of these numbers and fail the golden test.

Floats are stored as ``float.hex()`` strings so JSON round-trips cannot
smuggle in a ulp of drift.

Run from the repo root (only when an *intentional*, documented behaviour
change requires re-pinning)::

    PYTHONPATH=src python tests/golden/regen.py
"""

from __future__ import annotations

import json
import math
import os

from repro.routing.destinations import (
    GeometricStopDestinations,
    HotSpotDestinations,
    PermutationDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.finite_buffer import FiniteBufferNetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.topology.torus import Torus

OUT = os.path.join(os.path.dirname(__file__), "engine_results.json")

FLOAT_FIELDS = (
    "mean_number",
    "mean_remaining",
    "mean_remaining_saturated",
    "mean_delay",
    "delay_half_width",
    "mean_delay_littles",
    "total_rate",
    "max_delay",
)
INT_FIELDS = (
    "generated",
    "completed",
    "zero_hop",
    "in_flight_at_end",
    "max_queue_length",
)


def _hex(v: float) -> str:
    return "nan" if math.isnan(v) else float(v).hex()


def _encode(res) -> dict:
    out: dict = {}
    for f in INT_FIELDS:
        out[f] = int(getattr(res, f))
    for f in FLOAT_FIELDS:
        out[f] = _hex(float(getattr(res, f)))
    if res.utilization is not None:
        # The full per-edge vector is pinned through an exact checksum
        # (same accumulation order as np.sum every run) plus the peak.
        out["utilization_sum"] = _hex(float(res.utilization.sum()))
        out["utilization_max"] = _hex(float(res.utilization.max()))
    if res.node_drops is not None:
        # Finite-buffer cells: pin the total drop count and the per-node
        # vector through exact integer checksums. node_drops is None for
        # every infinite-buffer engine (including finite with
        # buffer_size=None), so these keys never appear on — and never
        # perturb — the other cells.
        out["dropped"] = int(res.dropped)
        out["node_drops_sum"] = int(res.node_drops.sum())
        out["node_drops_max"] = int(res.node_drops.max())
    return out


def sat_mask(num_edges: int):
    """Deterministic saturated-edge mask used by the sat golden cells."""
    import numpy as np

    return np.arange(num_edges) % 3 == 0


def per_edge_rates(num_edges: int):
    """Deterministic non-uniform service rates (forces the heap loop)."""
    import numpy as np

    return 1.0 + 0.5 * (np.arange(num_edges) % 4 == 0)


def _mesh_net(n: int, dests, **kw) -> NetworkSimulation:
    mesh = ArrayMesh(n)
    return NetworkSimulation(GreedyArrayRouter(mesh), dests(mesh), **kw)


def _capture(cases: dict, name: str, thunk):
    """Run one cell, optionally recording its RNG draw-stream trace.

    With ``REPRO_RNGSAN_DIR`` set, the cell runs under the rngsan tracer
    and its draw stream lands in ``<dir>/<name>.trace`` — so a golden
    mismatch can be localized to the first divergent draw with
    ``python -m repro.analysis.rngsan diff``. Tracing wraps the RNG but
    never changes its stream, so the encoded results are identical
    either way.
    """
    trace_dir = os.environ.get("REPRO_RNGSAN_DIR")
    if trace_dir:
        from repro.analysis import rngsan

        with rngsan.trace(cell=name) as tracer:
            res = thunk()
        tracer.to_trace().save(os.path.join(trace_dir, f"{name}.trace"))
    else:
        res = thunk()
    cases[name] = _encode(res)


def build_cases() -> dict:
    """Every golden cell: name -> (constructor, run) description + result."""
    cases = {}

    def event(name, router, dests, rate, seed, *, service="deterministic",
              warmup=15.0, horizon=150.0, track_maxima=False,
              saturated_mask=None, service_rates=1.0,
              track_utilization=False):
        def run():
            sim = NetworkSimulation(
                router, dests, rate, service=service, seed=seed,
                saturated_mask=saturated_mask, service_rates=service_rates,
            )
            return sim.run(
                warmup, horizon, track_maxima=track_maxima,
                track_utilization=track_utilization,
            )
        _capture(cases, name, run)

    def slotted(name, router, dests, rate, seed, *, warmup_slots=10,
                horizon_slots=150, tau=1.0, saturated_mask=None,
                batch_rng=None, track_maxima=False):
        def run():
            sim = SlottedNetworkSimulation(
                router, dests, rate, tau=tau, seed=seed,
                saturated_mask=saturated_mask,
            )
            kw = {} if batch_rng is None else {"batch_rng": batch_rng}
            return sim.run(
                warmup_slots, horizon_slots, track_maxima=track_maxima, **kw
            )
        _capture(cases, name, run)

    m5 = ArrayMesh(5)
    m4 = ArrayMesh(4)
    t5 = Torus(5)

    event("event_uniform_det", GreedyArrayRouter(m5),
          UniformDestinations(25), 0.12, 7, track_maxima=True)
    event("event_uniform_exp", GreedyArrayRouter(m5),
          UniformDestinations(25), 0.10, 8, service="exponential")
    event("event_hotspot", GreedyArrayRouter(m5),
          HotSpotDestinations(25, hot_node=12, h=0.3), 0.08, 9,
          track_maxima=True)
    event("event_randomized", RandomizedGreedyArrayRouter(m5),
          UniformDestinations(25), 0.10, 10)
    event("event_torus", GreedyTorusRouter(t5),
          UniformDestinations(25), 0.15, 11)
    event("event_transpose", GreedyArrayRouter(m4),
          PermutationDestinations.transpose(m4), 0.10, 13)
    event("event_geometric", GreedyArrayRouter(m4),
          GeometricStopDestinations(m4, stop=0.5), 0.20, 16)

    # The default slotted cells follow the engine default draw order —
    # batch_rng=True since the registry redesign flipped it (the one
    # documented re-pin in that PR). The *_compat cells pin the legacy
    # per-packet-compatible stream (batch_rng=False) on the three kernel
    # shapes: fast-id pairs, scalar data-dependent law, RNG-consuming
    # randomized cache. Their values are the pre-flip fixtures verbatim.
    slotted("slotted_uniform", GreedyArrayRouter(m5),
            UniformDestinations(25), 0.10, 11)
    slotted("slotted_hotspot", GreedyArrayRouter(m5),
            HotSpotDestinations(25, hot_node=12, h=0.3), 0.07, 12)
    slotted("slotted_transpose", GreedyArrayRouter(m4),
            PermutationDestinations.transpose(m4), 0.10, 14)
    slotted("slotted_geometric", GreedyArrayRouter(m4),
            GeometricStopDestinations(m4, stop=0.5), 0.15, 15)
    slotted("slotted_randomized", RandomizedGreedyArrayRouter(m5),
            UniformDestinations(25), 0.09, 17)
    slotted("slotted_uniform_compat", GreedyArrayRouter(m5),
            UniformDestinations(25), 0.10, 11, batch_rng=False)
    slotted("slotted_hotspot_compat", GreedyArrayRouter(m5),
            HotSpotDestinations(25, hot_node=12, h=0.3), 0.07, 12,
            batch_rng=False)
    slotted("slotted_randomized_compat", RandomizedGreedyArrayRouter(m5),
            UniformDestinations(25), 0.09, 17, batch_rng=False)

    # The PR-3-ported engines: rushed (Theorem 10 copies) on both of its
    # loops — monotone merge (uniform service) and the event queue
    # (per-edge service) — and PS on uniform plus a data-dependent law.
    def rushed(name, router, dests, rate, seed, *, warmup=15.0,
               horizon=150.0, service_rates=1.0, saturated_mask=None,
               track_maxima=False):
        _capture(cases, name, lambda: RushedNetworkSimulation(
            router, dests, rate, seed=seed, service_rates=service_rates,
            saturated_mask=saturated_mask,
        ).run(warmup, horizon, track_maxima=track_maxima))

    def ps(name, router, dests, rate, seed, *, warmup=15.0, horizon=150.0):
        _capture(cases, name, lambda: PSNetworkSimulation(
            router, dests, rate, seed=seed
        ).run(warmup, horizon))

    rushed("rushed_uniform", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.10, 23)
    rushed("rushed_peredge_service", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.10, 24,
           service_rates=per_edge_rates(m5.num_edges))
    rushed("rushed_hotspot", GreedyArrayRouter(m5),
           HotSpotDestinations(25, hot_node=12, h=0.3), 0.07, 25)
    # The capability-parity options the registry flags now advertise:
    # saturated-copy tracking and per-packet maxima. Same constructor
    # args as rushed_uniform, so the option-off fields must match it
    # (asserted by test_rushed_options_leave_base_stats_unchanged).
    rushed("rushed_sat_maxima", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.10, 23,
           saturated_mask=sat_mask(m5.num_edges), track_maxima=True)
    ps("ps_uniform", GreedyArrayRouter(m4),
       UniformDestinations(16), 0.12, 26)
    ps("ps_hotspot", GreedyArrayRouter(m4),
       HotSpotDestinations(16, hot_node=5, h=0.3), 0.10, 27)

    # The finite-buffer loss engine. The finite_none_* cells use the
    # exact constructor args of their event_* twins, pinning the
    # buffer_size=None contract: bit-identical to the FIFO engine
    # (asserted by test_finite_none_cells_match_fifo_cells). The K cells
    # pin nonzero drop counts on both loops (merge + event queue) and
    # both uniform and data-dependent laws.
    def finite(name, router, dests, rate, seed, *, buffer_size,
               service="deterministic", service_rates=1.0, warmup=15.0,
               horizon=150.0, track_maxima=False, saturated_mask=None):
        _capture(cases, name, lambda: FiniteBufferNetworkSimulation(
            router, dests, rate, seed=seed, buffer_size=buffer_size,
            service=service, service_rates=service_rates,
            saturated_mask=saturated_mask,
        ).run(warmup, horizon, track_maxima=track_maxima))

    e5 = m5.num_edges
    finite("finite_none_uniform", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.12, 7, buffer_size=None,
           track_maxima=True)
    finite("finite_none_exp", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.10, 8, buffer_size=None,
           service="exponential")
    finite("finite_uniform_k0", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.12, 7, buffer_size=0,
           track_maxima=True)
    finite("finite_hotspot_k1", GreedyArrayRouter(m5),
           HotSpotDestinations(25, hot_node=12, h=0.3), 0.15, 9,
           buffer_size=1)
    finite("finite_peredge_k1", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.12, 19, buffer_size=1,
           service_rates=per_edge_rates(e5))
    finite("finite_sat_k1", GreedyArrayRouter(m5),
           UniformDestinations(25), 0.12, 18, buffer_size=1,
           saturated_mask=sat_mask(e5))

    # Cells reached through the declarative facade (CellSpec -> engine
    # registry -> ReplicationEngine). api_rushed_uniform / api_ps_hotspot
    # use the exact constructor arguments of rushed_uniform / ps_hotspot,
    # so the facade path is pinned to be bit-identical to the direct
    # path (asserted by test_api_cells_match_direct_cells); the slotted
    # API cell additionally pins an engine_params knob flowing through
    # the registry (the batch_rng opt-out).
    from repro.sim.replication import CellSpec, ReplicationEngine

    def api_cell(name, engine, *, scenario, n, node_rate, seed,
                 params=(), engine_params=(), warmup=15.0, horizon=150.0,
                 track_maxima=False):
        def run():
            spec = CellSpec(
                scenario=scenario, n=n, node_rate=node_rate, engine=engine,
                warmup=warmup, horizon=horizon, seeds=(seed,),
                params=params, engine_params=engine_params,
                track_maxima=track_maxima,
            )
            return ReplicationEngine(processes=1).run(spec).replications[0]
        _capture(cases, name, run)

    # The FIFO engine reached through the facade, pinned bit-identical
    # to the hand-built event_uniform_det cell (same constructor args).
    api_cell("api_fifo_uniform", "fifo", scenario="uniform", n=5,
             node_rate=0.12, seed=7, track_maxima=True)
    api_cell("api_rushed_uniform", "rushed", scenario="uniform", n=5,
             node_rate=0.10, seed=23)
    api_cell("api_ps_hotspot", "ps", scenario="hotspot", n=4,
             node_rate=0.10, seed=27,
             params=(("h", 0.3), ("hot_node", 5)))
    api_cell("api_slotted_uniform_compat", "slotted", scenario="uniform",
             n=5, node_rate=0.10, seed=11, warmup=10.0,
             engine_params=(("batch_rng", False),))
    # The finite engine reached through the facade, pinned bit-identical
    # to the hand-built finite_hotspot_k1 cell (same constructor args).
    api_cell("api_finite_hotspot_k1", "finite", scenario="hotspot", n=5,
             node_rate=0.15, seed=9,
             params=(("h", 0.3), ("hot_node", 12)),
             engine_params=(("buffer_size", 1),))

    # Bookkeeping branches the uniform cells never touch: saturated-mask
    # accounting, utilization accumulation (three inlined sites in the
    # merge loop), and per-edge deterministic service (the heap loop's
    # fast_service path).
    e5 = m5.num_edges
    event("event_sat_util", GreedyArrayRouter(m5),
          UniformDestinations(25), 0.12, 18,
          saturated_mask=sat_mask(e5), track_utilization=True,
          track_maxima=True)
    event("event_peredge_service", GreedyArrayRouter(m5),
          UniformDestinations(25), 0.12, 19,
          service_rates=per_edge_rates(e5))
    event("event_exp_util", GreedyArrayRouter(m5),
          UniformDestinations(25), 0.10, 20,
          service="exponential", track_utilization=True,
          saturated_mask=sat_mask(e5))
    slotted("slotted_sat", GreedyArrayRouter(m5),
            UniformDestinations(25), 0.10, 21,
            saturated_mask=sat_mask(e5))
    # Per-packet maxima on the slotted engine (the one capability the
    # registry advertises for it that no other cell exercised).
    slotted("slotted_maxima", GreedyArrayRouter(m5),
            UniformDestinations(25), 0.10, 22, track_maxima=True)
    return cases


if __name__ == "__main__":
    cases = build_cases()
    with open(OUT, "w") as fh:
        json.dump(cases, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(cases)} golden cells to {OUT}")
