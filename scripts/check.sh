#!/usr/bin/env bash
# Tier-1 gate plus the replication-engine quick bench.
#
# Runs the full test suite, then times the replication fan-out and writes
# BENCH_replication.json (pytest-benchmark format) at the repo root so the
# performance trajectory is recorded PR over PR.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q

python -m pytest benchmarks/bench_replication.py \
    --benchmark-only \
    --benchmark-json BENCH_replication.json \
    -q

echo "check.sh: tests green, bench written to BENCH_replication.json"
