#!/usr/bin/env bash
# Tier-1 gate plus the quick benchmark suite.
#
# Runs the full test suite, then times each benchmark stage and writes
# BENCH_<stage>.json (pytest-benchmark format) at the repo root so the
# performance trajectory is recorded PR over PR. Before overwriting a
# committed baseline, the warn-only perf gate prints any benchmark whose
# median regressed >25% against it.
#
# The replication stage fans cells for all four registered engines
# (fifo, slotted, rushed, ps) through the declarative CellSpec facade,
# so the gate covers every `engine registry -> run_cell` path
# end-to-end; the engine_hotpath stage times the raw engine loops.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q

run_bench() {
    local stage=$1
    local fresh=".bench_fresh_${stage}.json"
    python -m pytest "benchmarks/bench_${stage}.py" \
        --benchmark-only \
        --benchmark-json "$fresh" \
        -q
    if [ -f "BENCH_${stage}.json" ]; then
        python scripts/perf_gate.py "BENCH_${stage}.json" "$fresh"
    fi
    mv "$fresh" "BENCH_${stage}.json"
}

run_bench replication
run_bench engine_hotpath

echo "check.sh: tests green, benches written to BENCH_*.json"
