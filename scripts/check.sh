#!/usr/bin/env bash
# Tier-1 gate plus the quick benchmark suite.
#
# Runs the full test suite, then times each benchmark stage and writes
# BENCH_<stage>.json (pytest-benchmark format) at the repo root so the
# performance trajectory is recorded PR over PR. Before overwriting a
# committed baseline, the warn-only perf gate prints any benchmark whose
# median regressed >25% against it. (CI reuses the same pieces: the
# tier-1 job runs the fast lane, the bench job re-runs these stages and
# uploads the fresh BENCH_*.json as artifacts — see
# .github/workflows/ci.yml; `scripts/perf_gate.py --strict --json-out`
# gives CI a hard exit and a machine-readable summary, while this local
# gate stays warn-only.)
#
# Fast lane: FAST=1 ./scripts/check.sh deselects the tests marked
# `slow` (the heavy statistical/cross-engine cells; see pytest.ini) and
# skips the benchmark stages — the same selection CI's tier-1 job runs
# on every push/PR. The default full run still executes everything.
#
# Validation lane: VALIDATE=1 ./scripts/check.sh runs the statistical
# validation harness (`python -m repro validate --strict`) — every
# registered engine x kernel backend against the queueing closed forms
# on CI-calibrated tolerances — and skips tests and benches. This is
# the same gate CI's `validate` job runs on every push/PR; add
# TIER=full for the nightly distribution-level checks.
#
# Lint lane: LINT=1 ./scripts/check.sh runs only the static checks —
# replint (python -m repro.analysis) over src/repro plus mypy against
# the strict modules pinned in pyproject.toml — and skips the tests.
# The same pair is CI's `lint` job. Both lanes also run replint, so a
# rule violation fails locally before it fails the merge gate; mypy is
# skipped with a notice when not installed (it is a CI-only dep, see
# .github/requirements-ci.txt).
#
# The replication stage fans cells for all five registered engines
# (fifo, finite, slotted, rushed, ps) through the declarative CellSpec
# facade, so the gate covers every `engine registry -> run_cell` path
# end-to-end; the engine_hotpath stage times the raw engine loops.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

sweep_smoke() {
    # End-to-end `repro sweep` smoke: a tiny 2-cell spec, run twice into
    # one directory — the rerun must resume every cell from checkpoint.
    local dir
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' RETURN
    cat > "$dir/spec.json" <<'SPEC'
{
  "defaults": {"scenario": "uniform", "n": 4,
               "warmup": 20, "horizon": 120, "seeds": [0, 1]},
  "grid": {"rho": [0.4, 0.7]}
}
SPEC
    python -m repro sweep "$dir/spec.json" -o "$dir/out" \
        | grep -q "2 ran, 0 resumed"
    python -m repro sweep "$dir/spec.json" -o "$dir/out" \
        | grep -q "0 ran, 2 resumed"
}

run_lint() {
    # replint memoizes in .replint_cache.json keyed by file mtimes, so
    # repeat runs on an unchanged tree replay without re-parsing.
    python -m repro.analysis src/repro
    if python -c 'import mypy' 2>/dev/null; then
        python -m mypy -p repro
    else
        echo "check.sh: mypy not installed; skipping the typing leg" \
             "(CI runs it via .github/requirements-ci.txt)"
    fi
}

if [ "${LINT:-0}" = "1" ]; then
    run_lint
    echo "check.sh: lint lane green (replint + mypy; tests skipped)"
    exit 0
fi

if [ "${VALIDATE:-0}" = "1" ]; then
    python -m repro validate --strict --tier "${TIER:-quick}" \
        --json-out validation_report.json
    echo "check.sh: validation lane green (report in validation_report.json)"
    exit 0
fi

if [ "${RNGSAN:-0}" = "1" ]; then
    # Determinism-sanitizer lane: re-run every golden cell under the
    # rngsan tracer, writing one draw-stream trace per cell. Compare two
    # checkouts' trace directories with
    #   python -m repro.analysis.rngsan diff a/<cell>.trace b/<cell>.trace
    # to localize a golden mismatch to its first divergent draw.
    dir="${REPRO_RNGSAN_DIR:-.rngsan}"
    mkdir -p "$dir"
    REPRO_RNGSAN_DIR="$dir" python - <<'PY'
import sys
sys.path.insert(0, "tests/golden")
from regen import build_cases
print(f"rngsan: traced {len(build_cases())} golden cells")
PY
    python -m pytest -x -q tests/test_golden_results.py
    echo "check.sh: rngsan lane green (traces in $dir/)"
    exit 0
fi

if [ "${FAST:-0}" = "1" ]; then
    run_lint
    python -m pytest -x -q -m "not slow"
    sweep_smoke
    echo "check.sh: fast lane green (sweep smoke OK; slow tests and benches skipped)"
    exit 0
fi

run_lint
python -m pytest -x -q

run_bench() {
    local stage=$1
    local fresh=".bench_fresh_${stage}.json"
    python -m pytest "benchmarks/bench_${stage}.py" \
        --benchmark-only \
        --benchmark-json "$fresh" \
        -q
    if [ -f "BENCH_${stage}.json" ]; then
        python scripts/perf_gate.py "BENCH_${stage}.json" "$fresh"
    fi
    mv "$fresh" "BENCH_${stage}.json"
}

run_bench replication
run_bench engine_hotpath

echo "check.sh: tests green, benches written to BENCH_*.json"
