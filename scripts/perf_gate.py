#!/usr/bin/env python
"""Warn-only performance-regression gate.

Compares a freshly produced pytest-benchmark JSON against the committed
baseline of the same stage and prints a warning for every benchmark whose
median regressed by more than the threshold (default 25%). The gate never
fails the build — timing on shared machines is too noisy for a hard gate —
but it makes regressions visible in the check.sh output so they are a
conscious choice, not an accident.

Usage::

    python scripts/perf_gate.py BENCH_stage.json fresh.json [threshold]
"""

from __future__ import annotations

import json
import sys


def medians(path: str) -> dict[str, float]:
    """``benchmark name -> median seconds`` from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    return {
        b["name"]: float(b["stats"]["median"]) for b in data.get("benchmarks", [])
    }


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 0
    baseline_path, fresh_path = argv[1], argv[2]
    threshold = float(argv[3]) if len(argv) > 3 else 0.25
    try:
        baseline = medians(baseline_path)
        fresh = medians(fresh_path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"perf_gate: cannot compare ({exc}); skipping")
        return 0
    # A benchmark present in the baseline but absent from the fresh run
    # would otherwise be silently skipped — a benchmark that stops
    # running must look like a warning, not a pass.
    missing = sorted(set(baseline) - set(fresh))
    for name in missing:
        print(
            f"perf_gate WARNING: baseline benchmark {name} missing from "
            f"the fresh run (removed, renamed, or no longer collected?)"
        )
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("perf_gate: no common benchmarks; skipping")
        return 0
    regressed = 0
    for name in shared:
        b, f = baseline[name], fresh[name]
        if b > 0 and f > b * (1.0 + threshold):
            regressed += 1
            print(
                f"perf_gate WARNING: {name} regressed "
                f"{(f / b - 1.0) * 100:.0f}% ({b * 1e3:.1f}ms -> {f * 1e3:.1f}ms)"
            )
    if not regressed:
        tail = f" ({len(missing)} baseline benchmark(s) missing)" if missing else ""
        print(
            f"perf_gate: {len(shared)} benchmarks within "
            f"{threshold:.0%} of the committed baseline{tail}"
        )
    return 0  # warn-only by design


if __name__ == "__main__":
    sys.exit(main(sys.argv))
