#!/usr/bin/env python
"""Performance-regression gate over the committed benchmark baselines.

Compares a freshly produced pytest-benchmark JSON against the committed
baseline of the same stage and prints a warning for every benchmark whose
median regressed by more than the threshold (default 25%), or that is
present in the baseline but missing from the fresh run (a benchmark that
stops running must not look like a pass).

By default the gate is *warn-only* — timing on shared machines is too
noisy for a hard local gate — which is how ``scripts/check.sh`` invokes
it. CI passes ``--strict`` to turn regressions (and missing benchmarks)
into a non-zero exit, and ``--json-out`` to emit a machine-readable
summary it can attach to the PR.

Usage::

    python scripts/perf_gate.py BENCH_stage.json fresh.json [threshold]
        [--strict] [--json-out summary.json]
"""

from __future__ import annotations

import argparse
import json
import sys


def medians(path: str) -> dict[str, float]:
    """``benchmark name -> median seconds`` from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    return {
        b["name"]: float(b["stats"]["median"]) for b in data.get("benchmarks", [])
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="perf_gate.py",
        description="compare a fresh pytest-benchmark JSON to a baseline",
    )
    parser.add_argument("baseline", nargs="?", help="committed BENCH_*.json")
    parser.add_argument("fresh", nargs="?", help="freshly produced JSON")
    parser.add_argument(
        "threshold",
        nargs="?",
        type=float,
        default=0.25,
        help="relative median regression that triggers a warning (0.25 = 25%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any regression or missing baseline benchmark "
        "(default: warn-only)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write a machine-readable comparison summary to PATH",
    )
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv[1:])
    if not args.baseline or not args.fresh:
        print(__doc__)
        return 0
    summary: dict = {
        "baseline": args.baseline,
        "fresh": args.fresh,
        "threshold": args.threshold,
        "strict": args.strict,
        # Readable echo of the gate's disposition: downstream tooling
        # kept misreading the bare boolean, so record it in words too.
        "mode": "strict" if args.strict else "warn-only",
        "compared": 0,
        "regressions": [],
        "missing": [],
        "ok": True,
    }

    def finish(rc: int) -> int:
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(summary, fh, indent=1, sort_keys=True)
                fh.write("\n")
        return rc

    try:
        baseline = medians(args.baseline)
        fresh = medians(args.fresh)
    except (OSError, ValueError, KeyError) as exc:
        # An unreadable input is the strongest form of "the benchmarks
        # stopped running": warn-only mode skips (local noise tolerance),
        # but --strict must not let it look like a pass.
        print(f"perf_gate: cannot compare ({exc}); skipping")
        summary["skipped"] = str(exc)
        summary["ok"] = False
        if args.strict:
            print("perf_gate: FAILING (--strict) on the unreadable input")
            return finish(1)
        return finish(0)
    # A benchmark present in the baseline but absent from the fresh run
    # would otherwise be silently skipped — a benchmark that stops
    # running must look like a warning, not a pass.
    missing = sorted(set(baseline) - set(fresh))
    summary["missing"] = missing
    for name in missing:
        print(
            f"perf_gate WARNING: baseline benchmark {name} missing from "
            f"the fresh run (removed, renamed, or no longer collected?)"
        )
    shared = sorted(set(baseline) & set(fresh))
    summary["compared"] = len(shared)
    if not shared:
        print("perf_gate: no common benchmarks; skipping")
        summary["ok"] = not missing
        return finish(1 if args.strict and missing else 0)
    regressed = 0
    for name in shared:
        b, f = baseline[name], fresh[name]
        if b > 0 and f > b * (1.0 + args.threshold):
            regressed += 1
            summary["regressions"].append(
                {
                    "name": name,
                    "baseline_median_s": b,
                    "fresh_median_s": f,
                    "regression_pct": round((f / b - 1.0) * 100, 1),
                }
            )
            print(
                f"perf_gate WARNING: {name} regressed "
                f"{(f / b - 1.0) * 100:.0f}% ({b * 1e3:.1f}ms -> {f * 1e3:.1f}ms)"
            )
    if not regressed:
        tail = f" ({len(missing)} baseline benchmark(s) missing)" if missing else ""
        print(
            f"perf_gate: {len(shared)} benchmarks within "
            f"{args.threshold:.0%} of the committed baseline{tail}"
        )
    bad = bool(regressed or missing)
    summary["ok"] = not bad
    if args.strict and bad:
        print("perf_gate: FAILING (--strict) on the warnings above")
        return finish(1)
    return finish(0)  # warn-only by default


if __name__ == "__main__":
    sys.exit(main(sys.argv))
