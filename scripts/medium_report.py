#!/usr/bin/env python3
"""Generate the EXPERIMENTS.md reproduction report at medium scale.

Sized for a single-CPU box: full paper grids (all n, all rho) but with
horizons between the QUICK and FULL presets. Writes the markdown report
to the path given as argv[1] (default: medium_report.md).
"""

import sys
import time

from repro.experiments import bounds_sweep, configs, dominance, figure1, figure2
from repro.experiments import hypercube_bounds, optimal_config, randomized_greedy
from repro.experiments import table1, table2, table3
from repro.experiments.runner import ReportSection, render_report

MEDIUM_GRID = configs.GridConfig(
    ns=(5, 10, 15, 20),
    rhos=(0.2, 0.5, 0.8, 0.9, 0.95, 0.99),
    base_warmup=200.0,
    base_horizon=1800.0,
    congestion_cap=22.0,
)
MEDIUM_T3 = table3.Table3Config(
    ns=(5, 10, 15, 20, 25),
    rhos=(0.99,),
    base_warmup=1500.0,
    base_horizon=9000.0,
)
MEDIUM_SWEEP = bounds_sweep.SweepConfig(
    ns=(8, 9),
    rhos=(0.5, 0.8, 0.9, 0.95, 0.99),
    base_warmup=250.0,
    base_horizon=2000.0,
    congestion_cap=25.0,
)
MEDIUM_OPT = optimal_config.OptimalConfig(
    n=8, load_fractions=(0.3, 0.5, 0.7, 0.85), warmup=800.0, horizon=8000.0
)
MEDIUM_HC = hypercube_bounds.HypercubeConfig(
    sim_d=6, sim_rho=0.85, warmup=600.0, horizon=6000.0
)
MEDIUM_DOM = dominance.DominanceConfig(n=5, rho=0.8, warmup=600.0, horizon=10000.0)
MEDIUM_RAND = randomized_greedy.RandomizedConfig(
    n=8, rho=0.9, seeds=(11, 22, 33, 44), warmup=800.0, horizon=8000.0
)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "medium_report.md"
    sections = []
    t_start = time.time()

    def stamp(title, body, problems):
        sections.append(ReportSection(title, body, problems))
        print(f"[{time.time() - t_start:7.1f}s] {title} done "
              f"({'OK' if not problems else problems})", flush=True)
        with open(out, "w") as fh:  # checkpoint after every section
            fh.write(render_report(sections))

    t1 = table1.run(MEDIUM_GRID, processes=1)
    stamp("Table I", t1.render(), table1.shape_checks(t1))
    t2 = table2.Table2Result(cells=t1.cells)
    stamp("Table II", t2.render(), table2.shape_checks(t2))
    t3 = table3.run(MEDIUM_T3, processes=1)
    stamp("Table III", t3.render(), table3.shape_checks(t3))
    f1 = figure1.run(4)
    stamp("Figure 1", f1.render(), [] if f1.layered else ["not layered"])
    f2e, f2o = figure2.run_pair(6, 5)
    stamp("Figure 2", f2e.render() + "\n\n" + f2o.render(), [])
    sw = bounds_sweep.run(MEDIUM_SWEEP, processes=1)
    stamp("Bounds sweep", sw.render(), bounds_sweep.shape_checks(sw))
    oc = optimal_config.run(MEDIUM_OPT)
    stamp("Optimal configuration (Section 5.1)", oc.render(),
          optimal_config.shape_checks(oc))
    hc = hypercube_bounds.run(MEDIUM_HC)
    stamp("Hypercube / butterfly (Section 4.5)", hc.render(),
          hypercube_bounds.shape_checks(hc))
    dm = dominance.run(MEDIUM_DOM)
    stamp("Theorem 5 dominance", dm.render(), dominance.shape_checks(dm))
    rg = randomized_greedy.run(MEDIUM_RAND, processes=1)
    stamp("Randomized greedy (Section 6)", rg.render(),
          randomized_greedy.shape_checks(rg))
    print(f"report written to {out}")


if __name__ == "__main__":
    main()
