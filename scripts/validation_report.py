#!/usr/bin/env python
"""Render ``validation_report.json`` as GitHub-flavored markdown.

``python -m repro validate --json-out validation_report.json`` writes the
machine-readable report; this script turns it into the human-facing
markdown CI uploads as an artifact and tees into
``$GITHUB_STEP_SUMMARY``. It is a pure renderer — no simulation, no
imports from ``repro`` — so it stays usable on a checkout whose
validation run happened in another job (CI downloads the JSON artifact
and renders it wherever it likes).

Usage::

    python scripts/validation_report.py validation_report.json [out.md]

With no output path the markdown goes to stdout. Exit status mirrors the
report: 0 when it passed, 1 when any gate-severity check failed, so the
script can double as a gate over a downloaded artifact.
"""

from __future__ import annotations

import json
import sys


def _fmt(value: object) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    return f"{value:.5g}"


def _status(outcome: dict) -> str:
    if outcome["passed"]:
        return "PASS"
    return "FAIL" if outcome["severity"] == "gate" else "WARN"


def render_markdown(report: dict) -> str:
    """The full markdown document for one validation report dict."""
    outcomes = report["outcomes"]
    gate_failures = report["gate_failures"]
    warn_failures = report["warn_failures"]
    verdict = "PASS" if report["passed"] else "FAIL"
    icon = ":white_check_mark:" if report["passed"] else ":x:"

    lines = [
        f"# Validation report — {verdict} {icon}",
        "",
        f"Tier: `{report['tier']}` — {len(outcomes)} outcomes, "
        f"{len(gate_failures)} gate failures, "
        f"{len(warn_failures)} warnings.",
        "",
    ]
    if gate_failures:
        lines += [
            "**Gate failures:** " + ", ".join(f"`{c}`" for c in gate_failures),
            "",
        ]
    if warn_failures:
        lines += [
            "**Warnings:** " + ", ".join(f"`{c}`" for c in warn_failures),
            "",
        ]

    lines += [
        "| check | engine | backend | severity | metric | observed "
        "| expected | statistic | threshold | status |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    # Worst offenders first: failed outcomes, then by how close each
    # comparison came to its threshold.
    def ratio(outcome: dict) -> float:
        if outcome.get("error") is not None:
            return float("inf")
        ratios = [
            c["statistic"] / c["threshold"]
            for c in outcome["comparisons"]
            if c["threshold"]
        ]
        return max(ratios, default=0.0)

    ordered = sorted(
        outcomes, key=lambda o: (o["passed"], -ratio(o), o["check"])
    )
    errors = []
    for o in ordered:
        status = _status(o)
        if o.get("error") is not None:
            errors.append(f"- `{o['check']}` [{o['backend']}]: {o['error']}")
            lines.append(
                f"| {o['check']} | {o['engine']} | {o['backend']} "
                f"| {o['severity']} | (error) | - | - | - | - | {status} |"
            )
            continue
        for c in o["comparisons"]:
            lines.append(
                f"| {o['check']} | {o['engine']} | {o['backend']} "
                f"| {o['severity']} | {c['metric']} | {_fmt(c['observed'])} "
                f"| {_fmt(c['expected'])} | {_fmt(c['statistic'])} "
                f"| {_fmt(c['threshold'])} "
                f"| {'PASS' if c['passed'] else status} |"
            )
    if errors:
        lines += ["", "## Errors", ""] + errors
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not 1 <= len(args) <= 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0]) as fh:
        report = json.load(fh)
    markdown = render_markdown(report)
    if len(args) == 2:
        with open(args[1], "w") as fh:
            fh.write(markdown)
        print(f"markdown written to {args[1]}")
    else:
        print(markdown, end="")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
