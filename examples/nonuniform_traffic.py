#!/usr/bin/env python3
"""Non-uniform, distance-biased destinations (Section 5.2 scenario).

Many mesh workloads exhibit locality: packets are more likely to target
nearby nodes. The paper handles this with a Markovian stopping rule —
"the packet moves along each row/column in some direction, stopping
movement in that direction at each point with probability 1/2" — which
keeps Theorem 1 (and hence the PS/Jackson upper bound) applicable.

This example:

1. builds the GeometricStopDestinations law from the Lemma 3 machinery
   and contrasts its traffic profile with the uniform one (the middle of
   the array unloads dramatically);
2. computes the generic product-form upper bound from the exact traffic
   map (Theorem 7 is not array-uniform-specific — only the rates change);
3. simulates both workloads at the same per-node rate and shows locality
   buys a large delay reduction;
4. verifies the simulated delays respect their respective bounds.

Run:  python examples/nonuniform_traffic.py [n] [stop_probability]
"""

import sys

import numpy as np

from repro import (
    ArrayMesh,
    GeometricStopDestinations,
    GreedyArrayRouter,
    NetworkSimulation,
    UniformDestinations,
)
from repro.core.distances import mean_route_length
from repro.core.rates import edge_rates_from_routing
from repro.core.upper_bound import delay_upper_bound_generic


def describe(rates: np.ndarray, name: str) -> None:
    print(f"  {name:10s}: max edge rate {rates.max():.4f}, "
          f"mean {rates.mean():.4f}, total {rates.sum():.2f}")


def main(n: int = 8, stop: float = 0.5) -> None:
    mesh = ArrayMesh(n)
    router = GreedyArrayRouter(mesh)
    uniform = UniformDestinations(mesh.num_nodes)
    local = GeometricStopDestinations(mesh, stop)

    lam = 0.6 * 4.0 / n  # 60% of the uniform-workload capacity
    print(f"n = {n}, per-node rate lambda = {lam:.4f}, stop prob = {stop}\n")

    r_uni = edge_rates_from_routing(router, uniform, lam)
    r_loc = edge_rates_from_routing(router, local, lam)
    print("traffic profiles (Theorem 6 generalised via the exact solver):")
    describe(r_uni, "uniform")
    describe(r_loc, "local")
    d_uni = mean_route_length(router, uniform)
    d_loc = mean_route_length(router, local)
    print(f"  mean route length: uniform {d_uni:.3f} vs local {d_loc:.3f}\n")

    total = lam * n * n
    ub_uni = delay_upper_bound_generic(r_uni, total)
    ub_loc = delay_upper_bound_generic(r_loc, total)

    print("simulating both workloads ...")
    res_uni = NetworkSimulation(router, uniform, lam, seed=5).run(300, 3000)
    res_loc = NetworkSimulation(router, local, lam, seed=6).run(300, 3000)

    print(f"  uniform: T = {res_uni.mean_delay:.3f} "
          f"+/- {res_uni.delay_half_width:.3f}  (upper bound {ub_uni:.3f})")
    print(f"  local:   T = {res_loc.mean_delay:.3f} "
          f"+/- {res_loc.delay_half_width:.3f}  (upper bound {ub_loc:.3f})")
    speedup = res_uni.mean_delay / res_loc.mean_delay
    print(f"\nlocality speedup at equal injection rate: {speedup:.2f}x")
    assert res_uni.mean_delay <= ub_uni * 1.05
    assert res_loc.mean_delay <= ub_loc * 1.05
    print("both simulations respect their product-form upper bounds.")

    # Headroom: the local workload can be driven far harder.
    cap_loc = lam / r_loc.max()
    print(f"capacity at this locality: {cap_loc:.4f} per node vs "
          f"{4.0 / n:.4f} uniform ({cap_loc / (4.0 / n):.2f}x headroom)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    stop = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(n, stop)
