#!/usr/bin/env python3
"""Quickstart: simulate greedy routing on an array and compare with the
paper's bounds.

Builds the paper's standard model — an n-by-n mesh, row-first greedy
routing, uniform destinations, Poisson arrivals at load rho — simulates
it, and prints the measured mean delay T next to every analytic quantity
the paper derives: the trivial/ST/copy/Markov/saturated lower bounds, the
M/D/1 estimate, and the Theorem 7 upper bound.

Run:  python examples/quickstart.py [n] [rho]
"""

import sys

from repro import (
    ArrayMesh,
    GreedyArrayRouter,
    NetworkSimulation,
    UniformDestinations,
    bound_summary,
    lambda_for_load,
)


def main(n: int = 8, rho: float = 0.8) -> None:
    lam = lambda_for_load(n, rho)
    print(f"n = {n}, rho = {rho}  ->  per-node rate lambda = {lam:.4f}")

    mesh = ArrayMesh(n)
    sim = NetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lam,
        seed=2026,
    )
    print("simulating ...")
    result = sim.run(warmup=300, horizon=3000)

    b = bound_summary(n, lam)
    print()
    print(f"simulated T             = {result.mean_delay:.3f} "
          f"+/- {result.delay_half_width:.3f}   "
          f"({result.generated} packets, Little's-law cross-check "
          f"{result.mean_delay_littles:.3f})")
    print(f"lower bound (trivial)   = {b.lower_trivial:.3f}   [T >= n-bar]")
    print(f"lower bound (Thm 8)     = {b.lower_st_oblivious:.3f}")
    print(f"lower bound (Thm 10)    = {b.lower_copy:.3f}")
    print(f"lower bound (Thm 12)    = {b.lower_markov:.3f}")
    print(f"lower bound (Thm 14)    = {b.lower_saturated:.3f}")
    print(f"M/D/1 estimate (4.2)    = {b.estimate:.3f}")
    print(f"upper bound (Thm 7)     = {b.upper:.3f}")
    print()
    ok = b.lower_best <= result.mean_delay <= b.upper * 1.05
    print(f"best lower <= T <= upper: {'OK' if ok else 'VIOLATED'} "
          f"(gap upper/best-lower = {b.gap:.2f}, "
          f"rho->1 limit = {2 * __import__('repro').s_bar(n):.2f})")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rho = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8
    main(n, rho)
