#!/usr/bin/env python3
"""Compare greedy routing across topologies: array, torus, hypercube.

The paper analyses the array in depth, improves the hypercube bounds
(Section 4.5), and leaves the torus open (Section 6: not layered, so no
upper bound). This example puts all three side by side at a matched
network load:

* array   — simulate + full bound sandwich (Thms 7/8/10/12/14);
* torus   — simulate + lower bounds only (Thm 10 still applies — the
            copy argument never needed layering); demonstrate the
            layering obstruction that blocks the upper bound;
* hypercube — simulate + the Section 4.5 sandwich.

Also re-checks the paper's Section 6 remark that randomized greedy on the
array is slightly worse than standard greedy.

Run:  python examples/topology_comparison.py
"""

import numpy as np

from repro import (
    ArrayMesh,
    GreedyArrayRouter,
    GreedyHypercubeRouter,
    GreedyTorusRouter,
    Hypercube,
    NetworkSimulation,
    RandomizedGreedyArrayRouter,
    Torus,
    UniformDestinations,
    bound_summary,
    lambda_for_load,
)
from repro.core.hypercube_bounds import (
    hypercube_delay_upper_bound,
    hypercube_markov_lower_bound,
)
from repro.core.layering import find_layering_obstruction
from repro.core.md1_approx import md1_network_number
from repro.core.rates import edge_rates_from_routing

RHO = 0.8
WARMUP, HORIZON = 300.0, 3000.0


def simulate(router, dests, lam, seed):
    sim = NetworkSimulation(router, dests, lam, seed=seed)
    return sim.run(WARMUP, HORIZON)


def main() -> None:
    # ----- array ---------------------------------------------------------
    n = 6
    lam = lambda_for_load(n, RHO)
    mesh = ArrayMesh(n)
    res = simulate(
        GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes), lam, 1
    )
    b = bound_summary(n, lam)
    print(f"array {n}x{n} @ rho={RHO}:  T = {res.mean_delay:.3f}  "
          f"in [{b.lower_best:.3f}, {b.upper:.3f}]  (Thm 7/8/10/12/14)")

    # ----- torus ---------------------------------------------------------
    torus = Torus(n)
    router_t = GreedyTorusRouter(torus)
    dests_t = UniformDestinations(torus.num_nodes)
    rates_t = edge_rates_from_routing(router_t, dests_t, 1.0)
    lam_t = RHO / rates_t.max()  # match the network load
    res_t = simulate(router_t, dests_t, lam_t, 2)
    # Theorem 10 still applies (no layering needed): copy lower bound.
    rates_at = rates_t * lam_t
    d_max = max(
        len(router_t.path(s, t))
        for s in range(torus.num_nodes)
        for t in range(torus.num_nodes)
    )
    lb = md1_network_number(rates_at, variant="pk") / (
        d_max * lam_t * torus.num_nodes
    )
    cycle = find_layering_obstruction(router_t)
    print(f"torus {n}x{n} @ rho={RHO}:  T = {res_t.mean_delay:.3f}  "
          f">= {lb:.3f} (Thm 10)  — no upper bound: layering obstruction "
          f"cycle of {len(cycle)} edges found (Section 6)")
    # Wraparound halves distances, so the torus beats the array:
    print(f"  torus/array delay ratio at matched load: "
          f"{res_t.mean_delay / res.mean_delay:.2f}")

    # ----- hypercube ------------------------------------------------------
    d, p = 6, 0.5
    lam_h = RHO / p
    cube = Hypercube(d)
    from repro import PBiasedHypercubeDestinations

    res_h = simulate(
        GreedyHypercubeRouter(cube),
        PBiasedHypercubeDestinations(cube, p),
        lam_h,
        3,
    )
    lo = hypercube_markov_lower_bound(d, lam_h, p)
    hi = hypercube_delay_upper_bound(d, lam_h, p)
    print(f"hypercube d={d}, p={p} @ rho={RHO}:  T = {res_h.mean_delay:.3f}  "
          f"in [{lo:.3f}, {hi:.3f}]  (Section 4.5)")

    # ----- randomized greedy (Section 6 remark) ---------------------------
    res_r = simulate(
        RandomizedGreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lam,
        4,
    )
    verdict = "worse" if res_r.mean_delay > res.mean_delay else "not worse"
    print(f"\nrandomized greedy on the array: T = {res_r.mean_delay:.3f} vs "
          f"standard {res.mean_delay:.3f}  ({verdict}; the paper reports "
          f"'slightly worse')")


if __name__ == "__main__":
    main()
