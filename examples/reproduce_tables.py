#!/usr/bin/env python3
"""Regenerate every table, figure and claim of the paper in one run.

Writes an EXPERIMENTS.md-style report with each artifact's regenerated
contents and the verdicts of its shape checks.

Run:
    python examples/reproduce_tables.py               # QUICK preset (minutes)
    python examples/reproduce_tables.py --full        # paper-scale (hours on 1 CPU)
    python examples/reproduce_tables.py -o report.md  # also write to a file
"""

import argparse
import sys
import time

from repro.experiments.runner import render_report, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale horizons (much slower; use all cores)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes for the simulation grids (default: all cores)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the markdown report to this path",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    sections = run_all(full=args.full, processes=args.processes)
    report = render_report(sections)
    print(report)
    print(f"\n[total wall time: {time.time() - t0:.1f}s]")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"[report written to {args.output}]")
    failures = [s.title for s in sections if s.problems]
    if failures:
        print(f"[shape-check failures in: {', '.join(failures)}]")
        return 1
    print("[all shape checks passed]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
