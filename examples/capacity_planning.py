#!/usr/bin/env python3
"""Capacity planning with variable wire speeds (Section 5.1 scenario).

The paper's motivating question: "since edges along the periphery of the
array receive less traffic, one might wish to place slower wires there
than in the center of the array to build a system with a better
performance to cost ratio. How should one build the network to optimize
performance?"

This example walks the full workflow a network architect would follow:

1. compute the Theorem 6 traffic profile for the target workload;
2. apply Theorem 15's square-root allocation under the standard budget
   D = 4n(n-1), and show the resulting wire-speed map (fast in the
   middle, slow at the periphery);
3. quantify the win: Jackson mean delay standard vs optimal, and the
   admissible-load increase 4/n -> 6/(n+1);
4. round the ideal allocation onto a realistic discrete rate menu
   (e.g. {0.5x, 1x, 2x, 4x} wires) with the greedy heuristic the paper's
   closing remark suggests, and check the discretisation penalty;
5. validate by simulation at a rate the *standard* network cannot carry.

Run:  python examples/capacity_planning.py [n]
"""

import sys

import numpy as np

from repro import (
    ArrayMesh,
    GreedyArrayRouter,
    NetworkSimulation,
    UniformDestinations,
    array_edge_rates,
    optimal_capacity,
    optimal_service_rates,
    standard_capacity,
)
from repro.core.optimization import (
    discrete_service_rates,
    optimal_delay,
    uniform_mean_number,
)
from repro.core.upper_bound import delay_upper_bound_generic


def wire_speed_map(mesh: ArrayMesh, phis: np.ndarray) -> str:
    """Render the rightward-edge speeds of each row as a heat strip."""
    lines = []
    for i in range(mesh.rows):
        cells = [
            f"{phis[mesh.directed_edge_id(i, j, 'right')]:5.2f}"
            for j in range(mesh.cols - 1)
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def main(n: int = 8) -> None:
    mesh = ArrayMesh(n)
    budget = 4.0 * n * (n - 1)  # same total service as the all-unit array
    cap_std, cap_opt = standard_capacity(n), optimal_capacity(n)
    print(f"n = {n}; budget D = {budget:.0f} (the standard array's total)")
    print(f"admissible per-node load:  standard {cap_std:.4f}  ->  "
          f"optimal {cap_opt:.4f}  (+{100 * (cap_opt / cap_std - 1):.0f}%)\n")

    # Work at 80% of the *standard* capacity so both designs are stable.
    lam = 0.8 * cap_std
    rates = array_edge_rates(mesh, lam)
    phis = optimal_service_rates(rates, 1.0, budget)
    print(f"optimal rightward wire speeds at lam = {lam:.4f} "
          f"(center fast, periphery slow):")
    print(wire_speed_map(mesh, phis))

    total = lam * n * n
    t_std = uniform_mean_number(rates, 1.0, budget) / total
    t_opt = optimal_delay(rates, 1.0, budget, total)
    print(f"\nJackson mean delay:  standard {t_std:.3f}  ->  optimal "
          f"{t_opt:.3f}  ({100 * (1 - t_opt / t_std):.0f}% lower)")

    # Discrete menu: wires come in finite speed grades.
    menu = [0.25, 0.5, 1.0, 2.0, 4.0]
    phis_menu = discrete_service_rates(rates, 1.0, budget, menu)
    t_menu = delay_upper_bound_generic(rates, total, phis_menu)
    print(f"menu-constrained ({menu}) delay: {t_menu:.3f} "
          f"(discretisation penalty {100 * (t_menu / t_opt - 1):.0f}%)")

    # Beyond the standard capacity: simulate the optimal design.
    lam_hot = 0.5 * (cap_std + cap_opt)
    rates_hot = array_edge_rates(mesh, lam_hot)
    phis_hot = optimal_service_rates(rates_hot, 1.0, budget)
    print(f"\nsimulating the optimal design at lam = {lam_hot:.4f} "
          f"(> standard capacity {cap_std:.4f}) ...")
    sim = NetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lam_hot,
        service_rates=phis_hot,
        seed=99,
    )
    res = sim.run(warmup=400, horizon=4000)
    t_bound = delay_upper_bound_generic(rates_hot, lam_hot * n * n, phis_hot)
    print(f"simulated T = {res.mean_delay:.3f} +/- {res.delay_half_width:.3f} "
          f"<= Jackson bound {t_bound:.3f}  "
          f"({'stable' if res.littles_law_gap < 0.1 else 'NOT equilibrated'}; "
          f"the standard unit-wire array diverges at this rate)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
