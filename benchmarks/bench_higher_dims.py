"""Regenerate the Section 5.2 higher-dimensional array extension: per-axis
Theorem 6 rates, the k-D bound sandwich, and the gap -> k+1 claim."""

from repro.experiments import higher_dims


def test_regenerate_higher_dims(once):
    result = once(higher_dims.run, higher_dims.QUICK_KD)
    print()
    print(result.render())
    problems = higher_dims.shape_checks(result)
    assert problems == [], "\n".join(problems)


def test_kd_closed_forms_fast(benchmark):
    """Microbench: the k-D rate map + upper bound for a 6^3 array."""
    from repro.core.kd_bounds import kd_delay_upper_bound, kd_edge_rates
    from repro.topology.array_mesh import KDArray

    array = KDArray((6, 6, 6))

    def both():
        rates = kd_edge_rates(array, 0.3)
        return rates, kd_delay_upper_bound(6, 3, 0.3)

    rates, ub = benchmark(both)
    assert rates.shape == (array.num_edges,)
    assert ub > 0
