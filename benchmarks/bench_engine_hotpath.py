"""Hot-path throughput benchmarks: all four engines (event, slotted,
rushed, PS), cached vs uncached, calendar queue vs heap, 8x8-32x32 meshes.

``scripts/check.sh`` runs this file with ``--benchmark-json`` so the
engine throughput trajectory is recorded across PRs
(``BENCH_engine_hotpath.json``); the warn-only gate in the same script
flags any cell that regresses >25% against the committed baseline.

Every cell is the paper's standard model (uniform traffic, row-first
greedy, deterministic unit service) at rho = 0.8 under the Table I load
convention, window (warmup=20, horizon=120), the same configuration the
frozen pre-PR baselines below were measured with.

Pre-PR baselines (packets/s, best of 3, this container, commit 39a3ef5 —
the engines before the path-cache arena / monotone-merge loop /
vectorized slot kernel):

* event   8x8:   69,575        * slotted  8x8: 118,042
* event  32x32:  18,961        * slotted 32x32: 36,289

The acceptance target for this PR was >= 2x packet throughput on the
32x32 uniform event-engine cell versus those baselines; the recorded
``speedup_vs_pre_pr`` extra-info field documents the measured ratio
(~2.3x warm-cached, ~1.7x cold, slotted ~1.9x at the time of recording). The in-run assertion uses a
soft 1.5x floor so a noisy or slower machine does not fail the gate
spuriously — absolute cross-machine comparisons belong to the warn-only
perf gate, not to hard asserts.

PR 3 added the remaining engines and the stochastic-service structural
work: the exponential 32x32 cell on both event queues (calendar vs
heap; parity within this container's noise band, interleaved best-of
runs put the calendar at ~0.98-1.05x — the structure targets larger
networks where heap depth grows), the ported rushed engine (16x16,
~1.25-1.45x its pre-port baseline via the merge loop + arena + blocked
draws) and the ported PS engine (8x8; PS keeps its O(k)-per-event
re-linearisation, so the port is about shared architecture and
validation parity, not throughput).

The calendar queue has since grown Brown's-rule adaptive bucket widths
(the engine default); the exponential cell now appears three ways —
adaptive calendar, fixed-width calendar, heap — all bit-identical by
the pop-order contract, so the trio isolates the pure data-structure
cost.

PR 6 extracted the hot loops into the kernels layer and added the
vectorized ``backend="numpy"`` whole-trajectory solver; the two
``*_numpy_warm`` cells time it on the 32x32 acceptance configurations
and record *two* ratios: ``speedup_vs_pre_pr`` (the frozen baselines
above — ~8-14x measured on this container) and
``speedup_vs_python_backend`` (an interleaved same-process timing of the
reference kernel on the identical warm cell — ~4-6x measured). Soft
floors sit well under the measured ratios, same discipline as the 1.5x
floor on the python cells.
"""

import time

from repro.core.rates import lambda_for_load
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.pathcache import path_cache_for
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh

WARMUP, HORIZON = 20.0, 120.0
RHO = 0.8

PRE_PR_EVENT = {8: 69_575.0, 32: 18_961.0}
PRE_PR_SLOTTED = {8: 118_042.0, 32: 36_289.0}
# PR-3 baselines, same protocol (packets/s, best of 3, this container,
# commit b06dc10 — the engines before the PR-3 port): the heap-loop
# exponential cell, plus the pre-port rushed (16x16) and PS (8x8)
# engines (per-packet path rebuild, scalar RNG draws).
PRE_PR_EVENT_EXP_32 = 16_399.0
PRE_PR_RUSHED_16 = 36_411.0
PRE_PR_PS_8 = 34_545.0


def _event_cell(n, *, seed=3, **kwargs):
    mesh = ArrayMesh(n)
    return NetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lambda_for_load(n, RHO, "table1"),
        seed=seed,
        **kwargs,
    )


def _slotted_cell(n, *, seed=4, **kwargs):
    mesh = ArrayMesh(n)
    return SlottedNetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lambda_for_load(n, RHO, "table1"),
        seed=seed,
        **kwargs,
    )


def _record(benchmark, res, pre_pr):
    dt = benchmark.stats.stats.min
    pps = res.generated / dt
    benchmark.extra_info["packets_per_second"] = round(pps)
    benchmark.extra_info["pre_pr_packets_per_second"] = pre_pr
    benchmark.extra_info["speedup_vs_pre_pr"] = round(pps / pre_pr, 3)
    return pps


def test_event_8x8_cached(best_of, benchmark):
    """min-of-3: rounds after the first run against the warmed cache."""
    sim = _event_cell(8)
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT[8])
    assert res.generated > 2000
    assert res.littles_law_gap < 0.15


def test_event_8x8_uncached(best_of, benchmark):
    """Per-packet path rebuild (the pre-cache behaviour) for contrast."""
    sim = _event_cell(8, use_path_cache=False)
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT[8])
    assert res.generated > 2000


def test_event_32x32_cached_warm(best_of, benchmark):
    """The acceptance cell: 32x32 uniform, warm shared cache (the
    replication-engine pattern — every seed after the first runs against
    an already-populated arena)."""
    mesh_router = GreedyArrayRouter(ArrayMesh(32))
    cache = path_cache_for(mesh_router)
    dests = UniformDestinations(1024)
    lam = lambda_for_load(32, RHO, "table1")
    NetworkSimulation(
        mesh_router, dests, lam, seed=3, path_cache=cache
    ).run(WARMUP, HORIZON)  # warm the arena
    sim = NetworkSimulation(mesh_router, dests, lam, seed=3, path_cache=cache)
    res = best_of(sim.run, WARMUP, HORIZON)
    pps = _record(benchmark, res, PRE_PR_EVENT[32])
    assert res.generated > 10_000
    assert res.littles_law_gap < 0.1
    # Soft floor (see module docstring); the recorded extra-info carries
    # the actual measured ratio.
    assert pps > 1.5 * PRE_PR_EVENT[32]


def test_event_32x32_cached_cold(once, benchmark):
    """Same cell with a cold cache: every pair is a first hit, so this
    isolates the loop + miss-path cost (single round — repeating would
    re-run against the warmed cache)."""
    sim = _event_cell(32)
    res = once(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT[32])
    assert res.generated > 10_000


def test_event_32x32_uncached(best_of, benchmark):
    sim = _event_cell(32, use_path_cache=False)
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT[32])
    assert res.generated > 10_000


def test_event_32x32_cached_beats_uncached(once, benchmark):
    """Directly pin cache > no-cache on one machine, one process."""

    def both():
        cached = _event_cell(32)
        t0 = time.perf_counter()
        cached.run(WARMUP, HORIZON)
        t_cached = time.perf_counter() - t0
        uncached = _event_cell(32, use_path_cache=False)
        t0 = time.perf_counter()
        uncached.run(WARMUP, HORIZON)
        return t_cached, time.perf_counter() - t0

    t_cached, t_uncached = once(both)
    benchmark.extra_info["cached_over_uncached"] = round(t_uncached / t_cached, 3)
    assert t_cached < t_uncached * 1.05  # cache never loses


def test_event_32x32_exponential_calendar(best_of, benchmark):
    """The stochastic-service loop on the calendar queue — since the
    adaptive-width work this is Brown's-rule resampling (the engine
    default)."""
    sim = _event_cell(32, service="exponential")
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT_EXP_32)
    assert res.generated > 10_000


def test_event_32x32_exponential_calendar_fixed(best_of, benchmark):
    """The same cell with adaptive widths disabled (the pre-Brown
    fixed-width calendar), isolating what the resampling buys/costs.
    Outputs are bit-identical to the adaptive cell by the pop-order
    contract; only the timing differs."""
    sim = _event_cell(32, service="exponential", event_queue="calendar-fixed")
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT_EXP_32)
    assert res.generated > 10_000


def test_event_32x32_exponential_heap(best_of, benchmark):
    """The same cell on the binary heap, for the structural contrast."""
    sim = _event_cell(32, service="exponential", event_queue="heap")
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_EVENT_EXP_32)
    assert res.generated > 10_000


def test_rushed_16x16(best_of, benchmark):
    """The PR-3-ported rushed engine (Theorem 10 copies) on its
    monotone-merge loop with the shared path-cache arena."""
    mesh = ArrayMesh(16)
    sim = RushedNetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lambda_for_load(16, RHO, "table1"),
        seed=3,
    )
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_RUSHED_16)
    assert res.generated > 3000
    assert res.generated == res.completed


def test_ps_8x8(best_of, benchmark):
    """The PR-3-ported PS engine (arena-backed records, cached paths)."""
    mesh = ArrayMesh(8)
    sim = PSNetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lambda_for_load(8, RHO, "table1"),
        seed=3,
    )
    res = best_of(sim.run, WARMUP, HORIZON)
    _record(benchmark, res, PRE_PR_PS_8)
    assert res.generated > 2000
    assert res.generated == res.completed


def _best_seconds(fn, *args, rounds=3, **kwargs):
    """min-of-``rounds`` wall time for the in-test reference timings."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def test_event_32x32_numpy_warm(best_of, benchmark):
    """The PR-6 vectorized kernel on the acceptance cell (32x32 uniform
    deterministic, warm shared cache — the same configuration as
    ``test_event_32x32_cached_warm``). The interleaved reference timing
    pins the backend-vs-backend ratio within one process, immune to
    cross-run machine drift."""
    mesh_router = GreedyArrayRouter(ArrayMesh(32))
    cache = path_cache_for(mesh_router)
    dests = UniformDestinations(1024)
    lam = lambda_for_load(32, RHO, "table1")
    NetworkSimulation(
        mesh_router, dests, lam, seed=3, path_cache=cache, backend="numpy"
    ).run(WARMUP, HORIZON)  # warm the arena + kernel level cache
    t_python = _best_seconds(
        NetworkSimulation(mesh_router, dests, lam, seed=3, path_cache=cache).run,
        WARMUP,
        HORIZON,
    )
    sim = NetworkSimulation(
        mesh_router, dests, lam, seed=3, path_cache=cache, backend="numpy"
    )
    res = best_of(sim.run, WARMUP, HORIZON)
    pps = _record(benchmark, res, PRE_PR_EVENT[32])
    ratio = t_python / benchmark.stats.stats.min
    benchmark.extra_info["speedup_vs_python_backend"] = round(ratio, 3)
    assert res.generated > 10_000
    assert res.littles_law_gap < 0.1
    # Soft floors (see module docstring): measured ~14x / ~5-6x.
    assert pps > 4.0 * PRE_PR_EVENT[32]
    assert ratio > 2.5


def test_slotted_32x32_numpy_warm(best_of, benchmark):
    """The vectorized slot kernel on the 32x32 acceptance cell, against
    the batched python kernel (``batch_rng=True``, its fastest mode) on
    the identical warm cell."""
    mesh_router = GreedyArrayRouter(ArrayMesh(32))
    cache = path_cache_for(mesh_router)
    dests = UniformDestinations(1024)
    lam = lambda_for_load(32, RHO, "table1")
    SlottedNetworkSimulation(
        mesh_router, dests, lam, seed=4, path_cache=cache, backend="numpy"
    ).run(int(WARMUP), int(HORIZON))  # warm the arena + kernel level cache
    t_python = _best_seconds(
        SlottedNetworkSimulation(
            mesh_router, dests, lam, seed=4, path_cache=cache
        ).run,
        int(WARMUP),
        int(HORIZON),
    )
    sim = SlottedNetworkSimulation(
        mesh_router, dests, lam, seed=4, path_cache=cache, backend="numpy"
    )
    res = best_of(sim.run, int(WARMUP), int(HORIZON))
    pps = _record(benchmark, res, PRE_PR_SLOTTED[32])
    ratio = t_python / benchmark.stats.stats.min
    benchmark.extra_info["speedup_vs_python_backend"] = round(ratio, 3)
    assert res.generated > 10_000
    # Soft floors (see module docstring): measured ~8x / ~4x.
    assert pps > 4.0 * PRE_PR_SLOTTED[32]
    assert ratio > 2.0


def test_finite_32x32_numpy_warm(best_of, benchmark):
    """The finite-buffer engine on its numpy-backed configuration
    (buffer_size=None — the only combination the vectorized kernel
    accepts, delegated to the FIFO whole-trajectory solver). This is the
    bench-coverage cell for the finite x numpy registry entry; the
    python-backend finite loop itself is timed indirectly through
    ``test_replication_finite_cell`` in the replication suite."""
    from repro.sim.finite_buffer import FiniteBufferNetworkSimulation

    mesh_router = GreedyArrayRouter(ArrayMesh(32))
    cache = path_cache_for(mesh_router)
    dests = UniformDestinations(1024)
    lam = lambda_for_load(32, RHO, "table1")
    FiniteBufferNetworkSimulation(
        mesh_router, dests, lam, seed=3, path_cache=cache, backend="numpy"
    ).run(WARMUP, HORIZON)  # warm the arena + kernel level cache
    sim = FiniteBufferNetworkSimulation(
        mesh_router, dests, lam, seed=3, path_cache=cache, backend="numpy"
    )
    res = best_of(sim.run, WARMUP, HORIZON)
    pps = _record(benchmark, res, PRE_PR_EVENT[32])
    assert res.generated > 10_000
    # Delegation means fifo-kernel throughput; same soft floor as the
    # event numpy cell.
    assert pps > 4.0 * PRE_PR_EVENT[32]


def test_slotted_8x8(best_of, benchmark):
    """The legacy-compatible kernel (batch_rng=False; the engine default
    is the fully batched order since the registry redesign)."""
    sim = _slotted_cell(8)
    res = best_of(sim.run, int(WARMUP), int(HORIZON), batch_rng=False)
    _record(benchmark, res, PRE_PR_SLOTTED[8])
    assert res.generated > 2000


def test_slotted_32x32(best_of, benchmark):
    """The legacy-compatible kernel (batch_rng=False)."""
    sim = _slotted_cell(32)
    res = best_of(sim.run, int(WARMUP), int(HORIZON), batch_rng=False)
    _record(benchmark, res, PRE_PR_SLOTTED[32])
    assert res.generated > 10_000


def test_slotted_32x32_batch_rng(best_of, benchmark):
    """The fully batched draw order (blocked Poisson + batched ids)."""
    sim = _slotted_cell(32)
    res = best_of(sim.run, int(WARMUP), int(HORIZON), batch_rng=True)
    _record(benchmark, res, PRE_PR_SLOTTED[32])
    assert res.generated > 10_000
