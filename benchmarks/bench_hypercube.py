"""Regenerate the Section 4.5 hypercube/butterfly gap analysis: our gap
2(dp+1-p) vs the previous 2d, validated by a simulated hypercube."""

from repro.experiments import hypercube_bounds


def test_regenerate_hypercube_bounds(once):
    result = once(hypercube_bounds.run, hypercube_bounds.QUICK_HC)
    print()
    print(result.render())
    problems = hypercube_bounds.shape_checks(result)
    assert problems == [], "\n".join(problems)


def test_gap_formulas_fast(benchmark):
    """Microbench: the full (d, p) gap table."""
    from repro.core.hypercube_bounds import hypercube_gap_copy, hypercube_gap_markov

    def table():
        return [
            (d, p, hypercube_gap_copy(d), hypercube_gap_markov(d, p))
            for d in range(2, 16)
            for p in (0.1, 0.25, 0.5, 0.75, 0.9)
        ]

    rows = benchmark(table)
    assert all(g1 < g0 for _, _, g0, g1 in rows)
