"""Regenerate the Section 6 randomized-greedy comparison: the mixture is
not better than standard greedy, and its rate map is provably identical."""

from repro.experiments import randomized_greedy


def test_regenerate_randomized_greedy(once):
    result = once(
        randomized_greedy.run, randomized_greedy.QUICK_RAND, processes=1
    )
    print()
    print(result.render())
    problems = randomized_greedy.shape_checks(result)
    assert problems == [], "\n".join(problems)
