"""Replication-engine benchmarks: multi-seed fan-out and the hot sampling
paths it leans on.

``scripts/check.sh`` runs this file with ``--benchmark-json`` so the
fan-out's performance trajectory is recorded across PRs
(``BENCH_replication.json``). Since the engine-registry redesign the
fan-out cells cover every registered engine end-to-end through the
declarative facade — fifo, finite (tail-drop loss), slotted (batched
draw default), rushed and PS — so the perf gate watches every
``CellSpec -> registry -> run_cell`` path. The shared-memory fan-out
work added three cells: the serial/warm-pool 32x32 pair (the warm pool
should beat serial whenever more than one core is available — on a
single-core runner both degenerate to comparable times) and the
parent-side publish/unlink overhead of a shared cell batch.
"""

import numpy as np

from repro.routing.destinations import MatrixDestinations
from repro.scenarios import resolve_cell
from repro.sim.replication import CellSpec, ReplicationEngine
from repro.sim.sharedcells import SharedCellBatch


def test_replication_fanout_serial(once):
    """Four seeded replications of a QUICK uniform cell, in-process."""
    spec = CellSpec(
        scenario="uniform", n=8, rho=0.8, warmup=100, horizon=1000,
        seeds=(0, 1, 2, 3),
    )
    pooled = once(ReplicationEngine(processes=1).run, spec)
    assert len(pooled.replications) == 4
    assert pooled.delay_half_width > 0
    assert pooled.littles_law_gap < 0.15


def test_replication_fanout_processes(once):
    """The same cell fanned over a process pool (measures pool overhead)."""
    spec = CellSpec(
        scenario="uniform", n=8, rho=0.8, warmup=100, horizon=1000,
        seeds=(0, 1, 2, 3),
    )
    pooled = once(ReplicationEngine(processes=4).run, spec)
    assert len(pooled.replications) == 4


#: The heavy fan-out workload of the warm-pool cells: four replications
#: of a 32x32 mesh (1024 nodes, ~10^5 measured packets).
_BIG = dict(
    scenario="uniform", n=32, rho=0.8, warmup=50, horizon=250,
    seeds=(0, 1, 2, 3),
)


def test_replication_serial_32x32(once):
    """The multi-replication 32x32 workload, serial in-process — the
    baseline the warm-pool cell below is compared against (the warm pool
    should win whenever more than one core is available)."""
    pooled = once(ReplicationEngine(processes=1).run, CellSpec(**_BIG))
    assert len(pooled.replications) == 4


def test_replication_warm_pool_32x32(once):
    """The same 32x32 workload on the warm shared-memory pool: workers
    are started and the per-cell memo warmed *before* the timed region
    (the steady-state of a sweep), so the cell times the shared-memory
    publish, the token-sized job dispatch and the streaming fold —
    not pool start-up."""
    engine = ReplicationEngine()  # all cores (REPRO_PROCESSES honoured)
    engine.run(
        CellSpec(
            scenario="uniform", n=4, rho=0.5, warmup=10, horizon=60,
            seeds=(0, 1),
        )
    )
    pooled = once(engine.run, CellSpec(**_BIG))
    assert len(pooled.replications) == 4


def test_sharedcells_publish(benchmark):
    """Parent-side shared-memory publish/unlink for a mixed 3-cell batch
    (arena + dense path tables + mask packing; the per-batch overhead
    the token-sized job payloads buy)."""
    specs = [
        CellSpec(scenario="uniform", n=8, rho=0.6, warmup=100, horizon=1000),
        CellSpec(
            scenario="uniform", n=8, rho=0.9, warmup=100, horizon=1000,
            track_saturated=True,
        ),
        CellSpec(scenario="hotspot", n=8, rho=0.7, warmup=100, horizon=1000),
    ]
    cells = [(spec, *resolve_cell(spec)) for spec in specs]

    def publish():
        batch = SharedCellBatch(cells)
        token = batch.token
        batch.close()
        return token

    token = benchmark(publish)
    assert len(token) == 3


def test_replication_slotted_cell(once):
    """The slotted engine through the registry (batch_rng default True)."""
    spec = CellSpec(
        scenario="uniform", n=8, rho=0.8, engine="slotted",
        warmup=100, horizon=1000, seeds=(0, 1, 2, 3),
    )
    pooled = once(ReplicationEngine(processes=1).run, spec)
    assert len(pooled.replications) == 4
    assert pooled.littles_law_gap < 0.15


def test_replication_rushed_cell(once):
    """The Theorem 10 copies system through the registry (four seeds)."""
    spec = CellSpec(
        scenario="uniform", n=8, rho=0.7, engine="rushed",
        warmup=100, horizon=1000, seeds=(0, 1, 2, 3),
    )
    pooled = once(ReplicationEngine(processes=1).run, spec)
    assert len(pooled.replications) == 4
    assert all(r.completed == r.generated for r in pooled.replications)


def test_replication_finite_cell(once):
    """The finite-buffer loss engine through the registry: same uniform
    cell as the fifo fan-out at a loss-inducing K=2, so the gate times
    the drop-accounting loop (admission tests + per-node counters) on a
    realistic loss level rather than the delegated buffer_size=None
    path."""
    spec = CellSpec(
        scenario="uniform", n=8, rho=0.8, engine="finite",
        warmup=100, horizon=1000, seeds=(0, 1, 2, 3),
        engine_params=(("buffer_size", 2),),
    )
    pooled = once(ReplicationEngine(processes=1).run, spec)
    assert len(pooled.replications) == 4
    assert pooled.dropped > 0
    assert all(
        r.completed + r.dropped == r.generated for r in pooled.replications
    )
    assert 0.0 < pooled.loss_probability < 0.5


def test_replication_ps_cell(once):
    """The Theorem 5 PS comparator through the registry (O(k) per queue
    event, so a smaller cell than the FIFO fan-outs)."""
    spec = CellSpec(
        scenario="uniform", n=6, rho=0.7, engine="ps",
        warmup=100, horizon=600, seeds=(0, 1),
    )
    pooled = once(ReplicationEngine(processes=1).run, spec)
    assert len(pooled.replications) == 2
    assert pooled.littles_law_gap < 0.15


def test_scenario_calibration(benchmark):
    """Generic-solver load calibration for a non-uniform workload."""
    spec = CellSpec(scenario="hotspot", n=8, rho=0.8, track_saturated=True)
    rate, mask = benchmark(resolve_cell, spec)
    assert rate > 0
    assert mask.any()


def test_matrix_destination_sampling(benchmark):
    """Per-packet CDF sampling (was rng.choice rebuilding the law per draw)."""
    rng = np.random.default_rng(5)
    n = 64
    p = rng.random((n, n))
    p /= p.sum(axis=1, keepdims=True)
    d = MatrixDestinations(p)

    def draw_block():
        r = np.random.default_rng(7)
        return [d.sample(k % n, r) for k in range(2000)]

    out = benchmark(draw_block)
    assert len(out) == 2000
