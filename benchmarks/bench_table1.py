"""Regenerate Table I (simulation vs M/D/1 estimate) and time it.

Shape claims asserted (see repro.experiments.table1): the estimate tracks
simulation at light load, over-estimates for n >= 10 at heavy load, and
the simulation honors the Theorem 7 upper bound.
"""

from repro.experiments import configs, table1


def test_regenerate_table1(once):
    result = once(table1.run, configs.QUICK)
    print()
    print(result.render())
    problems = table1.shape_checks(result)
    assert problems == [], "\n".join(problems)


def test_table1_estimate_columns_fast(benchmark):
    """Microbench: the analytic side of Table I (all 24 paper cells)."""
    from repro.core.md1_approx import delay_md1_estimate
    from repro.core.rates import lambda_for_load

    def all_cells():
        out = []
        for n in (5, 10, 15, 20):
            for rho in (0.2, 0.5, 0.8, 0.9, 0.95, 0.99):
                lam = lambda_for_load(n, rho, "table1")
                out.append(delay_md1_estimate(n, lam, variant="paper"))
        return out

    values = benchmark(all_cells)
    assert len(values) == 24
    assert abs(values[0] - 3.256) < 5e-4  # paper's first printed estimate
