"""Regenerate the Section 6 torus observations: layering obstruction,
Theorem 10 lower bound (no upper bound exists), torus beats open array."""

from repro.experiments import torus


def test_regenerate_torus(once):
    result = once(torus.run, torus.QUICK_TORUS)
    print()
    print(result.render())
    problems = torus.shape_checks(result)
    assert problems == [], "\n".join(problems)
