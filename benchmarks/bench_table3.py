"""Regenerate Table III (r_s = E[R_s]/E[N]) and time it.

Shape claims: r_s < s-bar(n) for every n and the even/odd parity split
(even-n r_s below every odd-n r_s) — the Section 4.6 evidence behind the
3-vs-6 asymmetry of Theorem 14.
"""

from repro.experiments import table3


def test_regenerate_table3(once):
    result = once(table3.run, table3.QUICK3)
    print()
    print(result.render())
    problems = table3.shape_checks(result)
    assert problems == [], "\n".join(problems)
