"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations:

1. **Estimate variant** — how much the paper's printed Table I formula
   (residual-service term dropped) deviates from the textbook P-K variant
   across the whole table grid, and which one tracks simulation better at
   light load (the paper variant, as it happens: the dropped residual
   partially cancels the independence error).
2. **Event-driven vs slotted engine** — same workload, both engines:
   delays agree within tau (Section 5.2's claim) while costs differ; the
   bench records both runtimes.
3. **Exact time-integration vs per-packet averaging** — the engine's two
   built-in estimators of T (Little's-Law on the integrated N vs the
   per-packet mean) must agree in equilibrium; their gap is the price of
   *not* integrating exactly. Asserted small.
"""

import numpy as np

from repro.core.md1_approx import delay_md1_estimate
from repro.core.rates import lambda_for_load
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh


def test_ablation_estimate_variants(benchmark):
    """Quantify paper-vs-P-K estimate spread over the Table I grid."""

    def spread():
        gaps = []
        for n in (5, 10, 15, 20):
            for rho in (0.2, 0.5, 0.8, 0.9, 0.95, 0.99):
                lam = lambda_for_load(n, rho, "table1")
                paper = delay_md1_estimate(n, lam, variant="paper")
                pk = delay_md1_estimate(n, lam, variant="pk")
                gaps.append(pk / paper - 1.0)
        return gaps

    gaps = benchmark(spread)
    # The dropped residual-service term costs 2-20% depending on load.
    assert 0.0 < min(gaps) and max(gaps) < 0.25


def test_ablation_event_vs_slotted(once):
    """Same workload through both engines; delays agree within ~tau."""
    n, rho = 8, 0.7
    lam = lambda_for_load(n, rho)
    mesh = ArrayMesh(n)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(mesh.num_nodes)

    def both():
        ev = NetworkSimulation(router, dests, lam, seed=71).run(150, 1500)
        sl = SlottedNetworkSimulation(router, dests, lam, seed=72).run(150, 1500)
        return ev, sl

    ev, sl = once(both)
    assert abs(ev.mean_delay - sl.mean_delay) <= 1.0 + 0.1 * ev.mean_delay


def test_ablation_integrated_vs_per_packet(once):
    """The two delay estimators agree in equilibrium (Little's Law)."""
    n, rho = 6, 0.8
    lam = lambda_for_load(n, rho)
    mesh = ArrayMesh(n)
    sim = NetworkSimulation(
        GreedyArrayRouter(mesh),
        UniformDestinations(mesh.num_nodes),
        lam,
        seed=73,
    )
    res = once(sim.run, 300.0, 3000.0)
    assert res.littles_law_gap < 0.08
