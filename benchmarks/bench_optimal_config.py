"""Regenerate the Section 5.1 experiment: optimal vs standard allocation,
including the beyond-4/n stability demonstration (capacity 6/(n+1))."""

from repro.experiments import optimal_config


def test_regenerate_optimal_config(once):
    result = once(optimal_config.run, optimal_config.QUICK_OPT)
    print()
    print(result.render())
    problems = optimal_config.shape_checks(result)
    assert problems == [], "\n".join(problems)


def test_optimal_rates_fast(benchmark):
    """Microbench: Theorem 15 allocation on a 20x20 rate map."""
    import numpy as np

    from repro.core.optimization import optimal_service_rates
    from repro.core.rates import array_edge_rates
    from repro.topology.array_mesh import ArrayMesh

    mesh = ArrayMesh(20)
    rates = array_edge_rates(mesh, 0.15)
    budget = 4.0 * 20 * 19

    phi = benchmark(optimal_service_rates, rates, 1.0, budget)
    assert np.all(phi > rates)
