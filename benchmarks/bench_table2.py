"""Regenerate Table II (r = E[R]/E[N]) and time it.

Shape claims: r < n-bar-2 everywhere, r nearly rho-independent, and
r/n-bar-2 in the ~0.7 band for n >= 10 — the paper's Section 4.4 evidence
that the Theorem 12 constant is loose.
"""

from repro.experiments import configs, table2


def test_regenerate_table2(once):
    result = once(table2.run, configs.QUICK)
    print()
    print(result.render())
    problems = table2.shape_checks(result)
    assert problems == [], "\n".join(problems)
