"""Regenerate the bounds sweep (Theorem 7 vs Theorems 8/10/12/14) and
check the paper's gap claims: consistency at every load, the Theorem 12
improvement factor, and gap -> 2*s-bar (3 even / <6 odd) as rho -> 1."""

from repro.experiments import bounds_sweep


def test_regenerate_bounds_sweep(once):
    result = once(bounds_sweep.run, bounds_sweep.QUICK_SWEEP)
    print()
    print(result.render())
    problems = bounds_sweep.shape_checks(result)
    assert problems == [], "\n".join(problems)


def test_bound_summary_fast(benchmark):
    """Microbench: all bounds at one operating point (even + odd n)."""
    from repro.core.lower_bounds import bound_summary
    from repro.core.rates import lambda_for_load

    def both():
        return (
            bound_summary(8, lambda_for_load(8, 0.95)),
            bound_summary(9, lambda_for_load(9, 0.95)),
        )

    even, odd = benchmark(both)
    assert even.is_consistent() and odd.is_consistent()
