"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table/figure/claim of the paper at the
QUICK preset, asserts the paper's shape claims, and times the regeneration
with pytest-benchmark. Simulation benches use a single round (they are
long-running stochastic jobs, not microbenchmarks); the engine/analytics
microbenches use normal multi-round timing.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables printed alongside the timings.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Benchmark a long-running callable exactly once (round=1)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return run


@pytest.fixture
def best_of(benchmark):
    """Benchmark a callable with 3 rounds, reporting min/median.

    The engine-throughput cells are fast enough to repeat, and this
    machine's timing jitter (+/-30% on single rounds) would otherwise
    dominate the recorded trajectory.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=3, iterations=1
        )

    return run
