"""Engine microbenchmarks: event throughput, route construction, traffic
solving. These guard the performance envelope the repro band flagged
("easy to write but slow for large-mesh statistics")."""

import numpy as np

from repro.core.rates import array_edge_rates, edge_rates_from_routing, lambda_for_load
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.topology.array_mesh import ArrayMesh


def test_fifo_engine_throughput(once):
    """Time the main engine on a 10x10 mesh at rho = 0.8 (~0.5M hop events)."""
    n, rho = 10, 0.8
    lam = lambda_for_load(n, rho, "table1")
    mesh = ArrayMesh(n)
    sim = NetworkSimulation(
        GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes), lam, seed=3
    )
    res = once(sim.run, 100.0, 1500.0)
    assert res.generated > 10_000
    assert res.littles_law_gap < 0.1


def test_slotted_engine_throughput(once):
    """Time the slotted engine on the same workload."""
    n, rho = 10, 0.8
    lam = lambda_for_load(n, rho, "table1")
    mesh = ArrayMesh(n)
    sim = SlottedNetworkSimulation(
        GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes), lam, seed=4
    )
    res = once(sim.run, 100, 1500)
    assert res.generated > 10_000


def test_route_construction(benchmark):
    """Per-packet path building on a 25x25 mesh (the hot per-arrival cost)."""
    mesh = ArrayMesh(25)
    router = GreedyArrayRouter(mesh)
    pairs = [(0, mesh.num_nodes - 1), (37, 401), (600, 24), (312, 313)]

    def build():
        return [router.path(s, t) for s, t in pairs]

    paths = benchmark(build)
    assert len(paths[0]) == 48  # corner-to-corner diameter 2(n-1)


def test_traffic_solver_exact(benchmark):
    """The O(nodes^2 * path) exact solver on a 10x10 mesh."""
    mesh = ArrayMesh(10)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(mesh.num_nodes)

    rates = benchmark(edge_rates_from_routing, router, dests, 0.2)
    assert np.allclose(rates, array_edge_rates(mesh, 0.2))


def test_closed_form_rates(benchmark):
    """Theorem 6 closed-form rate map on a 25x25 mesh."""
    mesh = ArrayMesh(25)
    rates = benchmark(array_edge_rates, mesh, 0.1)
    assert rates.shape == (mesh.num_edges,)
