"""Regenerate Figures 1 and 2 (layering and saturated edges) and time them."""

from repro.experiments import figure1, figure2


def test_regenerate_figure1(benchmark):
    result = benchmark(figure1.run, 4)
    print()
    print(result.render())
    assert result.layered
    assert result.row_label_range == (1, 3)
    assert result.col_label_range == (4, 6)


def test_regenerate_figure2(once):
    even, odd = once(figure2.run_pair, 6, 5)
    print()
    print(even.render())
    print(odd.render())
    assert even.max_on_route == 2 and even.s_bar == 1.5
    assert odd.max_on_route == 4 and odd.s_bar < 3.0
