"""Regenerate the Theorem 5 dominance experiment: FIFO <= PS = Jackson,
with the N(t) tail ordering and the product-form closed form."""

from repro.experiments import dominance


def test_regenerate_dominance(once):
    result = once(dominance.run, dominance.QUICK_DOM)
    print()
    print(result.render())
    problems = dominance.shape_checks(result)
    assert problems == [], "\n".join(problems)
