"""repro — reproduction of Mitzenmacher, "Bounds on the Greedy Routing
Algorithm for Array Networks" (SPAA 1994; JCSS 53:317-327, 1996).

The library has five layers:

* :mod:`repro.topology` / :mod:`repro.routing` — array meshes (plus torus,
  hypercube, butterfly, linear array), greedy routing and its variants,
  destination distributions;
* :mod:`repro.queueing` — M/M/1, M/D/1, M/G/1, product-form networks,
  Little's Law, stochastic dominance;
* :mod:`repro.sim` — event-driven FIFO/PS/Jackson/rushed/slotted network
  simulators with exact time-integrated statistics;
* :mod:`repro.core` — the paper's results: Theorem 6 rates, the Theorem 7
  upper bound, the Section 4.2 M/D/1 estimate, the Theorem 8/10/12/14
  lower bounds, layering (Lemma 2), saturation constants, Theorem 15
  optimal rate allocation, and the Section 4.5 hypercube/butterfly gaps;
* :mod:`repro.experiments` — regenerates every table and figure.

Multi-seed runs go through :class:`ReplicationEngine` (see
:mod:`repro.sim.replication`): declare a cell as a :class:`CellSpec` with
a named scenario from :mod:`repro.scenarios` (uniform, hotspot,
transpose, bitreversal, geometric, torus) and a seed tuple, and get back
a :class:`ReplicatedResult` with across-replication means and ~95% CIs.

Quickstart
----------
>>> from repro import ArrayMesh, GreedyArrayRouter, UniformDestinations
>>> from repro import NetworkSimulation, bound_summary, lambda_for_load
>>> n, rho = 6, 0.8
>>> lam = lambda_for_load(n, rho)
>>> mesh = ArrayMesh(n)
>>> sim = NetworkSimulation(GreedyArrayRouter(mesh),
...                         UniformDestinations(mesh.num_nodes), lam, seed=1)
>>> result = sim.run(warmup=200, horizon=2000)
>>> bounds = bound_summary(n, lam)
>>> bounds.lower_best <= result.mean_delay <= bounds.upper * 1.1
True
"""

from repro.topology import (
    ArrayMesh,
    Butterfly,
    Hypercube,
    KDArray,
    LinearArray,
    Topology,
    Torus,
)
from repro.routing import (
    ButterflyRouter,
    GeometricStopDestinations,
    GreedyArrayRouter,
    GreedyHypercubeRouter,
    GreedyKDRouter,
    GreedyTorusRouter,
    HotSpotDestinations,
    LineStopChain,
    MatrixDestinations,
    PBiasedHypercubeDestinations,
    PermutationDestinations,
    RandomizedGreedyArrayRouter,
    Router,
    UniformDestinations,
)
from repro.queueing import (
    MD1Queue,
    MG1Queue,
    MM1Queue,
    ProductFormNetwork,
)
from repro.sim import (
    CellSpec,
    NetworkSimulation,
    PSNetworkSimulation,
    ReplicatedResult,
    ReplicationEngine,
    RushedNetworkSimulation,
    SimResult,
    SlottedNetworkSimulation,
    replicate,
)
from repro.core import (
    BoundSummary,
    array_edge_rates,
    asymptotic_gap,
    best_lower_bound,
    bound_summary,
    copy_lower_bound,
    delay_md1_estimate,
    delay_upper_bound,
    lambda_for_load,
    markov_lower_bound,
    mean_distance,
    optimal_capacity,
    optimal_service_rates,
    s_bar,
    saturated_lower_bound,
    st_lower_bound,
    standard_capacity,
    trivial_lower_bound,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # topology
    "Topology",
    "ArrayMesh",
    "KDArray",
    "LinearArray",
    "Torus",
    "Hypercube",
    "Butterfly",
    # routing
    "Router",
    "GreedyArrayRouter",
    "GreedyKDRouter",
    "RandomizedGreedyArrayRouter",
    "GreedyTorusRouter",
    "GreedyHypercubeRouter",
    "ButterflyRouter",
    "UniformDestinations",
    "MatrixDestinations",
    "PBiasedHypercubeDestinations",
    "GeometricStopDestinations",
    "HotSpotDestinations",
    "PermutationDestinations",
    "LineStopChain",
    # queueing
    "MM1Queue",
    "MD1Queue",
    "MG1Queue",
    "ProductFormNetwork",
    # sim
    "NetworkSimulation",
    "PSNetworkSimulation",
    "RushedNetworkSimulation",
    "SlottedNetworkSimulation",
    "SimResult",
    "CellSpec",
    "ReplicatedResult",
    "ReplicationEngine",
    "replicate",
    # core
    "array_edge_rates",
    "lambda_for_load",
    "mean_distance",
    "delay_upper_bound",
    "delay_md1_estimate",
    "st_lower_bound",
    "trivial_lower_bound",
    "copy_lower_bound",
    "markov_lower_bound",
    "saturated_lower_bound",
    "best_lower_bound",
    "bound_summary",
    "BoundSummary",
    "asymptotic_gap",
    "s_bar",
    "standard_capacity",
    "optimal_capacity",
    "optimal_service_rates",
]
