"""Destination distributions.

Every distribution exposes three views of the same law:

* :meth:`~DestinationDistribution.sample` — draw one destination for a
  packet born at ``src`` (used by the simulators' scalar paths);
* ``sample_batch(srcs, rng)`` — draw one destination per entry of a source
  array with vectorized NumPy calls (used by the slotted engine's batch
  kernel and anywhere a whole Poisson batch is sampled at once);
* :meth:`~DestinationDistribution.pmf` — the exact probability vector over
  all nodes (used by the analytic traffic solver and by tests, which check
  the views agree).

Batch-draw contract
-------------------
``sample_batch`` always agrees with repeated ``sample`` calls *in
distribution*. Laws whose class attribute ``batch_stream_identical`` is
true make a stronger promise: a batch draw consumes the underlying RNG
stream exactly like the same number of consecutive scalar draws, so
replacing a scalar loop with one batch call is *bit-identical* (NumPy
``Generator`` array fills are sequential draws of the same routine). Laws
with data-dependent draw counts (hot-spot's conditional uniform draw, the
geometric stopping chain) cannot make that promise and set the flag false;
the engines' RNG-compatible paths keep those laws on the scalar loop.

The paper's standard model is :class:`UniformDestinations`; Section 4.5
uses :class:`PBiasedHypercubeDestinations`, and Section 5.2's
"more likely to travel to nearby destinations" law is
:class:`GeometricStopDestinations`, built from the Lemma 3 stopping chain.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube
from repro.util.validation import check_probability, pinned_cdf


@runtime_checkable
class DestinationDistribution(Protocol):
    """Protocol: a per-source law over destination nodes.

    Built-in laws additionally provide ``sample_batch(srcs, rng)`` (see
    the module docstring); the engines probe for it with ``getattr`` so
    ad-hoc laws that only implement the scalar protocol keep working.
    """

    num_nodes: int

    def sample(self, src: int, rng: np.random.Generator) -> int:
        """Draw a destination for a packet generated at ``src``."""
        ...

    def pmf(self, src: int) -> np.ndarray:
        """Exact destination probabilities (length ``num_nodes``) from ``src``."""
        ...


class UniformDestinations:
    """Uniform over all nodes, destination may equal the source (the paper's
    convention: "we allow a packet's destination to be the same as its
    starting point")."""

    batch_stream_identical = True

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)

    def sample(self, src: int, rng: np.random.Generator) -> int:
        return int(rng.integers(self.num_nodes))

    def sample_batch(self, srcs, rng: np.random.Generator) -> np.ndarray:
        """One bounded-integer block draw; sources are ignored."""
        return rng.integers(0, self.num_nodes, size=len(srcs))

    def pmf(self, src: int) -> np.ndarray:
        return np.full(self.num_nodes, 1.0 / self.num_nodes)


class MatrixDestinations:
    """An arbitrary row-stochastic destination matrix ``P[src, dst]``.

    Used for hand-crafted non-uniform laws in tests and for freezing any
    other distribution into explicit form.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        p = np.asarray(matrix, dtype=float)
        if p.ndim != 2 or p.shape[0] != p.shape[1]:
            raise ValueError(f"matrix must be square, got shape {p.shape}")
        if np.any(p < 0):
            raise ValueError("matrix entries must be non-negative")
        rowsums = p.sum(axis=1)
        if not np.allclose(rowsums, 1.0, atol=1e-9):
            raise ValueError("every row must sum to 1")
        self._p = p / rowsums[:, None]  # exact renormalisation
        self.num_nodes = p.shape[0]
        # Per-row pinned CDFs so sampling is one uniform draw plus a
        # bisection, instead of rng.choice rebuilding the distribution
        # every packet (see util.validation.pinned_cdf for the boundary
        # handling).
        self._cdf = np.vstack([pinned_cdf(row) for row in self._p])

    batch_stream_identical = True

    def sample(self, src: int, rng: np.random.Generator) -> int:
        # side="right" so a draw landing exactly on a CDF boundary never
        # selects a zero-probability destination.
        return int(np.searchsorted(self._cdf[src], rng.random(), side="right"))

    def sample_batch(self, srcs, rng: np.random.Generator) -> np.ndarray:
        """One uniform block draw, then a per-row CDF bisection.

        ``(row <= u).sum()`` over a sorted row equals
        ``searchsorted(row, u, side="right")``, so batch and scalar draws
        pick identical destinations from identical uniforms.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        u = rng.random(srcs.size)
        return (self._cdf[srcs] <= u[:, None]).sum(axis=1)

    def pmf(self, src: int) -> np.ndarray:
        return self._p[src].copy()


class PBiasedHypercubeDestinations:
    """Section 4.5's product-form law on the hypercube.

    A node at Hamming distance ``k`` from the source is the destination
    with probability ``p^k (1-p)^(d-k)``; equivalently, each bit of the
    destination differs from the source independently with probability
    ``p``. ``p = 1/2`` recovers the uniform distribution.
    """

    batch_stream_identical = True

    def __init__(self, cube: Hypercube, p: float) -> None:
        self.cube = cube
        self.p = check_probability(p, "p")
        self.num_nodes = cube.num_nodes

    def sample(self, src: int, rng: np.random.Generator) -> int:
        flips = rng.random(self.cube.d) < self.p
        dst = int(src)
        for k in range(self.cube.d):
            if flips[k]:
                dst ^= 1 << k
        return dst

    def sample_batch(self, srcs, rng: np.random.Generator) -> np.ndarray:
        """One ``(k, d)`` uniform draw (row-major fill, so bit-identical
        to ``k`` consecutive scalar ``rng.random(d)`` draws)."""
        srcs = np.asarray(srcs, dtype=np.int64)
        d = self.cube.d
        flips = rng.random((srcs.size, d)) < self.p
        masks = (flips * (np.int64(1) << np.arange(d, dtype=np.int64))).sum(axis=1)
        return srcs ^ masks

    def pmf(self, src: int) -> np.ndarray:
        d, p = self.cube.d, self.p
        out = np.empty(self.num_nodes)
        for dst in range(self.num_nodes):
            k = self.cube.hamming_distance(src, dst)
            out[dst] = (p**k) * ((1.0 - p) ** (d - k))
        return out


class GeometricStopDestinations:
    """Section 5.2's distance-biased law on the array mesh.

    Per dimension, the packet picks a direction (uniformly among those
    available at its coordinate) and then "stops movement in that direction
    at each point with probability ``stop``, except at the edge of the
    array (where the packet must stop)" — i.e. the per-dimension offset is
    geometric with parameter ``stop``, truncated at the border. The two
    dimensions are independent. Smaller ``stop`` spreads packets further;
    the paper's example uses ``stop = 1/2``.

    The law is Markovian in the edge sense required by Theorem 1: the
    stopping decision depends only on the current node and the direction
    of travel (i.e. the arc just traversed).
    """

    batch_stream_identical = False  # the stopping chain's draw count varies

    def __init__(self, mesh: ArrayMesh, stop: float = 0.5) -> None:
        self.mesh = mesh
        self.stop = check_probability(stop, "stop", open_interval=True)
        self.num_nodes = mesh.num_nodes
        self._row_cdfs: np.ndarray | None = None
        self._col_cdfs: np.ndarray | None = None

    def _axis_pmf(self, coord: int, size: int) -> np.ndarray:
        """Exact offset law along one axis from coordinate ``coord``."""
        s = self.stop
        pmf = np.zeros(size)
        pmf[coord] = s  # stop immediately at the starting point
        moving = 1.0 - s
        directions = [d for d in (-1, +1) if 0 <= coord + d < size]
        if not directions:  # size == 1: must stop in place
            pmf[coord] = 1.0
            return pmf
        share = moving / len(directions)
        for d in directions:
            mass = share
            j = coord + d
            while True:
                at_border = not (0 <= j + d < size)
                stop_p = 1.0 if at_border else s
                pmf[j] += mass * stop_p
                mass *= 1.0 - stop_p
                if at_border or mass == 0.0:
                    break
                j += d
        return pmf

    def _axis_sample(self, coord: int, size: int, rng: np.random.Generator) -> int:
        """Draw an offset destination along one axis (runs the chain)."""
        s = self.stop
        if rng.random() < s:
            return coord
        directions = [d for d in (-1, +1) if 0 <= coord + d < size]
        if not directions:
            return coord
        d = directions[int(rng.integers(len(directions)))]
        j = coord + d
        while 0 <= j + d < size and rng.random() >= s:
            j += d
        return j

    def sample(self, src: int, rng: np.random.Generator) -> int:
        i, j = self.mesh.node_coords(src)
        i2 = self._axis_sample(i, self.mesh.rows, rng)
        j2 = self._axis_sample(j, self.mesh.cols, rng)
        return self.mesh.node_id(i2, j2)

    def sample_batch(self, srcs, rng: np.random.Generator) -> np.ndarray:
        """Inverse-CDF batch draw from the exact per-axis offset laws.

        Agrees with :meth:`sample` in distribution (same axis pmfs) but
        not in RNG stream — the scalar chain consumes a variable number of
        uniforms per packet, the batch draw exactly two.
        """
        if self._row_cdfs is None:
            self._row_cdfs = np.vstack(
                [
                    pinned_cdf(self._axis_pmf(c, self.mesh.rows))
                    for c in range(self.mesh.rows)
                ]
            )
            self._col_cdfs = np.vstack(
                [
                    pinned_cdf(self._axis_pmf(c, self.mesh.cols))
                    for c in range(self.mesh.cols)
                ]
            )
        srcs = np.asarray(srcs, dtype=np.int64)
        i, j = np.divmod(srcs, self.mesh.cols)
        u_i = rng.random(srcs.size)
        u_j = rng.random(srcs.size)
        i2 = (self._row_cdfs[i] <= u_i[:, None]).sum(axis=1)
        j2 = (self._col_cdfs[j] <= u_j[:, None]).sum(axis=1)
        return i2 * self.mesh.cols + j2

    def pmf(self, src: int) -> np.ndarray:
        i, j = self.mesh.node_coords(src)
        row_pmf = self._axis_pmf(i, self.mesh.rows)
        col_pmf = self._axis_pmf(j, self.mesh.cols)
        return np.outer(row_pmf, col_pmf).reshape(-1)


class HotSpotDestinations:
    """Hot-spot traffic: extra probability mass ``h`` on one hot node.

    With probability ``h`` the packet heads to ``hot_node``; otherwise the
    destination is uniform over all nodes (the hot node included, matching
    the paper's convention that destinations may equal sources). ``h = 0``
    recovers :class:`UniformDestinations`. The classic shared-resource
    workload: the hot node's incoming edges saturate first, so calibrating
    the load by the max edge rate (see :mod:`repro.scenarios`) keeps the
    system stable while concentrating queueing near the hot spot.
    """

    def __init__(self, num_nodes: int, hot_node: int = 0, h: float = 0.25) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        if not 0 <= int(hot_node) < self.num_nodes:
            raise ValueError(
                f"hot_node {hot_node} outside 0..{self.num_nodes - 1}"
            )
        self.hot_node = int(hot_node)
        self.h = check_probability(h, "h")

    batch_stream_identical = False  # uniform draw happens only when not hot

    def sample(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.h:
            return self.hot_node
        return int(rng.integers(self.num_nodes))

    def sample_batch(self, srcs, rng: np.random.Generator) -> np.ndarray:
        """One coin block plus one uniform block for the non-hot packets."""
        k = len(srcs)
        hot = rng.random(k) < self.h
        out = np.full(k, self.hot_node, dtype=np.int64)
        cold = ~hot
        ncold = int(cold.sum())
        if ncold:
            out[cold] = rng.integers(0, self.num_nodes, size=ncold)
        return out

    def pmf(self, src: int) -> np.ndarray:
        out = np.full(self.num_nodes, (1.0 - self.h) / self.num_nodes)
        out[self.hot_node] += self.h
        return out


class PermutationDestinations:
    """Fixed-permutation traffic: every packet born at ``src`` goes to
    ``perm[src]``.

    The classic adversarial workloads for dimension-order routing —
    transpose and bit-reversal — are provided as constructors. The law is
    degenerate (a one-hot pmf per source), which exercises the analytic
    rate solver and dominance checks on maximally non-uniform input.
    """

    batch_stream_identical = True
    #: Degenerate law: sampling consumes no RNG, so engines may batch the
    #: *source* draws around it without disturbing the legacy stream.
    consumes_rng = False

    def __init__(self, perm) -> None:
        p = np.asarray(perm, dtype=np.int64)
        if p.ndim != 1 or not np.array_equal(np.sort(p), np.arange(p.size)):
            raise ValueError("perm must be a permutation of 0..n-1")
        self._perm = p.tolist()
        self._perm_array = p.copy()
        self.num_nodes = int(p.size)

    @classmethod
    def transpose(cls, mesh: ArrayMesh) -> "PermutationDestinations":
        """Matrix-transpose traffic on a square mesh: ``(i, j) -> (j, i)``."""
        if mesh.rows != mesh.cols:
            raise ValueError("transpose traffic needs a square mesh")
        perm = [
            mesh.node_id(j, i)
            for v in range(mesh.num_nodes)
            for i, j in [mesh.node_coords(v)]
        ]
        return cls(perm)

    @classmethod
    def bit_reversal(cls, num_nodes: int) -> "PermutationDestinations":
        """Bit-reversal traffic on ``num_nodes = 2^d`` nodes: node ``v``
        maps to the reversal of its ``d``-bit address."""
        n = int(num_nodes)
        if n < 1 or n & (n - 1):
            raise ValueError(f"num_nodes must be a power of two, got {num_nodes}")
        d = n.bit_length() - 1
        perm = [int(f"{v:0{d}b}"[::-1], 2) if d else 0 for v in range(n)]
        return cls(perm)

    def sample(self, src: int, rng: np.random.Generator) -> int:
        return self._perm[src]

    def sample_batch(self, srcs, rng: np.random.Generator) -> np.ndarray:
        """One gather; consumes no randomness (degenerate law)."""
        return self._perm_array[np.asarray(srcs, dtype=np.int64)]

    def pmf(self, src: int) -> np.ndarray:
        out = np.zeros(self.num_nodes)
        out[self._perm[src]] = 1.0
        return out


def uniform_for(topology) -> UniformDestinations:
    """Uniform destinations sized for ``topology`` (convenience factory)."""
    return UniformDestinations(topology.num_nodes)
