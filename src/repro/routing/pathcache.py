"""Shared path-cache arena: the per-packet routing hot path.

Both simulation engines used to rebuild every packet's path hop by hop
(``GreedyArrayRouter.path`` does one NumPy scalar index per hop), which at
32x32 mesh sizes is a noticeable slice of the whole run. Paths, however,
are pure functions of ``(src, dst)`` for every deterministic router, and a
mixture of two such functions for the Section 6 randomized scheme — so the
work is memoizable. This module provides that memo as a *flat shared
arena*:

* :class:`PathArena` — an append-only flat edge-id store. The engines
  bind the plain Python list mirror (:attr:`PathArena.edges`), where list
  indexing beats NumPy scalar indexing by an order of magnitude; the
  ``int32`` snapshot (:meth:`PathArena.as_array`) is the export for
  NumPy-side consumers (analysis, future array kernels).
* :class:`PathCache` — a ``(src, dst) -> (offset, length)`` memo over an
  arena for deterministic routers. Lookups are one dict probe; misses
  build the path once via the router (or a custom ``builder``) and append
  it to the arena. For small networks a dense ``offset``/``length`` pair
  of arrays is kept alongside the dict so batch lookups are a single
  NumPy gather.
* :class:`RandomizedGreedyPathCache` — the per-scheme cached-leg variant
  for :class:`~repro.routing.randomized_greedy.RandomizedGreedyArrayRouter`:
  two tables (row-first / column-first) share one arena, and each table's
  paths are *composed from memoized row/column legs* (via
  :class:`MeshLegCache`) instead of re-walking the direction grids for
  both orders. The per-packet coin is the same single ``rng.random()``
  draw the uncached router makes, so same-seed runs are bit-identical.
* Specialised miss-path builders for every shipped deterministic
  topology: the torus and k-d arrays compose paths from memoized
  single-axis legs (:class:`TorusLegCache`, :class:`KDLegCache`), and
  the hypercube and butterfly use closed-form edge-id arithmetic — so a
  cache miss never falls back to the generic hop-by-hop ``router.path``
  walk on those networks.
* :class:`SampledPathInterner` — the no-memo fallback for routers the
  cache layer does not recognise (and the ``use_path_cache=False``
  baseline): it rebuilds the sampled path per packet, exactly like the
  pre-cache engines, but still interns the result into an arena so the
  engines can keep uniform ``(offset, length)`` packet records.

Engines never call ``Router.sample_path`` directly any more; they go
through :func:`path_cache_for`, which picks the right flavour. Caches only
ever *grow* and cache state never influences results, so one cache can be
shared freely across the replications of a cell (see
:mod:`repro.sim.replication`).

Bit-identity contract
---------------------
Path caching must not change any simulation output: deterministic lookups
consume no RNG (as before), and the randomized variant draws exactly the
coin the uncached scheme drew. The golden-result tests
(``tests/test_golden_results.py``) pin this.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.routing.base import BaseRouter, Router
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.greedy import GreedyKDRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter

#: Below this many nodes a cache also maintains dense ``n*n`` offset and
#: length arrays (1 MiB at the limit), enabling single-gather batch
#: lookups; larger networks stay dict-only to keep memory proportional to
#: the pairs actually routed.
DENSE_NODE_LIMIT = 256

#: Ceiling on ``n*n`` for *on-demand* dense promotion
#: (:meth:`PathCache.promote_dense`) — the vectorized kernels ask for
#: dense tables explicitly and 4M pairs caps the two ``int64`` arrays at
#: 64 MiB; beyond it batch lookups keep the dict fallback.
DENSE_PAIR_LIMIT = 4_194_304


class PathArena:
    """Append-only flat store of path edge ids with ``(offset, length)`` views.

    The arena is shared: several caches (e.g. the two tables of the
    randomized scheme) may append to one arena. ``edges`` is the Python
    list mirror used by the engines' interpreter loops and is only ever
    extended in place — engines may safely bind it to a local once.
    """

    __slots__ = ("edges", "_array", "_array_len")

    def __init__(self) -> None:
        self.edges: list[int] = []
        self._array: np.ndarray | None = None
        self._array_len = -1

    def add(self, path: Sequence[int]) -> int:
        """Append ``path`` and return its offset."""
        off = len(self.edges)
        self.edges.extend(path)
        return off

    def as_array(self) -> np.ndarray:
        """``int32`` snapshot of the arena (rebuilt lazily after growth).

        The engines themselves index :attr:`edges`; this view is for
        NumPy-side consumers that want the whole arena at once.
        """
        if self._array_len != len(self.edges):
            self._array = np.asarray(self.edges, dtype=np.int32)
            self._array_len = len(self.edges)
        return self._array

    def gather(self, offs: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """Flat per-visit edge ids for parallel ``(offset, length)`` views.

        Returns one ``int32`` array concatenating the paths in order —
        the canonical hot-loop input of the vectorized kernels (visit
        ``k`` of packet ``i`` sits at ``cumsum(lens)[i-1] + k``). Call
        *after* all lookups: :meth:`as_array` snapshots the arena as it
        is now, and lookups may still grow it.
        """
        offs = np.asarray(offs, dtype=np.int64)
        lens = np.asarray(lens, dtype=np.int64)
        arr = self.as_array()
        if offs.size == 0:
            return np.empty(0, dtype=np.int32)
        cum = np.cumsum(lens)
        total = int(cum[-1])
        if bool(np.all(lens > 0)):
            # Pointer walk: +1 inside a path, jump at each boundary —
            # one cumsum instead of two repeats (needs non-empty paths).
            step = np.ones(total, dtype=np.int64)
            step[0] = offs[0]
            step[cum[:-1]] = offs[1:] - offs[:-1] - lens[:-1] + 1
            return arr[np.cumsum(step)]
        seg = np.repeat(np.arange(offs.size, dtype=np.int64), lens)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            cum - lens, lens
        )
        return arr[offs[seg] + within]

    def view(self, offset: int, length: int) -> tuple[int, ...]:
        """Materialise one ``(offset, length)`` slice as an edge tuple."""
        return tuple(self.edges[offset : offset + length])

    def adopt_array(self, edges: np.ndarray) -> None:
        """Adopt a published ``int32`` edge snapshot as the arena contents.

        Used by the shared-memory fan-out (:mod:`repro.sim.sharedcells`):
        a worker attaches the parent's arena snapshot zero-copy and binds
        it as :meth:`as_array` directly; the Python list mirror the
        interpreter loops index is materialised once per worker
        (``tolist`` — the only copy in the hand-off). Must be called on
        an empty arena; the arena keeps its append-only contract, so
        later misses extend ``edges`` past the snapshot and the next
        :meth:`as_array` call rebuilds the (then private) array.
        """
        if self.edges:
            raise ValueError("adopt_array requires an empty arena")
        self.edges = edges.tolist()
        self._array = edges
        self._array_len = len(self.edges)

    def __len__(self) -> int:
        return len(self.edges)


class PathCache:
    """Memoized ``(src, dst) -> (offset, length)`` views for a deterministic router.

    Parameters
    ----------
    router:
        A deterministic router (``sample_path`` must not consume RNG).
    arena:
        Shared :class:`PathArena`; a private one is created if omitted.
    builder:
        Optional replacement for ``router.path`` used to build a missing
        path (the cached-leg composers use this). Must return the exact
        same edge sequence ``router.path`` would.
    precompute:
        Eagerly build all ``n * n`` pairs up front. Default is lazy
        memoization; precomputing is only worthwhile when a long run will
        touch most pairs anyway and first-hit jitter matters.
    """

    #: Engines check this to decide whether lookups need the packet RNG.
    consumes_rng = False

    def __init__(
        self,
        router: Router,
        *,
        arena: PathArena | None = None,
        builder: Callable[[int, int], Sequence[int]] | None = None,
        precompute: bool = False,
    ) -> None:
        self.router = router
        self.topology = router.topology
        self.num_nodes = int(self.topology.num_nodes)
        self.arena = arena if arena is not None else PathArena()
        self._build_path = builder if builder is not None else router.path
        self.table: dict[int, tuple[int, int]] = {}
        n = self.num_nodes
        if n <= DENSE_NODE_LIMIT:
            self._dense_off: np.ndarray | None = np.full(n * n, -1, dtype=np.int64)
            self._dense_len: np.ndarray | None = np.zeros(n * n, dtype=np.int64)
        else:
            self._dense_off = self._dense_len = None
        if precompute:
            self.precompute_all()

    # -- scalar lookups (the event-engine hot path) --------------------
    def ensure(self, src: int, dst: int) -> tuple[int, int]:
        """Miss handler: build, append to the arena, memoize."""
        path = self._build_path(src, dst)
        off = self.arena.add(path)
        ol = (off, len(path))
        key = src * self.num_nodes + dst
        self.table[key] = ol
        if self._dense_off is not None:
            self._dense_off[key] = ol[0]
            self._dense_len[key] = ol[1]
        return ol

    def offlen(self, src: int, dst: int) -> tuple[int, int]:
        """The ``(offset, length)`` view of the cached path."""
        ol = self.table.get(src * self.num_nodes + dst)
        return ol if ol is not None else self.ensure(src, dst)

    def sample_offlen(
        self, src: int, dst: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Uniform engine interface; deterministic caches ignore ``rng``."""
        return self.offlen(src, dst)

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """The cached path as an edge tuple (tests / analysis)."""
        off, length = self.offlen(src, dst)
        return self.arena.view(off, length)

    # -- batch lookups (the slotted-engine vectorized kernel) ----------
    def offlen_batch(
        self, srcs: np.ndarray, dsts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(offsets, lengths)`` for parallel ``(src, dst)`` arrays.

        With dense tables this is one NumPy gather (misses are filled
        first); dict-only caches fall back to a Python loop, still one
        dict probe per pair.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if self._dense_off is not None:
            keys = srcs * self.num_nodes + dsts
            offs = self._dense_off[keys]
            if (offs < 0).any():
                table = self.table
                n = self.num_nodes
                for s, d in zip(srcs[offs < 0].tolist(), dsts[offs < 0].tolist()):
                    # Re-check per pair: a batch may repeat a missing
                    # pair, and a duplicate ensure() would append a dead
                    # copy of the path to the append-only shared arena.
                    if s * n + d not in table:
                        self.ensure(s, d)
                offs = self._dense_off[keys]
            return offs, self._dense_len[keys]
        offs = np.empty(srcs.size, dtype=np.int64)
        lens = np.empty(srcs.size, dtype=np.int64)
        offlen = self.offlen
        for i, (s, d) in enumerate(zip(srcs.tolist(), dsts.tolist())):
            offs[i], lens[i] = offlen(s, d)
        return offs, lens

    def sample_offlen_batch(
        self, srcs: np.ndarray, dsts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform batch interface; deterministic caches ignore ``rng``."""
        return self.offlen_batch(srcs, dsts)

    def promote_dense(self) -> bool:
        """Adopt dense ``n*n`` tables on demand (vectorized-kernel path).

        Networks above :data:`DENSE_NODE_LIMIT` are dict-only by default;
        the numpy kernels, whose batch lookups would otherwise loop a
        dict probe per pair, request promotion explicitly. Existing
        entries are backfilled, after which :meth:`offlen_batch` is a
        single gather. Returns whether dense tables are (now) active;
        above :data:`DENSE_PAIR_LIMIT` promotion is declined and batch
        lookups keep the fallback loop.
        """
        if self._dense_off is not None:
            return True
        n = self.num_nodes
        if n * n > DENSE_PAIR_LIMIT:
            return False
        self._dense_off = np.full(n * n, -1, dtype=np.int64)
        self._dense_len = np.zeros(n * n, dtype=np.int64)
        if self.table:
            keys = np.fromiter(self.table, dtype=np.int64, count=len(self.table))
            ols = np.array(list(self.table.values()), dtype=np.int64)
            self._dense_off[keys] = ols[:, 0]
            self._dense_len[keys] = ols[:, 1]
        return True

    def precompute_all(self) -> None:
        """Materialise every ``(src, dst)`` pair (small networks only)."""
        n = self.num_nodes
        table = self.table
        for src in range(n):
            base = src * n
            for dst in range(n):
                if base + dst not in table:
                    self.ensure(src, dst)

    # -- shared-memory snapshot hand-off -------------------------------
    @property
    def complete(self) -> bool:
        """Every ``(src, dst)`` pair is cached (nothing left to build)."""
        n = self.num_nodes
        return len(self.table) == n * n

    def table_snapshot(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Dense ``(offsets, lengths)`` export for *complete* caches.

        The shared-memory fan-out (:mod:`repro.sim.sharedcells`) publishes
        this pair next to the arena's ``int32`` snapshot so pool workers
        can adopt a fully built cache instead of re-routing every path.
        Only complete dense caches export: a partial table would leave
        workers writing misses into memory shared across processes.
        """
        if self._dense_off is None or not self.complete:
            return None
        return self._dense_off, self._dense_len

    def adopt_table(self, dense_off: np.ndarray, dense_len: np.ndarray) -> None:
        """Adopt a published complete dense table (worker side).

        ``dense_off``/``dense_len`` may live in shared memory: they are
        bound read-only as the batch-lookup tables (misses cannot happen
        on a complete cache, so nothing ever writes to them). The dict
        used by the scalar hot path is rebuilt privately — plain dict
        probes stay the fastest per-packet lookup. The arena must have
        adopted the matching edge snapshot first
        (:meth:`PathArena.adopt_array`).
        """
        if self.table:
            raise ValueError("adopt_table requires an empty cache")
        n = self.num_nodes
        if dense_off.shape != (n * n,) or dense_len.shape != (n * n,):
            raise ValueError(
                f"dense table shape {dense_off.shape} does not match "
                f"{n}x{n} nodes"
            )
        offs = dense_off.tolist()
        lens = dense_len.tolist()
        self.table = {k: (offs[k], lens[k]) for k in range(n * n)}
        dense_off = dense_off.view()
        dense_len = dense_len.view()
        dense_off.setflags(write=False)
        dense_len.setflags(write=False)
        self._dense_off = dense_off
        self._dense_len = dense_len

    def __len__(self) -> int:
        return len(self.table)


class MeshLegCache:
    """Memoized row/column legs of greedy mesh walks.

    A greedy mesh path is one row leg plus one column leg; the randomized
    scheme needs *both* orders per pair, but the legs themselves are
    shared (``n^3`` legs cover all ``2 n^4`` order/pair combinations). The
    cache memoizes each leg once, built via the greedy router's own
    per-direction grids.
    """

    def __init__(self, greedy_router) -> None:
        self._router = greedy_router
        self._rows: dict[tuple[int, int, int], list[int]] = {}
        self._cols: dict[tuple[int, int, int], list[int]] = {}

    def row_leg(self, i: int, j1: int, j2: int) -> list[int]:
        """Edges along row ``i`` from column ``j1`` to ``j2`` (memoized)."""
        key = (i, j1, j2)
        leg = self._rows.get(key)
        if leg is None:
            leg = self._rows[key] = self._router._row_leg(i, j1, j2)
        return leg

    def col_leg(self, i1: int, i2: int, j: int) -> list[int]:
        """Edges along column ``j`` from row ``i1`` to ``i2`` (memoized)."""
        key = (i1, i2, j)
        leg = self._cols.get(key)
        if leg is None:
            leg = self._cols[key] = self._router._col_leg(i1, i2, j)
        return leg


def _mesh_builders(legs: MeshLegCache, coords):
    """Leg-composed builders for the two greedy mesh orders.

    The randomized scheme needs both orders per pair; one shared leg memo
    makes each table's miss two dict probes plus a list concatenation
    (instead of a second hop-by-hop grid walk), and warm legs build a
    path ~3x faster than ``GreedyArrayRouter.path``.
    """

    def build_row_first(src: int, dst: int) -> list[int]:
        i1, j1 = coords(src)
        i2, j2 = coords(dst)
        first = legs.row_leg(i1, j1, j2) if j1 != j2 else []
        second = legs.col_leg(i1, i2, j2) if i1 != i2 else []
        return first + second

    def build_col_first(src: int, dst: int) -> list[int]:
        i1, j1 = coords(src)
        i2, j2 = coords(dst)
        first = legs.col_leg(i1, i2, j1) if i1 != i2 else []
        second = legs.row_leg(i2, j1, j2) if j1 != j2 else []
        return first + second

    return build_row_first, build_col_first


class RandomizedGreedyPathCache:
    """Cached-leg path cache for the Section 6 randomized greedy scheme.

    Holds two :class:`PathCache` tables — row-first and column-first — on
    one shared arena. Each table composes its paths from the same
    :class:`MeshLegCache` instead of re-walking the direction grids for
    both orders. ``sample_offlen`` draws exactly the one coin
    ``RandomizedGreedyArrayRouter.sample_path`` draws, keeping same-seed
    runs bit-identical to the uncached scheme.
    """

    consumes_rng = True

    def __init__(
        self,
        router: RandomizedGreedyArrayRouter,
        *,
        arena: PathArena | None = None,
    ) -> None:
        self.router = router
        self.topology = router.topology
        self.arena = arena if arena is not None else PathArena()
        self.row_first_probability = router.row_first_probability
        self.legs = MeshLegCache(router._row_first)
        build_row_first, build_col_first = _mesh_builders(
            self.legs, router.mesh.node_coords
        )
        self.row_first = PathCache(
            router._row_first, arena=self.arena, builder=build_row_first
        )
        self.col_first = PathCache(
            router._col_first, arena=self.arena, builder=build_col_first
        )

    def sample_offlen(
        self, src: int, dst: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        """One coin (same draw as the uncached scheme), one dict probe."""
        if rng.random() < self.row_first_probability:
            return self.row_first.offlen(src, dst)
        return self.col_first.offlen(src, dst)

    def sample_offlen_batch(
        self, srcs: np.ndarray, dsts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch coins, then gather from the two tables.

        The coins are one ``rng.random(k)`` call — bit-identical to the
        per-packet scalar coins because path composition consumes no RNG
        between them.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        heads = rng.random(srcs.size) < self.row_first_probability
        offs = np.empty(srcs.size, dtype=np.int64)
        lens = np.empty(srcs.size, dtype=np.int64)
        for table, mask in (
            (self.row_first, heads),
            (self.col_first, ~heads),
        ):
            if mask.any():
                offs[mask], lens[mask] = table.offlen_batch(srcs[mask], dsts[mask])
        return offs, lens

    def promote_dense(self) -> bool:
        """Promote both order tables (see :meth:`PathCache.promote_dense`)."""
        row = self.row_first.promote_dense()
        col = self.col_first.promote_dense()
        return row and col

    def precompute_all(self) -> None:
        """Materialise both order tables for every pair (small meshes)."""
        self.row_first.precompute_all()
        self.col_first.precompute_all()

    @property
    def complete(self) -> bool:
        """Both order tables cover every ``(src, dst)`` pair."""
        return self.row_first.complete and self.col_first.complete

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Canonical (row-first) cached path."""
        return self.row_first.path(src, dst)


class TorusLegCache:
    """Memoized wraparound row/column legs of greedy torus walks.

    Same idea as :class:`MeshLegCache`: a greedy torus path is one
    horizontal leg plus one vertical leg, and ``n^3`` legs cover all
    pairs of either dimension order, so the legs are the right memo
    granularity. Legs are built once via the torus router's own
    ``_leg`` walk (shorter-way-around with the deterministic tie rule).
    """

    def __init__(self, torus_router: GreedyTorusRouter) -> None:
        self._router = torus_router
        self._rows: dict[tuple[int, int, int], list[int]] = {}
        self._cols: dict[tuple[int, int, int], list[int]] = {}

    def row_leg(self, i: int, j1: int, j2: int) -> list[int]:
        """Edges along row ``i`` from column ``j1`` to ``j2`` (memoized)."""
        key = (i, j1, j2)
        leg = self._rows.get(key)
        if leg is None:
            leg, _, _ = self._router._leg(i, j1, j2, horizontal=True)
            self._rows[key] = leg
        return leg

    def col_leg(self, i1: int, i2: int, j: int) -> list[int]:
        """Edges along column ``j`` from row ``i1`` to ``i2`` (memoized)."""
        key = (i1, i2, j)
        leg = self._cols.get(key)
        if leg is None:
            leg, _, _ = self._router._leg(i1, j, i2, horizontal=False)
            self._cols[key] = leg
        return leg


def _torus_builder(router: GreedyTorusRouter):
    """Leg-composed builder reproducing ``GreedyTorusRouter.path`` exactly."""
    legs = TorusLegCache(router)
    coords = router.torus.node_coords
    column_first = router.column_first
    row_leg, col_leg = legs.row_leg, legs.col_leg

    def build_torus_path(src: int, dst: int) -> list[int]:
        if src == dst:
            return []
        i1, j1 = coords(src)
        i2, j2 = coords(dst)
        if column_first:
            first = col_leg(i1, i2, j1) if i1 != i2 else []
            second = row_leg(i2, j1, j2) if j1 != j2 else []
        else:
            first = row_leg(i1, j1, j2) if j1 != j2 else []
            second = col_leg(i1, i2, j2) if i1 != i2 else []
        return first + second

    return build_torus_path


def _hypercube_builder(router: GreedyHypercubeRouter):
    """Closed-form builder for the canonical-order hypercube walk.

    Dimension ``k``'s edge block starts at ``k * 2^d`` and the edge out
    of node ``v`` sits at offset ``v``, so the whole path is integer
    arithmetic — no per-hop method calls or range checks (the cache only
    ever asks for valid node ids).
    """
    n = int(router.cube.num_nodes)

    def build_hypercube_path(src: int, dst: int) -> list[int]:
        at = int(src)
        diff = at ^ int(dst)
        out: list[int] = []
        base = 0
        bit = 1
        while diff:
            if diff & 1:
                out.append(base + at)
                at ^= bit
            diff >>= 1
            base += n
            bit <<= 1
        return out

    return build_hypercube_path


def _butterfly_builder(router: ButterflyRouter):
    """Level-composed builder for the unique butterfly path.

    Per level the two candidate edges are ``base + row`` (straight) and
    ``base + rows + row`` (cross) with ``base = level * 2 * rows``; the
    builder walks the row bits directly. Invalid (non input-to-output)
    pairs still raise ``ValueError`` via ``node_coords``-style checks,
    matching the router's contract.
    """
    b = router.butterfly
    rows = b.rows
    d = b.d
    node_coords = b.node_coords

    def build_butterfly_path(src: int, dst: int) -> list[int]:
        level_s, row = node_coords(src)
        level_d, row_d = node_coords(dst)
        if level_s != 0:
            raise ValueError(
                f"butterfly sources must be level-0 nodes, got level {level_s}"
            )
        if level_d != d:
            raise ValueError(
                f"butterfly destinations must be level-{d} nodes, got level {level_d}"
            )
        out: list[int] = []
        need = row ^ row_d
        base = 0
        bit = 1
        for _level in range(d):
            if need & bit:
                out.append(base + rows + row)
                row ^= bit
            else:
                out.append(base + row)
            base += 2 * rows
            bit <<= 1
        return out

    return build_butterfly_path


class KDLegCache:
    """Memoized single-axis legs of dimension-order walks on a k-d array.

    A leg is the edge run correcting one axis from one node; it is keyed
    by ``(start node, axis, target coordinate)`` and shared by every
    ``(src, dst)`` pair whose walk passes through that node with that
    correction — the k-d analogue of the mesh/torus row-column legs.
    """

    def __init__(self, array) -> None:
        self._array = array
        self._legs: dict[tuple[int, int, int], tuple[list[int], int]] = {}

    def leg(self, at: int, axis: int, cur: int, target: int) -> tuple[list[int], int]:
        """Edges correcting ``axis`` from ``cur`` to ``target`` starting at
        node ``at``; returns ``(edges, end_node)`` (memoized)."""
        key = (at, axis, target)
        hit = self._legs.get(key)
        if hit is not None:
            return hit
        array = self._array
        step = array.strides[axis]
        edges: list[int] = []
        node = at
        while cur < target:
            nxt = node + step
            edges.append(array.edge_id(node, nxt))
            node = nxt
            cur += 1
        while cur > target:
            nxt = node - step
            edges.append(array.edge_id(node, nxt))
            node = nxt
            cur -= 1
        self._legs[key] = (edges, node)
        return edges, node


def _kd_builder(router: GreedyKDRouter):
    """Leg-composed builder reproducing ``GreedyKDRouter.path`` exactly."""
    legs = KDLegCache(router.array)
    node_coords = router.array.node_coords
    order = router.dimension_order
    leg = legs.leg

    def build_kd_path(src: int, dst: int) -> list[int]:
        if src == dst:
            return []
        coord = node_coords(src)
        target = node_coords(dst)
        at = src
        out: list[int] = []
        for axis in order:
            c, g = coord[axis], target[axis]
            if c != g:
                edges, at = leg(at, axis, c, g)
                out.extend(edges)
        return out

    return build_kd_path


def _deterministic_builder(router: Router):
    """The specialised (leg-composed / closed-form) builder for ``router``,
    or ``None`` when only the generic ``router.path`` is available."""
    if isinstance(router, GreedyTorusRouter):
        return _torus_builder(router)
    if isinstance(router, GreedyHypercubeRouter):
        return _hypercube_builder(router)
    if isinstance(router, ButterflyRouter):
        return _butterfly_builder(router)
    if isinstance(router, GreedyKDRouter):
        return _kd_builder(router)
    return None


class SampledPathInterner:
    """Uncached adapter: per-packet rebuild, arena-interned records.

    Used for routers :func:`path_cache_for` does not recognise, and as the
    engines' ``use_path_cache=False`` baseline. Every lookup calls
    ``router.sample_path`` — identical RNG consumption and per-packet cost
    to the pre-cache engines — then interns the resulting edge tuple so
    packet records stay ``(offset, length)``. Interning bounds arena
    growth by the number of *distinct* paths, not packets.
    """

    consumes_rng = True

    def __init__(self, router: Router, *, arena: PathArena | None = None) -> None:
        self.router = router
        self.topology = router.topology
        self.arena = arena if arena is not None else PathArena()
        self._seen: dict[tuple[int, ...], tuple[int, int]] = {}

    def sample_offlen(
        self, src: int, dst: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        path = tuple(self.router.sample_path(src, dst, rng))
        ol = self._seen.get(path)
        if ol is None:
            ol = self._seen[path] = (self.arena.add(path), len(path))
        return ol

    def sample_offlen_batch(
        self, srcs: np.ndarray, dsts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        offs = np.empty(len(srcs), dtype=np.int64)
        lens = np.empty(len(srcs), dtype=np.int64)
        for i, (s, d) in enumerate(
            zip(np.asarray(srcs).tolist(), np.asarray(dsts).tolist())
        ):
            offs[i], lens[i] = self.sample_offlen(s, d, rng)
        return offs, lens


def path_cache_for(
    router: Router,
    *,
    arena: PathArena | None = None,
    precompute: bool = False,
):
    """Build the right cache flavour for ``router``.

    Deterministic routers (any :class:`BaseRouter` subclass that does not
    override ``sample_path``) get a :class:`PathCache` — with a
    specialised miss-path builder where one exists (leg-composed for the
    torus and k-d arrays, closed-form for the hypercube and butterfly;
    the mesh routers' per-direction grid walk is already leg-shaped).
    The randomized greedy scheme gets its cached-leg
    :class:`RandomizedGreedyPathCache`; anything else falls back to the
    :class:`SampledPathInterner`, which preserves pre-cache behaviour
    exactly.
    """
    if isinstance(router, RandomizedGreedyArrayRouter):
        return RandomizedGreedyPathCache(router, arena=arena)
    sample = getattr(type(router), "sample_path", None)
    if isinstance(router, BaseRouter) and sample is BaseRouter.sample_path:
        return PathCache(
            router,
            arena=arena,
            builder=_deterministic_builder(router),
            precompute=precompute,
        )
    return SampledPathInterner(router, arena=arena)


def resolve_path_cache(router: Router, *, path_cache=None, use_path_cache=True):
    """Resolve an engine's path cache — the one constructor policy all four
    simulators share.

    An externally supplied ``path_cache`` must have been built for this
    very ``router`` *instance*: an equal-sized topology is not enough,
    since a cache built for a different scheme (say the column-first
    mesh order) would silently simulate the wrong routing. Otherwise
    build the right flavour via :func:`path_cache_for`, or the
    per-packet :class:`SampledPathInterner` when caching is disabled.
    """
    if path_cache is not None:
        if path_cache.router is not router:
            raise ValueError(
                "path_cache was built for a different router instance; "
                "share the router object along with its cache"
            )
        return path_cache
    if use_path_cache:
        return path_cache_for(router)
    return SampledPathInterner(router)
