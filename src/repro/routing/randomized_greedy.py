"""Randomized greedy routing (Section 6 remark).

"One might consider a randomized version of greedy routing, where packets
randomly decide whether to move first to the correct row or the correct
column." Each packet flips a fair (or biased) coin between the row-first
and the column-first greedy path. The paper notes the upper-bound argument
fails for this scheme (it is not layered under any single labelling that
covers both orders) and reports that simulations show it performs slightly
worse than standard greedy — a claim our
:mod:`repro.experiments.randomized_greedy` experiment re-tests.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import BaseRouter
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh
from repro.util.validation import check_probability


class RandomizedGreedyArrayRouter(BaseRouter):
    """Coin-flip mixture of row-first and column-first greedy routing.

    Parameters
    ----------
    mesh:
        The array mesh to route on.
    row_first_probability:
        Probability of taking the row-first path (default 0.5). With
        probability ``1 - p`` the column-first path is used instead.

    Notes
    -----
    :meth:`path` (the canonical, deterministic path used by analysis)
    returns the row-first path; randomness only enters via
    :meth:`sample_path`.
    """

    def __init__(self, mesh: ArrayMesh, row_first_probability: float = 0.5) -> None:
        super().__init__(mesh)
        self.mesh = mesh
        self.row_first_probability = check_probability(
            row_first_probability, "row_first_probability"
        )
        self._row_first = GreedyArrayRouter(mesh, column_first=False)
        self._col_first = GreedyArrayRouter(mesh, column_first=True)

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Canonical (row-first) path."""
        return self._row_first.path(src, dst)

    def sample_path(
        self, src: int, dst: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        """Row-first with probability ``p``, else column-first."""
        if rng.random() < self.row_first_probability:
            return self._row_first.path(src, dst)
        return self._col_first.path(src, dst)
