"""Greedy (dimension-order) routing on array meshes.

The paper's scheme: "packets move to their destination greedily, first to
the correct column along only row edges and then to the correct row along
only column edges". :class:`GreedyArrayRouter` implements exactly that
order (row edges first); :class:`GreedyKDRouter` generalises to
k-dimensional arrays, correcting dimensions in a fixed canonical order,
which is the natural higher-dimensional analogue from Section 5.2.

Implementation note: paths are built from precomputed per-direction edge-id
grids, so constructing a path costs one Python loop iteration per hop with
no hashing — this is the per-packet hot path of the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import BaseRouter
from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP, ArrayMesh, KDArray


class GreedyArrayRouter(BaseRouter):
    """Row-first greedy routing on an :class:`ArrayMesh`.

    A packet at ``(i, j)`` destined for ``(i', j')`` first walks along row
    ``i`` to column ``j'`` (right or left), then along column ``j'`` to row
    ``i'`` (down or up).

    Parameters
    ----------
    mesh:
        The array mesh to route on.
    column_first:
        If true, correct the row coordinate first (column edges before row
        edges). The paper's standard scheme is ``column_first=False``; the
        transposed variant is provided because the randomized scheme of
        Section 6 mixes the two.

    Examples
    --------
    >>> mesh = ArrayMesh(3)
    >>> router = GreedyArrayRouter(mesh)
    >>> src, dst = mesh.node_id(0, 0), mesh.node_id(2, 1)
    >>> [mesh.edge_endpoints(e) for e in router.path(src, dst)]
    [(0, 1), (1, 4), (4, 7)]
    """

    def __init__(self, mesh: ArrayMesh, *, column_first: bool = False) -> None:
        super().__init__(mesh)
        self.mesh = mesh
        self.column_first = column_first
        rows, cols = mesh.rows, mesh.cols
        # Per-direction edge-id grids; -1 marks a missing edge at a border.
        self._right = np.full((rows, cols), -1, dtype=np.int64)
        self._left = np.full((rows, cols), -1, dtype=np.int64)
        self._down = np.full((rows, cols), -1, dtype=np.int64)
        self._up = np.full((rows, cols), -1, dtype=np.int64)
        for i in range(rows):
            for j in range(cols):
                if j < cols - 1:
                    self._right[i, j] = mesh.directed_edge_id(i, j, RIGHT)
                if j > 0:
                    self._left[i, j] = mesh.directed_edge_id(i, j, LEFT)
                if i < rows - 1:
                    self._down[i, j] = mesh.directed_edge_id(i, j, DOWN)
                if i > 0:
                    self._up[i, j] = mesh.directed_edge_id(i, j, UP)
        # Nested-list mirrors of the grids for the leg builders: Python
        # list indexing is ~10x faster than NumPy scalar indexing, and the
        # builders are the path cache's miss path (hot at large meshes
        # where most (src, dst) pairs are seen once).
        self._right_rows: list[list[int]] = self._right.tolist()
        self._left_rows: list[list[int]] = self._left.tolist()
        self._down_rows: list[list[int]] = self._down.tolist()
        self._up_rows: list[list[int]] = self._up.tolist()

    def _row_leg(self, i: int, j: int, j2: int) -> list[int]:
        """Edges walking along row ``i`` from column ``j`` to ``j2``."""
        if j2 > j:
            row = self._right_rows[i]
            return row[j:j2]
        row = self._left_rows[i]
        return [row[c] for c in range(j, j2, -1)]

    def _col_leg(self, i: int, i2: int, j: int) -> list[int]:
        """Edges walking along column ``j`` from row ``i`` to ``i2``."""
        if i2 > i:
            grid = self._down_rows
            return [grid[r][j] for r in range(i, i2)]
        grid = self._up_rows
        return [grid[r][j] for r in range(i, i2, -1)]

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Greedy path from ``src`` to ``dst``; empty when they coincide."""
        if src == dst:
            return ()
        i1, j1 = self.mesh.node_coords(src)
        i2, j2 = self.mesh.node_coords(dst)
        if self.column_first:
            first = self._col_leg(i1, i2, j1) if i1 != i2 else []
            second = self._row_leg(i2, j1, j2) if j1 != j2 else []
        else:
            first = self._row_leg(i1, j1, j2) if j1 != j2 else []
            second = self._col_leg(i1, i2, j2) if i1 != i2 else []
        return tuple(first + second)


class GreedyKDRouter(BaseRouter):
    """Dimension-order greedy routing on a :class:`KDArray`.

    Dimensions are corrected in the order given by ``dimension_order``
    (default ``0, 1, ..., k-1``). On a 2-D array with order ``(1, 0)`` this
    coincides with the paper's row-first scheme (dimension 1 is the column
    coordinate, adjusted while moving along the row).
    """

    def __init__(self, array: KDArray, dimension_order: tuple[int, ...] | None = None) -> None:
        super().__init__(array)
        self.array = array
        k = len(array.dims)
        order = tuple(range(k)) if dimension_order is None else tuple(dimension_order)
        if sorted(order) != list(range(k)):
            raise ValueError(f"dimension_order must permute 0..{k - 1}, got {order}")
        self.dimension_order = order

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Correct each dimension fully, in canonical order."""
        if src == dst:
            return ()
        coord = list(self.array.node_coords(src))
        target = self.array.node_coords(dst)
        at = src
        out: list[int] = []
        for axis in self.dimension_order:
            step = self.array.strides[axis]
            while coord[axis] < target[axis]:
                nxt = at + step
                out.append(self.array.edge_id(at, nxt))
                at = nxt
                coord[axis] += 1
            while coord[axis] > target[axis]:
                nxt = at - step
                out.append(self.array.edge_id(at, nxt))
                at = nxt
                coord[axis] -= 1
        return tuple(out)
