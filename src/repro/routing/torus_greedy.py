"""Greedy routing on the torus (Section 6 open-problem topology).

Row-first greedy with wraparound: along each dimension the packet takes the
shorter way around the ring (ties broken toward the positive direction, a
fixed deterministic rule so the scheme stays oblivious). The paper observes
that the torus contains directed rings, hence cannot be layered and the
Theorem 1 upper bound does not apply — but the lower-bound machinery
(Theorems 10/14) still does, and simulation works fine.
"""

from __future__ import annotations

from repro.routing.base import BaseRouter
from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP
from repro.topology.torus import Torus


def ring_step(frm: int, to: int, size: int) -> int:
    """Signed step (+1 forward / -1 backward / 0) for the shorter ring way.

    Forward means increasing coordinate mod ``size``; ties (exactly half
    way around an even ring) resolve to forward.
    """
    if frm == to:
        return 0
    forward = (to - frm) % size
    backward = (frm - to) % size
    return 1 if forward <= backward else -1


class GreedyTorusRouter(BaseRouter):
    """Shortest-way dimension-order greedy routing on a :class:`Torus`."""

    def __init__(self, torus: Torus, *, column_first: bool = False) -> None:
        super().__init__(torus)
        self.torus = torus
        self.column_first = column_first

    def _leg(self, i: int, j: int, target: int, *, horizontal: bool) -> tuple[list[int], int, int]:
        """Walk one dimension to ``target``; returns (edges, new_i, new_j)."""
        t = self.torus
        size = t.cols if horizontal else t.rows
        cur = j if horizontal else i
        step = ring_step(cur, target, size)
        edges: list[int] = []
        while cur != target:
            if horizontal:
                direction = RIGHT if step == 1 else LEFT
                edges.append(t.directed_edge_id(i, cur, direction))
            else:
                direction = DOWN if step == 1 else UP
                edges.append(t.directed_edge_id(cur, j, direction))
            cur = (cur + step) % size
        if horizontal:
            return edges, i, cur
        return edges, cur, j

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Greedy wraparound path; empty when ``src == dst``."""
        if src == dst:
            return ()
        i1, j1 = self.torus.node_coords(src)
        i2, j2 = self.torus.node_coords(dst)
        if self.column_first:
            first, i1, j1 = self._leg(i1, j1, i2, horizontal=False)
            second, _, _ = self._leg(i1, j1, j2, horizontal=True)
        else:
            first, i1, j1 = self._leg(i1, j1, j2, horizontal=True)
            second, _, _ = self._leg(i1, j1, i2, horizontal=False)
        return tuple(first + second)
