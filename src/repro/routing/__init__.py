"""Routing schemes and destination distributions.

A :class:`~repro.routing.base.Router` turns a ``(source, destination)``
pair into a sequence of edge ids; a
:class:`~repro.routing.destinations.DestinationDistribution` says how a
packet born at a source picks its destination. The two are independent
axes: the paper's standard model is :class:`GreedyArrayRouter` (row first,
then column) with :class:`UniformDestinations`, and every extension swaps
exactly one of the two.
"""

from repro.routing.base import Router, TabulatedRouter
from repro.routing.greedy import GreedyArrayRouter, GreedyKDRouter
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.butterfly_routing import ButterflyRouter
from repro.routing.destinations import (
    DestinationDistribution,
    UniformDestinations,
    MatrixDestinations,
    PBiasedHypercubeDestinations,
    GeometricStopDestinations,
    HotSpotDestinations,
    PermutationDestinations,
)
from repro.routing.markov_chain import LineStopChain

__all__ = [
    "Router",
    "TabulatedRouter",
    "GreedyArrayRouter",
    "GreedyKDRouter",
    "RandomizedGreedyArrayRouter",
    "GreedyTorusRouter",
    "GreedyHypercubeRouter",
    "ButterflyRouter",
    "DestinationDistribution",
    "UniformDestinations",
    "MatrixDestinations",
    "PBiasedHypercubeDestinations",
    "GeometricStopDestinations",
    "HotSpotDestinations",
    "PermutationDestinations",
    "LineStopChain",
]
