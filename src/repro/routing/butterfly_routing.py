"""Unique-path routing on the butterfly.

In a d-level butterfly a packet entering at ``(0, r)`` destined for
``(d, r')`` has exactly one path: at level ``l`` it takes the cross edge
iff bit ``l`` of ``r XOR r'`` is set. Every packet crosses exactly ``d``
edges, which is why the copy bound (Theorem 10) gives a ``2d`` gap here —
the paper notes this matches Stamoulis and Tsitsiklis.

Sources must be level-0 nodes and destinations level-d nodes; routing any
other pair is a usage error and raises ``ValueError``.
"""

from __future__ import annotations

from repro.routing.base import BaseRouter
from repro.topology.butterfly import Butterfly


class ButterflyRouter(BaseRouter):
    """The unique level-by-level butterfly path.

    Examples
    --------
    >>> b = Butterfly(2)
    >>> r = ButterflyRouter(b)
    >>> len(r.path(b.node_id(0, 0), b.node_id(2, 3)))
    2
    """

    def __init__(self, butterfly: Butterfly) -> None:
        super().__init__(butterfly)
        self.butterfly = butterfly

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """The unique path from an input (level 0) to an output (level d)."""
        b = self.butterfly
        level_s, row_s = b.node_coords(src)
        level_d, row_d = b.node_coords(dst)
        if level_s != 0:
            raise ValueError(f"butterfly sources must be level-0 nodes, got level {level_s}")
        if level_d != b.d:
            raise ValueError(f"butterfly destinations must be level-{b.d} nodes, got level {level_d}")
        out: list[int] = []
        row = row_s
        need = row_s ^ row_d
        for level in range(b.d):
            if (need >> level) & 1:
                out.append(b.cross_edge(level, row))
                row ^= 1 << level
            else:
                out.append(b.straight_edge(level, row))
        return tuple(out)
