"""Router protocol and shared routing machinery.

A router is anything that maps a ``(src, dst)`` node pair to a tuple of
edge ids. Deterministic (oblivious) routers implement :meth:`Router.path`;
randomized routers additionally take the per-packet RNG through
:meth:`Router.sample_path`, whose default delegates to the deterministic
path. The simulator always calls :meth:`sample_path`, so deterministic and
randomized schemes share one code path.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.topology.base import Topology


@runtime_checkable
class Router(Protocol):
    """Protocol for routing schemes."""

    topology: Topology

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Edge-id path from ``src`` to ``dst`` (empty if ``src == dst``).

        For randomized routers this must return a *canonical* path (used by
        analysis); per-packet randomness goes through :meth:`sample_path`.
        """
        ...

    def sample_path(self, src: int, dst: int, rng: np.random.Generator) -> tuple[int, ...]:
        """Sample a path for one packet; deterministic routers ignore ``rng``."""
        ...


class BaseRouter:
    """Shared implementation: deterministic routers only override ``path``."""

    topology: Topology

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def path(self, src: int, dst: int) -> tuple[int, ...]:  # pragma: no cover
        raise NotImplementedError

    def sample_path(
        self, src: int, dst: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        """Default: the deterministic path, independent of ``rng``."""
        return self.path(src, dst)

    # Convenience used by tests and the analysis layer --------------------
    def path_length(self, src: int, dst: int) -> int:
        """Number of edges on the canonical path."""
        return len(self.path(src, dst))

    def all_pairs_paths(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """Materialise every (src, dst) canonical path (small networks only)."""
        n = self.topology.num_nodes
        return {(s, t): self.path(s, t) for s in range(n) for t in range(n)}


class TabulatedRouter(BaseRouter):
    """A router backed by an explicit path table.

    Useful for adversarial or hand-constructed schemes in tests (e.g. a
    deliberately non-layered labelling witness) and for freezing a
    randomized router's sampled choices.

    Parameters
    ----------
    topology:
        The network the paths live on.
    table:
        Mapping ``(src, dst) -> path``; missing pairs raise ``KeyError``.
        Every path is validated against the topology at construction.
    """

    def __init__(
        self,
        topology: Topology,
        table: dict[tuple[int, int], Sequence[int]],
    ) -> None:
        super().__init__(topology)
        frozen: dict[tuple[int, int], tuple[int, ...]] = {}
        for (src, dst), path in table.items():
            p = tuple(int(e) for e in path)
            topology.validate_path(p, src, dst)
            frozen[(src, dst)] = p
        self._table = frozen

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        return self._table[(src, dst)]
