"""Lemma 3: a Markov chain realising uniform destinations on a line.

The paper proves greedy routing with uniform destinations is Markovian by
exhibiting a chain that walks a packet along a linear array of ``n``
elements and stops it uniformly at every position: entering at node ``k``
(0-based here; the paper is 1-based),

* it stays put with probability ``1/n``,
* otherwise moves left with probability ``k/n`` or right with probability
  ``(n-1-k)/n``;
* while moving left, after each move it stops at node ``j`` with
  probability ``1/(j+1)``; while moving right, it stops at node ``j`` with
  probability ``1/(n-j)``.

A telescoping product shows every node is reached with probability exactly
``1/n`` (Lemma 3); :meth:`LineStopChain.destination_pmf` computes the
distribution exactly so the tests can verify it, and :meth:`sample` draws
from the chain so the simulator can route with it.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_side

#: Movement states of the chain.
STOPPED, MOVING_LEFT, MOVING_RIGHT = "stopped", "left", "right"


class LineStopChain:
    """The Lemma 3 stopping chain on a line of ``n`` nodes.

    Parameters
    ----------
    n:
        Number of positions on the line (at least 2).

    Examples
    --------
    >>> chain = LineStopChain(4)
    >>> chain.destination_pmf(2)
    array([0.25, 0.25, 0.25, 0.25])
    """

    def __init__(self, n: int) -> None:
        self.n = check_side(n, "n")

    # ------------------------------------------------------------------
    # Chain primitives
    # ------------------------------------------------------------------
    def initial_distribution(self, k: int) -> dict[str, float]:
        """P(stay), P(start moving left), P(start moving right) from ``k``."""
        n = self.n
        if not 0 <= k < n:
            raise ValueError(f"entry node {k} outside 0..{n - 1}")
        return {
            STOPPED: 1.0 / n,
            MOVING_LEFT: k / n,
            MOVING_RIGHT: (n - 1 - k) / n,
        }

    def stop_probability(self, j: int, direction: str) -> float:
        """Probability of stopping at node ``j`` when arriving in ``direction``."""
        n = self.n
        if not 0 <= j < n:
            raise ValueError(f"node {j} outside 0..{n - 1}")
        if direction == MOVING_LEFT:
            return 1.0 / (j + 1)  # forced stop at j == 0
        if direction == MOVING_RIGHT:
            return 1.0 / (n - j)  # forced stop at j == n-1
        raise ValueError(f"direction must be left/right, got {direction!r}")

    # ------------------------------------------------------------------
    # Exact distribution and sampling
    # ------------------------------------------------------------------
    def destination_pmf(self, k: int) -> np.ndarray:
        """Exact stopping distribution from entry node ``k`` (uniform, Lemma 3)."""
        n = self.n
        pmf = np.zeros(n)
        init = self.initial_distribution(k)
        pmf[k] += init[STOPPED]
        # Leftward sweep.
        mass = init[MOVING_LEFT]
        j = k - 1
        while j >= 0 and mass > 0:
            p = self.stop_probability(j, MOVING_LEFT)
            pmf[j] += mass * p
            mass *= 1.0 - p
            j -= 1
        # Rightward sweep.
        mass = init[MOVING_RIGHT]
        j = k + 1
        while j < n and mass > 0:
            p = self.stop_probability(j, MOVING_RIGHT)
            pmf[j] += mass * p
            mass *= 1.0 - p
            j += 1
        return pmf

    def sample(self, k: int, rng: np.random.Generator) -> int:
        """Sample a stopping position for a packet entering at ``k``."""
        n = self.n
        init = self.initial_distribution(k)
        u = rng.random()
        if u < init[STOPPED]:
            return k
        moving_left = u < init[STOPPED] + init[MOVING_LEFT]
        j = k - 1 if moving_left else k + 1
        direction = MOVING_LEFT if moving_left else MOVING_RIGHT
        while True:
            if rng.random() < self.stop_probability(j, direction):
                return j
            j += -1 if moving_left else 1
            if not 0 <= j < n:  # unreachable: borders force a stop
                raise AssertionError("chain walked off the line")

    def sample_route(self, k: int, rng: np.random.Generator) -> list[int]:
        """Sample the full node trajectory (entry node included)."""
        dst = self.sample(k, rng)
        step = 1 if dst >= k else -1
        return list(range(k, dst + step, step)) if dst != k else [k]
