"""Canonical-order greedy routing on the hypercube (Section 4.5).

"Under greedy routing, the system can be thought of as a Markovian network
where each packet considers each dimension in some canonical order and
crosses an edge dimension with probability p." We fix the canonical order
to dimensions ``0, 1, ..., d-1``: the packet corrects every differing bit
in increasing bit order. This layers the hypercube (label an edge by its
dimension) and makes the routing Markovian, exactly the setting of
Stamoulis-Tsitsiklis that the paper's Section 4.5 improves upon.
"""

from __future__ import annotations

from repro.routing.base import BaseRouter
from repro.topology.hypercube import Hypercube


class GreedyHypercubeRouter(BaseRouter):
    """Fix differing bits in increasing dimension order.

    Examples
    --------
    >>> cube = Hypercube(3)
    >>> router = GreedyHypercubeRouter(cube)
    >>> [cube.edge_endpoints(e) for e in router.path(0b000, 0b101)]
    [(0, 1), (1, 5)]
    """

    def __init__(self, cube: Hypercube) -> None:
        super().__init__(cube)
        self.cube = cube

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Cross each differing dimension once, lowest dimension first."""
        if src == dst:
            return ()
        at = int(src)
        diff = at ^ int(dst)
        out: list[int] = []
        k = 0
        while diff:
            if diff & 1:
                out.append(self.cube.dimension_edge(at, k))
                at ^= 1 << k
            diff >>= 1
            k += 1
        return tuple(out)
