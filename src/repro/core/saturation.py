"""Saturated edges and the Theorem 14 constants (Definition 13, Figure 2).

An edge is *saturated* when ``lam_e / phi_e`` equals the network load
``rho``. On the standard array the saturated edges are the middle ones:

* even n — the ``4n`` edges crossing the single central row/column
  boundary (``i = n/2`` in the Theorem 6 rate ``(lam/n) i(n-i)``);
* odd n — the ``8n`` edges at the two boundaries ``i = (n-1)/2`` and
  ``i = (n+1)/2``, which tie for the maximal rate.

A greedy route crosses at most ``s = 2`` saturated edges for even n (one
horizontal, one vertical) and up to ``s = 4`` for odd n — the paper's
Figure 2. The Markovian refinement replaces ``s`` by
``s-bar = max_e s_e``, the worst-case expected number of *remaining*
saturated services for a packet queued at a saturated edge: exactly
``3/2`` for even n, and below 3 (tending to 3) for odd n. Theorem 14 then
gives the headline constant-factor gap: 3 (even) / at most 6 (odd) between
the upper and lower bounds as ``rho -> 1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.destinations import UniformDestinations
from repro.topology.array_mesh import ArrayMesh
from repro.util.validation import check_side


def saturated_edge_mask(
    edge_rates: np.ndarray,
    service_rates: np.ndarray | float = 1.0,
    *,
    rel_tol: float = 1e-9,
) -> np.ndarray:
    """Boolean mask of saturated edges: ``lam_e/phi_e`` within ``rel_tol``
    of the network load ``rho = max_e lam_e/phi_e``."""
    lam = np.asarray(edge_rates, dtype=float)
    phi = (
        np.full_like(lam, float(service_rates))
        if np.isscalar(service_rates)
        else np.asarray(service_rates, dtype=float)
    )
    if phi.shape != lam.shape:
        raise ValueError("service_rates must broadcast to edge_rates")
    loads = lam / phi
    rho = loads.max()
    if rho <= 0:
        raise ValueError("no traffic: all edge loads are zero")
    return loads >= rho * (1.0 - rel_tol)


def array_saturated_boundaries(n: int) -> list[int]:
    """1-based boundary indices ``i`` with maximal ``i(n-i)``.

    ``[n/2]`` for even n; ``[(n-1)/2, (n+1)/2]`` for odd n.
    """
    check_side(n, "n")
    if n % 2 == 0:
        return [n // 2]
    return [(n - 1) // 2, (n + 1) // 2]


def array_saturated_count(n: int) -> int:
    """Number of saturated edges on the n-by-n array: 4n even / 8n odd."""
    return 4 * n * len(array_saturated_boundaries(n))


def max_saturated_on_route(
    router: Router,
    mask: np.ndarray,
    *,
    source_nodes: Sequence[int] | None = None,
    dest_nodes: Sequence[int] | None = None,
) -> int:
    """Theorem 14's ``s``: the most saturated edges any route crosses."""
    topo = router.topology
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    dests = list(range(topo.num_nodes)) if dest_nodes is None else list(dest_nodes)
    best = 0
    for src in sources:
        for dst in dests:
            if dst == src:
                continue
            count = sum(1 for e in router.path(src, dst) if mask[e])
            best = max(best, count)
    return best


def array_max_saturated_on_route(n: int) -> int:
    """Closed form for ``s`` on the array: 2 for even n, 4 for odd n."""
    check_side(n, "n")
    return 2 if n % 2 == 0 else 4


def saturated_remaining_expectations(
    router: Router,
    destinations: DestinationDistribution,
    mask: np.ndarray,
    *,
    source_nodes: Sequence[int] | None = None,
    source_weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Exact ``s_e`` for every saturated edge (NaN elsewhere / uncrossed).

    ``s_e`` is the expected number of remaining *saturated* services
    (including the one at ``e``) over the traffic mix crossing saturated
    edge ``e`` (Definition 13).
    """
    topo = router.topology
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    if source_weights is None:
        weights = [1.0] * len(sources)
    else:
        weights = [float(w) for w in source_weights]
        if len(weights) != len(sources):
            raise ValueError("source_weights must match source_nodes in length")
    numer = np.zeros(topo.num_edges)
    denom = np.zeros(topo.num_edges)
    for src, w_src in zip(sources, weights):
        if w_src == 0.0:
            continue
        pmf = destinations.pmf(src)
        for dst in range(topo.num_nodes):
            w = w_src * pmf[dst]
            if w == 0.0 or dst == src:
                continue
            path = router.path(src, dst)
            sat_positions = [pos for pos, e in enumerate(path) if mask[e]]
            total_sat = len(sat_positions)
            for rank, pos in enumerate(sat_positions):
                e = path[pos]
                numer[e] += w * (total_sat - rank)  # remaining incl. this one
                denom[e] += w
    out = np.full(topo.num_edges, np.nan)
    crossed = (denom > 0) & np.asarray(mask, dtype=bool)
    out[crossed] = numer[crossed] / denom[crossed]
    return out


def s_bar(n: int) -> float:
    """``s-bar`` for the n-by-n array under greedy/uniform routing.

    Even n returns the closed form ``3/2``. Odd n is computed exactly by
    enumeration (it approaches 3 from below as ``n`` grows; the paper's
    Theorem 14 discussion gives ``s-bar < 3``).
    """
    check_side(n, "n")
    if n % 2 == 0:
        return 1.5
    return s_bar_exact(n)


def s_bar_exact(n: int) -> float:
    """``s-bar`` by exact enumeration (any parity; used to test the even
    closed form and to evaluate odd n)."""
    mesh = ArrayMesh(n)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(mesh.num_nodes)
    # Any positive lam gives the same mask; use the Theorem 6 profile.
    from repro.core.rates import array_edge_rates  # local import: avoid cycle

    rates = array_edge_rates(mesh, 1.0)
    mask = saturated_edge_mask(rates)
    s_e = saturated_remaining_expectations(router, dests, mask)
    finite = s_e[np.isfinite(s_e)]
    if finite.size == 0:  # pragma: no cover - cannot happen for n >= 2
        raise AssertionError("no saturated edge carries traffic")
    return float(finite.max())
