"""The paper's primary contribution: bounds on greedy routing delay.

Modules map to the paper's sections:

=========================  =====================================================
module                     paper content
=========================  =====================================================
``rates``                  Theorem 6 edge arrival rates; generic traffic solver
``distances``              n-bar, n-bar-2, route-length statistics (Section 2.1)
``upper_bound``            Theorems 5 and 7 (PS/Jackson upper bound)
``md1_approx``             Section 4.2 M/D/1 independence approximation, Lemma 9
``lower_bounds``           Theorems 8, 10, 12, 14 and the gap-ratio claims
``remaining_distance``     d_e / d-bar (Definition 11) for array and hypercube
``saturation``             saturated edges, s and s-bar (Definition 13, Fig. 2)
``layering``               Lemma 2 labelling, generic validator, torus obstruction
``optimization``           Theorem 15 optimal rates; 4/n vs 6/(n+1) stability
``hypercube_bounds``       Section 4.5 hypercube/butterfly gap analysis
``kd_bounds``              Section 5.2 higher-dimensional arrays
``generic_bounds``         topology-generic bound assembly (torus etc.)
``rectangular``            rectangular meshes (Section 2.1's remark)
``stability``              capacity predicates per topology and parity
=========================  =====================================================
"""

from repro.core.rates import (
    array_edge_rate,
    array_edge_rates,
    edge_rates_from_routing,
    lambda_for_load,
    load_for_lambda,
    max_edge_rate,
)
from repro.core.distances import (
    mean_distance,
    mean_distance_excluding_self,
    mean_route_length,
)
from repro.core.upper_bound import (
    delay_upper_bound,
    delay_upper_bound_generic,
    number_upper_bound,
)
from repro.core.md1_approx import (
    delay_md1_estimate,
    md1_network_number,
    lemma9_ratio,
)
from repro.core.lower_bounds import (
    st_lower_bound,
    trivial_lower_bound,
    copy_lower_bound,
    markov_lower_bound,
    saturated_lower_bound,
    best_lower_bound,
    asymptotic_gap,
    BoundSummary,
    bound_summary,
)
from repro.core.remaining_distance import (
    array_max_expected_remaining_distance,
    expected_remaining_distances,
    hypercube_max_expected_remaining_distance,
)
from repro.core.saturation import (
    saturated_edge_mask,
    max_saturated_on_route,
    saturated_remaining_expectations,
    s_bar,
)
from repro.core.layering import (
    array_layering_labels,
    verify_layering,
    find_layering_obstruction,
)
from repro.core.optimization import (
    optimal_service_rates,
    optimal_mean_number,
    optimal_delay,
    budget_surplus,
    standard_capacity,
    optimal_capacity,
    discrete_service_rates,
)
from repro.core.hypercube_bounds import (
    hypercube_edge_rate,
    hypercube_delay_upper_bound,
    hypercube_gap_markov,
    hypercube_gap_copy,
    butterfly_gap,
    st_limit_bracket,
)
from repro.core.kd_bounds import (
    kd_asymptotic_gap_even,
    kd_capacity,
    kd_delay_upper_bound,
    kd_edge_rates,
    kd_lambda_for_load,
    kd_max_expected_remaining_distance,
    kd_mean_distance,
    kd_s_bar_even,
)
from repro.core.generic_bounds import GenericBounds, generic_bounds
from repro.core.rectangular import (
    rect_capacity,
    rect_delay_upper_bound,
    rect_lambda_for_load,
    rect_md1_estimate,
    rect_mean_distance,
    squarest_shape,
)
from repro.core.stability import is_stable, capacity

__all__ = [
    "array_edge_rate",
    "array_edge_rates",
    "edge_rates_from_routing",
    "lambda_for_load",
    "load_for_lambda",
    "max_edge_rate",
    "mean_distance",
    "mean_distance_excluding_self",
    "mean_route_length",
    "delay_upper_bound",
    "delay_upper_bound_generic",
    "number_upper_bound",
    "delay_md1_estimate",
    "md1_network_number",
    "lemma9_ratio",
    "st_lower_bound",
    "trivial_lower_bound",
    "copy_lower_bound",
    "markov_lower_bound",
    "saturated_lower_bound",
    "best_lower_bound",
    "asymptotic_gap",
    "BoundSummary",
    "bound_summary",
    "array_max_expected_remaining_distance",
    "expected_remaining_distances",
    "hypercube_max_expected_remaining_distance",
    "saturated_edge_mask",
    "max_saturated_on_route",
    "saturated_remaining_expectations",
    "s_bar",
    "array_layering_labels",
    "verify_layering",
    "find_layering_obstruction",
    "optimal_service_rates",
    "optimal_mean_number",
    "optimal_delay",
    "budget_surplus",
    "standard_capacity",
    "optimal_capacity",
    "discrete_service_rates",
    "hypercube_edge_rate",
    "hypercube_delay_upper_bound",
    "hypercube_gap_markov",
    "hypercube_gap_copy",
    "butterfly_gap",
    "st_limit_bracket",
    "is_stable",
    "capacity",
    "kd_edge_rates",
    "kd_capacity",
    "kd_lambda_for_load",
    "kd_mean_distance",
    "kd_delay_upper_bound",
    "kd_max_expected_remaining_distance",
    "kd_s_bar_even",
    "kd_asymptotic_gap_even",
    "GenericBounds",
    "generic_bounds",
    "rect_capacity",
    "rect_delay_upper_bound",
    "rect_lambda_for_load",
    "rect_md1_estimate",
    "rect_mean_distance",
    "squarest_shape",
]
