"""Lower bounds on the average delay (Theorems 8, 10, 12, 14).

Four bounds, in increasing sophistication, all returned in one
:class:`BoundSummary` next to the upper bound and the M/D/1 estimate:

* **trivial** — a packet pays one unit per edge, so ``T >= n-bar``.
* **Stamoulis–Tsitsiklis** (Theorem 8) — single-cut bounds
  ``T >= f (1 + rho/(2n(1-rho)))`` for any scheme and
  ``T >= f (1 + rho/(2(1-rho)))`` for oblivious schemes, with ``f = 1/2``
  (even n) or ``1/2 - 1/n^2`` (odd n).
* **copy bound** (Theorem 10) — comparing with the "rushed" system that
  receives a copy of each packet at every queue it will visit:
  ``E[N-bar] <= d E[N]`` with ``d`` the maximum route length (``2(n-1)``
  on the array), where ``N-bar`` is the total across independent M/D/1
  queues with matched rates. Via Lemma 9 + Little's Law the resulting
  delay bound sits within ``4n - 4`` of the upper bound.
* **Markovian bound** (Theorem 12) — ``d`` improves to the maximum
  expected remaining distance ``d-bar = n - 1/2``; gap ``2n - 1``.
* **saturated bound** (Theorem 14) — as ``rho -> 1`` only saturated edges
  matter; with ``s-bar`` (3/2 even / <3 odd) the gap becomes the paper's
  headline constant: **3 for even n, at most 6 for odd n**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distances import mean_distance
from repro.core.md1_approx import md1_network_number
from repro.core.rates import load_for_lambda, total_external_rate
from repro.core.remaining_distance import array_max_expected_remaining_distance
from repro.core.saturation import s_bar, saturated_edge_mask
from repro.util.validation import check_load, check_positive, check_side


def _st_prefactor(n: int) -> float:
    """Theorem 8's ``f``: 1/2 for even n, 1/2 - 1/n^2 for odd n."""
    return 0.5 if n % 2 == 0 else 0.5 - 1.0 / (n * n)


def st_lower_bound(n: int, rho: float, *, oblivious: bool = True) -> float:
    """Theorem 8 (Stamoulis–Tsitsiklis style) lower bound on T.

    Parameters
    ----------
    n:
        Array side.
    rho:
        Network load in [0, 1).
    oblivious:
        True (default) gives the stronger bound valid for oblivious
        schemes — greedy routing is oblivious; False gives the weaker
        bound valid for *any* routing scheme.
    """
    check_side(n, "n")
    check_load(rho, "rho")
    f = _st_prefactor(n)
    if oblivious:
        return f * (1.0 + rho / (2.0 * (1.0 - rho)))
    return f * (1.0 + rho / (2.0 * n * (1.0 - rho)))


def trivial_lower_bound(n: int) -> float:
    """``T >= n-bar``: unit delay per edge crossed."""
    return mean_distance(n)


def _array_md1_total(n: int, lam: float) -> float:
    """``E[N-bar]``: independent-M/D/1 total with Theorem 6 rates."""
    i = np.arange(1, n)
    lam_e = (lam / n) * i * (n - i)
    rates = np.repeat(lam_e, 4 * n)  # 4 direction blocks x n edges per i
    return md1_network_number(rates, variant="pk")


def copy_lower_bound(n: int, lam: float) -> float:
    """Theorem 10: ``T >= E[N-bar] / (d * lam n^2)`` with ``d = 2(n-1)``."""
    check_side(n, "n")
    check_positive(lam, "lam")
    d = 2 * (n - 1)
    return _array_md1_total(n, lam) / (d * total_external_rate(n, lam))


def markov_lower_bound(n: int, lam: float) -> float:
    """Theorem 12: ``d`` improved to ``d-bar = n - 1/2``."""
    check_side(n, "n")
    check_positive(lam, "lam")
    d_bar = array_max_expected_remaining_distance(n)
    return _array_md1_total(n, lam) / (d_bar * total_external_rate(n, lam))


def saturated_lower_bound(n: int, lam: float, *, markovian: bool = True) -> float:
    """Theorem 14: only saturated queues counted, divided by s-bar (or s).

    The comparison system keeps one copy of a packet per *saturated* queue
    it will cross; unsaturated edges are assumed delay-free, which only
    lowers the bound. Dividing the saturated-only independent-M/D/1 total
    by ``s-bar`` (Markovian networks) or ``s`` (general) and the external
    rate gives a bound whose separation from Theorem 7 stays constant as
    ``rho -> 1``.

    Parameters
    ----------
    n, lam:
        Array side and per-node rate.
    markovian:
        Use ``s-bar`` (default, valid for the Markovian greedy array);
        False uses the cruder route-count constant ``s`` (2 even / 4 odd).
    """
    check_side(n, "n")
    check_positive(lam, "lam")
    i = np.arange(1, n)
    lam_e = (lam / n) * i * (n - i)
    rates = np.repeat(lam_e, 4 * n)
    mask = saturated_edge_mask(rates)
    sat_total = md1_network_number(rates[mask], variant="pk")
    if markovian:
        divisor = s_bar(n)
    else:
        divisor = 2.0 if n % 2 == 0 else 4.0
    return sat_total / (divisor * total_external_rate(n, lam))


def best_lower_bound(n: int, lam: float) -> float:
    """The maximum of all applicable lower bounds at this operating point."""
    rho = load_for_lambda(n, lam)
    return max(
        trivial_lower_bound(n),
        st_lower_bound(n, rho, oblivious=True),
        copy_lower_bound(n, lam),
        markov_lower_bound(n, lam),
        saturated_lower_bound(n, lam),
    )


def asymptotic_gap(n: int) -> float:
    """The paper's headline constant: ``2 * s-bar`` — the factor separating
    the Theorem 7 upper bound from the Theorem 14 lower bound as
    ``rho -> 1``. Exactly 3 for even n; below 6 for odd n."""
    check_side(n, "n")
    return 2.0 * s_bar(n)


@dataclass(frozen=True)
class BoundSummary:
    """Every bound of the paper evaluated at one operating point.

    Attributes mirror the theorems; ``upper`` is Theorem 7, ``estimate``
    the Section 4.2 approximation (textbook P-K variant), and the
    ``lower_*`` fields Theorems 8/10/12/14 plus the trivial bound.
    """

    n: int
    lam: float
    rho: float
    upper: float
    estimate: float
    lower_trivial: float
    lower_st_any: float
    lower_st_oblivious: float
    lower_copy: float
    lower_markov: float
    lower_saturated: float

    @property
    def lower_best(self) -> float:
        """Best (largest) lower bound."""
        return max(
            self.lower_trivial,
            self.lower_st_any,
            self.lower_st_oblivious,
            self.lower_copy,
            self.lower_markov,
            self.lower_saturated,
        )

    @property
    def gap(self) -> float:
        """Upper bound over best lower bound."""
        return self.upper / self.lower_best

    def is_consistent(self) -> bool:
        """Every lower bound must sit below the upper bound."""
        return self.lower_best <= self.upper * (1 + 1e-12)


def bound_summary(n: int, lam: float) -> BoundSummary:
    """Evaluate every bound of the paper at ``(n, lam)``."""
    from repro.core.md1_approx import delay_md1_estimate
    from repro.core.upper_bound import delay_upper_bound

    check_side(n, "n")
    check_positive(lam, "lam")
    rho = load_for_lambda(n, lam)
    check_load(rho, "rho")
    return BoundSummary(
        n=n,
        lam=lam,
        rho=rho,
        upper=delay_upper_bound(n, lam),
        estimate=delay_md1_estimate(n, lam, variant="pk"),
        lower_trivial=trivial_lower_bound(n),
        lower_st_any=st_lower_bound(n, rho, oblivious=False),
        lower_st_oblivious=st_lower_bound(n, rho, oblivious=True),
        lower_copy=copy_lower_bound(n, lam),
        lower_markov=markov_lower_bound(n, lam),
        lower_saturated=saturated_lower_bound(n, lam),
    )
