"""Expected remaining distance (Definition 11) — the Theorem 12 constant.

For each queue ``e`` of a Markovian network, ``d_e`` is the expected number
of distinct services a packet queued at ``e`` still needs, *including* the
service at ``e`` itself; ``d-bar = max_e d_e``. Theorem 12 divides the
independent-M/D/1 packet count by ``d-bar`` to lower-bound the true count.

Closed forms implemented:

* array: ``d-bar = n - 1/2``, attained by a packet at node (1,1) queued on
  the rightward edge (paper Section 4.3);
* hypercube with p-biased destinations: ``d-bar = 1 + p(d - 1)``, attained
  by a packet queued to cross the first dimension (Section 4.5).

:func:`expected_remaining_distances` computes ``d_e`` exactly for *any*
router/destination law by conditional expectation over the traffic mix
crossing each edge, which is how the tests validate both closed forms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.util.validation import check_probability, check_side


def expected_remaining_distances(
    router: Router,
    destinations: DestinationDistribution,
    *,
    source_nodes: Sequence[int] | None = None,
    source_weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Exact ``d_e`` for every edge (NaN for edges no route crosses).

    ``d_e`` is the mean, over the (src, dst) traffic mix whose canonical
    route crosses ``e``, of the number of services from ``e`` onward:
    ``len(path) - position(e)``.
    """
    topo = router.topology
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    if source_weights is None:
        weights = [1.0] * len(sources)
    else:
        weights = [float(w) for w in source_weights]
        if len(weights) != len(sources):
            raise ValueError("source_weights must match source_nodes in length")
    numer = np.zeros(topo.num_edges)
    denom = np.zeros(topo.num_edges)
    for src, w_src in zip(sources, weights):
        if w_src == 0.0:
            continue
        pmf = destinations.pmf(src)
        for dst in range(topo.num_nodes):
            w = w_src * pmf[dst]
            if w == 0.0 or dst == src:
                continue
            path = router.path(src, dst)
            length = len(path)
            for pos, e in enumerate(path):
                numer[e] += w * (length - pos)
                denom[e] += w
    out = np.full(topo.num_edges, np.nan)
    crossed = denom > 0
    out[crossed] = numer[crossed] / denom[crossed]
    return out


def max_expected_remaining_distance(
    router: Router,
    destinations: DestinationDistribution,
    **kwargs,
) -> float:
    """``d-bar = max_e d_e`` by exact enumeration."""
    d_e = expected_remaining_distances(router, destinations, **kwargs)
    finite = d_e[np.isfinite(d_e)]
    if finite.size == 0:
        raise ValueError("no edge carries any traffic")
    return float(finite.max())


def array_max_expected_remaining_distance(n: int) -> float:
    """Closed form for the n-by-n array under greedy/uniform: ``n - 1/2``.

    A packet at the corner queued on the rightward edge has destination
    column uniform over the remaining ``n - 1`` columns (mean ``n/2`` row
    services) plus a uniform destination row (mean ``(n-1)/2`` column
    services).
    """
    check_side(n, "n")
    return n - 0.5


def hypercube_max_expected_remaining_distance(d: int, p: float = 0.5) -> float:
    """Closed form for the p-biased hypercube: ``1 + p(d - 1)``.

    A packet queued to cross the first dimension has that one service plus
    an independent ``Binomial(d-1, p)`` of later crossings (Section 4.5).
    """
    if not isinstance(d, int) or isinstance(d, bool) or d < 1:
        raise ValueError(f"dimension d must be an int >= 1, got {d!r}")
    check_probability(p, "p")
    return 1.0 + p * (d - 1)


def butterfly_remaining_distance(d: int) -> float:
    """On the butterfly every route has length d; a packet queued at level
    ``l`` has ``d - l`` services left, so ``d-bar = d`` (attained at level
    0). Theorem 12 therefore gives no improvement over Theorem 10 there."""
    if not isinstance(d, int) or isinstance(d, bool) or d < 1:
        raise ValueError(f"levels d must be an int >= 1, got {d!r}")
    return float(d)
