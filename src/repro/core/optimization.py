"""Optimal transmission-rate allocation under a budget (Section 5.1).

Theorem 15 (classical Kleinrock square-root assignment via Lagrange
multipliers): with per-queue cost ``d_j`` per unit of service rate and
total budget ``D > sum_j lam_j d_j``, the Jackson-network mean number is
minimised by

    phi_j = lam_j + sqrt(lam_j / d_j) * D_star / sum_k sqrt(lam_k d_k),
    D_star = D - sum_k lam_k d_k,

yielding ``N = (sum_k sqrt(lam_k d_k))^2 / D_star`` and, via Little's Law,
the optimal mean delay. Because the Jackson model upper-bounds the
constant-service model (Theorem 5), the optimally-allocated delay is an
upper bound for constant transmission too.

Headline corollary (reproduced by :mod:`repro.experiments.optimal_config`):
with unit costs and the standard array budget ``D = 4n(n-1)``, the system
stays stable for every ``lam < 6/(n+1)``, versus ``lam < 4/n`` for the
uniform unit-rate configuration (even n) — optimally spreading capacity
buys a factor ``(3/2) * n/(n+1)`` of extra admissible load.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive, check_side


def _validated(lams, costs):
    lam = np.asarray(lams, dtype=float)
    if lam.ndim != 1 or lam.size == 0:
        raise ValueError("lams must be a non-empty 1-D array")
    if np.any(lam < 0):
        raise ValueError("arrival rates must be non-negative")
    if np.isscalar(costs):
        d = np.full_like(lam, float(costs))
    else:
        d = np.asarray(costs, dtype=float)
        if d.shape != lam.shape:
            raise ValueError(f"costs shape {d.shape} != lams shape {lam.shape}")
    if np.any(d <= 0):
        raise ValueError("costs must be positive")
    return lam, d


def budget_surplus(lams, costs, budget: float) -> float:
    """``D_star = D - sum_j lam_j d_j`` — money left after bare stability."""
    lam, d = _validated(lams, costs)
    check_positive(budget, "budget")
    return float(budget - np.sum(lam * d))


def optimal_service_rates(lams, costs, budget: float) -> np.ndarray:
    """Theorem 15's optimal ``phi_j`` under ``sum_j d_j phi_j = D``.

    Raises
    ------
    ValueError
        If ``D_star <= 0`` (no allocation can stabilise the network).
    """
    lam, d = _validated(lams, costs)
    dstar = budget_surplus(lams, costs, budget)
    if dstar <= 0:
        raise ValueError(
            f"budget {budget} cannot stabilise the network: "
            f"D_star = {dstar} <= 0"
        )
    weight = np.sqrt(lam * d)
    denom = float(weight.sum())
    if denom == 0.0:
        raise ValueError("at least one queue must carry traffic")
    return lam + np.sqrt(lam / d) * dstar / denom


def optimal_mean_number(lams, costs, budget: float) -> float:
    """Minimal Jackson mean number: ``(sum_j sqrt(lam_j d_j))^2 / D_star``."""
    lam, d = _validated(lams, costs)
    dstar = budget_surplus(lams, costs, budget)
    if dstar <= 0:
        raise ValueError(f"D_star = {dstar} <= 0: unstabilisable budget")
    return float(np.sum(np.sqrt(lam * d)) ** 2 / dstar)


def optimal_delay(lams, costs, budget: float, total_external_rate: float) -> float:
    """Optimal mean delay via Little's Law (an upper bound for the
    constant-service model by Theorem 5)."""
    check_positive(total_external_rate, "total_external_rate")
    return optimal_mean_number(lams, costs, budget) / total_external_rate


def uniform_mean_number(lams, costs, budget: float) -> float:
    """Jackson mean number when the budget is spread *uniformly in rate*:
    every queue gets the same ``phi = D / sum_j d_j`` (the standard array
    is the special case phi = 1, D = 4n(n-1), unit costs). Baseline for
    the optimal-vs-standard comparison."""
    lam, d = _validated(lams, costs)
    check_positive(budget, "budget")
    phi = budget / float(d.sum())
    if np.any(lam >= phi):
        raise ValueError(
            f"uniform allocation phi = {phi} is unstable for max rate {lam.max()}"
        )
    return float(np.sum(lam / (phi - lam)))


def standard_capacity(n: int) -> float:
    """Largest admissible per-node rate of the unit-rate array:
    ``4/n`` (even n) or ``4n/(n^2-1)`` (odd n)."""
    check_side(n, "n")
    if n % 2 == 0:
        return 4.0 / n
    return 4.0 * n / (n * n - 1.0)


def optimal_capacity(n: int) -> float:
    """Largest admissible per-node rate with an optimally allocated budget
    ``D = 4n(n-1)``, unit costs: ``6/(n+1)``.

    Derivation: ``D_star = 4n(n-1) - sum_e lam_e`` and the sum of edge
    rates equals ``n-bar * lam * n^2`` (each packet contributes one arrival
    per edge crossed), so ``D_star > 0`` iff ``lam < 6/(n+1)``.
    """
    check_side(n, "n")
    return 6.0 / (n + 1.0)


def discrete_service_rates(
    lams,
    costs,
    budget: float,
    choices,
) -> np.ndarray:
    """Greedy rounding of Theorem 15 onto a finite rate menu (Section 5.1's
    closing remark: "one might instead wish to choose transmission rates
    from a finite set of possibilities ... it can provide a suitable first
    approximation").

    Strategy: start every queue at the smallest menu rate above its arrival
    rate (infeasible if none exists); then, while budget remains, repeatedly
    grant the upgrade with the best marginal decrease in Jackson mean number
    per unit cost. Heuristic, not optimal — mirrors the paper's framing.

    Parameters
    ----------
    choices:
        Sorted iterable of available service rates.

    Returns
    -------
    np.ndarray
        A feasible menu allocation with ``sum_j d_j phi_j <= budget``.
    """
    lam, d = _validated(lams, costs)
    menu = np.asarray(sorted(set(float(c) for c in choices)), dtype=float)
    if menu.size == 0 or np.any(menu <= 0):
        raise ValueError("choices must be a non-empty set of positive rates")
    # Minimal feasible assignment.
    idx = np.searchsorted(menu, lam, side="right")
    if np.any(idx >= menu.size):
        raise ValueError(
            "no menu rate strictly exceeds the largest arrival rate; "
            "the network cannot be stabilised from these choices"
        )
    phi = menu[idx]
    spend = float(np.sum(d * phi))
    if spend > budget:
        raise ValueError(
            f"minimal feasible menu assignment costs {spend} > budget {budget}"
        )
    # Greedy upgrades by marginal benefit per cost.
    while True:
        best_gain, best_j = 0.0, -1
        for j in range(lam.size):
            k = int(np.searchsorted(menu, phi[j], side="right"))
            if k >= menu.size:
                continue
            upgrade_cost = d[j] * (menu[k] - phi[j])
            if spend + upgrade_cost > budget or upgrade_cost <= 0:
                continue
            now = lam[j] / (phi[j] - lam[j]) if lam[j] > 0 else 0.0
            then = lam[j] / (menu[k] - lam[j]) if lam[j] > 0 else 0.0
            gain = (now - then) / upgrade_cost
            if gain > best_gain:
                best_gain, best_j = gain, j
        if best_j < 0:
            break
        k = int(np.searchsorted(menu, phi[best_j], side="right"))
        spend += d[best_j] * (menu[k] - phi[best_j])
        phi[best_j] = menu[k]
    return phi
