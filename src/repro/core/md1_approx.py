"""The Section 4.2 M/D/1 independence approximation (Table I's estimate).

Assume — heuristically — that in equilibrium every edge behaves as an
*independent* M/D/1 queue with the Theorem 6 arrival rate. Summing per-edge
mean numbers and applying Little's Law yields an estimate for T that
simulation shows is accurate at light load and an over-estimate at heavy
load for n >= 10 ("the dependence inherent in the network actually helps
performance").

Two variants
------------
``variant="paper"`` reproduces the journal's printed formula

    T ~ (4/(lam n)) sum_i  a_i [ (n - a_i)^2 + n^2 ] / ( 2 n^2 (n - a_i) ),
    a_i = lam i (n - i),

whose per-edge contribution works out to ``lam_e + lam_e^3/(2(1-lam_e))``
— the delay at an edge modelled as (unit service) + (mean number *waiting*),
dropping the residual-service term of the true M/D/1 wait. With the Table I
load convention ``lam = 4 rho/n`` this reproduces every printed estimate in
Table I to the last digit (verified in the test suite).

``variant="pk"`` uses the textbook Pollaczek-Khinchin M/D/1 mean number
``lam_e + lam_e^2/(2(1-lam_e))`` — the formula the paper's own Section 4.2
derivation states. It is 2-9% above the ``paper`` variant at the table's
loads and is the recommended estimator for new analyses.

Lemma 9: the Jackson (M/M/1) model's delay is at most twice the
independent-M/D/1 system's, corresponding queues having equal rates;
:func:`lemma9_ratio` exposes the per-network ratio so tests can confirm it
lies in [1, 2].
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive, check_side

PAPER, PK = "paper", "pk"


def _edge_mean_number(lam_e: np.ndarray, variant: str) -> np.ndarray:
    """Per-edge mean-number contribution under either variant."""
    if np.any(lam_e >= 1.0):
        raise ValueError(
            f"unstable edge: max rate {float(np.max(lam_e)):.6f} >= 1"
        )
    if variant == PK:
        return lam_e + lam_e**2 / (2.0 * (1.0 - lam_e))
    if variant == PAPER:
        return lam_e + lam_e**3 / (2.0 * (1.0 - lam_e))
    raise ValueError(f"unknown variant {variant!r}; use 'paper' or 'pk'")


def md1_network_number(
    edge_rates: np.ndarray, *, variant: str = PK
) -> float:
    """Total mean number across an independent-M/D/1 system with unit service.

    This is also ``E[N-bar]`` in Theorems 10/12/14 — the expected number in
    the comparison system Q-bar of independent queues with matched rates —
    which is why the lower bounds in :mod:`repro.core.lower_bounds` call it.
    """
    lam_e = np.asarray(edge_rates, dtype=float)
    if np.any(lam_e < 0):
        raise ValueError("edge rates must be non-negative")
    return float(np.sum(_edge_mean_number(lam_e, variant)))


def delay_md1_estimate(n: int, lam: float, *, variant: str = PAPER) -> float:
    """Section 4.2's estimate of the average delay on the n-by-n array.

    Parameters
    ----------
    n:
        Array side.
    lam:
        Per-node generation rate. To reproduce Table I pass
        ``lam = lambda_for_load(n, rho, convention="table1")``.
    variant:
        ``"paper"`` (default — matches the printed Table I estimates) or
        ``"pk"`` (textbook M/D/1; recommended for new analyses).
    """
    check_side(n, "n")
    check_positive(lam, "lam")
    i = np.arange(1, n)
    lam_e = (lam / n) * i * (n - i)
    per_edge = _edge_mean_number(lam_e, variant)
    total = 4.0 * n * float(np.sum(per_edge))
    return total / (lam * n * n)


def lemma9_ratio(edge_rates: np.ndarray) -> float:
    """Jackson-total over independent-M/D/1-total mean number (Lemma 9).

    Equal-rate queues compared head to head; the lemma asserts the ratio
    lies in ``[1, 2]`` (1 in the light-traffic limit, 2 as every queue
    saturates), because ``E[S^2]`` differs by exactly a factor 2 between
    constant and exponential unit-mean service.
    """
    lam_e = np.asarray(edge_rates, dtype=float)
    if np.any(lam_e < 0):
        raise ValueError("edge rates must be non-negative")
    if np.any(lam_e >= 1.0):
        raise ValueError("unstable edge rate >= 1")
    positive = lam_e[lam_e > 0]
    if positive.size == 0:
        return 1.0
    mm1 = float(np.sum(positive / (1.0 - positive)))
    md1 = float(np.sum(positive + positive**2 / (2.0 * (1.0 - positive))))
    return mm1 / md1
