"""Average route distances (Section 2.1).

``n-bar = (2/3)(n - 1/n)`` is the average number of edges a uniformly
routed packet crosses on the n-by-n array (destination may equal source);
``n-bar-2 = 2n/3`` excludes same-source-destination packets. Both follow
from the 1-D identity ``E|U - V| = (n^2 - 1)/(3n)`` for independent uniform
coordinates, doubled across the two dimensions.

:func:`mean_route_length` computes the same quantity for any router and
destination law by direct expectation, which the tests compare against the
closed forms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.util.validation import check_side


def mean_distance(n: int) -> float:
    """``n-bar``: average greedy distance, self-destinations included."""
    check_side(n, "n")
    return (2.0 / 3.0) * (n - 1.0 / n)


def mean_distance_excluding_self(n: int) -> float:
    """``n-bar-2``: average greedy distance over packets with dst != src.

    Equals ``n-bar * n^2 / (n^2 - 1) = 2n/3``.
    """
    check_side(n, "n")
    return 2.0 * n / 3.0


def mean_axis_displacement(n: int) -> float:
    """``E|U - V|`` for independent uniforms on ``1..n``: ``(n^2-1)/(3n)``."""
    check_side(n, "n")
    return (n * n - 1.0) / (3.0 * n)


def mean_route_length(
    router: Router,
    destinations: DestinationDistribution,
    *,
    source_nodes: Sequence[int] | None = None,
    source_weights: Sequence[float] | None = None,
) -> float:
    """Exact mean canonical-route length under any routing system.

    Parameters
    ----------
    router, destinations:
        The routing scheme and destination law.
    source_nodes:
        Generating nodes (default all nodes, equally weighted).
    source_weights:
        Relative generation rates per source (default uniform).
    """
    topo = router.topology
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    if source_weights is None:
        weights = np.full(len(sources), 1.0 / len(sources))
    else:
        weights = np.asarray(source_weights, dtype=float)
        if weights.shape != (len(sources),):
            raise ValueError("source_weights must match source_nodes in length")
        if weights.sum() <= 0:
            raise ValueError("source_weights must have positive total")
        weights = weights / weights.sum()
    total = 0.0
    for src, w in zip(sources, weights):
        pmf = destinations.pmf(src)
        for dst in range(topo.num_nodes):
            p = pmf[dst]
            if p == 0.0 or dst == src:
                continue
            total += w * p * len(router.path(src, dst))
    return total


def max_route_length(
    router: Router,
    *,
    source_nodes: Sequence[int] | None = None,
    dest_nodes: Sequence[int] | None = None,
) -> int:
    """Theorem 10's ``d``: the longest canonical route over all pairs.

    On the n-by-n array under greedy routing this is ``2(n-1)`` (corner to
    opposite corner), which the tests assert.
    """
    topo = router.topology
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    dests = list(range(topo.num_nodes)) if dest_nodes is None else list(dest_nodes)
    best = 0
    for src in sources:
        for dst in dests:
            if dst == src:
                continue
            best = max(best, len(router.path(src, dst)))
    return best
