"""Higher-dimensional arrays (Section 5.2).

"The methods presented here easily extend to array networks in higher
dimensions under the greedy routing paradigm. The derivation seems
relatively straightforward; one can explicitly determine the arrival rates
at individual queues combinatorially..."

We carry out that derivation for the square k-dimensional array of side m
under dimension-order greedy routing with uniform destinations:

* **edge rates** — an edge crossing boundary ``i`` (1-based, ``1..m-1``)
  of *any* axis carries ``(lam/m) i (m-i)``: when a packet travels along
  axis ``a`` it has already corrected the earlier axes (their coordinates
  are destination-distributed) and not yet the later ones (source-
  distributed), so the counting argument of Theorem 6 applies per axis
  unchanged. Each boundary of each axis has ``m^(k-1)`` parallel edges
  per direction.
* **capacity** — ``lam < 4/m`` (even m), independent of k.
* **mean distance** — ``n-bar_k = k (m^2 - 1)/(3m)``.
* **upper bound** — ``T <= (2k/(lam m)) sum_i 1/(m/(lam i(m-i)) - 1)``.
* **d-bar** — a corner packet queued on its first axis: ``m/2`` services
  on the current axis plus ``(k-1)(m-1)/2`` expected later ones.
* **s-bar (even m)** — ``1 + (k-1)/2``: the current saturated crossing
  plus, for each of the remaining ``k-1`` axes, a middle crossing with
  worst-case probability 1/2 — so the rho->1 gap is ``2 s-bar = k + 1``
  for even m (the 2-D case recovers the paper's 3).

All closed forms are verified against the generic enumeration machinery
in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive, check_side


def _check_k(k: int) -> int:
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValueError(f"dimension count k must be an int >= 1, got {k!r}")
    return k


def kd_boundary_rate(m: int, k: int, lam: float, i: int) -> float:
    """Arrival rate of an edge crossing boundary ``i`` of any axis:
    ``(lam/m) i (m-i)`` — identical to the 2-D Theorem 6 profile."""
    check_side(m, "m")
    _check_k(k)
    check_positive(lam, "lam", strict=False)
    if not 1 <= i <= m - 1:
        raise ValueError(f"boundary i must lie in 1..{m - 1}, got {i}")
    return (lam / m) * i * (m - i)


def kd_edge_rates(array, lam: float) -> np.ndarray:
    """Closed-form rate map for a square :class:`~repro.topology.KDArray`.

    Returns rates aligned with the array's edge ids (direction blocks).
    """
    from repro.topology.array_mesh import KDArray

    if not isinstance(array, KDArray):
        raise TypeError("kd_edge_rates expects a KDArray")
    sizes = set(array.dims)
    if len(sizes) != 1:
        raise ValueError("closed form requires a square k-D array")
    m = array.dims[0]
    k = len(array.dims)
    rates = np.zeros(array.num_edges)
    for axis in range(k):
        for sign in (+1, -1):
            lo, hi = array.block(axis, sign)
            for e in range(lo, hi):
                u, _v = array.edge_endpoints(e)
                c = array.node_coords(u)[axis]
                # boundary crossed: between c and c+1 going +, c-1 and c going -.
                i = (c + 1) if sign == +1 else c
                rates[e] = kd_boundary_rate(m, k, lam, i)
    return rates


def kd_capacity(m: int, k: int) -> float:
    """Largest admissible per-node rate: ``4/m`` even / ``4m/(m^2-1)`` odd
    — independent of the dimension count k."""
    check_side(m, "m")
    _check_k(k)
    if m % 2 == 0:
        return 4.0 / m
    return 4.0 * m / (m * m - 1.0)


def kd_lambda_for_load(m: int, k: int, rho: float) -> float:
    """Per-node rate achieving load rho on the k-D array."""
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must lie in [0, 1), got {rho}")
    return rho * kd_capacity(m, k)


def kd_mean_distance(m: int, k: int) -> float:
    """Mean greedy route length: ``k (m^2 - 1)/(3m)``."""
    check_side(m, "m")
    _check_k(k)
    return k * (m * m - 1.0) / (3.0 * m)


def kd_delay_upper_bound(m: int, k: int, lam: float) -> float:
    """Theorem 7 generalised: ``(2k/(lam m)) sum_i 1/(m/(lam i(m-i)) - 1)``.

    Valid because dimension-order routing layers the k-D array (label axis
    ``a`` edges in bands above axis ``a-1``'s, exactly as Lemma 2 does for
    k = 2) and the Lemma 3 chain makes it Markovian per axis.
    """
    check_side(m, "m")
    _check_k(k)
    check_positive(lam, "lam")
    i = np.arange(1, m)
    lam_e = (lam / m) * i * (m - i)
    if lam_e.max() >= 1.0:
        raise ValueError(
            f"unstable array: bottleneck rate {lam_e.max():.6f} >= 1"
        )
    # 2k direction blocks x m^(k-1) edges per boundary value.
    total = 2.0 * k * m ** (k - 1) * float(np.sum(lam_e / (1.0 - lam_e)))
    return total / (lam * m**k)


def kd_max_expected_remaining_distance(m: int, k: int) -> float:
    """``d-bar = m/2 + (k-1)(m-1)/2`` — corner packet on its first axis."""
    check_side(m, "m")
    _check_k(k)
    return m / 2.0 + (k - 1) * (m - 1) / 2.0


def kd_s_bar_even(m: int, k: int) -> float:
    """``s-bar = 1 + (k-1)/2`` for even side m.

    The packet's current saturated crossing plus, for each later axis, a
    middle-boundary crossing with worst-case probability 1/2 (a packet at
    coordinate 0 crosses the middle iff its uniform destination coordinate
    lies in the far half).
    """
    check_side(m, "m")
    _check_k(k)
    if m % 2 != 0:
        raise ValueError("closed form stated for even side m")
    return 1.0 + (k - 1) / 2.0


def kd_asymptotic_gap_even(m: int, k: int) -> float:
    """The rho -> 1 upper/lower gap for even m: ``2 s-bar = k + 1``.

    k = 2 recovers the paper's headline constant 3.
    """
    return 2.0 * kd_s_bar_even(m, k)
