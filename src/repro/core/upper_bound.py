"""The PS / Jackson upper bound (Theorems 5 and 7).

Theorem 5: for the layered, Markovian array network, the FIFO unit-service
system is stochastically dominated (in total number of packets, hence by
Little's Law in mean delay) by the same network with Processor-Sharing
servers, whose equilibrium is product-form and identical to the Jackson
(exponential-service) model. Theorem 7 instantiates this with the Theorem 6
rates:

    T  <=  (1/(lam n^2)) sum_e lam_e / (1 - lam_e)
        =  (4/(lam n)) sum_{i=1}^{n-1} 1 / ( n/(lam i (n-i)) - 1 ).

:func:`delay_upper_bound` evaluates the closed form; the generic variants
accept any rate map (any topology / service-rate assignment) so the same
theorem powers the Section 5.1 variable-rate analysis.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.productform import ProductFormNetwork
from repro.util.validation import check_positive, check_side


def number_upper_bound(n: int, lam: float) -> float:
    """Upper bound on the mean number of packets in the n-by-n array.

    The product-form total ``sum_e lam_e/(1 - lam_e)`` with Theorem 6
    rates: four direction blocks, each containing ``n`` edges at rate
    ``(lam/n) i (n-i)`` for every ``i`` in ``1..n-1``.
    """
    check_side(n, "n")
    check_positive(lam, "lam", strict=False)
    if lam == 0.0:
        return 0.0
    i = np.arange(1, n)
    lam_e = (lam / n) * i * (n - i)
    if lam_e.max() >= 1.0:
        raise ValueError(
            f"unstable array: bottleneck edge rate {lam_e.max():.6f} >= 1"
        )
    return float(4.0 * n * np.sum(lam_e / (1.0 - lam_e)))


def delay_upper_bound(n: int, lam: float) -> float:
    """Theorem 7: upper bound on the average delay of the n-by-n array.

    Parameters
    ----------
    n:
        Array side.
    lam:
        Per-node generation rate, with ``max_edge_rate(n, lam) < 1``.

    Returns
    -------
    float
        ``(1/(lam n^2)) sum_e lam_e/(1 - lam_e)``.
    """
    check_positive(lam, "lam")
    return number_upper_bound(n, lam) / (lam * n * n)


def number_upper_bound_generic(
    edge_rates: np.ndarray,
    service_rates: np.ndarray | float = 1.0,
) -> float:
    """Product-form mean-number bound for an arbitrary rate map.

    Valid as an upper bound whenever the network satisfies Theorem 1's
    hypotheses (layered, Markovian routing, Poisson externals) — the array,
    hypercube and butterfly under greedy routing all qualify; the torus
    does not (see :func:`repro.core.layering.find_layering_obstruction`).
    """
    return ProductFormNetwork.from_rates(edge_rates, service_rates).mean_number()


def delay_upper_bound_generic(
    edge_rates: np.ndarray,
    total_external_rate: float,
    service_rates: np.ndarray | float = 1.0,
) -> float:
    """Product-form mean-delay bound for an arbitrary rate map."""
    return ProductFormNetwork.from_rates(edge_rates, service_rates).mean_delay(
        total_external_rate
    )
