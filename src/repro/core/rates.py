"""Edge arrival rates and network load (Theorem 6 and Section 2.1).

Two independent routes to the same numbers:

* :func:`array_edge_rates` — the closed forms of Theorem 6 (Harchol-Balter
  and Black): an edge leaving ``(i, j)`` (1-based) carries
  ``(lam/n)(j-1)(n-j+1)`` leftward, ``(lam/n) j (n-j)`` rightward,
  ``(lam/n)(i-1)(n-i+1)`` upward, ``(lam/n) i (n-i)`` downward.
* :func:`edge_rates_from_routing` — an exact combinatorial traffic solver
  that works for *any* topology, router, and destination distribution by
  summing route indicator expectations over all (src, dst) pairs.

The test suite checks they agree on the array, which is simultaneously a
test of the router, the closed forms, and the solver.

Load conventions
----------------
The paper defines ``rho = max_e lam_e / phi_e``. On the standard array the
bottleneck edges are the middle ones, giving capacity ``lam < 4/n`` for
even n and ``lam < 4n/(n^2-1)`` for odd n. Table I, however, tabulates by
``rho`` using the even-n formula ``lam = 4 rho / n`` for every n (verified
against all 24 printed estimate values — see DESIGN.md), so
:func:`lambda_for_load` supports both conventions explicitly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP, ArrayMesh
from repro.util.validation import check_positive, check_side

#: Load conventions for converting a target rho to a per-node rate.
EXACT, TABLE1 = "exact", "table1"


def array_edge_rate(n: int, lam: float, i: int, j: int, direction: str) -> float:
    """Theorem 6 arrival rate of one edge, in the paper's 1-based indexing.

    Parameters
    ----------
    n:
        Side of the square array.
    lam:
        Per-node Poisson generation rate.
    i, j:
        1-based row and column of the edge's *source* node.
    direction:
        One of ``"left" | "right" | "up" | "down"``.
    """
    check_side(n, "n")
    check_positive(lam, "lam", strict=False)
    if not (1 <= i <= n and 1 <= j <= n):
        raise ValueError(f"(i, j) = ({i}, {j}) outside the 1..{n} range")
    if direction == LEFT:
        return (lam / n) * (j - 1) * (n - j + 1)
    if direction == RIGHT:
        return (lam / n) * j * (n - j)
    if direction == UP:
        return (lam / n) * (i - 1) * (n - i + 1)
    if direction == DOWN:
        return (lam / n) * i * (n - i)
    raise ValueError(f"unknown direction {direction!r}")


def array_edge_rates(mesh: ArrayMesh, lam: float) -> np.ndarray:
    """Theorem 6 rates for every edge of a square mesh, indexed by edge id.

    Built with pure NumPy indexing against the mesh's per-direction edge-id
    blocks; for rectangular meshes the same counting argument applies with
    rows/cols separated (also implemented).
    """
    check_positive(lam, "lam", strict=False)
    rows, cols = mesh.rows, mesh.cols
    total = rows * cols
    rates = np.zeros(mesh.num_edges)
    # Horizontal edges: a right edge out of column j (0-based) separates
    # columns {0..j} from {j+1..}; it carries packets sourced in row i at
    # columns <= j destined anywhere with column > j.
    # rate = lam * (j+1) * (cols-1-j) * rows / total.
    for i in range(rows):
        for j in range(cols - 1):
            right = lam * (j + 1) * (cols - 1 - j) * rows / total
            rates[mesh.directed_edge_id(i, j, RIGHT)] = right
            rates[mesh.directed_edge_id(i, j + 1, LEFT)] = right
    # Vertical edges: after the row leg the packet is in its destination
    # column; a down edge out of row i separates rows {0..i} from {i+1..}.
    # rate = lam * (i+1) * (rows-1-i) * cols / total.
    for i in range(rows - 1):
        for j in range(cols):
            down = lam * (i + 1) * (rows - 1 - i) * cols / total
            rates[mesh.directed_edge_id(i, j, DOWN)] = down
            rates[mesh.directed_edge_id(i + 1, j, UP)] = down
    return rates


def edge_rates_from_routing(
    router: Router,
    destinations: DestinationDistribution,
    node_rates: float | Sequence[float],
    *,
    source_nodes: Sequence[int] | None = None,
) -> np.ndarray:
    """Exact per-edge arrival rates for any routing system.

    Sums ``rate(src) * P(dst | src)`` over the canonical route of every
    (src, dst) pair — an O(nodes^2 * path) exact computation, fine for the
    network sizes of the paper's tables and used as ground truth in tests.

    Parameters
    ----------
    router:
        The routing scheme (its canonical :meth:`path` is used; for
        randomized routers pass each pure variant and mix externally).
    destinations:
        The destination law.
    node_rates:
        Per-source generation rate; a scalar broadcasts over sources.
    source_nodes:
        Which nodes generate packets (default: all). The butterfly, for
        instance, only generates at level-0 nodes.
    """
    topo = router.topology
    n = topo.num_nodes
    sources = list(range(n)) if source_nodes is None else list(source_nodes)
    if np.isscalar(node_rates):
        rate_of = {s: float(node_rates) for s in sources}
    else:
        seq = list(node_rates)  # type: ignore[arg-type]
        if len(seq) != len(sources):
            raise ValueError(
                f"node_rates has {len(seq)} entries for {len(sources)} sources"
            )
        rate_of = {s: float(r) for s, r in zip(sources, seq)}
    rates = np.zeros(topo.num_edges)
    for src in sources:
        lam_src = rate_of[src]
        if lam_src == 0.0:
            continue
        pmf = destinations.pmf(src)
        for dst in range(n):
            w = lam_src * pmf[dst]
            if w == 0.0 or dst == src:
                continue
            for e in router.path(src, dst):
                rates[e] += w
    return rates


def max_edge_rate(n: int, lam: float) -> float:
    """The bottleneck (middle) edge rate of a square array.

    ``(lam/n) * max_i i(n-i)``: ``lam*n/4`` for even n and
    ``lam*(n^2-1)/(4n)`` for odd n.
    """
    check_side(n, "n")
    check_positive(lam, "lam", strict=False)
    if n % 2 == 0:
        return lam * n / 4.0
    return lam * (n * n - 1) / (4.0 * n)


def load_for_lambda(n: int, lam: float) -> float:
    """The paper's network load ``rho`` for per-node rate ``lam`` (unit edges)."""
    return max_edge_rate(n, lam)


def lambda_for_load(n: int, rho: float, convention: str = EXACT) -> float:
    """Per-node rate achieving network load ``rho``.

    Parameters
    ----------
    n:
        Array side.
    rho:
        Target network load in [0, 1).
    convention:
        ``"exact"`` inverts :func:`max_edge_rate` (parity-aware; this is
        the paper's definition of rho). ``"table1"`` uses ``lam = 4 rho/n``
        for every n — the convention the paper's Table I numbers were
        generated under (for odd n the realised exact load is slightly
        below the nominal rho).
    """
    check_side(n, "n")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must lie in [0, 1), got {rho}")
    if convention == TABLE1:
        return 4.0 * rho / n
    if convention == EXACT:
        if n % 2 == 0:
            return 4.0 * rho / n
        return 4.0 * n * rho / (n * n - 1)
    raise ValueError(f"unknown convention {convention!r}; use 'exact' or 'table1'")


def total_external_rate(n: int, lam: float) -> float:
    """Overall packet generation rate ``lam * n^2`` of the square array."""
    check_side(n, "n")
    check_positive(lam, "lam", strict=False)
    return lam * n * n
