"""Rectangular arrays ("rectangular arrays are easily handled similarly",
Section 2.1).

The Theorem 6 counting argument separates cleanly by axis on an
``r x c`` mesh under row-first greedy routing:

* a right edge out of (1-based) column ``j`` carries ``lam * j(c-j)/c``;
  a down edge out of row ``i`` carries ``lam * i(r-i)/r`` (and mirrored
  for left/up) — :func:`repro.core.rates.array_edge_rates` already builds
  this map for :class:`~repro.topology.ArrayMesh` of any shape;
* mean distance splits into per-axis terms,
  ``n-bar(r, c) = (r^2-1)/(3r) + (c^2-1)/(3c)``;
* the bottleneck is the longer axis: capacity ``4/c`` for even ``c >= r``
  (odd sides get the usual ``(c^2-1)/c`` correction), so stretching one
  side of a mesh *lowers* the admissible per-node rate even though it adds
  links — a useful design fact the square-array formulas hide;
* the Theorem 7 upper bound becomes a two-axis sum.

Everything is cross-checked against the generic enumeration machinery in
the tests.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive, check_side


def rect_mean_distance(rows: int, cols: int) -> float:
    """Mean greedy route length on an ``rows x cols`` mesh
    (self-destinations included): per-axis ``(m^2-1)/(3m)`` summed."""
    check_side(rows, "rows")
    check_side(cols, "cols")
    return (rows * rows - 1) / (3.0 * rows) + (cols * cols - 1) / (3.0 * cols)


def _axis_bottleneck(m: int) -> float:
    """max_i i(m-i)/m — the peak per-axis boundary coefficient."""
    if m % 2 == 0:
        return m / 4.0
    return (m * m - 1.0) / (4.0 * m)


def rect_capacity(rows: int, cols: int) -> float:
    """Largest admissible per-node rate of the rectangular mesh.

    The horizontal bottleneck carries ``lam * max_j j(c-j)/c`` and the
    vertical one ``lam * max_i i(r-i)/r``; the *longer* axis saturates
    first. For even sides this is ``4/max(rows, cols)``.
    """
    check_side(rows, "rows")
    check_side(cols, "cols")
    return 1.0 / max(_axis_bottleneck(rows), _axis_bottleneck(cols))


def rect_lambda_for_load(rows: int, cols: int, rho: float) -> float:
    """Per-node rate achieving network load rho."""
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must lie in [0, 1), got {rho}")
    return rho * rect_capacity(rows, cols)


def rect_delay_upper_bound(rows: int, cols: int, lam: float) -> float:
    """Theorem 7 on the rectangle: two per-axis sums.

    ``T <= [ 2 rows sum_j mm1(lam j(c-j)/c) + 2 cols sum_i mm1(lam i(r-i)/r) ]
    / (lam rows cols)`` with ``mm1(x) = x/(1-x)``.
    """
    check_side(rows, "rows")
    check_side(cols, "cols")
    check_positive(lam, "lam")
    j = np.arange(1, cols)
    i = np.arange(1, rows)
    horiz = lam * j * (cols - j) / cols
    vert = lam * i * (rows - i) / rows
    peak = max(horiz.max(initial=0.0), vert.max(initial=0.0))
    if peak >= 1.0:
        raise ValueError(f"unstable mesh: bottleneck rate {peak:.6f} >= 1")
    total = 2.0 * rows * float(np.sum(horiz / (1.0 - horiz)))
    total += 2.0 * cols * float(np.sum(vert / (1.0 - vert)))
    return total / (lam * rows * cols)


def rect_md1_estimate(rows: int, cols: int, lam: float) -> float:
    """Section 4.2's independence estimate on the rectangle (P-K variant)."""
    check_side(rows, "rows")
    check_side(cols, "cols")
    check_positive(lam, "lam")
    j = np.arange(1, cols)
    i = np.arange(1, rows)
    horiz = lam * j * (cols - j) / cols
    vert = lam * i * (rows - i) / rows
    peak = max(horiz.max(initial=0.0), vert.max(initial=0.0))
    if peak >= 1.0:
        raise ValueError(f"unstable mesh: bottleneck rate {peak:.6f} >= 1")

    def md1(x: np.ndarray) -> float:
        return float(np.sum(x + x**2 / (2.0 * (1.0 - x))))

    total = 2.0 * rows * md1(horiz) + 2.0 * cols * md1(vert)
    return total / (lam * rows * cols)


def squarest_shape(num_nodes: int) -> tuple[int, int]:
    """The factorisation of ``num_nodes`` closest to square.

    A design helper: among rectangles of equal node count, the squarest
    has the highest capacity (:func:`rect_capacity` is ``4/max(r, c)``) and
    the lowest mean distance — quantifying why meshes are built square.
    """
    if num_nodes < 4:
        raise ValueError("need at least 4 nodes for a 2x2 mesh")
    best: tuple[int, int] | None = None
    for r in range(2, int(np.sqrt(num_nodes)) + 1):
        if num_nodes % r == 0 and num_nodes // r >= 2:
            best = (r, num_nodes // r)
    if best is None:
        raise ValueError(
            f"{num_nodes} has no factorisation with both sides >= 2"
        )
    return best
