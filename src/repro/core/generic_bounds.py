"""Topology-generic versions of the paper's bounds.

The array closed forms in :mod:`repro.core.lower_bounds` are special cases
of comparisons that only need three ingredients — the per-edge arrival
rates, the route structure, and (for the Markovian refinements) the
expected-remaining-distance constants. This module assembles the bounds
from those ingredients for *any* router/destination law, which is exactly
how the paper extends its results to the torus (Theorem 10 "also holds for
non-Markovian systems, such as toroidal meshes"), the hypercube, the
butterfly, and higher-dimensional arrays (Section 5.2).

Everything here is exact but enumeration-based (O(nodes^2 * path)); for
the square array prefer the closed forms, which the tests verify agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.distances import max_route_length, mean_route_length
from repro.core.md1_approx import md1_network_number
from repro.core.rates import edge_rates_from_routing
from repro.core.remaining_distance import expected_remaining_distances
from repro.core.saturation import (
    max_saturated_on_route,
    saturated_edge_mask,
    saturated_remaining_expectations,
)
from repro.core.upper_bound import delay_upper_bound_generic
from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GenericBounds:
    """Every applicable bound for one routing system at one rate.

    Attributes
    ----------
    total_rate:
        Total external arrival rate (Little's-Law denominator).
    network_load:
        ``rho = max_e lam_e / phi_e``.
    mean_distance:
        Mean route length under the system's destination law.
    upper:
        Product-form upper bound — **only valid when the system is layered
        and Markovian** (Theorem 1); ``None`` when ``layered=False`` was
        declared.
    lower_trivial, lower_copy, lower_markov, lower_saturated:
        The T >= n-bar bound, Theorem 10, Theorem 12 (requires
        ``markovian=True``), and Theorem 14 (Markovian variant when
        available, else the route-count variant).
    d_max, d_bar, s_max, s_bar:
        The comparison constants the bounds divided by.
    """

    total_rate: float
    network_load: float
    mean_distance: float
    upper: float | None
    lower_trivial: float
    lower_copy: float
    lower_markov: float | None
    lower_saturated: float
    d_max: int
    d_bar: float | None
    s_max: int
    s_bar: float | None

    @property
    def lower_best(self) -> float:
        """Best applicable lower bound."""
        candidates = [self.lower_trivial, self.lower_copy, self.lower_saturated]
        if self.lower_markov is not None:
            candidates.append(self.lower_markov)
        return max(candidates)

    def is_consistent(self) -> bool:
        """Lower bounds below the upper bound (when one exists)."""
        if self.upper is None:
            return True
        return self.lower_best <= self.upper * (1 + 1e-12)


def generic_bounds(
    router: Router,
    destinations: DestinationDistribution,
    node_rate: float | Sequence[float],
    *,
    source_nodes: Sequence[int] | None = None,
    service_rates: float | np.ndarray = 1.0,
    layered: bool = True,
    markovian: bool = True,
) -> GenericBounds:
    """Evaluate every applicable bound for an arbitrary routing system.

    Parameters
    ----------
    router, destinations, node_rate, source_nodes:
        The routing system, as in :func:`repro.core.rates.edge_rates_from_routing`.
    service_rates:
        Per-edge ``phi_e`` (scalar broadcasts).
    layered:
        Declare whether Theorem 1 applies (the array/hypercube/butterfly
        under greedy are layered; the torus is not — pass ``False`` and
        the upper bound is omitted rather than wrongly claimed).
    markovian:
        Declare whether the routing is Markovian (Theorem 12/14's d-bar
        and s-bar refinements need it; Theorem 10's d and s do not).

    Notes
    -----
    ``layered``/``markovian`` are *declarations* by the caller about the
    scheme — they cannot be fully decided from samples. For layeredness
    there is a checker: :func:`repro.core.layering.find_layering_obstruction`.
    """
    topo = router.topology
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    if np.isscalar(node_rate):
        check_positive(node_rate, "node_rate")
        weights = [float(node_rate)] * len(sources)
    else:
        weights = [float(r) for r in node_rate]
        if len(weights) != len(sources):
            raise ValueError("node_rate sequence must match source_nodes")
    total_rate = float(sum(weights))
    if total_rate <= 0:
        raise ValueError("total arrival rate must be positive")

    rates = edge_rates_from_routing(
        router, destinations, weights, source_nodes=sources
    )
    # Only destinations the law can actually produce participate in the
    # route-structure maxima (the butterfly, e.g., only routes to outputs).
    support = np.zeros(topo.num_nodes, dtype=bool)
    for src in sources:
        support |= destinations.pmf(src) > 0
    dest_nodes = [int(v) for v in np.nonzero(support)[0]]
    phi = (
        np.full_like(rates, float(service_rates))
        if np.isscalar(service_rates)
        else np.asarray(service_rates, dtype=float)
    )
    loads = rates / phi
    rho = float(loads.max())
    if rho >= 1.0:
        raise ValueError(f"unstable system: network load {rho} >= 1")

    nbar = mean_route_length(
        router,
        destinations,
        source_nodes=sources,
        source_weights=weights,
    )
    upper = (
        delay_upper_bound_generic(rates, total_rate, phi) if layered else None
    )

    # Theorem 10: copies at every queue; divide by the max route length.
    # (With non-unit phi the comparison queues are M/D/1 with service
    # 1/phi_e; md1_network_number expects unit service, so feed loads and
    # scale each queue's count — the M/D/1 mean number depends only on
    # rho_e, not on the time unit.)
    md1_total = md1_network_number(loads, variant="pk")
    d_max = max_route_length(
        router, source_nodes=sources, dest_nodes=dest_nodes
    )
    lower_copy = md1_total / (d_max * total_rate)

    d_bar = None
    lower_markov = None
    if markovian:
        d_e = expected_remaining_distances(
            router, destinations, source_nodes=sources, source_weights=weights
        )
        d_bar = float(np.nanmax(d_e))
        lower_markov = md1_total / (d_bar * total_rate)

    # Theorem 14: saturated queues only.
    mask = saturated_edge_mask(rates, phi)
    sat_total = md1_network_number(loads[mask], variant="pk")
    s_max = max_saturated_on_route(
        router, mask, source_nodes=sources, dest_nodes=dest_nodes
    )
    s_bar_val = None
    if markovian:
        s_e = saturated_remaining_expectations(
            router,
            destinations,
            mask,
            source_nodes=sources,
            source_weights=weights,
        )
        finite = s_e[np.isfinite(s_e)]
        s_bar_val = float(finite.max()) if finite.size else float(s_max)
        lower_saturated = sat_total / (s_bar_val * total_rate)
    else:
        lower_saturated = sat_total / (s_max * total_rate)

    return GenericBounds(
        total_rate=total_rate,
        network_load=rho,
        mean_distance=nbar,
        upper=upper,
        lower_trivial=nbar,
        lower_copy=lower_copy,
        lower_markov=lower_markov,
        lower_saturated=lower_saturated,
        d_max=d_max,
        d_bar=d_bar,
        s_max=s_max,
        s_bar=s_bar_val,
    )
