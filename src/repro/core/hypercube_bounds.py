"""Section 4.5: bounds for the hypercube and butterfly.

Setting: a d-dimensional hypercube where a node at Hamming distance ``k``
from the source is the destination with probability ``p^k (1-p)^{d-k}``
(uniform when ``p = 1/2``); greedy routing crosses each dimension in
canonical order, each with probability ``p``. Every directed edge then
carries rate ``lam * p``, so the network load is ``rho = lam p``.

Headline comparison (the paper's improvement over Stamoulis–Tsitsiklis):

* previous gap between upper and lower bounds as ``rho -> 1``: ``2d`` for
  every ``p`` (from the bracket ``p/2 <= lim (1-rho)(T - dp) <= dp``);
* Theorem 12 with ``d-bar = 1 + p(d-1)`` gives gap ``2(dp + 1 - p) < 2d``
  for all ``p`` in (0, 1) — approaching 2 as ``p -> 0``, equal to ``d+1``
  at the uniform ``p = 1/2``;
* butterfly: every packet crosses exactly ``d`` edges, so Theorem 10 gives
  gap ``2d``, matching Stamoulis–Tsitsiklis (no improvement available from
  Theorem 14 either: all queues are saturated by symmetry, in both
  topologies).
"""

from __future__ import annotations

import numpy as np

from repro.core.md1_approx import md1_network_number
from repro.core.remaining_distance import hypercube_max_expected_remaining_distance
from repro.util.validation import check_load, check_positive, check_probability


def _check_d(d: int) -> int:
    if not isinstance(d, int) or isinstance(d, bool) or d < 1:
        raise ValueError(f"dimension d must be an int >= 1, got {d!r}")
    return d


def hypercube_edge_rate(d: int, lam: float, p: float = 0.5) -> float:
    """Arrival rate ``lam * p`` on every directed hypercube edge.

    Each of the ``2^d`` nodes generates at rate ``lam``; a packet crosses
    dimension ``k`` with probability ``p`` independently, and by symmetry
    the dimension-``k`` traffic spreads evenly over that dimension's
    ``2^d`` directed edges.
    """
    _check_d(d)
    check_positive(lam, "lam", strict=False)
    check_probability(p, "p")
    return lam * p


def hypercube_load(d: int, lam: float, p: float = 0.5) -> float:
    """Network load ``rho = lam p`` (every edge is equally loaded)."""
    return hypercube_edge_rate(d, lam, p)


def hypercube_mean_distance(d: int, p: float = 0.5) -> float:
    """Mean route length ``d p`` (Binomial(d, p) crossings)."""
    _check_d(d)
    check_probability(p, "p")
    return d * p


def hypercube_delay_upper_bound(d: int, lam: float, p: float = 0.5) -> float:
    """Theorem 7's analogue: product-form bound ``T <= d p / (1 - rho)``.

    ``sum_e lam_e/(1-lam_e) = d 2^d rho/(1-rho)`` over external rate
    ``lam 2^d`` with ``lam = rho/p``.
    """
    rho = hypercube_load(d, lam, p)
    check_load(rho, "rho")
    if lam <= 0:
        raise ValueError(f"lam must be positive, got {lam}")
    return d * rho / ((1.0 - rho) * lam)


def hypercube_markov_lower_bound(d: int, lam: float, p: float = 0.5) -> float:
    """Theorem 12 on the hypercube: independent-M/D/1 total over
    ``d-bar = 1 + p(d-1)`` and the external rate."""
    rho = hypercube_load(d, lam, p)
    check_load(rho, "rho")
    if lam <= 0:
        raise ValueError(f"lam must be positive, got {lam}")
    num_edges = d * (1 << d)
    total = md1_network_number(np.full(num_edges, rho), variant="pk")
    d_bar = hypercube_max_expected_remaining_distance(d, p)
    return total / (d_bar * lam * (1 << d))


def hypercube_gap_markov(d: int, p: float = 0.5) -> float:
    """Our upper/lower gap as ``rho -> 1``: ``2 (d p + 1 - p)``."""
    _check_d(d)
    check_probability(p, "p")
    return 2.0 * (d * p + 1.0 - p)


def hypercube_gap_copy(d: int) -> float:
    """The previous (Stamoulis–Tsitsiklis / Theorem 10) gap: ``2d``."""
    _check_d(d)
    return 2.0 * d


def butterfly_gap(d: int) -> float:
    """Butterfly gap from Theorem 10: ``2d`` (every route has length d,
    so the copy count cannot be improved — matches S-T)."""
    _check_d(d)
    return 2.0 * d


def st_limit_bracket(d: int, p: float = 0.5) -> tuple[float, float]:
    """The prior bounds' bracket on ``lim_{rho->1} (1-rho)(T - dp)``:
    ``[p/2, dp]`` (paper Section 4.5)."""
    _check_d(d)
    check_probability(p, "p")
    return (p / 2.0, d * p)


def hypercube_limit_scaled_bounds(d: int, p: float, rho: float) -> tuple[float, float]:
    """Evaluate ``(1-rho)(T_bound - dp)`` for our lower bound and the
    product-form upper bound at finite ``rho`` — the quantity whose
    ``rho -> 1`` limits Section 4.5 brackets. Used by the hypercube
    experiment to plot convergence toward ``[dp/(2(dp+1-p)), dp]``."""
    check_load(rho, "rho")
    if rho <= 0:
        raise ValueError("rho must be positive for the scaled bracket")
    lam = rho / p
    lower = hypercube_markov_lower_bound(d, lam, p)
    upper = hypercube_delay_upper_bound(d, lam, p)
    dp = hypercube_mean_distance(d, p)
    return ((1.0 - rho) * (lower - dp), (1.0 - rho) * (upper - dp))
