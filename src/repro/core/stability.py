"""Stability predicates (Section 2.1 and the Section 5.1 corollary).

A queueing network is stable when every edge load ``lam_e/phi_e`` stays
below 1 — the paper assumes this throughout and notes the Theorem 7 upper
bound itself certifies stability for ``rho < 1``. This module gives the
predicate for arbitrary rate maps plus the array's closed-form capacities
under both the standard and the optimally-configured allocation.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimization import optimal_capacity, standard_capacity
from repro.util.validation import check_positive, check_side


def is_stable(edge_rates, service_rates=1.0, *, margin: float = 0.0) -> bool:
    """True iff every queue satisfies ``lam_e/phi_e < 1 - margin``."""
    lam = np.asarray(edge_rates, dtype=float)
    phi = (
        np.full_like(lam, float(service_rates))
        if np.isscalar(service_rates)
        else np.asarray(service_rates, dtype=float)
    )
    if phi.shape != lam.shape:
        raise ValueError("service_rates must broadcast to edge_rates")
    if np.any(phi <= 0):
        raise ValueError("service rates must be positive")
    if not 0.0 <= margin < 1.0:
        raise ValueError(f"margin must lie in [0, 1), got {margin}")
    return bool(np.all(lam / phi < 1.0 - margin))


def capacity(n: int, *, configured: str = "standard") -> float:
    """Largest admissible per-node rate of the n-by-n array.

    Parameters
    ----------
    configured:
        ``"standard"`` — unit-rate edges: ``4/n`` even / ``4n/(n^2-1)``
        odd. ``"optimal"`` — budget ``D = 4n(n-1)`` optimally allocated:
        ``6/(n+1)`` (Section 5.1).
    """
    check_side(n, "n")
    if configured == "standard":
        return standard_capacity(n)
    if configured == "optimal":
        return optimal_capacity(n)
    raise ValueError(
        f"unknown configuration {configured!r}; use 'standard' or 'optimal'"
    )


def capacity_gain(n: int) -> float:
    """Ratio of optimal to standard capacity: how much more traffic an
    optimally configured array admits — ``(3/2) n/(n+1)`` for even n."""
    return capacity(n, configured="optimal") / capacity(n, configured="standard")


def stability_margin(n: int, lam: float, *, configured: str = "standard") -> float:
    """``1 - lam/capacity``: fraction of headroom left at rate ``lam``
    (negative when the network is overloaded)."""
    check_positive(lam, "lam", strict=False)
    return 1.0 - lam / capacity(n, configured=configured)
