"""Layered networks (Theorem 1's first hypothesis; Lemma 2, Figure 1).

A labelling of the arcs *layers* the network if every packet crosses arcs
with strictly increasing labels. Lemma 2's labelling of the array (paper's
1-based coordinates):

=========================  =========
edge                       label
=========================  =========
``((i, j), (i, j+1))``     ``j``
``((i, j+1), (i, j))``     ``n - j``
``((i, j), (i+1, j))``     ``n + i - 1``
``((i+1, j), (i, j))``     ``2n - i - 1``
=========================  =========

Row labels lie in ``1..n-1`` and increase along any one-directional row
leg; column labels lie in ``n..2n-2`` and increase along any column leg —
so a row-first greedy route is strictly increasing (Figure 1).

The torus, by contrast, cannot be layered under greedy routing (for tori
of side at least 4): its route legs chain around directed rings — e.g. on
a 4-ring the legs 0->1->2, 1->2->3, 2->3->0, 3->0->1 force the cyclic
precedence e01 < e12 < e23 < e30 < e01 — so a strictly-increasing
labelling cannot exist. :func:`find_layering_obstruction` finds such a
cycle constructively in the "follows" digraph of consecutively-used edge
pairs, which is the machine-checkable form of the paper's Section 6
remark. (Degenerate exception, found by this reproduction's tests: on the
3x3 torus shortest-way greedy legs are at most one edge, so no two
same-dimension edges are ever consecutive and a layering *does* exist —
the paper's non-layerability claim concerns routes that actually traverse
rings.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP, ArrayMesh
from repro.util.validation import check_side


def array_layering_labels(mesh: ArrayMesh) -> np.ndarray:
    """Lemma 2's labels for every edge of a square mesh, by edge id."""
    if not mesh.is_square:
        raise ValueError("Lemma 2's labelling is stated for square meshes")
    n = mesh.side
    labels = np.zeros(mesh.num_edges, dtype=np.int64)
    for i0 in range(n):
        for j0 in range(n):
            i, j = i0 + 1, j0 + 1  # paper's 1-based coordinates
            if j0 < n - 1:  # right edge ((i,j),(i,j+1)): label j
                labels[mesh.directed_edge_id(i0, j0, RIGHT)] = j
                # left edge ((i,j+1),(i,j)): label n - j
                labels[mesh.directed_edge_id(i0, j0 + 1, LEFT)] = n - j
            if i0 < n - 1:  # down edge ((i,j),(i+1,j)): label n + i - 1
                labels[mesh.directed_edge_id(i0, j0, DOWN)] = n + i - 1
                # up edge ((i+1,j),(i,j)): label 2n - i - 1
                labels[mesh.directed_edge_id(i0 + 1, j0, UP)] = 2 * n - i - 1
    return labels


def verify_layering(
    router: Router,
    labels: np.ndarray,
    *,
    source_nodes: Sequence[int] | None = None,
    dest_nodes: Sequence[int] | None = None,
) -> bool:
    """True iff labels strictly increase along every canonical route."""
    topo = router.topology
    labels = np.asarray(labels)
    if labels.shape != (topo.num_edges,):
        raise ValueError(
            f"labels must have one entry per edge ({topo.num_edges}), "
            f"got shape {labels.shape}"
        )
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    dests = list(range(topo.num_nodes)) if dest_nodes is None else list(dest_nodes)
    for src in sources:
        for dst in dests:
            if dst == src:
                continue
            path = router.path(src, dst)
            for a, b in zip(path, path[1:]):
                if labels[b] <= labels[a]:
                    return False
    return True


def follows_digraph(
    router: Router,
    *,
    source_nodes: Sequence[int] | None = None,
    dest_nodes: Sequence[int] | None = None,
):
    """The "follows" digraph on edge ids: arc ``a -> b`` iff some canonical
    route crosses ``b`` immediately after ``a``. A layering exists iff this
    digraph is acyclic (labels = any topological order)."""
    import networkx as nx

    topo = router.topology
    g = nx.DiGraph()
    g.add_nodes_from(range(topo.num_edges))
    sources = (
        list(range(topo.num_nodes)) if source_nodes is None else list(source_nodes)
    )
    dests = list(range(topo.num_nodes)) if dest_nodes is None else list(dest_nodes)
    for src in sources:
        for dst in dests:
            if dst == src:
                continue
            path = router.path(src, dst)
            for a, b in zip(path, path[1:]):
                g.add_edge(int(a), int(b))
    return g


def find_layering_obstruction(
    router: Router,
    *,
    source_nodes: Sequence[int] | None = None,
    dest_nodes: Sequence[int] | None = None,
) -> list[int] | None:
    """A cycle of edge ids witnessing that no layering exists, or None.

    Returns None exactly when a layering exists (the follows digraph is
    acyclic). On the greedy torus this returns a directed ring of edges,
    mechanising the paper's "any network containing a ring of directed
    edges cannot be layered" for the concrete routing scheme in use.
    """
    import networkx as nx

    g = follows_digraph(router, source_nodes=source_nodes, dest_nodes=dest_nodes)
    try:
        cycle = nx.find_cycle(g)
    except nx.NetworkXNoCycle:
        return None
    return [a for a, _b in cycle]


def layering_from_follows(router: Router) -> np.ndarray | None:
    """Construct a valid layering by topological sort, or None if impossible.

    This gives an alternative, machine-generated labelling for any layered
    scheme (tests check it validates alongside Lemma 2's hand labelling).
    """
    import networkx as nx

    g = follows_digraph(router)
    if not nx.is_directed_acyclic_graph(g):
        return None
    order = list(nx.topological_sort(g))
    labels = np.zeros(router.topology.num_edges, dtype=np.int64)
    for rank, e in enumerate(order):
        labels[e] = rank + 1
    return labels


def render_figure1(n: int) -> str:
    """ASCII rendering of Figure 1 (the layered labelling) for side ``n``.

    Each cell shows the labels of the four edges leaving the node:
    ``R`` right, ``L`` left, ``D`` down, ``U`` up (dashes at borders).
    """
    check_side(n, "n")
    mesh = ArrayMesh(n)
    labels = array_layering_labels(mesh)
    lines = [f"Figure 1: layering the {n}x{n} array (Lemma 2 labels)"]
    for i in range(n):
        row_cells = []
        for j in range(n):
            parts = []
            for tag, direction, ok in (
                ("R", RIGHT, j < n - 1),
                ("L", LEFT, j > 0),
                ("D", DOWN, i < n - 1),
                ("U", UP, i > 0),
            ):
                if ok:
                    parts.append(
                        f"{tag}{labels[mesh.directed_edge_id(i, j, direction)]}"
                    )
                else:
                    parts.append(f"{tag}-")
            row_cells.append("[" + " ".join(f"{p:>4}" for p in parts) + "]")
        lines.append(" ".join(row_cells))
    return "\n".join(lines)
