"""The M/M/1/K loss queue — the closed form behind the finite-buffer engine.

The finite-buffer engine (:mod:`repro.sim.finite_buffer`) turns each edge
into an M/M/1 queue with a *capped* system: a packet arriving when
``capacity`` customers are already present is dropped. The equilibrium of
that birth-death chain is the truncated geometric

.. math::

    \\pi_k = \\frac{(1 - \\rho)\\,\\rho^k}{1 - \\rho^{K+1}},
    \\qquad k = 0, \\dots, K,

(uniform ``1/(K+1)`` at ``rho = 1``), with blocking probability
``pi_K`` by PASTA. Unlike the infinite-buffer M/M/1 no stability
condition is needed — the chain is ergodic for every ``rho > 0``.

Capacity convention: ``capacity`` counts *every* customer in the system,
including the one in service. The finite engine's ``buffer_size`` knob
counts waiting room *excluding* the packet in service, so a single edge
with ``buffer_size=K`` is an ``MM1KQueue(..., capacity=K + 1)`` —
:meth:`MM1KQueue.from_buffer` encodes that translation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class MM1KQueue:
    """An M/M/1/K queue: Poisson arrivals ``lam``, service rate ``phi``,
    at most ``capacity`` customers in the system (in service + waiting).

    Attributes
    ----------
    lam:
        Poisson arrival rate of *offered* traffic (accepted rate is
        ``lam * (1 - blocking_probability())``).
    phi:
        Service rate; the paper's unit-rate edges have ``phi = 1``.
    capacity:
        Total system capacity K >= 1, including the customer in service.
    """

    lam: float
    phi: float = 1.0
    capacity: int = 1

    def __post_init__(self) -> None:
        check_positive(self.lam, "lam")
        check_positive(self.phi, "phi")
        if int(self.capacity) != self.capacity or self.capacity < 1:
            raise ValueError(
                f"capacity must be a positive integer, got {self.capacity!r}"
            )

    @classmethod
    def from_buffer(
        cls, lam: float, buffer_size: int, phi: float = 1.0
    ) -> "MM1KQueue":
        """The queue matching the finite engine's ``buffer_size`` knob
        (waiting room excluding the packet in service):
        ``capacity = buffer_size + 1``."""
        return cls(lam=lam, phi=phi, capacity=int(buffer_size) + 1)

    @property
    def load(self) -> float:
        """Offered load ``rho = lam / phi`` (may exceed 1)."""
        return self.lam / self.phi

    def number_pmf(self) -> np.ndarray:
        """Equilibrium P(N = k) for k = 0..capacity (truncated geometric)."""
        rho = self.load
        k = np.arange(self.capacity + 1)
        if np.isclose(rho, 1.0):
            return np.full(self.capacity + 1, 1.0 / (self.capacity + 1))
        pmf = rho**k
        return pmf / pmf.sum()

    def blocking_probability(self) -> float:
        """P(an arrival is dropped) = ``pi_K`` by PASTA."""
        return float(self.number_pmf()[-1])

    def mean_number(self) -> float:
        """Time-averaged number in system ``sum_k k pi_k``."""
        pmf = self.number_pmf()
        return float(np.arange(self.capacity + 1) @ pmf)

    def throughput(self) -> float:
        """Accepted (= departure) rate ``lam * (1 - pi_K)``."""
        return self.lam * (1.0 - self.blocking_probability())

    def mean_delay(self) -> float:
        """Mean sojourn time of *accepted* customers, via Little's Law
        against the accepted rate: ``E[N] / (lam (1 - pi_K))``."""
        return self.mean_number() / self.throughput()

    def utilization(self) -> float:
        """Server busy fraction ``1 - pi_0``."""
        return 1.0 - float(self.number_pmf()[0])
