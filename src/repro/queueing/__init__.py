"""Classical single-queue and product-form network theory.

This subpackage is the analytic substrate of the paper: M/M/1 and M/D/1
queues (Section 2.1), the Pollaczek-Khinchin mean-value formula (Section
4.2), Little's Law (Section 2.2), product-form / Jackson network
equilibria (Sections 2.2 and 3.3), and an empirical stochastic-dominance
test for the comparison arguments of Sections 3 and 4.
"""

from repro.queueing.mm1 import MM1Queue
from repro.queueing.md1 import MD1Queue
from repro.queueing.mg1 import MG1Queue, pollaczek_khinchin_number, pollaczek_khinchin_wait
from repro.queueing.littleslaw import littles_law_number, littles_law_time, littles_law_residual
from repro.queueing.productform import ProductFormNetwork
from repro.queueing.dominance import empirical_dominates, dominance_violation

__all__ = [
    "MM1Queue",
    "MD1Queue",
    "MG1Queue",
    "pollaczek_khinchin_number",
    "pollaczek_khinchin_wait",
    "littles_law_number",
    "littles_law_time",
    "littles_law_residual",
    "ProductFormNetwork",
    "empirical_dominates",
    "dominance_violation",
]
