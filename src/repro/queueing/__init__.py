"""Classical single-queue and product-form network theory.

This subpackage is the analytic substrate of the paper: M/M/1 and M/D/1
queues (Section 2.1), the M/M/1/K loss queue behind the finite-buffer
engine, the Pollaczek-Khinchin mean-value formula (Section 4.2), Little's
Law (Section 2.2), product-form / Jackson network equilibria (Sections
2.2 and 3.3), and empirical stochastic-dominance tests for the
comparison arguments of Sections 3 and 4. The validation harness
(:mod:`repro.validation`) cross-checks every simulation engine against
these closed forms in CI.
"""

from repro.queueing.mm1 import MM1Queue
from repro.queueing.mm1k import MM1KQueue
from repro.queueing.md1 import MD1Queue
from repro.queueing.mg1 import MG1Queue, pollaczek_khinchin_number, pollaczek_khinchin_wait
from repro.queueing.littleslaw import littles_law_number, littles_law_time, littles_law_residual
from repro.queueing.productform import ProductFormNetwork
from repro.queueing.dominance import (
    dominance_violation,
    dominance_violation_vs_tail,
    empirical_dominates,
)

__all__ = [
    "MM1Queue",
    "MM1KQueue",
    "MD1Queue",
    "MG1Queue",
    "pollaczek_khinchin_number",
    "pollaczek_khinchin_wait",
    "littles_law_number",
    "littles_law_time",
    "littles_law_residual",
    "ProductFormNetwork",
    "empirical_dominates",
    "dominance_violation",
    "dominance_violation_vs_tail",
]
