"""Empirical stochastic dominance.

The paper compares systems via stochastic domination: ``X <=_st Y`` iff
``P(X > a) <= P(Y > a)`` for all ``a`` (Section 2.1). For simulated sample
sets the property can only be checked up to statistical noise; these
helpers compare empirical tail functions with a tolerance and report the
worst violation, so experiment code can assert "FIFO is dominated by PS"
(Theorem 5) without false alarms from Monte-Carlo jitter.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def _tail_probabilities(samples: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """P(sample > a) for each grid point ``a`` via a sorted search."""
    s = np.sort(np.asarray(samples, dtype=float))
    # count of samples strictly greater than a = len - upper_bound_index(a)
    idx = np.searchsorted(s, grid, side="right")
    return (s.size - idx) / s.size


def dominance_violation(
    x_samples: np.ndarray,
    y_samples: np.ndarray,
    *,
    grid_points: int = 256,
) -> float:
    """Largest violation of ``X <=_st Y`` over a common evaluation grid.

    Returns
    -------
    float
        ``max_a [ P(X > a) - P(Y > a) ]``, clipped below at 0. A value of
        0 means the empirical tails are consistent with domination
        everywhere on the grid.
    """
    x = np.asarray(x_samples, dtype=float)
    y = np.asarray(y_samples, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("both sample sets must be non-empty")
    lo = min(x.min(), y.min())
    hi = max(x.max(), y.max())
    grid = np.linspace(lo, hi, grid_points)
    gap = _tail_probabilities(x, grid) - _tail_probabilities(y, grid)
    return float(max(0.0, gap.max()))


def dominance_violation_vs_tail(
    samples: np.ndarray,
    tail: Callable[[np.ndarray], np.ndarray],
    *,
    grid_points: int = 256,
) -> float:
    """Largest violation of ``X <=_st Y`` where ``Y`` is an analytic law.

    ``tail(a)`` must return ``P(Y > a)`` elementwise. This is the
    closed-form sibling of :func:`dominance_violation`, used by the
    validation harness to check a simulated sample set against an exact
    reference distribution (e.g. M/D/1 waiting times against the M/M/1
    waiting-time law ``P(W > a) = rho e^{-(phi - lam) a}``) without
    having to sample the reference.

    Returns ``max_a [ P_emp(X > a) - tail(a) ]`` clipped below at 0, over
    a grid spanning the empirical sample range (extended down to 0 so the
    near-origin region — where deterministic-service laws put atoms — is
    always examined).
    """
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        raise ValueError("the sample set must be non-empty")
    lo = min(0.0, float(x.min()))
    grid = np.linspace(lo, float(x.max()), grid_points)
    gap = _tail_probabilities(x, grid) - np.asarray(tail(grid), dtype=float)
    return float(max(0.0, gap.max()))


def empirical_dominates(
    x_samples: np.ndarray,
    y_samples: np.ndarray,
    *,
    tolerance: float = 0.02,
    grid_points: int = 256,
) -> bool:
    """True if ``X <=_st Y`` holds empirically up to ``tolerance``.

    ``tolerance`` absorbs Monte-Carlo noise in the empirical tails; with
    ``m`` samples a slack of a few times ``1/sqrt(m)`` is appropriate.
    """
    return (
        dominance_violation(x_samples, y_samples, grid_points=grid_points)
        <= tolerance
    )
