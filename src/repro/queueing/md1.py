"""The M/D/1 queue (deterministic service) — the paper's comparison queue.

The standard array model has constant unit transmission times, so the
independence approximation of Section 4.2 and the lower bounds of Section
4.3 are all phrased against M/D/1 queues. Lemma 9's factor-of-2 relation
between M/M/1 and M/D/1 mean numbers is exposed as
:meth:`MD1Queue.mm1_ratio` and property-tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.queueing.mg1 import pollaczek_khinchin_number, pollaczek_khinchin_wait
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MD1Queue:
    """An M/D/1 queue with arrival rate ``lam`` and deterministic service.

    Attributes
    ----------
    lam:
        Poisson arrival rate.
    service:
        The constant service time (the paper's unit edges have 1).
    """

    lam: float
    service: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.lam, "lam", strict=False)
        check_positive(self.service, "service")

    @property
    def load(self) -> float:
        """Utilisation ``rho = lam * service``."""
        return self.lam * self.service

    @property
    def stable(self) -> bool:
        """True iff ``rho < 1``."""
        return self.load < 1.0

    def mean_number(self) -> float:
        """Mean number in system: ``rho + rho^2 / (2(1-rho))`` (P-K with
        ``E[S^2] = service^2``)."""
        return pollaczek_khinchin_number(self.lam, self.service, self.service**2)

    def mean_wait(self) -> float:
        """Mean wait in queue (excluding service)."""
        return pollaczek_khinchin_wait(self.lam, self.service, self.service**2)

    def mean_delay(self) -> float:
        """Mean time in system."""
        return self.mean_wait() + self.service

    def mean_queue_length(self) -> float:
        """Mean number waiting (excluding in service)."""
        return self.lam * self.mean_wait()

    def number_pmf(self, kmax: int) -> np.ndarray:
        """Equilibrium P(N = k), k = 0..kmax, via the embedded M/G/1 chain.

        For an M/G/1 queue the distribution seen at departure epochs equals
        the time-stationary one (level crossing + PASTA). With ``a_j`` the
        probability of ``j`` Poisson arrivals during one deterministic
        service (``a_j = e^{-rho} rho^j / j!``), the stationary equations
        invert to the classical stable forward recursion

            pi_{k+1} = [ pi_k - pi_0 a_k - sum_{j=1}^{k} pi_j a_{k-j+1} ] / a_0,

        seeded by ``pi_0 = 1 - rho``. Each term is a difference of
        same-sign quantities of comparable size, so the recursion is
        numerically stable for the loads we use (unlike the alternating
        closed form). The tail mass ``1 - sum`` is reported implicitly via
        the truncation.
        """
        if not self.stable:
            raise ValueError(f"unstable M/D/1 queue: rho = {self.load} >= 1")
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        rho = self.load
        # Arrivals during one service: Poisson(rho) pmf built by the
        # multiplicative recurrence (factorials overflow for large kmax).
        a = np.empty(kmax + 2)
        a[0] = math.exp(-rho)
        for j in range(1, kmax + 2):
            a[j] = a[j - 1] * rho / j
        pi = np.zeros(kmax + 1)
        pi[0] = 1.0 - rho
        for k in range(kmax):
            acc = pi[k] - pi[0] * a[k]
            for j in range(1, k + 1):
                acc -= pi[j] * a[k - j + 1]
            pi[k + 1] = acc / a[0]
        return pi

    def mm1_ratio(self) -> float:
        """Ratio of the matched M/M/1 mean number to this queue's.

        Lemma 9's engine: with the same arrival rate and mean service, the
        exponential-service queue holds between 1x and 2x as many packets;
        the ratio tends to 1 as ``rho -> 0`` and to 2 as ``rho -> 1``.
        """
        if not self.stable:
            raise ValueError(f"unstable M/D/1 queue: rho = {self.load} >= 1")
        mm1 = pollaczek_khinchin_number(
            self.lam, self.service, 2.0 * self.service**2
        )
        md1 = self.mean_number()
        return mm1 / md1 if md1 > 0 else 1.0
