"""Product-form (PS / Jackson) network equilibrium.

Paper Section 2.2: "under the PS discipline the network becomes a
product-form network ... the number of packets at each queue has a
geometric distribution with mean ``lam_e / (phi_e - lam_e)``", and Section
3.3 identifies this with the Jackson open-network equilibrium. Given the
per-edge arrival rates (from :mod:`repro.core.rates`) and service rates,
this module computes the equilibrium mean number in system and — via
Little's Law — the Theorem 5/7 delay upper bound for any topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queueing.littleslaw import littles_law_time
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ProductFormNetwork:
    """A product-form network: per-queue Poisson-like rates and servers.

    Attributes
    ----------
    arrival_rates:
        Per-queue total arrival rate ``lam_e`` (length = number of queues).
    service_rates:
        Per-queue service rate ``phi_e``; scalar 1.0 broadcasts to all
        queues (the paper's standard unit-capacity edges).
    """

    arrival_rates: np.ndarray
    service_rates: np.ndarray

    @staticmethod
    def from_rates(
        arrival_rates: np.ndarray,
        service_rates: np.ndarray | float = 1.0,
    ) -> "ProductFormNetwork":
        """Build a network, broadcasting a scalar service rate."""
        lam = np.asarray(arrival_rates, dtype=float)
        if lam.ndim != 1:
            raise ValueError(f"arrival_rates must be 1-D, got shape {lam.shape}")
        if np.any(lam < 0):
            raise ValueError("arrival rates must be non-negative")
        if np.isscalar(service_rates):
            phi = np.full_like(lam, float(service_rates))
        else:
            phi = np.asarray(service_rates, dtype=float)
            if phi.shape != lam.shape:
                raise ValueError(
                    f"service_rates shape {phi.shape} != arrival_rates shape {lam.shape}"
                )
        if np.any(phi <= 0):
            raise ValueError("service rates must be positive")
        return ProductFormNetwork(lam, phi)

    @property
    def loads(self) -> np.ndarray:
        """Per-queue utilisation ``rho_e = lam_e / phi_e``."""
        return self.arrival_rates / self.service_rates

    @property
    def network_load(self) -> float:
        """The paper's ``rho = max_e lam_e / phi_e``."""
        return float(self.loads.max()) if self.loads.size else 0.0

    @property
    def stable(self) -> bool:
        """True iff every queue has ``rho_e < 1``."""
        return self.network_load < 1.0

    def _require_stable(self) -> None:
        if not self.stable:
            raise ValueError(
                f"unstable network: max load {self.network_load} >= 1"
            )

    def mean_number_per_queue(self) -> np.ndarray:
        """Equilibrium mean number at each queue: ``lam_e/(phi_e - lam_e)``."""
        self._require_stable()
        return self.arrival_rates / (self.service_rates - self.arrival_rates)

    def mean_number(self) -> float:
        """Equilibrium mean total number in the network."""
        return float(self.mean_number_per_queue().sum())

    def mean_delay(self, total_external_rate: float) -> float:
        """Mean time in system by Little's Law over the whole network.

        Parameters
        ----------
        total_external_rate:
            The overall packet generation rate (``lam * n^2`` on the array);
            this is the denominator of Little's Law, not the sum of the
            per-edge rates (packets traverse several edges).
        """
        check_positive(total_external_rate, "total_external_rate")
        return littles_law_time(self.mean_number(), total_external_rate)

    def queue_pmf(self, e: int, kmax: int) -> np.ndarray:
        """Geometric equilibrium pmf of queue ``e`` for k = 0..kmax."""
        self._require_stable()
        rho = float(self.loads[e])
        return (1.0 - rho) * rho ** np.arange(kmax + 1)
