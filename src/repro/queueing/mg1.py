"""M/G/1 queue via the Pollaczek-Khinchin mean-value formula.

The paper's Section 4.2 uses exactly this machinery: "Let lambda_d be the
arrival rate at an M/D/1 queue, N_d be the expected number of packets in
the queue in equilibrium, and S be the random variable representing the
service time for a packet. Then we have (for a stable system)

    N_d = E[S] lambda_d + lambda_d^2 E[S^2] / (2 (1 - lambda_d E[S])).

Everything else here (wait, delay, queue length) follows from Little's Law
applied to the same formula.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


def pollaczek_khinchin_number(lam: float, es: float, es2: float) -> float:
    """Mean number in an M/G/1 system (P-K mean-value formula).

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    es:
        Mean service time ``E[S]``.
    es2:
        Second moment ``E[S^2]`` (so ``Var[S] = es2 - es**2``).

    Returns
    -------
    float
        ``N = lam*E[S] + lam^2 E[S^2] / (2(1 - lam E[S]))``.

    Raises
    ------
    ValueError
        If the queue is unstable (``lam * es >= 1``) or moments are
        inconsistent (``es2 < es**2``).
    """
    lam = check_positive(lam, "lam", strict=False)
    es = check_positive(es, "es")
    es2 = check_positive(es2, "es2", strict=False)
    if es2 < es * es * (1 - 1e-12):
        raise ValueError(f"E[S^2]={es2} < E[S]^2={es * es}: impossible moments")
    rho = lam * es
    if rho >= 1.0:
        raise ValueError(f"unstable queue: load lam*E[S] = {rho} >= 1")
    return rho + lam * lam * es2 / (2.0 * (1.0 - rho))


def pollaczek_khinchin_wait(lam: float, es: float, es2: float) -> float:
    """Mean time waiting in queue (excluding service) for an M/G/1 queue.

    ``W = lam E[S^2] / (2 (1 - lam E[S]))`` — the P-K wait formula.
    """
    lam = check_positive(lam, "lam", strict=False)
    es = check_positive(es, "es")
    rho = lam * es
    if rho >= 1.0:
        raise ValueError(f"unstable queue: load lam*E[S] = {rho} >= 1")
    return lam * es2 / (2.0 * (1.0 - rho))


@dataclass(frozen=True)
class MG1Queue:
    """An M/G/1 queue described by its arrival rate and service moments.

    Attributes
    ----------
    lam:
        Poisson arrival rate.
    es, es2:
        First and second moments of the service time.
    """

    lam: float
    es: float
    es2: float

    def __post_init__(self) -> None:
        check_positive(self.lam, "lam", strict=False)
        check_positive(self.es, "es")
        if self.es2 < self.es**2 * (1 - 1e-12):
            raise ValueError("E[S^2] < E[S]^2: impossible moments")

    @property
    def load(self) -> float:
        """Utilisation ``rho = lam * E[S]``."""
        return self.lam * self.es

    @property
    def stable(self) -> bool:
        """True iff ``rho < 1``."""
        return self.load < 1.0

    def mean_number(self) -> float:
        """Mean number in system (P-K)."""
        return pollaczek_khinchin_number(self.lam, self.es, self.es2)

    def mean_wait(self) -> float:
        """Mean wait in queue, excluding service (P-K)."""
        return pollaczek_khinchin_wait(self.lam, self.es, self.es2)

    def mean_delay(self) -> float:
        """Mean time in system: wait plus service."""
        return self.mean_wait() + self.es

    def mean_queue_length(self) -> float:
        """Mean number waiting (excluding any packet in service)."""
        return self.lam * self.mean_wait()
