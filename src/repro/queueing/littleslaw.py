"""Little's Law: ``N = T * lambda`` (paper Section 2.2, citing Little 1961).

Used in two directions throughout the library: the bounds convert mean
number in system to mean delay, and the simulator cross-checks its two
independent delay estimators (time-averaged N over throughput vs directly
averaged per-packet delay) against each other.
"""

from __future__ import annotations

from repro.util.validation import check_positive


def littles_law_number(delay: float, rate: float) -> float:
    """Mean number in system from mean delay and total arrival rate."""
    check_positive(rate, "rate")
    check_positive(delay, "delay", strict=False)
    return delay * rate


def littles_law_time(number: float, rate: float) -> float:
    """Mean delay from mean number in system and total arrival rate."""
    check_positive(rate, "rate")
    check_positive(number, "number", strict=False)
    return number / rate


def littles_law_residual(number: float, delay: float, rate: float) -> float:
    """Relative inconsistency ``|N - T*lam| / max(N, 1)`` of a triple.

    Zero for an exactly consistent triple; the simulator asserts this stays
    small in equilibrium (it is not exactly zero over a finite horizon
    because of edge effects at the measurement boundaries).
    """
    check_positive(rate, "rate")
    return abs(number - delay * rate) / max(abs(number), 1.0)
