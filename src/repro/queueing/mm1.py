"""The M/M/1 queue (exponential service) — the Jackson-model building block.

Under the PS/Jackson equilibrium (paper Section 2.2) each edge of the
network behaves like an independent M/M/1 queue whose number-in-system is
geometric with mean ``lam_e / (phi_e - lam_e)``; this module provides that
queue's closed-form quantities, including the full equilibrium pmf used by
the dominance tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queueing.mg1 import pollaczek_khinchin_number
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue with arrival rate ``lam`` and service rate ``phi``.

    Attributes
    ----------
    lam:
        Poisson arrival rate.
    phi:
        Service rate (mean service time ``1/phi``); the paper's unit-rate
        edges have ``phi = 1``.
    """

    lam: float
    phi: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.lam, "lam", strict=False)
        check_positive(self.phi, "phi")

    @property
    def load(self) -> float:
        """Utilisation ``rho = lam / phi``."""
        return self.lam / self.phi

    @property
    def stable(self) -> bool:
        """True iff ``rho < 1``."""
        return self.load < 1.0

    def _require_stable(self) -> None:
        if not self.stable:
            raise ValueError(f"unstable M/M/1 queue: rho = {self.load} >= 1")

    def mean_number(self) -> float:
        """Mean number in system: ``rho / (1 - rho) = lam / (phi - lam)``."""
        self._require_stable()
        return self.lam / (self.phi - self.lam)

    def mean_delay(self) -> float:
        """Mean time in system: ``1 / (phi - lam)``."""
        self._require_stable()
        return 1.0 / (self.phi - self.lam)

    def mean_wait(self) -> float:
        """Mean wait in queue (excluding service)."""
        return self.mean_delay() - 1.0 / self.phi

    def mean_queue_length(self) -> float:
        """Mean number waiting (excluding in service): ``rho^2/(1-rho)``."""
        self._require_stable()
        rho = self.load
        return rho * rho / (1.0 - rho)

    def number_pmf(self, kmax: int) -> np.ndarray:
        """Equilibrium P(N = k) for k = 0..kmax: geometric ``(1-rho) rho^k``."""
        self._require_stable()
        rho = self.load
        return (1.0 - rho) * rho ** np.arange(kmax + 1)

    def matches_pollaczek_khinchin(self) -> bool:
        """Sanity identity: the P-K formula with exponential moments
        (``E[S]=1/phi``, ``E[S^2]=2/phi^2``) reproduces ``rho/(1-rho)``."""
        self._require_stable()
        pk = pollaczek_khinchin_number(self.lam, 1.0 / self.phi, 2.0 / self.phi**2)
        return bool(np.isclose(pk, self.mean_number()))
