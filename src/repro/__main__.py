"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``bounds``     print every bound of the paper at an (n, rho) point
``simulate``   run a scenario on any registered engine through the
               replication engine (multi-seed, pooled CIs) and — for the
               standard model on a sandwich-comparable engine — compare
               against the bounds
``scenarios``  list the registered traffic scenarios
``engines``    list the registered simulation engines with their service
               laws and engine-specific parameters
``finite``     sweep loss probability vs buffer size on the
               finite-buffer engine, against the infinite baseline
``sweep``      run a declarative JSON/CSV sweep spec through the
               resumable runner (per-cell checkpoints; rerunning skips
               completed cells)
``validate``   run the statistical validation harness (closed forms vs
               engines, :mod:`repro.validation`): quick tier by default,
               ``--tier full`` for the distribution-level cells,
               ``--strict`` for a hard exit on gate failures (the CI
               merge-gate mode), ``--json-out`` for the machine-readable
               report CI uploads
``tables``     regenerate the paper's tables/figures (QUICK preset)
``figure1`` / ``figure2``  print the layering / saturated-edge figures

Examples
--------
::

    python -m repro bounds -n 10 --rho 0.9
    python -m repro simulate -n 8 --rho 0.8 --horizon 3000 --seed 7
    python -m repro simulate --scenario hotspot --replications 8 --processes 4
    python -m repro simulate --scenario transpose --engine slotted -n 6
    python -m repro simulate --engine rushed -n 8 --rho 0.7
    python -m repro simulate --engine ps -n 6 --rho 0.6 --replications 4
    python -m repro simulate --engine slotted --engine-param batch_rng=false
    python -m repro simulate --engine fifo --engine-param event_queue=heap
    python -m repro simulate --engine finite --engine-param buffer_size=4
    python -m repro simulate --scenario hotspot --param h=0.4
    python -m repro engines
    python -m repro finite -n 16 --rho 0.9
    python -m repro sweep spec.json -o out/
    python -m repro sweep grid.csv -o out/ --processes 4
    python -m repro validate --strict --json-out validation_report.json
    python -m repro validate --tier full --select 'md1-*'
    python -m repro validate --list-checks
    python -m repro figure2 -n 5
    python -m repro tables -o report.md
"""

from __future__ import annotations

import argparse
import sys

from repro.core.lower_bounds import asymptotic_gap, bound_summary
from repro.core.rates import lambda_for_load
from repro.util.tables import Table


def _cmd_bounds(args) -> int:
    lam = lambda_for_load(args.n, args.rho, args.convention)
    b = bound_summary(args.n, lam)
    t = Table(
        title=(
            f"Bounds for the {args.n}x{args.n} array at rho={args.rho} "
            f"(lambda={lam:.5f})"
        ),
        headers=["bound", "value"],
    )
    t.add_row(["lower: trivial (n-bar)", b.lower_trivial])
    t.add_row(["lower: Thm 8 (any scheme)", b.lower_st_any])
    t.add_row(["lower: Thm 8 (oblivious)", b.lower_st_oblivious])
    t.add_row(["lower: Thm 10 (copy)", b.lower_copy])
    t.add_row(["lower: Thm 12 (Markovian)", b.lower_markov])
    t.add_row(["lower: Thm 14 (saturated)", b.lower_saturated])
    t.add_row(["estimate: Sec 4.2 (M/D/1)", b.estimate])
    t.add_row(["upper: Thm 7 (Jackson/PS)", b.upper])
    print(t.render())
    print(
        f"gap upper/best-lower = {b.gap:.3f}; rho->1 limit = "
        f"{asymptotic_gap(args.n):.3f} ({'even' if args.n % 2 == 0 else 'odd'} n)"
    )
    return 0


def _parse_params(
    pairs: list[str], flag: str = "--param"
) -> tuple[tuple[str, object], ...]:
    """Parse repeated ``key=value`` flags (bool > int > float > string)."""
    out: list[tuple[str, object]] = []
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"{flag} expects key=value, got {pair!r}")
        value: object = raw
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            for cast in (int, float):
                try:
                    value = cast(raw)
                    break
                except ValueError:
                    continue
        out.append((key, value))
    return tuple(out)


def _cmd_simulate(args) -> int:
    from repro.scenarios import get_scenario
    from repro.sim.registry import get_engine
    from repro.sim.replication import CellSpec, ReplicationEngine

    scenario = get_scenario(args.scenario)
    info = get_engine(args.engine)
    engine_params = _parse_params(args.engine_param, "--engine-param")
    try:
        info.validate_params(dict(engine_params))
    except ValueError as exc:
        # A bad --engine-param should read like CLI usage help for the
        # *chosen* engine, not a bare registry traceback: list every
        # valid key with its default and doc line.
        lines = [f"simulate: {exc}"]
        if info.params:
            lines.append(
                f"valid --engine-param keys for engine {info.name!r}:"
            )
            lines += [f"  {p.describe()}  -- {p.doc}" for p in info.params]
        else:
            lines.append(f"engine {info.name!r} accepts no --engine-param")
        raise SystemExit("\n".join(lines)) from None
    # The vectorized kernels cannot track per-packet maxima, so the CLI
    # drops that (display-only) statistic rather than making the numpy
    # backend unreachable from `simulate`.
    track_maxima = (
        info.supports_maxima
        and dict(engine_params).get("backend") != "numpy"
    )
    spec = CellSpec(
        scenario=scenario.name,
        n=args.n,
        rho=args.rho,
        convention=args.convention,
        engine=args.engine,
        warmup=args.warmup,
        horizon=args.horizon,
        seeds=tuple(args.seed + k for k in range(args.replications)),
        track_saturated=scenario.standard_mesh and info.supports_saturated,
        track_maxima=track_maxima,
        params=_parse_params(args.param),
        engine_params=engine_params,
    )
    res = ReplicationEngine(processes=args.processes).run(spec)
    print(res.render())
    print(res.summary_line())
    if spec.engine == "finite":
        hw = res.loss_half_width
        ci = f"+/-{hw:.4f}" if hw == hw else ""  # nan with one replication
        print(
            f"loss: {res.loss_probability:.4f}{ci}  dropped {res.dropped} "
            f"of {res.generated}"
        )
    if not (scenario.bounds_apply and info.bound_sandwich):
        # The Theorem 7 sandwich only covers the standard array model (not
        # even the randomized mixture, which is not layered) on an engine
        # whose mean_delay it brackets (not the rushed makespan, and not
        # PS — PS *is* the upper bound's comparator system).
        return 0
    lam = lambda_for_load(args.n, args.rho, args.convention)
    b = bound_summary(args.n, lam)
    extremes = (
        f"  max delay {res.max_delay:.2f}  max queue {res.max_queue_length}"
        if spec.track_maxima
        else ""
    )
    print(
        f"bounds: [{b.lower_best:.3f}, {b.upper:.3f}]  estimate {b.estimate:.3f}"
        f"{extremes}"
    )
    ok = b.lower_best <= res.mean_delay <= b.upper * 1.05
    print(f"sandwich: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def _cmd_scenarios(args) -> int:
    from repro.scenarios import available_scenarios

    t = Table(title="Registered traffic scenarios", headers=["name", "description"])
    for s in available_scenarios():
        t.add_row([s.name, s.description])
    print(t.render())
    return 0


def _cmd_engines(args) -> int:
    from repro.sim.registry import available_engines

    t = Table(
        title="Registered simulation engines",
        headers=[
            "name", "aliases", "services", "backends", "engine params",
            "description",
        ],
    )
    for e in available_engines():
        t.add_row(
            [
                e.name,
                ", ".join(e.aliases) or "-",
                "/".join(e.services),
                "/".join(e.backends),
                ", ".join(p.describe() for p in e.params) or "-",
                e.description,
            ]
        )
    print(t.render())
    print("engine param details (pass via --engine-param KEY=VALUE):")
    for e in available_engines():
        for p in e.params:
            print(f"  {e.name}.{p.name}: {p.doc}")
    return 0


def _cmd_finite(args) -> int:
    from dataclasses import replace

    from repro.experiments import finite_buffer

    cfg = finite_buffer.FULL_FINITE if args.full else finite_buffer.QUICK_FINITE
    overrides = {}
    if args.n is not None:
        overrides["n"] = args.n
    if args.rho is not None:
        overrides["rho"] = args.rho
    if overrides:
        cfg = replace(cfg, **overrides)
    res = finite_buffer.run(cfg, processes=args.processes)
    print(res.render())
    problems = finite_buffer.shape_checks(res)
    for p in problems:
        print(f"CHECK FAILURE: {p}")
    return 1 if problems else 0


def _cmd_sweep(args) -> int:
    from pathlib import Path

    from repro.experiments.sweeps import run_sweep

    out = args.output
    if out is None:
        out = Path(args.spec).with_suffix("").as_posix() + "_out"
    run = run_sweep(args.spec, out, processes=args.processes)
    print(run.render())
    print(f"aggregate: {run.aggregate_csv}")
    return 0


def _cmd_validate(args) -> int:
    import json

    from repro.validation import available_checks, run_validation

    if args.list_checks:
        t = Table(
            title="Registered validation checks",
            headers=[
                "name", "severity", "tier", "engine", "backends",
                "description",
            ],
        )
        for c in available_checks():
            t.add_row(
                [c.name, c.severity, c.tier, c.engine,
                 "/".join(c.backends), c.description]
            )
        print(t.render())
        return 0

    def progress(outcome) -> None:
        status = "PASS" if outcome.passed else (
            "FAIL" if outcome.severity == "gate" else "WARN"
        )
        print(f"  {outcome.check} [{outcome.backend}] ... {status}", flush=True)

    report = run_validation(
        select=args.select or None,
        tier=args.tier,
        engines=args.engine or None,
        backends=args.backend or None,
        processes=args.processes,
        on_outcome=progress,
    )
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
        print(f"report written to {args.json_out}")
    if args.strict and not report.passed:
        # Mirror perf_gate.py: the default run is report-only so noisy
        # local boxes never block work, --strict is the CI merge gate.
        return 1
    return 0


def _cmd_tables(args) -> int:
    from repro.experiments.runner import render_report, run_all

    sections = run_all(full=args.full, processes=args.processes)
    report = render_report(sections)
    print(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
    return 1 if any(s.problems for s in sections) else 0


def _cmd_figure1(args) -> int:
    from repro.experiments import figure1

    res = figure1.run(args.n)
    print(res.render())
    return 0 if res.layered else 1


def _cmd_figure2(args) -> int:
    from repro.experiments import figure2

    print(figure2.run(args.n).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bounds and simulation for greedy routing on array networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bounds", help="print all bounds at (n, rho)")
    p.add_argument("-n", type=int, default=10)
    p.add_argument("--rho", type=float, default=0.9)
    p.add_argument("--convention", choices=("exact", "table1"), default="exact")
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser(
        "simulate", help="simulate a scenario through the replication engine"
    )
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--rho", type=float, default=0.8)
    p.add_argument("--convention", choices=("exact", "table1"), default="exact")
    p.add_argument("--warmup", type=float, default=300.0)
    p.add_argument("--horizon", type=float, default=3000.0)
    p.add_argument("--seed", type=int, default=0, help="base replication seed")
    p.add_argument(
        "--scenario", default="uniform", help="name from the scenario registry"
    )
    # No argparse choices: like --scenario, the name is validated lazily
    # against the engine registry inside CellSpec (so building the parser
    # never imports the simulation stack); unknown names raise a
    # ValueError listing every registered engine and alias.
    p.add_argument(
        "--engine",
        default="fifo",
        help="simulation engine from the engine registry: fifo (alias "
        "event), finite, slotted, rushed, ps — see `python -m repro engines`",
    )
    p.add_argument(
        "--replications", type=int, default=1, help="seeded replications to pool"
    )
    p.add_argument(
        "--processes", type=int, default=None, help="worker processes (default: cores)"
    )
    p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter (repeatable), e.g. --param h=0.4",
    )
    p.add_argument(
        "--engine-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="engine-specific knob (repeatable), validated against the "
        "engine registry, e.g. --engine-param event_queue=heap or "
        "--engine-param batch_rng=false; list them with "
        "`python -m repro engines`",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("scenarios", help="list registered traffic scenarios")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser(
        "engines",
        help="list registered simulation engines (services + engine params)",
    )
    p.set_defaults(func=_cmd_engines)

    p = sub.add_parser(
        "finite",
        help="sweep loss vs buffer size on the finite-buffer engine",
    )
    p.add_argument("-n", type=int, default=None, help="mesh side (default 16)")
    p.add_argument("--rho", type=float, default=None, help="network load")
    p.add_argument("--full", action="store_true", help="paper-scale preset")
    p.add_argument("--processes", type=int, default=None)
    p.set_defaults(func=_cmd_finite)

    p = sub.add_parser(
        "sweep",
        help="run a declarative sweep spec with resumable per-cell checkpoints",
    )
    p.add_argument("spec", help="sweep spec file (JSON or CSV)")
    p.add_argument(
        "-o",
        "--output",
        default=None,
        help="output directory (default: <spec>_out); rerunning with the "
        "same directory skips cells already checkpointed there",
    )
    p.add_argument("--processes", type=int, default=None)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "validate",
        help="run the statistical validation harness (closed forms vs "
        "engines); --strict is the CI merge-gate mode",
    )
    p.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="PATTERN",
        help="check name or fnmatch pattern (repeatable); unknown exact "
        "names raise with the registered-checks listing",
    )
    p.add_argument(
        "--tier",
        choices=("quick", "full"),
        default="quick",
        help="quick = the push/PR merge-gate lane; full adds the "
        "long-horizon distribution checks (nightly CI)",
    )
    p.add_argument(
        "--engine",
        action="append",
        default=[],
        help="restrict to checks of this engine (repeatable)",
    )
    p.add_argument(
        "--backend",
        action="append",
        default=[],
        help="restrict to these kernel backends (repeatable)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any gate-severity check fails",
    )
    p.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the machine-readable validation_report.json",
    )
    p.add_argument("--processes", type=int, default=None)
    p.add_argument(
        "--list-checks",
        action="store_true",
        help="list the registered checks and exit",
    )
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("tables", help="regenerate every table/figure")
    p.add_argument("--full", action="store_true")
    p.add_argument("--processes", type=int, default=None)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("figure1", help="print the Lemma 2 layering figure")
    p.add_argument("-n", type=int, default=4)
    p.set_defaults(func=_cmd_figure1)

    p = sub.add_parser("figure2", help="print the saturated-edges figure")
    p.add_argument("-n", type=int, default=6)
    p.set_defaults(func=_cmd_figure2)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly like a
        # well-behaved Unix tool.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
