"""Quick-tier mean-value checks: every engine against its closed form.

Each check runs a small replicated cell through the standard
``CellSpec``/``ReplicationEngine`` facade and scores the pooled means
against the exact analytic target with :func:`~repro.validation.framework.z_comparison`:

* ``mm1-delay`` — the fifo engine with exponential service on the
  isolated single-queue scenario *is* an M/M/1 queue: mean delay
  ``1/(1-rho)`` and mean number ``rho/(1-rho)``.
* ``md1-delay-fifo`` / ``md1-delay-slotted`` — deterministic service on
  the same cell is an M/D/1 queue (Pollaczek-Khinchin); the slotted
  engine at ``tau=1`` reproduces the same law, and both kernel backends
  of both engines are scored separately, so a biased vectorized solver
  is named individually.
* ``mm1k-loss`` — the finite engine with ``buffer_size=K`` on the single
  queue is an M/M/1/K system of capacity ``K+1``
  (:class:`repro.queueing.MM1KQueue`): loss probability and mean number.
* ``jackson-mesh`` — fifo with exponential service on the uniform mesh
  is an open Jackson network: mean number from
  :class:`~repro.queueing.ProductFormNetwork` and mean delay via
  Little's Law against the total external rate (zero-hop packets
  included, per the paper's convention).
* ``productform-ps`` — the PS engine on the same workload reaches the
  same product form with *deterministic* service (insensitivity).
* ``rushed-number`` — Theorem 10's rushed system: every edge queue is an
  independent M/D/1, so ``E[N] = sum_e MD1(lam_e).mean_number()`` (its
  makespan delay statistic has no closed form and is bounded, not
  pinned).
* ``littles-law-*`` — for every engine whose registry entry claims
  ``littles_law``, the worst across-replication relative residual
  between the direct delay average and ``E[N]/rate`` must stay under
  :data:`~repro.validation.framework.LITTLE_GATE`.
"""

from __future__ import annotations

import numpy as np

from repro.core.rates import array_edge_rates, lambda_for_load
from repro.queueing import MD1Queue, MM1KQueue, MM1Queue, ProductFormNetwork
from repro.sim.fifo_network import DETERMINISTIC, EXPONENTIAL
from repro.sim.registry import available_engines
from repro.sim.replication import CellSpec
from repro.topology.array_mesh import ArrayMesh
from repro.validation.framework import (
    GATE,
    LITTLE_GATE,
    QUICK,
    Comparison,
    ValidationCheck,
    backend_engine_params,
    register_check,
    run_cell,
    z_comparison,
)

#: The single-queue reference load and the quick-tier cell window. Eight
#: replications keep the across-replication se estimate honest (the
#: z-gate's 1.96 multiplier is optimistic at small R).
RHO_SINGLE = 0.7
SINGLE = dict(scenario="single", n=2, warmup=300.0, horizon=8000.0,
              seeds=tuple(range(8)))

#: The mesh reference cell (Jackson / product-form / rushed checks).
N_MESH, RHO_MESH = 4, 0.6
MESH = dict(scenario="uniform", n=N_MESH, rho=RHO_MESH, warmup=200.0,
            horizon=2500.0, seeds=tuple(range(6)))


def _mesh_product_form() -> tuple[ProductFormNetwork, float]:
    """The exact Jackson equilibrium of the uniform mesh cell and its
    total external rate (the Little's-Law denominator, zero-hop packets
    included)."""
    lam = lambda_for_load(N_MESH, RHO_MESH, "exact")
    rates = array_edge_rates(ArrayMesh(N_MESH), lam)
    pf = ProductFormNetwork.from_rates(tuple(rates))
    return pf, lam * N_MESH * N_MESH


def _mm1_delay(backend: str, processes: int | None) -> list[Comparison]:
    q = MM1Queue(RHO_SINGLE)
    res = run_cell(
        CellSpec(engine="fifo", service=EXPONENTIAL,
                 rho=RHO_SINGLE, engine_params=backend_engine_params(backend),
                 **SINGLE),
        processes,
    )
    return [
        z_comparison("mean_delay", res.mean_delay, q.mean_delay(),
                     res.delay_half_width),
        z_comparison("mean_number", res.mean_number, q.mean_number(),
                     res.number_half_width),
    ]


def _md1_delay(engine: str):
    def runner(backend: str, processes: int | None) -> list[Comparison]:
        q = MD1Queue(RHO_SINGLE)
        res = run_cell(
            CellSpec(engine=engine, service=DETERMINISTIC, rho=RHO_SINGLE,
                     engine_params=backend_engine_params(backend), **SINGLE),
            processes,
        )
        return [
            z_comparison("mean_delay", res.mean_delay, q.mean_delay(),
                         res.delay_half_width),
            z_comparison("mean_number", res.mean_number, q.mean_number(),
                         res.number_half_width),
        ]

    return runner


#: Waiting room of the M/M/1/K loss cell (system capacity K+1) and its
#: offered load — high enough that ~17% of packets drop, so the loss CI
#: is tight at quick-tier horizons.
BUFFER_K, RHO_LOSS = 2, 0.8


def _mm1k_loss(backend: str, processes: int | None) -> list[Comparison]:
    q = MM1KQueue.from_buffer(RHO_LOSS, BUFFER_K)
    res = run_cell(
        CellSpec(engine="finite", service=EXPONENTIAL, rho=RHO_LOSS,
                 engine_params=backend_engine_params(backend)
                 + (("buffer_size", BUFFER_K),),
                 **SINGLE),
        processes,
    )
    return [
        z_comparison("loss_probability", res.loss_probability,
                     q.blocking_probability(), res.loss_half_width),
        z_comparison("mean_number", res.mean_number, q.mean_number(),
                     res.number_half_width),
    ]


def _jackson_mesh(backend: str, processes: int | None) -> list[Comparison]:
    pf, total_rate = _mesh_product_form()
    res = run_cell(
        CellSpec(engine="fifo", service=EXPONENTIAL,
                 engine_params=backend_engine_params(backend), **MESH),
        processes,
    )
    return [
        z_comparison("mean_number", res.mean_number, pf.mean_number(),
                     res.number_half_width),
        z_comparison("mean_delay", res.mean_delay,
                     pf.mean_delay(total_rate), res.delay_half_width),
    ]


def _productform_ps(backend: str, processes: int | None) -> list[Comparison]:
    pf, total_rate = _mesh_product_form()
    res = run_cell(
        CellSpec(engine="ps", service=DETERMINISTIC,
                 engine_params=backend_engine_params(backend), **MESH),
        processes,
    )
    return [
        z_comparison("mean_number", res.mean_number, pf.mean_number(),
                     res.number_half_width),
        z_comparison("mean_delay", res.mean_delay,
                     pf.mean_delay(total_rate), res.delay_half_width),
    ]


def _rushed_number(backend: str, processes: int | None) -> list[Comparison]:
    lam = lambda_for_load(N_MESH, RHO_MESH, "exact")
    rates = array_edge_rates(ArrayMesh(N_MESH), lam)
    expected = float(
        sum(MD1Queue(r).mean_number() for r in rates if r > 0)
    )
    res = run_cell(
        CellSpec(engine="rushed", service=DETERMINISTIC,
                 engine_params=backend_engine_params(backend), **MESH),
        processes,
    )
    return [
        z_comparison("mean_number", res.mean_number, expected,
                     res.number_half_width),
    ]


def _littles_law(engine: str, service: str):
    def runner(backend: str, processes: int | None) -> list[Comparison]:
        res = run_cell(
            CellSpec(engine=engine, service=service,
                     engine_params=backend_engine_params(backend), **MESH),
            processes,
        )
        gap = res.littles_law_gap
        return [
            Comparison(metric="littles_law_gap", observed=gap, expected=0.0,
                       statistic=gap if np.isfinite(gap) else float("inf"),
                       threshold=LITTLE_GATE),
        ]

    return runner


register_check(ValidationCheck(
    name="mm1-delay",
    description="fifo + exponential on the single queue is M/M/1 "
    "(mean delay and number)",
    severity=GATE, tier=QUICK, engine="fifo", backends=("python",),
    runner=_mm1_delay,
))
register_check(ValidationCheck(
    name="md1-delay-fifo",
    description="fifo + deterministic on the single queue is M/D/1 "
    "(Pollaczek-Khinchin), both kernel backends",
    severity=GATE, tier=QUICK, engine="fifo",
    backends=("python", "numpy"),
    runner=_md1_delay("fifo"),
))
register_check(ValidationCheck(
    name="md1-delay-slotted",
    description="slotted at tau=1 on the single queue is M/D/1, both "
    "kernel backends",
    severity=GATE, tier=QUICK, engine="slotted",
    backends=("python", "numpy"),
    runner=_md1_delay("slotted"),
))
register_check(ValidationCheck(
    name="md1-delay-finite",
    description="finite with buffer_size=None on the single queue is "
    "M/D/1 (the infinite-buffer identity), both kernel backends",
    severity=GATE, tier=QUICK, engine="finite",
    backends=("python", "numpy"),
    runner=_md1_delay("finite"),
))
register_check(ValidationCheck(
    name="mm1k-loss",
    description="finite + exponential on the single queue is M/M/1/K "
    "(loss probability and mean number)",
    severity=GATE, tier=QUICK, engine="finite", backends=("python",),
    runner=_mm1k_loss,
))
register_check(ValidationCheck(
    name="jackson-mesh",
    description="fifo + exponential on the uniform mesh matches the "
    "Jackson product form (mean number, Little delay)",
    severity=GATE, tier=QUICK, engine="fifo", backends=("python",),
    runner=_jackson_mesh,
))
register_check(ValidationCheck(
    name="productform-ps",
    description="the PS engine reaches the same product form with "
    "deterministic service (insensitivity)",
    severity=GATE, tier=QUICK, engine="ps", backends=("python",),
    runner=_productform_ps,
))
register_check(ValidationCheck(
    name="rushed-number",
    description="the rushed system's E[N] is the sum of independent "
    "M/D/1 edge queues (Theorem 10)",
    severity=GATE, tier=QUICK, engine="rushed", backends=("python",),
    runner=_rushed_number,
))

# One Little's-Law residual check per engine whose delay statistic obeys
# it — generated from the live registry, so a new engine claiming
# littles_law is gated automatically. Deterministic service runs on
# every engine and every kernel backend (the vectorized kernels do not
# implement exponential service), and Little's Law is service-law-blind.
for _engine in available_engines():
    if not _engine.littles_law:
        continue
    _service = _engine.services[0]
    register_check(ValidationCheck(
        name=f"littles-law-{_engine.name}",
        description=f"the {_engine.name} engine's mean delay agrees with "
        "E[N]/rate on every replication (Little's Law)",
        severity=GATE, tier=QUICK, engine=_engine.name,
        backends=_engine.backends,
        runner=_littles_law(_engine.name, _service),
    ))
