"""The validation-check registry and runner.

Mirrors the engine registry pattern (:mod:`repro.sim.registry`): a check
is a frozen declarative record — name, severity, tier, the engine and
backends it exercises, and a runner — added via :func:`register_check`
and discoverable via :func:`available_checks`. :func:`run_validation`
executes a filtered selection and folds the outcomes into a
:class:`ValidationReport` that renders as a monospace table and
serialises to the machine-readable ``validation_report.json`` CI
uploads.

Tolerance calibration
---------------------
Every threshold here is calibrated against clean-tree runs, not guessed:

* :data:`Z_GATE` — mean-value comparisons are scored as a z-score on the
  *pooled replication CI*: ``z = |observed - expected| / se`` with
  ``se = half_width / 1.96`` (the across-replication ~95% half-width of
  :class:`~repro.sim.replication.ReplicatedResult`). Simulated delay
  series are autocorrelated and the across-replication se is itself a
  noisy estimate at small R, so clean cells show z up to ~4; the gate
  threshold 6 keeps a 2x-plus margin over that while a grossly biased
  engine (the mutation self-test injects a 10% service-rate bias) lands
  far above it.
* :data:`KS_GATE` — Kolmogorov-Smirnov comparisons thin the pooled delay
  samples to every :data:`KS_STRIDE`-th packet to break the within-run
  autocorrelation, then score ``sqrt(m_thin) * KS``. Clean thinned cells
  measure 0.6-1.0 (the iid 1% critical value is 1.63); the gate sits at
  2.5.
* :data:`QQ_WARN` — the largest relative quantile gap over the
  10%..99% grid of the same samples; a shape diagnostic, thresholded
  loosely.
* :data:`TV_GATE` — total-variation distance between a time-weighted
  empirical number-in-system distribution and the closed-form pmf;
  clean cells measure ~0.005, gate at 0.03.
* :data:`DOM_GATE` — largest empirical violation of a stochastic-
  dominance ordering against an analytic tail
  (:func:`repro.queueing.dominance_violation_vs_tail`); clean cells
  measure ~0.008, gate at 0.03.
* :data:`LITTLE_GATE` — worst across-replication Little's-Law relative
  residual; equilibrium cells measure well under 0.01, gate at 0.05.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.sim.registry import get_engine
from repro.sim.replication import CellSpec, ReplicatedResult, ReplicationEngine
from repro.util.tables import Table

#: Check severities: a failing ``gate`` check blocks the merge under
#: ``python -m repro validate --strict``; a failing ``warn`` check is
#: reported but never fails the run.
GATE, WARN = "gate", "warn"
SEVERITIES = (GATE, WARN)

#: Check tiers: ``quick`` runs on every push/PR (the merge gate lane),
#: ``full`` adds the long-horizon distribution-level cells (nightly CI
#: and the ``slow`` pytest lane).
QUICK, FULL = "quick", "full"
TIERS = (QUICK, FULL)

#: CI-calibrated thresholds — see the module docstring for how each was
#: measured on clean-tree runs.
Z_GATE = 6.0
KS_GATE = 2.5
KS_STRIDE = 20
QQ_WARN = 0.15
TV_GATE = 0.03
DOM_GATE = 0.03
LITTLE_GATE = 0.05


@dataclass(frozen=True)
class Comparison:
    """One scored observable of a check: an observed value against its
    analytic target, reduced to ``statistic <= threshold``."""

    metric: str
    observed: float
    expected: float
    statistic: float
    threshold: float

    @property
    def passed(self) -> bool:
        return bool(
            np.isfinite(self.statistic) and self.statistic <= self.threshold
        )

    def as_dict(self) -> dict:
        # Plain-python coercion: checks frequently hand numpy scalars in,
        # which json.dump rejects.
        return {
            "metric": self.metric,
            "observed": float(self.observed),
            "expected": float(self.expected),
            "statistic": float(self.statistic),
            "threshold": float(self.threshold),
            "passed": self.passed,
        }


@dataclass(frozen=True)
class ValidationCheck:
    """A registry entry: one closed-form cross-check of one engine.

    ``runner(backend, processes)`` runs the check's cell(s) on the given
    kernel backend and returns the scored :class:`Comparison` list;
    ``backends`` lists every backend the check applies to (each is run
    separately, so a biased backend is named individually in the
    report). ``severity`` is :data:`GATE` or :data:`WARN`; ``tier`` is
    :data:`QUICK` or :data:`FULL`.
    """

    name: str
    description: str
    severity: str
    tier: str
    engine: str
    backends: tuple[str, ...]
    runner: Callable[[str, int | None], list[Comparison]]

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"check {self.name!r}: severity must be one of "
                f"{'/'.join(SEVERITIES)}, got {self.severity!r}"
            )
        if self.tier not in TIERS:
            raise ValueError(
                f"check {self.name!r}: tier must be one of "
                f"{'/'.join(TIERS)}, got {self.tier!r}"
            )
        info = get_engine(self.engine)  # raises on unknown engines
        unknown = set(self.backends) - set(info.backends)
        if not self.backends or unknown:
            raise ValueError(
                f"check {self.name!r}: backends must be a non-empty subset "
                f"of engine {info.name!r}'s advertised backends "
                f"{info.backends!r}, got {self.backends!r}"
            )


_REGISTRY: dict[str, ValidationCheck] = {}


def register_check(check: ValidationCheck) -> ValidationCheck:
    """Add a check to the registry (name must be unused)."""
    if check.name in _REGISTRY:
        raise ValueError(f"validation check {check.name!r} already registered")
    _REGISTRY[check.name] = check
    return check


def get_check(name: str) -> ValidationCheck:
    """Look up a check by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown validation check {name!r} (known: {known})"
        ) from None


def available_checks() -> list[ValidationCheck]:
    """All registered checks, sorted by name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Helpers for check implementations.


def run_cell(spec: CellSpec, processes: int | None) -> ReplicatedResult:
    """Run one cell through the standard facade (the only sanctioned way
    for a check to simulate — every check exercises the same
    ``CellSpec``/``ReplicationEngine`` path users do)."""
    return ReplicationEngine(processes=processes).run(spec)


def z_score(observed: float, expected: float, half_width: float) -> float:
    """z-score of ``observed`` against ``expected`` on a pooled ~95%
    replication half-width (``se = half_width / 1.96``); ``inf`` when the
    half-width is degenerate so a broken CI can never silently pass."""
    se = half_width / 1.96
    if not np.isfinite(se) or se <= 0:
        return float("inf")
    return abs(observed - expected) / se


def z_comparison(
    metric: str,
    observed: float,
    expected: float,
    half_width: float,
    *,
    threshold: float = Z_GATE,
) -> Comparison:
    """A mean-value comparison scored by :func:`z_score`."""
    return Comparison(
        metric=metric,
        observed=observed,
        expected=expected,
        statistic=z_score(observed, expected, half_width),
        threshold=threshold,
    )


def thinned_ks(
    samples: np.ndarray,
    cdf: Callable[[np.ndarray], np.ndarray],
    *,
    stride: int = KS_STRIDE,
) -> float:
    """``sqrt(m) * KS`` of every ``stride``-th sample against an analytic
    CDF — thinning breaks the within-run autocorrelation that would
    otherwise inflate the raw KS statistic (see the module docstring)."""
    t = np.sort(np.asarray(samples, dtype=float)[::stride])
    m = t.size
    if m == 0:
        return float("inf")
    th = np.asarray(cdf(t), dtype=float)
    emp_hi = np.arange(1, m + 1) / m
    emp_lo = np.arange(m) / m
    ks = max(float(np.abs(emp_hi - th).max()), float(np.abs(th - emp_lo).max()))
    return float(np.sqrt(m) * ks)


def qq_gap(
    samples: np.ndarray,
    quantile: Callable[[np.ndarray], np.ndarray],
    *,
    probs: np.ndarray | None = None,
) -> float:
    """Largest relative gap between empirical and analytic quantiles
    over a 10%..99% probability grid."""
    x = np.asarray(samples, dtype=float)
    p = np.linspace(0.1, 0.99, 90) if probs is None else probs
    emp = np.quantile(x, p)
    th = np.asarray(quantile(p), dtype=float)
    return float(np.abs(emp - th).max() / max(np.abs(th).max(), 1e-12))


def tv_distance(empirical: dict[int, float], pmf: np.ndarray) -> float:
    """Total-variation distance between a time-weighted empirical
    distribution of N and a closed-form pmf over ``0..len(pmf)-1``
    (empirical mass beyond the pmf support counts fully)."""
    p = np.asarray(pmf, dtype=float)
    tv = 0.0
    for k in range(p.size):
        tv += abs(empirical.get(k, 0.0) - p[k])
    tv += sum(v for k, v in empirical.items() if k >= p.size)
    # Closed-form tail mass beyond the pmf grid is not charged: callers
    # pass a grid wide enough that it is negligible.
    return 0.5 * tv


# ----------------------------------------------------------------------
# Execution and reporting.


@dataclass
class CheckOutcome:
    """One (check, backend) execution: the scored comparisons, or the
    error that prevented them."""

    check: str
    description: str
    severity: str
    tier: str
    engine: str
    backend: str
    comparisons: list[Comparison] = field(default_factory=list)
    error: str | None = None

    @property
    def passed(self) -> bool:
        return self.error is None and all(c.passed for c in self.comparisons)

    @property
    def worst(self) -> float:
        """Worst ``statistic / threshold`` ratio (``inf`` on error) —
        the single number to sort a report by."""
        if self.error is not None:
            return float("inf")
        if not self.comparisons:
            return 0.0
        return max(c.statistic / c.threshold for c in self.comparisons)

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "description": self.description,
            "severity": self.severity,
            "tier": self.tier,
            "engine": self.engine,
            "backend": self.backend,
            "passed": self.passed,
            "error": self.error,
            "comparisons": [c.as_dict() for c in self.comparisons],
        }


@dataclass
class ValidationReport:
    """All outcomes of one :func:`run_validation` call."""

    tier: str
    outcomes: list[CheckOutcome]

    @property
    def gate_failures(self) -> list[CheckOutcome]:
        return [o for o in self.outcomes if o.severity == GATE and not o.passed]

    @property
    def warn_failures(self) -> list[CheckOutcome]:
        return [o for o in self.outcomes if o.severity == WARN and not o.passed]

    @property
    def passed(self) -> bool:
        """True when every gate-severity outcome passed (warn failures
        never fail a run)."""
        return not self.gate_failures

    def as_dict(self) -> dict:
        return {
            "tier": self.tier,
            "passed": self.passed,
            "gate_failures": [o.check for o in self.gate_failures],
            "warn_failures": [o.check for o in self.warn_failures],
            "outcomes": [o.as_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        """Monospace table, worst offenders first within each status."""
        t = Table(
            title=f"Validation report (tier={self.tier})",
            headers=[
                "check", "engine", "backend", "severity", "metric",
                "observed", "expected", "statistic", "threshold", "status",
            ],
        )
        ordered = sorted(
            self.outcomes, key=lambda o: (o.passed, -o.worst, o.check)
        )
        for o in ordered:
            status = "PASS" if o.passed else (
                "FAIL" if o.severity == GATE else "WARN"
            )
            if o.error is not None:
                t.add_row(
                    [o.check, o.engine, o.backend, o.severity,
                     "(error)", "-", "-", "-", "-", status]
                )
                continue
            for c in o.comparisons:
                t.add_row(
                    [o.check, o.engine, o.backend, o.severity, c.metric,
                     f"{c.observed:.5g}", f"{c.expected:.5g}",
                     f"{c.statistic:.3g}", f"{c.threshold:.3g}",
                     "PASS" if c.passed else status]
                )
        lines = [t.render()]
        for o in self.outcomes:
            if o.error is not None:
                lines.append(f"ERROR {o.check} [{o.backend}]: {o.error}")
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"validation: {verdict} — {len(self.outcomes)} outcomes, "
            f"{len(self.gate_failures)} gate failures, "
            f"{len(self.warn_failures)} warnings"
        )
        return "\n".join(lines)


def select_checks(
    *,
    select: Sequence[str] | None = None,
    tier: str = QUICK,
    engines: Sequence[str] | None = None,
) -> list[ValidationCheck]:
    """Resolve the check selection ``run_validation`` will execute.

    ``select`` patterns are matched with :mod:`fnmatch` (exact names
    work unchanged); an exact-looking pattern that matches nothing
    raises, so a typo cannot silently validate nothing. ``tier=FULL``
    includes the quick tier (full is a superset lane, like the pytest
    ``slow`` marker).
    """
    checks = available_checks()
    if tier == QUICK:
        checks = [c for c in checks if c.tier == QUICK]
    elif tier != FULL:
        raise ValueError(f"tier must be one of {'/'.join(TIERS)}, got {tier!r}")
    if engines is not None:
        wanted = set(engines)
        checks = [c for c in checks if c.engine in wanted]
    if select is not None:
        matched: list[ValidationCheck] = []
        for pattern in select:
            hits = [c for c in checks if fnmatch.fnmatch(c.name, pattern)]
            if not hits:
                get_check(pattern)  # raises with the known-names listing
            matched += [c for c in hits if c not in matched]
        checks = matched
    return checks


def run_validation(
    *,
    select: Sequence[str] | None = None,
    tier: str = QUICK,
    engines: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
    processes: int | None = None,
    on_outcome: Callable[[CheckOutcome], None] | None = None,
) -> ValidationReport:
    """Run the selected checks and pool their outcomes.

    A check that raises is recorded as a failed outcome carrying the
    error text (an engine that cannot even run its reference cell is the
    worst validation failure of all), so one broken check never hides
    the others' results. ``on_outcome`` fires after each (check,
    backend) execution for progress display.
    """
    outcomes: list[CheckOutcome] = []
    for check in select_checks(select=select, tier=tier, engines=engines):
        for backend in check.backends:
            if backends is not None and backend not in backends:
                continue
            outcome = CheckOutcome(
                check=check.name,
                description=check.description,
                severity=check.severity,
                tier=check.tier,
                engine=check.engine,
                backend=backend,
            )
            try:
                outcome.comparisons = list(check.runner(backend, processes))
            except Exception as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
    return ValidationReport(tier=tier, outcomes=outcomes)


def backend_engine_params(backend: str) -> tuple[tuple[str, object], ...]:
    """The ``engine_params`` tuple selecting a kernel backend (empty for
    the reference backend, so python-only engines need no ``backend``
    knob)."""
    if backend == "python":
        return ()
    return (("backend", backend),)
