"""Full-tier distribution-level diagnostics (the nightly lane).

These checks collect raw per-packet delay samples and time-weighted
number-in-system distributions through the facade's ``collect_delays`` /
``track_number_distribution`` flags and compare whole *laws*, not just
means — the failure mode they exist for is an engine or backend whose
mean happens to be right while its distribution is wrong (e.g. a draw
stream consumed in the wrong order, or a service law silently swapped).

* ``mm1-delay-distribution`` — the M/M/1 single-queue sojourn time is
  exactly ``Exp(1 - rho)``; scored by the thinned KS statistic (gate)
  and the max relative quantile (QQ) gap (same threshold family, looser
  — a shape diagnostic).
* ``wait-dominance`` — M/D/1 *waiting times* are stochastically
  dominated by the M/M/1 waiting-time law ``P(W > a) = rho e^{-(1-rho)a}``
  (a geometric sum of Uniform(0,1) excess-service terms against the same
  geometric sum of Exp(1) terms, term-wise dominated). The deterministic
  single queue yields exact per-packet waits as ``delay - 1``. Note the
  ordering genuinely fails for raw *sojourn* times — deterministic
  service puts a floor of 1 under every delay while exponential service
  has mass near 0 — which is why this check subtracts the service time.
* ``mm1-number-pmf`` / ``md1-number-pmf`` — the time-weighted N
  distribution of the single queue against the geometric M/M/1 pmf and
  the embedded-chain M/D/1 pmf (equal to the time-stationary law by
  PASTA), scored by total variation.
* ``mm1k-number-pmf`` — the finite engine's N distribution against the
  truncated-geometric M/M/1/K pmf.

All cells here are long-horizon (the pooled sample sets are ~10^5
packets) and carry the ``slow`` pytest marker on the test side; CI runs
them in the nightly ``full-tests`` lane only.
"""

from __future__ import annotations

import numpy as np

from repro.queueing import (
    MD1Queue,
    MM1KQueue,
    MM1Queue,
    dominance_violation_vs_tail,
)
from repro.sim.fifo_network import DETERMINISTIC, EXPONENTIAL
from repro.sim.replication import CellSpec
from repro.validation.framework import (
    DOM_GATE,
    FULL,
    GATE,
    KS_GATE,
    QQ_WARN,
    TV_GATE,
    Comparison,
    ValidationCheck,
    backend_engine_params,
    qq_gap,
    register_check,
    run_cell,
    thinned_ks,
    tv_distance,
)

#: Long-horizon single-queue cell: ~1.4e4 packets per replication, six
#: replications pooled.
RHO = 0.7
LONG = dict(scenario="single", n=2, rho=RHO, warmup=500.0, horizon=20000.0,
            seeds=tuple(range(6)))

#: Support grid for the number-distribution TV comparisons — wide enough
#: that the closed-form tail mass beyond it is < 1e-8 at rho = 0.7.
KMAX = 50


def _mm1_delay_distribution(
    backend: str, processes: int | None
) -> list[Comparison]:
    rate = 1.0 - RHO  # sojourn ~ Exp(phi - lam) = Exp(1 - rho)
    res = run_cell(
        CellSpec(engine="fifo", service=EXPONENTIAL, collect_delays=True,
                 engine_params=backend_engine_params(backend), **LONG),
        processes,
    )
    delays = res.pooled_delays()
    ks = thinned_ks(delays, lambda t: 1.0 - np.exp(-rate * t))
    qq = qq_gap(delays, lambda p: -np.log(1.0 - p) / rate)
    return [
        Comparison(metric="thinned_ks", observed=ks, expected=0.0,
                   statistic=ks, threshold=KS_GATE),
        Comparison(metric="qq_gap", observed=qq, expected=0.0,
                   statistic=qq, threshold=QQ_WARN),
    ]


def _wait_dominance(backend: str, processes: int | None) -> list[Comparison]:
    res = run_cell(
        CellSpec(engine="fifo", service=DETERMINISTIC, collect_delays=True,
                 engine_params=backend_engine_params(backend), **LONG),
        processes,
    )
    # Deterministic unit service: wait = sojourn - 1, clamped at 0 so
    # the zero-wait atom's float residue (delay = 1 +/- 1e-13) cannot
    # leak the whole atom into the strict tail just below 0.
    waits = np.maximum(res.pooled_delays() - 1.0, 0.0)
    violation = dominance_violation_vs_tail(
        waits, lambda a: RHO * np.exp(-(1.0 - RHO) * np.maximum(a, 0.0))
    )
    return [
        Comparison(metric="dominance_violation", observed=violation,
                   expected=0.0, statistic=violation, threshold=DOM_GATE),
    ]


def _number_pmf(service: str, pmf: np.ndarray):
    def runner(backend: str, processes: int | None) -> list[Comparison]:
        res = run_cell(
            CellSpec(engine="fifo", service=service,
                     track_number_distribution=True,
                     engine_params=backend_engine_params(backend), **LONG),
            processes,
        )
        tv = tv_distance(res.pooled_number_distribution(), pmf)
        return [
            Comparison(metric="tv_distance", observed=tv, expected=0.0,
                       statistic=tv, threshold=TV_GATE),
        ]

    return runner


#: The loss cell mirrors the quick-tier mm1k-loss check.
BUFFER_K, RHO_LOSS = 2, 0.8


def _mm1k_number_pmf(backend: str, processes: int | None) -> list[Comparison]:
    q = MM1KQueue.from_buffer(RHO_LOSS, BUFFER_K)
    res = run_cell(
        CellSpec(engine="finite", service=EXPONENTIAL,
                 track_number_distribution=True,
                 engine_params=backend_engine_params(backend)
                 + (("buffer_size", BUFFER_K),),
                 scenario="single", n=2, rho=RHO_LOSS, warmup=500.0,
                 horizon=20000.0, seeds=tuple(range(6))),
        processes,
    )
    tv = tv_distance(res.pooled_number_distribution(), q.number_pmf())
    return [
        Comparison(metric="tv_distance", observed=tv, expected=0.0,
                   statistic=tv, threshold=TV_GATE),
    ]


register_check(ValidationCheck(
    name="mm1-delay-distribution",
    description="the M/M/1 single-queue sojourn law Exp(1-rho): thinned "
    "KS gate plus a QQ shape diagnostic",
    severity=GATE, tier=FULL, engine="fifo", backends=("python",),
    runner=_mm1_delay_distribution,
))
register_check(ValidationCheck(
    name="wait-dominance",
    description="M/D/1 waiting times are stochastically dominated by "
    "the M/M/1 waiting-time law (waits, not sojourns)",
    severity=GATE, tier=FULL, engine="fifo", backends=("python",),
    runner=_wait_dominance,
))
register_check(ValidationCheck(
    name="mm1-number-pmf",
    description="time-weighted N distribution of the exponential single "
    "queue vs the geometric M/M/1 pmf (total variation)",
    severity=GATE, tier=FULL, engine="fifo", backends=("python",),
    runner=_number_pmf(EXPONENTIAL, MM1Queue(RHO).number_pmf(KMAX)),
))
register_check(ValidationCheck(
    name="md1-number-pmf",
    description="time-weighted N distribution of the deterministic "
    "single queue vs the embedded-chain M/D/1 pmf (total variation)",
    severity=GATE, tier=FULL, engine="fifo", backends=("python",),
    runner=_number_pmf(DETERMINISTIC, MD1Queue(RHO).number_pmf(KMAX)),
))
register_check(ValidationCheck(
    name="mm1k-number-pmf",
    description="the finite engine's N distribution vs the truncated-"
    "geometric M/M/1/K pmf (total variation)",
    severity=GATE, tier=FULL, engine="finite", backends=("python",),
    runner=_mm1k_number_pmf,
))
