"""Statistical validation harness: closed forms vs engines, in CI.

The repo carries the paper's full analytic substrate
(:mod:`repro.queueing`: M/M/1, M/D/1, M/M/1/K, Pollaczek-Khinchin,
product-form networks, Little's Law, stochastic dominance) *and* five
simulation engines with two kernel backends. This package is the runtime
statistical gate tying the two together: a registry of declarative
cross-checks, each running a reference cell through the standard
``CellSpec``/``ReplicationEngine`` facade and scoring the simulated
outcome against the exact closed form. A subtly biased new engine or
backend fails a gate check here before it can merge — the counterpart of
the *static* replint gate (:mod:`repro.analysis`) and the *draw-order*
golden-fixture gate.

The validation contract
-----------------------
1. **Severity.** Every check is ``gate`` or ``warn``
   (:data:`~repro.validation.framework.GATE` /
   :data:`~repro.validation.framework.WARN`). Gate checks block the
   merge under ``python -m repro validate --strict`` (the CI quick
   lane); warn checks report but never fail a run. Use ``gate`` only for
   *exact* correspondences with a calibrated margin; approximations get
   ``warn``.
2. **Tier.** ``quick`` checks run on every push/PR and must stay cheap
   (seconds, not minutes); ``full`` adds the long-horizon
   distribution-level cells, runs in nightly CI and under the ``slow``
   pytest marker. ``tier=full`` is a superset of ``quick``.
3. **Tolerances are CI-calibrated, never magic.** Mean-value checks are
   scored as z-scores on the pooled replication CI
   (:func:`~repro.validation.framework.z_comparison`); distribution
   checks use autocorrelation-aware statistics (thinned KS, total
   variation, dominance violation). Each threshold constant in
   :mod:`repro.validation.framework` documents the clean-tree value it
   was calibrated against and its margin. If a new check needs a new
   statistic, measure the clean tree first and record the measurement in
   the constant's docs.
4. **Coverage is enforced.** The ``validation-coverage`` replint rule
   (:mod:`repro.analysis.rules_validation`) fails lint when a registered
   engine — or a non-reference kernel backend an engine advertises —
   has no gate-severity check exercising it. Registering a new engine
   therefore *requires* registering its closed-form check in the same
   change.
5. **Registering a check** is one
   :func:`~repro.validation.framework.register_check` call in a module
   imported below: declare name, description, severity, tier, the
   engine and the backends it applies to, and a
   ``runner(backend, processes) -> list[Comparison]``. Runners must
   simulate only through :func:`~repro.validation.framework.run_cell`
   (the facade path users take) and must be deterministic given the
   spec's seed set. A runner that raises is reported as a failed
   outcome, never a crashed run.
6. **Self-validation.** The harness is itself validated against
   false-green: the mutation test in ``tests/test_validation.py``
   injects a deliberate service-rate bias and asserts the gate trips.

Entry points: ``python -m repro validate [--select ...] [--tier full]
[--strict] [--json-out report.json]`` (CLI), ``VALIDATE=1
scripts/check.sh`` (local lane), :func:`run_validation` (programmatic).
``scripts/validation_report.py`` renders the JSON report as markdown for
the CI run page.
"""

from repro.validation.framework import (
    DOM_GATE,
    FULL,
    GATE,
    KS_GATE,
    LITTLE_GATE,
    QQ_WARN,
    QUICK,
    TV_GATE,
    WARN,
    Z_GATE,
    CheckOutcome,
    Comparison,
    ValidationCheck,
    ValidationReport,
    available_checks,
    get_check,
    register_check,
    run_validation,
    select_checks,
)

# Importing the check modules is what registers the shipped check set
# (the same import-time pattern as the replint rule registry).
from repro.validation import checks_closedform as _checks_closedform
from repro.validation import checks_distribution as _checks_distribution

__all__ = [
    "DOM_GATE",
    "FULL",
    "GATE",
    "KS_GATE",
    "LITTLE_GATE",
    "QQ_WARN",
    "QUICK",
    "TV_GATE",
    "WARN",
    "Z_GATE",
    "CheckOutcome",
    "Comparison",
    "ValidationCheck",
    "ValidationReport",
    "available_checks",
    "get_check",
    "register_check",
    "run_validation",
    "select_checks",
]
