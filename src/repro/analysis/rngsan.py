"""rngsan — the runtime determinism sanitizer for the RNG draw stream.

The golden fixtures can tell you *that* two runs diverged; this module
tells you *where*. An instrumented RNG wrapper records every draw an
engine makes — the method name, the requested size, and the source
callsite — into a compact trace, and the differ localizes the first
divergent draw between two traces::

    draw #4812: a=exponential(size=8192) at python_backend.py:73
                b=exponential(size=512) at python_backend.py:73

Three ways to capture a trace:

* **Context manager** (tests, the golden harness)::

      from repro.analysis import rngsan
      with rngsan.trace(label="event_uniform_det") as tracer:
          run_the_cell()
      tracer.to_trace().save("a.trace")

* **Environment** — ``REPRO_RNGSAN=1`` makes every engine RNG built via
  :func:`repro.sim.rng.make_rng` record into a process-global tracer,
  dumped to ``$REPRO_RNGSAN_DIR/rngsan.trace`` (default ``.rngsan/``) at
  exit. ``scripts/check.sh`` exposes this as the ``RNGSAN=1`` lane.

* **Diff CLI**::

      python -m repro.analysis.rngsan diff a.trace b.trace

  exits 0 when the streams are identical, 1 with a localized report on
  the first divergence, 2 on usage errors.

Tracing costs a python-level indirection per draw, so it is strictly
opt-in and never active under the perf gate. The wrapper is draw-stream
transparent: it delegates every method to the real generator, so a
traced run returns bit-identical results to an untraced one.
"""

from __future__ import annotations

import argparse
import atexit
import json
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from os import environ
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

TRACE_VERSION = 1

#: Positional index of the ``size`` argument per Generator draw method.
#: Methods not listed are delegated untraced (seeding, state access, and
#: exotic draws the engines never make).
_SIZE_SPEC: dict[str, int] = {
    "random": 0,
    "standard_exponential": 0,
    "standard_normal": 0,
    "exponential": 1,
    "poisson": 1,
    "choice": 1,
    "geometric": 1,
    "integers": 2,
    "uniform": 2,
    "normal": 2,
}


def _normalize_size(value: Any) -> Any:
    """JSON-stable rendering of a ``size`` argument (None/int/list)."""
    if value is None or isinstance(value, int):
        return value
    if isinstance(value, (tuple, list)):
        return [int(v) for v in value]
    return int(value)


def _callsite(depth: int = 2) -> str:
    """``basename.py:lineno`` of the frame that made the draw."""
    frame = sys._getframe(depth)
    return f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"


@dataclass
class Trace:
    """A recorded draw stream: metadata plus ``[kind, size, callsite]`` rows."""

    meta: dict[str, Any] = field(default_factory=dict)
    draws: list[list[Any]] = field(default_factory=list)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "version": TRACE_VERSION,
                    "meta": self.meta,
                    "draws": self.draws,
                },
                separators=(",", ":"),
            )
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        data = json.loads(Path(path).read_text())
        if data.get("version") != TRACE_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {data.get('version')!r} "
                f"(this rngsan reads version {TRACE_VERSION})"
            )
        return cls(meta=dict(data.get("meta", {})), draws=list(data["draws"]))


@dataclass(frozen=True)
class Divergence:
    """The first point where two draw streams disagree."""

    index: int
    a: Optional[list[Any]]  # [kind, size, callsite]; None = stream ended
    b: Optional[list[Any]]

    @staticmethod
    def _render_one(draw: Optional[list[Any]]) -> str:
        if draw is None:
            return "<stream ended>"
        kind, size, site = draw
        return f"{kind}(size={size}) at {site}"

    def render(self) -> str:
        return (
            f"draw #{self.index}: a={self._render_one(self.a)}\n"
            f"{'':>{len(f'draw #{self.index}: ')}}b={self._render_one(self.b)}"
        )

    def as_json(self) -> dict[str, Any]:
        return {"index": self.index, "a": self.a, "b": self.b}


def first_divergence(a: Trace, b: Trace) -> Optional[Divergence]:
    """First draw where the streams differ in (kind, size), else ``None``.

    Callsites are reported but not compared — the same stream drawn from
    a refactored file is still the same stream.
    """
    for i, (da, db) in enumerate(zip(a.draws, b.draws)):
        if da[0] != db[0] or da[1] != db[1]:
            return Divergence(index=i, a=da, b=db)
    if len(a.draws) != len(b.draws):
        i = min(len(a.draws), len(b.draws))
        return Divergence(
            index=i,
            a=a.draws[i] if i < len(a.draws) else None,
            b=b.draws[i] if i < len(b.draws) else None,
        )
    return None


class TracingGenerator:
    """Transparent recording proxy around a ``np.random.Generator``.

    Draw methods listed in ``_SIZE_SPEC`` are wrapped to append one
    ``[kind, size, callsite]`` row per call before delegating; everything
    else (attributes, state, unlisted methods) passes straight through,
    so the wrapped generator produces a bit-identical stream.
    """

    def __init__(self, inner: Any, record: Callable[[list[Any]], None]):
        self._inner = inner
        self._record = record

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        pos = _SIZE_SPEC.get(name)
        if pos is None or not callable(attr):
            return attr
        record = self._record

        def traced(*args: Any, **kwargs: Any) -> Any:
            if "size" in kwargs:
                size = kwargs["size"]
            elif len(args) > pos:
                size = args[pos]
            else:
                size = None
            record([name, _normalize_size(size), _callsite()])
            return attr(*args, **kwargs)

        return traced


@dataclass
class Tracer:
    """Collects the draw stream of every RNG built while active."""

    meta: dict[str, Any] = field(default_factory=dict)
    draws: list[list[Any]] = field(default_factory=list)
    generators: list[dict[str, Any]] = field(default_factory=list)

    def make(self, seed: Any, **meta: Any) -> TracingGenerator:
        """The :func:`repro.sim.rng.make_rng` factory: wrap a fresh RNG."""
        self.generators.append(
            {"seed": repr(seed), "start": len(self.draws), **meta}
        )
        return TracingGenerator(np.random.default_rng(seed), self.draws.append)

    def to_trace(self) -> Trace:
        meta = dict(self.meta)
        meta["generators"] = list(self.generators)
        return Trace(meta=meta, draws=list(self.draws))


@contextmanager
def trace(**meta: Any) -> Iterator[Tracer]:
    """Record every engine RNG draw inside the ``with`` block.

    Installs a fresh :class:`Tracer` as the :mod:`repro.sim.rng` factory
    and uninstalls it on exit (restoring whatever was there before, so
    nesting inside an env-activated tracer round-trips).
    """
    from repro.sim import rng as simrng

    tracer = Tracer(meta=meta)
    previous = simrng._FACTORY
    simrng.install_factory(tracer.make)
    try:
        yield tracer
    finally:
        if previous is None:
            simrng.uninstall_factory()
        else:
            simrng.install_factory(previous)


# ----------------------------------------------------------------------
# Environment activation (REPRO_RNGSAN=1): one process-global tracer,
# dumped at interpreter exit.

_ENV_TRACER: Optional[Tracer] = None


def env_trace_path() -> Path:
    return Path(environ.get("REPRO_RNGSAN_DIR", ".rngsan")) / "rngsan.trace"


def env_tracer() -> Tracer:
    """The process-global tracer behind ``REPRO_RNGSAN=1`` (created lazily)."""
    global _ENV_TRACER
    if _ENV_TRACER is None:
        _ENV_TRACER = Tracer(meta={"source": "REPRO_RNGSAN"})
        atexit.register(flush_env_tracer)
    return _ENV_TRACER


def flush_env_tracer() -> Optional[Path]:
    """Write the env tracer's trace to disk now (idempotent; tests use it)."""
    global _ENV_TRACER
    if _ENV_TRACER is None or not _ENV_TRACER.generators:
        return None
    path = _ENV_TRACER.to_trace().save(env_trace_path())
    _ENV_TRACER = Tracer(meta={"source": "REPRO_RNGSAN"})
    return path


# ----------------------------------------------------------------------
# CLI: python -m repro.analysis.rngsan diff a.trace b.trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.rngsan",
        description="diff two RNG draw-stream traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    diff = sub.add_parser(
        "diff", help="localize the first divergent draw between two traces"
    )
    diff.add_argument("a", help="first .trace file")
    diff.add_argument("b", help="second .trace file")
    diff.add_argument(
        "--json", action="store_true", help="machine-readable result"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        a = Trace.load(args.a)
        b = Trace.load(args.b)
    except (OSError, ValueError, KeyError) as exc:
        print(f"rngsan: error: {exc}", file=sys.stderr)
        return 2
    div = first_divergence(a, b)
    if args.json:
        print(
            json.dumps(
                {
                    "identical": div is None,
                    "draws": [len(a.draws), len(b.draws)],
                    "divergence": None if div is None else div.as_json(),
                },
                indent=1,
                sort_keys=True,
            )
        )
    elif div is None:
        print(
            f"rngsan: identical draw streams ({len(a.draws)} draws)"
        )
    else:
        print(f"rngsan: streams diverge\n{div.render()}")
    return 0 if div is None else 1


if __name__ == "__main__":
    sys.exit(main())
