"""mtime-keyed result cache: stop re-parsing an unchanged tree.

The ``LINT=1`` lane and the fast CI leg run replint on every invocation;
on an unchanged tree that is pure re-parse cost. This cache memoizes one
full :func:`~repro.analysis.core.analyze_paths` run keyed by:

* the resolved, sorted analyzed path list plus the ``--select`` set
  (different invocations get different entries);
* per analyzed file, ``(mtime_ns, size)`` — any touched/added/removed
  file invalidates;
* the same stat signature over ``repro/analysis`` itself — editing a
  rule invalidates every entry, so a stale checker can never vouch for
  a tree.

On a hit the stored findings are replayed without opening a single
analyzed file. The cache lives in ``.replint_cache.json`` next to the
working directory by default (``--cache-file`` moves it, ``--no-cache``
bypasses); a corrupt or alien cache file is treated as a miss, never an
error. ``--fix`` runs always bypass the cache — they exist to change
the files the key is built from.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Finding, iter_python_files

CACHE_VERSION = 1
DEFAULT_CACHE_FILE = ".replint_cache.json"


def _stat_sig(path: Path) -> list[int]:
    st = path.stat()
    return [st.st_mtime_ns, st.st_size]


def _files_signature(paths: Iterable[str | Path]) -> dict[str, list[int]]:
    return {str(p): _stat_sig(p) for p in iter_python_files(paths)}


def _checker_signature() -> dict[str, list[int]]:
    pkg = Path(__file__).parent
    return {p.name: _stat_sig(p) for p in sorted(pkg.glob("*.py"))}


def _entry_key(
    paths: Sequence[str | Path], select: Sequence[str] | None
) -> str:
    resolved = sorted(str(Path(p).resolve()) for p in paths)
    raw = json.dumps([resolved, sorted(select) if select else None])
    return hashlib.sha1(raw.encode()).hexdigest()[:20]


def load(
    cache_file: str | Path,
    paths: Sequence[str | Path],
    select: Sequence[str] | None,
) -> tuple[list[Finding], int] | None:
    """Replay a cached run, or ``None`` on any miss/invalidation."""
    try:
        data = json.loads(Path(cache_file).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        return None
    entry = data.get("entries", {}).get(_entry_key(paths, select))
    if entry is None:
        return None
    if entry.get("checker") != _checker_signature():
        return None
    try:
        current = _files_signature(paths)
    except (OSError, FileNotFoundError):
        return None
    if entry.get("files") != current:
        return None
    try:
        findings = [Finding(**f) for f in entry["findings"]]
        num_files = int(entry["num_files"])
    except (KeyError, TypeError):
        return None
    return findings, num_files


def store(
    cache_file: str | Path,
    paths: Sequence[str | Path],
    select: Sequence[str] | None,
    findings: Sequence[Finding],
    num_files: int,
) -> None:
    """Record one completed run (best-effort: IO failures are ignored)."""
    cache_path = Path(cache_file)
    try:
        data = json.loads(cache_path.read_text())
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            data = {}
    except (OSError, ValueError):
        data = {}
    entries = data.setdefault("entries", {}) if data else {}
    if not data:
        data = {"version": CACHE_VERSION, "entries": entries}
    try:
        entries[_entry_key(paths, select)] = {
            "checker": _checker_signature(),
            "files": _files_signature(paths),
            "findings": [f.as_json() for f in findings],
            "num_files": num_files,
        }
        cache_path.write_text(json.dumps(data, indent=1, sort_keys=True))
    except OSError:  # pragma: no cover - read-only checkout etc.
        pass
