"""``rng-discipline``: the draw-order conventions behind bit-identity.

The same-seed bit-identity contract (see :mod:`repro.sim`) rests on
three RNG conventions that used to live only in review memory:

* **CDF bisection is right-sided.** Every ``searchsorted`` over a pinned
  CDF must pass ``side='right'`` — the boundary draw ``u == cdf[k]``
  otherwise selects a zero-rate source (the pre-PR-1 sampler bug, fixed
  once per engine and regression-pinned since). ``bisect_left`` /
  ``insort_left`` on a CDF is the same bug in stdlib clothing.
* **Engine hot loops draw in blocks.** Inside ``sim/`` modules, scalar
  ``rng.random()`` draws are sanctioned only as the probe of a
  right-sided CDF bisection (the pinned-CDF source draw); scalar
  ``rng.poisson(...)`` / ``rng.exponential(...)`` / ``rng.normal(...)``
  (no ``size=``) bypass the blocked-draw helpers that make draw order
  reproducible and cheap. Legacy compat streams that must keep a scalar
  draw carry a ``# replint: disable=rng-discipline`` with the reason.
* **No nondeterminism sources in engine code.** Iterating a ``set``
  (unordered), ``time.time()`` / ``datetime.now()`` (wall clock) and
  no-argument ``popitem()`` have no place in a trajectory that must be a
  pure function of the seed.

The CDF check applies everywhere; the blocked-draw and nondeterminism
checks apply to engine/kernel code only (any analyzed file under a
``sim`` directory).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register_rule

#: Scalar-draw methods that have blocked (``size=``) forms.
_BLOCKABLE_DRAWS = ("poisson", "exponential", "normal", "standard_exponential")


def _call_name(func: ast.AST) -> str:
    """The trailing identifier of a call target (``np.searchsorted`` ->
    ``searchsorted``), or ``""`` for computed targets."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _mentions_cdf(node: ast.AST) -> bool:
    return "cdf" in ast.unparse(node).lower()


def _is_rng_receiver(func: ast.AST) -> bool:
    """Whether a call target looks like a Generator method (``rng.x``)."""
    if not isinstance(func, ast.Attribute):
        return False
    return "rng" in ast.unparse(func.value).lower()


def _side_is_right(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "side":
            return isinstance(kw.value, ast.Constant) and kw.value.value == "right"
    return False


def _in_sim_scope(src: SourceFile) -> bool:
    return "sim" in src.path.parts or ".sim." in src.module


class RngDisciplineRule(Rule):
    name = "rng-discipline"
    description = (
        "CDF bisections must be side='right'; sim/ hot loops must use "
        "blocked draws and avoid nondeterminism sources (set iteration, "
        "wall clock, bare popitem)"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        sim_scope = _in_sim_scope(src)
        sanctioned: set[int] = set()  # ids of calls nested in a pinned draw
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                called = _call_name(node.func)
                if called == "searchsorted" and _side_is_right(node):
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Call) and sub is not node:
                            sanctioned.add(id(sub))
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(src, node, sim_scope, sanctioned)
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if sim_scope and _is_set_expr(it):
                    yield src.finding(
                        self.name,
                        it,
                        "iterating a set in engine code is order-"
                        "nondeterministic — sort it or use a list/dict",
                    )

    def _check_call(
        self,
        src: SourceFile,
        node: ast.Call,
        sim_scope: bool,
        sanctioned: set[int],
    ) -> Iterator[Finding]:
        called = _call_name(node.func)
        args_mention_cdf = any(_mentions_cdf(a) for a in node.args[:1])
        if called == "searchsorted" and args_mention_cdf:
            if not _side_is_right(node):
                yield src.finding(
                    self.name,
                    node,
                    "searchsorted over a CDF without side='right' — the "
                    "boundary draw u == cdf[k] would select a zero-rate "
                    "entry (use the pinned-CDF convention)",
                )
        elif called in ("bisect_left", "insort_left") and any(
            _mentions_cdf(a) for a in node.args
        ):
            yield src.finding(
                self.name,
                node,
                f"{called} over a CDF is a left-sided bisection — the "
                "repo's CDF draws are side='right' by contract",
            )
        if not sim_scope:
            return
        if _is_rng_receiver(node.func):
            if called == "random" and not node.args and not node.keywords:
                if id(node) not in sanctioned:
                    yield src.finding(
                        self.name,
                        node,
                        "scalar rng.random() outside a side='right' CDF "
                        "bisection — engine hot loops draw in blocks "
                        "(see the blocked-draw helpers in the kernels)",
                    )
            elif called in _BLOCKABLE_DRAWS:
                has_size = any(kw.arg == "size" for kw in node.keywords)
                if not has_size:
                    yield src.finding(
                        self.name,
                        node,
                        f"scalar rng.{called}(...) without size= in engine "
                        "code bypasses the blocked-draw helpers — draw a "
                        "block and index it",
                    )
        if called == "time" and isinstance(node.func, ast.Attribute):
            base = ast.unparse(node.func.value)
            if base == "time":
                yield src.finding(
                    self.name,
                    node,
                    "time.time() in engine code: trajectories must be a "
                    "pure function of the seed (wall clock forbidden)",
                )
        elif called == "now" and isinstance(node.func, ast.Attribute):
            if ast.unparse(node.func.value).endswith("datetime"):
                yield src.finding(
                    self.name,
                    node,
                    "datetime.now() in engine code: trajectories must be "
                    "a pure function of the seed (wall clock forbidden)",
                )
        elif called == "popitem" and not node.args and not node.keywords:
            yield src.finding(
                self.name,
                node,
                "bare popitem() in engine code pops an insertion-order-"
                "dependent item — make the eviction order explicit "
                "(OrderedDict.popitem(last=...) is fine)",
            )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node.func) in ("set", "frozenset") and not isinstance(
            node.func, ast.Attribute
        )
    return False


register_rule(RngDisciplineRule())
