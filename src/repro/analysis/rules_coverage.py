"""``golden-coverage`` and ``bench-coverage``: no unpinned engine ships.

The bit-identity contract only covers what the golden fixtures pin, and
the perf gate only covers what the bench JSONs record. Nothing used to
tie either set back to the engine registry: a sixth engine (or a third
kernel backend) could be registered, pass every test, and silently run
unpinned until its draw order drifted. These two project rules close the
gap by cross-checking live registry metadata against the committed
artifacts:

* **golden-coverage** — every registered engine must be pinned by
  ``tests/golden/engine_results.json``: at least one direct cell and one
  ``api_*`` facade cell per engine, plus one cell per capability that
  changes the draw stream or the recorded surface (an exponential-service
  cell when the engine supports :data:`~repro.sim.fifo_network.EXPONENTIAL`,
  a saturated-tracking cell for ``supports_saturated``, a maxima cell for
  ``supports_maxima``, both draw-order streams for a ``batch_rng`` knob,
  and both a lossy and an infinite-buffer cell for a ``buffer_size``
  knob). Only the reference ``python`` backend is draw-order-pinned, so
  other backends are golden-exempt — covering them is bench-coverage's
  job.
* **bench-coverage** — every registered engine, and every non-reference
  backend it advertises, must appear in at least one ``BENCH_*.json``
  cell so the perf gate sees the whole registry surface end-to-end.

Both rules trigger only when ``repro.sim.registry`` is in the analyzed
set, import the *live* registry (a synthetic engine registered by a test
is checked exactly like a shipped one), and locate the artifacts by
walking up from the registry source file — analyzing an installed tree
with no checkout simply skips the checks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.analysis.core import Finding, Rule, SourceFile, register_rule
from repro.analysis.rules_registry import REGISTRY_MODULE

#: Fixture-name prefixes per engine; default is the engine name itself.
#: ``fifo`` keeps its historical ``event_*`` cells (the ``event`` alias).
ENGINE_PREFIXES: dict[str, tuple[str, ...]] = {"fifo": ("event", "fifo")}

#: The draw-order-reference backend pinned by the golden fixtures.
PYTHON_BACKEND = "python"


def engine_prefixes(name: str) -> tuple[str, ...]:
    """Fixture/bench name tokens that identify cells of engine ``name``."""
    return ENGINE_PREFIXES.get(name, (name,))


def _registry_source(files: Sequence[SourceFile]) -> SourceFile | None:
    return next((f for f in files if f.module == REGISTRY_MODULE), None)


def _import_registry(
    src: SourceFile, rule: str
) -> tuple[Any, Finding | None]:
    try:
        import repro.sim.registry as registry
    except Exception as exc:  # pragma: no cover - broken tree
        return None, src.finding(
            rule, None, f"cannot import {REGISTRY_MODULE}: {exc}"
        )
    return registry, None


def _repo_root(src: SourceFile, marker: str) -> Path | None:
    """Nearest ancestor of the registry source containing ``marker``."""
    for parent in src.path.resolve().parents:
        if list(parent.glob(marker)):
            return parent
    return None


class GoldenCoverageRule(Rule):
    name = "golden-coverage"
    description = (
        "every registered engine and draw-stream-changing capability must "
        "be pinned by a golden fixture cell"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        src = _registry_source(files)
        if src is None:
            return
        registry, err = _import_registry(src, self.name)
        if err is not None:
            yield err
            return
        root = _repo_root(src, "tests/golden/engine_results.json")
        if root is None:
            return  # installed tree without a checkout: nothing to check
        fixture_path = root / "tests" / "golden" / "engine_results.json"
        try:
            cells: dict[str, dict[str, Any]] = json.loads(
                fixture_path.read_text()
            )
        except (ValueError, OSError) as exc:
            yield src.finding(
                self.name, None, f"cannot read {fixture_path}: {exc}"
            )
            return
        for engine in registry.available_engines():
            yield from self._check_engine(src, engine, cells)

    def _check_engine(
        self, src: SourceFile, engine: Any, cells: dict[str, dict[str, Any]]
    ) -> Iterator[Finding]:
        prefixes = engine_prefixes(engine.name)
        direct = {
            name: cell
            for name, cell in cells.items()
            if any(name.startswith(f"{p}_") for p in prefixes)
        }
        api = {
            name: cell
            for name, cell in cells.items()
            if any(name.startswith(f"api_{p}") for p in prefixes)
        }

        def miss(what: str, fix: str) -> Finding:
            return src.finding(
                self.name,
                None,
                f"engine {engine.name!r} has no golden cell pinning {what} "
                f"— add {fix} to tests/golden/regen.py and regenerate the "
                "fixture",
            )

        if not direct:
            yield miss(
                "its draw order at all",
                f"a '{prefixes[0]}_*' cell",
            )
            return  # every further check would just repeat the same gap
        if not api:
            yield miss(
                "the CellSpec/ReplicationEngine facade route",
                f"an 'api_{prefixes[0]}*' cell",
            )
        param_names = {p.name for p in engine.params}
        if "exponential" in engine.services and not any(
            "exp" in name for name in direct
        ):
            yield miss(
                "the exponential-service draw stream",
                f"a '{prefixes[0]}_*exp*' cell",
            )
        if engine.supports_saturated and not any(
            cell.get("mean_remaining_saturated", "nan") != "nan"
            for cell in direct.values()
        ):
            yield miss(
                "saturated-edge tracking (every cell records "
                "mean_remaining_saturated as nan)",
                "a saturated_mask cell",
            )
        if engine.supports_maxima and not any(
            cell.get("max_queue_length", -1) >= 0 for cell in direct.values()
        ):
            yield miss(
                "track_maxima=True (every cell records max_queue_length "
                "as -1)",
                "a track_maxima cell",
            )
        if "batch_rng" in param_names:
            compat = [n for n in direct if n.endswith("_compat")]
            if not compat or len(compat) == len(direct):
                yield miss(
                    "both batch_rng draw orders (batched cells and "
                    "'*_compat' legacy-stream cells)",
                    "cells for both batch_rng values",
                )
        if "buffer_size" in param_names:
            if not any("dropped" in cell for cell in direct.values()):
                yield miss(
                    "a lossy finite-buffer stream (no cell records drops)",
                    "a buffer_size cell that actually drops",
                )
            if not any("dropped" not in cell for cell in direct.values()):
                yield miss(
                    "the infinite-buffer (buffer_size=None) identity",
                    "a buffer_size=None cell",
                )


class BenchCoverageRule(Rule):
    name = "bench-coverage"
    description = (
        "every registered engine and non-reference backend must appear in "
        "a BENCH_*.json cell so the perf gate covers it"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        src = _registry_source(files)
        if src is None:
            return
        registry, err = _import_registry(src, self.name)
        if err is not None:
            yield err
            return
        root = _repo_root(src, "BENCH_*.json")
        if root is None:
            return  # no committed baselines next to this tree
        token_sets: list[frozenset[str]] = []
        for path in sorted(root.glob("BENCH_*.json")):
            try:
                data = json.loads(path.read_text())
            except (ValueError, OSError) as exc:
                yield src.finding(
                    self.name, None, f"cannot read {path}: {exc}"
                )
                continue
            for bench in data.get("benchmarks", []):
                token_sets.append(frozenset(str(bench["name"]).split("_")))
        if not token_sets:
            return
        for engine in registry.available_engines():
            tokens = frozenset(engine_prefixes(engine.name))
            if not any(tokens & ts for ts in token_sets):
                yield src.finding(
                    self.name,
                    None,
                    f"engine {engine.name!r} appears in no BENCH_*.json "
                    "cell — the perf gate never times it; add a bench "
                    "(benchmarks/) and regenerate the baseline",
                )
                continue
            for backend in engine.backends:
                if backend == PYTHON_BACKEND:
                    continue
                if not any(
                    (tokens & ts) and backend in ts for ts in token_sets
                ):
                    yield src.finding(
                        self.name,
                        None,
                        f"engine {engine.name!r} advertises backend "
                        f"{backend!r} but no BENCH_*.json cell times that "
                        "combination — add a bench named with both tokens "
                        f"(e.g. 'test_{engine.name}_..._{backend}')",
                    )


register_rule(GoldenCoverageRule())
register_rule(BenchCoverageRule())
