"""``replint`` — the repo's AST/import-graph invariant checker.

The reproduction's correctness story (same-seed bit-identity across five
engines, a numpy-free ``backend="python"`` path, registry metadata that
matches the simulator classes) rests on conventions that runtime tests
can only spot-check. This package enforces them *statically*, at lint
time, over the source tree:

=====================  ==================================================
rule                   invariant
=====================  ==================================================
``rng-discipline``     CDF bisections are ``side='right'``; engine hot
                       loops use blocked draws; no nondeterminism
                       sources (set iteration, wall clock, bare
                       ``popitem``) in ``sim/`` code
``backend-boundary``   ``numpy_backend`` is imported only at the
                       sanctioned lazy site and the kernels selection
                       layer stays numpy-free — the static proof that
                       ``backend="python"`` never loads the vectorized
                       module
``registry-consistency``  every registered ``EngineParam`` and
                       capability flag matches the simulator class
                       behind the engine
``shm-hygiene``        every ``SharedMemory(create=True)`` /
                       ``publish_cells`` site has a close+unlink owner
``mutable-default``    no mutable default arguments
``dead-import``        no unused module-level imports
=====================  ==================================================

Run it as ``python -m repro.analysis [paths]`` (defaults to the
installed ``repro`` package tree); ``--json`` emits a machine-readable
report, ``--select`` narrows to specific rules, ``--list-rules`` prints
the table above. Exit status is 0 on a clean tree, 1 when findings
survive, 2 on usage errors. Suppress a documented exception with
``# replint: disable=RULE`` (same line), ``disable-next=RULE`` or
``disable-file=RULE`` — always with a reason in the surrounding comment.

Adding a rule: subclass :class:`~repro.analysis.core.Rule`, register an
instance with :func:`~repro.analysis.core.register_rule`, and import the
module here. New engines/backends get their contracts enforced for free
when they go through the registry and the kernels selection layer; if a
new subsystem adds a *new* convention, add the rule in the same PR that
introduces the convention.
"""

from repro.analysis.core import (
    Finding,
    Rule,
    RULES,
    SourceFile,
    analyze_paths,
    register_rule,
    render_report,
)

# Importing the rule modules is what registers the shipped rule set.
from repro.analysis import rules_rng as _rules_rng
from repro.analysis import rules_imports as _rules_imports
from repro.analysis import rules_registry as _rules_registry
from repro.analysis import rules_shm as _rules_shm
from repro.analysis import rules_hygiene as _rules_hygiene

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "SourceFile",
    "analyze_paths",
    "register_rule",
    "render_report",
]
