"""``replint`` — the repo's AST/import-graph invariant checker, plus rngsan.

The reproduction's correctness story (same-seed bit-identity across five
engines, a numpy-free ``backend="python"`` path, registry metadata that
matches the simulator classes, golden/bench artifacts that cover the
whole registry surface) rests on conventions that runtime tests can only
spot-check. This package enforces them *statically*, at lint time, over
the source tree:

=====================  ==================================================
rule                   invariant
=====================  ==================================================
``rng-discipline``     CDF bisections are ``side='right'``; engine hot
                       loops use blocked draws; no nondeterminism
                       sources (set iteration, wall clock, bare
                       ``popitem``) in ``sim/`` code
``backend-boundary``   ``numpy_backend`` is imported only at the
                       sanctioned lazy site and the kernels selection
                       layer stays numpy-free — the static proof that
                       ``backend="python"`` never loads the vectorized
                       module
``registry-consistency``  every registered ``EngineParam`` and
                       capability flag matches the simulator class
                       behind the engine
``golden-coverage``    every registered engine and draw-stream-changing
                       capability flag is pinned by a golden fixture
                       cell (direct + ``api_*``; exp service, saturated
                       tracking, maxima, both ``batch_rng`` streams,
                       lossy + infinite buffers) — a new engine fails
                       the gate until it is pinned
``bench-coverage``     every registered engine and non-reference
                       backend appears in a ``BENCH_*.json`` cell, so
                       the perf gate covers the whole registry surface
``validation-coverage``  every registered engine and non-reference
                       backend has a gate-severity validation check
                       (:mod:`repro.validation`) cross-checking it
                       against the queueing closed forms
``hot-loop-alloc``     no per-iteration allocations (displays,
                       ``list()``/``dict()``/``set()``, ``np.array`` /
                       ``np.zeros``, string formatting) inside ``sim/``
                       run-loop bodies
``stale-suppression``  every ``# replint: disable`` comment still
                       silences a finding of a known rule
``shm-hygiene``        every ``SharedMemory(create=True)`` /
                       ``publish_cells`` site has a close+unlink owner
``mutable-default``    no mutable default arguments
``dead-import``        no unused module-level imports (autofixable
                       with ``--fix``)
=====================  ==================================================

Run it as ``python -m repro.analysis [paths]`` (defaults to the
installed ``repro`` package tree); ``--json`` emits a machine-readable
report (``--json-file`` also writes it for CI artifacts — each finding
carries the rule's one-line doc and a content-stable ``fingerprint`` so
reports diff cleanly across runs), ``--select`` narrows to specific
rules, ``--list-rules`` prints the table above, ``--fix`` applies the
mechanical ``dead-import`` rewrite. Results are memoized in
``.replint_cache.json`` keyed by file mtimes (``--no-cache`` bypasses).
Exit status is 0 on a clean tree, 1 when findings survive, 2 on usage
errors. Suppress a documented exception with ``# replint: disable=RULE``
(same line), ``disable-next=RULE`` or ``disable-file=RULE`` — always
with a reason in the surrounding comment; the ``stale-suppression`` rule
reports any such comment that stops earning its keep.

The package also ships the *runtime* side of the determinism story:
:mod:`repro.analysis.rngsan`, an opt-in draw-stream sanitizer
(``REPRO_RNGSAN=1`` or ``rngsan.trace(...)``) whose differ
(``python -m repro.analysis.rngsan diff a.trace b.trace``) localizes the
first divergent draw between two runs to a source callsite.

Writing a replint rule
----------------------
A rule is one module under this package:

1. Subclass :class:`~repro.analysis.core.Rule`. Give it a unique
   kebab-case ``name`` (the suppression/``--select`` handle) and a
   one-line ``description`` (the ``--list-rules`` row, and the ``doc``
   field every JSON finding carries).
2. Implement ``check_file(src)`` for per-file checks — ``src`` is a
   :class:`~repro.analysis.core.SourceFile` with the text, the parsed
   ``ast`` tree and the dotted module name — and/or ``check_project
   (files)`` for checks needing the whole analyzed set (import graphs,
   registry cross-checks). Yield findings via ``src.finding(self.name,
   node, message)``; write messages that say *what convention broke and
   what to do about it*, not just what matched.
3. Scope tightly. High-signal rules gate CI; a rule that needs routine
   suppressions in healthy code is mis-scoped. Use the path/module
   helpers (see ``_in_sim_scope`` in :mod:`repro.analysis.rules_rng`)
   to stay inside the layer that owns the convention, and make the rule
   trigger off *live* metadata where possible (the coverage rules import
   the actual registry, so synthetic test engines are checked exactly
   like shipped ones).
4. Register at import time: ``register_rule(MyRule())`` at module
   bottom, then import the module in the block below. Registration
   order is display order.
5. Test both directions in ``tests/test_analysis_rules.py``: a minimal
   fixture that trips the rule, and the real tree staying clean
   (``test_real_repro_tree_is_clean`` runs every rule over
   ``src/repro`` — a new rule that fires there must either fix the code
   or carry a reasoned suppression in the same PR).

Do not filter suppressions inside a rule — yield everything and let the
framework filter; that is what keeps the usage ledger behind
``stale-suppression`` accurate.

New engines/backends get their contracts enforced for free when they go
through the registry and the kernels selection layer; if a new subsystem
adds a *new* convention, add the rule in the same PR that introduces the
convention.
"""

from repro.analysis.core import (
    Finding,
    Rule,
    RULES,
    SourceFile,
    analyze_paths,
    register_rule,
    render_report,
)

# Importing the rule modules is what registers the shipped rule set.
from repro.analysis import rules_rng as _rules_rng
from repro.analysis import rules_imports as _rules_imports
from repro.analysis import rules_registry as _rules_registry
from repro.analysis import rules_coverage as _rules_coverage
from repro.analysis import rules_validation as _rules_validation
from repro.analysis import rules_hotloop as _rules_hotloop
from repro.analysis import rules_suppression as _rules_suppression
from repro.analysis import rules_shm as _rules_shm
from repro.analysis import rules_hygiene as _rules_hygiene

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "SourceFile",
    "analyze_paths",
    "register_rule",
    "render_report",
]
