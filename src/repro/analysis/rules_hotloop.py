"""``hot-loop-alloc``: per-iteration allocations in engine hot loops.

The python-backend kernels are the bit-identity *reference*, but they are
also what the perf gate times on every cell that is not explicitly
``numpy``-backed — an allocation smuggled into a per-event loop costs a
malloc per packet per hop across every replication of every sweep. This
rule flags the classic per-iteration allocators inside the loops that
matter:

* list/dict/set displays and comprehensions;
* bare ``list()`` / ``dict()`` / ``set()`` / ``tuple()`` constructor
  calls;
* numpy array constructors (``np.array``, ``np.zeros``, ``np.ones``,
  ``np.empty``, ``np.full``, ``np.arange``, ``np.asarray``,
  ``np.concatenate``);
* string formatting (f-strings, ``.format()``, ``%``-formatting).

Scope is deliberately narrow so the rule stays high-signal: only files
under ``sim/`` are checked, and only ``for``/``while`` bodies inside the
run-loop functions — ``run*`` functions in kernels modules (``run_fifo``,
``run_slotted``, ...), ``run`` / ``_run*`` methods elsewhere. Loop
*setup* (the iterable expression of a ``for``) is exempt: hoisting an
allocation into the iterator is exactly the fix this rule asks for.

Some per-iteration allocations are the algorithm (the mutable packet
records the queues carry, a per-slot delivery batch): those sites carry
``# replint: disable=hot-loop-alloc`` with the reason, which keeps them
visible in review and lets the escape hatch inventory be audited with
``--select hot-loop-alloc``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register_rule
from repro.analysis.rules_rng import _in_sim_scope

_ALLOC_CALLS = frozenset({"list", "dict", "set", "tuple"})
_NP_ALLOC_ATTRS = frozenset(
    {
        "array",
        "zeros",
        "ones",
        "empty",
        "full",
        "arange",
        "asarray",
        "concatenate",
    }
)
_DISPLAY_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_kernels_module(src: SourceFile) -> bool:
    return "kernels" in src.path.parts or ".kernels." in src.module


def _is_hot_function(src: SourceFile, node: ast.AST) -> bool:
    """Whether a function is a run loop this rule polices."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    if _is_kernels_module(src):
        return node.name.startswith("run")
    return node.name == "run" or node.name.startswith("_run")


def _describe_alloc(node: ast.AST) -> str | None:
    """A short label when ``node`` is a per-iteration allocator."""
    if isinstance(node, _DISPLAY_NODES):
        return f"{type(node).__name__} display"
    if isinstance(node, ast.JoinedStr):
        return "f-string"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        if isinstance(node.left, ast.Constant) and isinstance(
            node.left.value, str
        ):
            return "%-formatting"
        return None
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _ALLOC_CALLS:
        return f"{func.id}() call"
    if isinstance(func, ast.Attribute):
        if func.attr == "format" and isinstance(func.value, ast.Constant):
            return "str.format() call"
        if func.attr in _NP_ALLOC_ATTRS and isinstance(func.value, ast.Name):
            if func.value.id in ("np", "numpy"):
                return f"np.{func.attr}() call"
    return None


def _loop_bodies(func: ast.AST) -> Iterator[ast.AST]:
    """Every node that executes per-iteration of some loop in ``func``.

    ``for`` bodies (and ``orelse``) count; the ``iter`` expression does
    not — it runs once. ``while`` tests *and* bodies count: the test
    re-evaluates every iteration.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.For):
            for stmt in (*node.body, *node.orelse):
                yield stmt
        elif isinstance(node, ast.While):
            yield node.test
            for stmt in (*node.body, *node.orelse):
                yield stmt


class HotLoopAllocRule(Rule):
    name = "hot-loop-alloc"
    description = (
        "no per-iteration allocations (displays, list()/dict()/set(), "
        "np.array/np.zeros, string formatting) inside sim/ run-loop "
        "bodies"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        if not _in_sim_scope(src):
            return
        for func in ast.walk(src.tree):
            if not _is_hot_function(src, func):
                continue
            seen: set[int] = set()  # nested loops revisit the same nodes
            for root in _loop_bodies(func):
                for node in ast.walk(root):
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    label = _describe_alloc(node)
                    if label is None:
                        continue
                    # A comprehension's element expression is part of the
                    # comprehension's own allocation, already flagged.
                    yield src.finding(
                        self.name,
                        node,
                        f"{label} inside a {func.name}() loop allocates "
                        "per iteration — hoist it out of the loop, reuse "
                        "a buffer, or document the exception with "
                        "'# replint: disable=hot-loop-alloc'",
                    )


register_rule(HotLoopAllocRule())
