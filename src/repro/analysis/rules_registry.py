"""``registry-consistency``: registered engine metadata must match the code.

Every :class:`~repro.sim.registry.Engine` entry promises the facade
layers things about a simulator class it does not itself contain: that
each typed :class:`~repro.sim.registry.EngineParam` is a real
constructor (or run) parameter, and that the capability flags describe
options the class actually accepts. Nothing ties the promise to the
class — a renamed constructor kwarg or a dropped ``track_maxima`` option
would only surface when a sweep explodes inside a worker. This rule
closes the gap per registered engine:

* every ``EngineParam`` name resolves to a parameter of the simulator's
  ``__init__`` — or, for the run-scoped knobs in ``_RUN_PARAMS``
  (slotted ``batch_rng``), of its ``run`` method;
* ``supports_saturated`` implies the constructor accepts
  ``saturated_mask``; ``supports_maxima`` implies ``run`` accepts
  ``track_maxima``; ``supports_delays`` implies ``run`` accepts
  ``collect_delays``; ``supports_number_distribution`` implies ``run``
  accepts ``track_number_distribution``;
* an engine advertising the ``"numpy"`` backend must expose the
  ``backend`` constructor knob *and* the ``backend`` EngineParam, and a
  ``backend`` EngineParam's choices must equal the advertised
  ``Engine.backends`` tuple.

The simulator class behind each entry is recovered statically from the
registry source (the ``*Simulation`` class its ``run_cell`` builder
instantiates), then introspected with :func:`inspect.signature` — a
hybrid that survives refactors of either side. The rule runs once per
analysis, only when the registry module is part of the analyzed set, and
reports an import failure as a finding rather than crashing (a registry
that cannot import is the worst consistency violation of all).
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterator, Sequence

from repro.analysis.core import Finding, Rule, SourceFile, register_rule

#: Module whose presence in the analyzed set triggers the rule.
REGISTRY_MODULE = "repro.sim.registry"


def _builder_classes(tree: ast.Module) -> dict[str, str]:
    """``run_cell builder name -> *Simulation class name`` from the AST."""
    out: dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id.endswith("Simulation")
            ):
                out[node.name] = sub.func.id
                break
    return out


class RegistryConsistencyRule(Rule):
    name = "registry-consistency"
    description = (
        "every registered EngineParam must be a real constructor/run "
        "parameter and every capability flag a real option of the "
        "simulator class behind the engine"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        registry_src = next(
            (f for f in files if f.module == REGISTRY_MODULE), None
        )
        if registry_src is None:
            return
        try:
            import repro.sim.registry as registry
        except Exception as exc:  # pragma: no cover - broken tree
            yield registry_src.finding(
                self.name, None, f"cannot import {REGISTRY_MODULE}: {exc}"
            )
            return
        builder_to_class = _builder_classes(registry_src.tree)
        run_params = frozenset(getattr(registry, "_RUN_PARAMS", ()))
        for engine in registry.available_engines():
            yield from self._check_engine(
                registry_src, registry, engine, builder_to_class, run_params
            )

    def _check_engine(
        self,
        src: SourceFile,
        registry: object,
        engine: object,
        builder_to_class: dict[str, str],
        run_params: frozenset,
    ) -> Iterator[Finding]:
        builder = engine.run_cell.__name__
        cls_name = builder_to_class.get(builder)
        cls = getattr(registry, cls_name, None) if cls_name else None
        if cls is None:
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r}: cannot resolve the simulator "
                f"class instantiated by its run_cell builder {builder!r}",
            )
            return
        # Subclass engines (finite) take **kwargs and delegate to their
        # base constructor, so collect parameters across the whole MRO.
        init_params: set[str] = set()
        for base in cls.__mro__:
            if "__init__" in vars(base):
                init_params |= set(
                    inspect.signature(base.__init__).parameters
                )
        run_sig = set(inspect.signature(cls.run).parameters)
        for param in engine.params:
            if param.name in run_params:
                if param.name not in run_sig:
                    yield src.finding(
                        self.name,
                        None,
                        f"engine {engine.name!r}: run-scoped param "
                        f"{param.name!r} is not accepted by "
                        f"{cls.__name__}.run()",
                    )
            elif param.name not in init_params:
                yield src.finding(
                    self.name,
                    None,
                    f"engine {engine.name!r}: EngineParam {param.name!r} "
                    f"is not a constructor parameter of {cls.__name__} — "
                    "registry metadata and code have drifted",
                )
        if engine.supports_saturated and "saturated_mask" not in init_params:
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r} claims supports_saturated but "
                f"{cls.__name__} has no saturated_mask constructor param",
            )
        if engine.supports_maxima and "track_maxima" not in run_sig:
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r} claims supports_maxima but "
                f"{cls.__name__}.run() has no track_maxima option",
            )
        if engine.supports_delays and "collect_delays" not in run_sig:
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r} claims supports_delays but "
                f"{cls.__name__}.run() has no collect_delays option",
            )
        if (
            engine.supports_number_distribution
            and "track_number_distribution" not in run_sig
        ):
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r} claims supports_number_distribution "
                f"but {cls.__name__}.run() has no track_number_distribution "
                "option",
            )
        backend_param = next(
            (p for p in engine.params if p.name == "backend"), None
        )
        if "numpy" in engine.backends and (
            backend_param is None or "backend" not in init_params
        ):
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r} advertises the numpy backend but "
                "does not expose the backend knob (EngineParam + "
                "constructor parameter)",
            )
        if backend_param is not None and tuple(backend_param.choices) != tuple(
            engine.backends
        ):
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r}: backend EngineParam choices "
                f"{backend_param.choices!r} differ from Engine.backends "
                f"{engine.backends!r}",
            )


register_rule(RegistryConsistencyRule())
