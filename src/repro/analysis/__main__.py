"""CLI entry point: ``python -m repro.analysis [paths] [options]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import RULES, analyze_paths, render_report
from repro.analysis import autofix, cache
from repro.analysis.core import iter_python_files


def _default_paths() -> list[str]:
    """The installed ``repro`` package tree (what CI lints)."""
    import repro

    return [str(Path(repro.__file__).parent)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "replint: statically enforce the repo's bit-identity, "
            "backend-boundary, registry, coverage and hygiene invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    parser.add_argument(
        "--json-file",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULE[,RULE]",
        help="run only these rules (see --list-rules)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes first (dead-import), then analyze",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the result cache",
    )
    parser.add_argument(
        "--cache-file",
        default=cache.DEFAULT_CACHE_FILE,
        metavar="PATH",
        help=f"result cache location (default: {cache.DEFAULT_CACHE_FILE})",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, rule in RULES.items():
            print(f"{name:22s} {rule.description}")
        return 0
    paths = args.paths or _default_paths()
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    # --fix rewrites the files the cache key is built from, so it always
    # runs (and analyzes) uncached.
    use_cache = not args.no_cache and not args.fix
    try:
        if args.fix:
            for fix in autofix.fix_paths(paths):
                print(fix.render())
        cached = (
            cache.load(args.cache_file, paths, select) if use_cache else None
        )
        if cached is not None:
            findings, num_files = cached
        else:
            num_files = sum(1 for _ in iter_python_files(paths))
            findings = analyze_paths(paths, select=select)
            if use_cache:
                cache.store(args.cache_file, paths, select, findings, num_files)
    except (FileNotFoundError, ValueError) as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2
    print(render_report(findings, as_json=args.json, num_files=num_files))
    if args.json_file:
        Path(args.json_file).write_text(
            render_report(findings, as_json=True, num_files=num_files) + "\n"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
