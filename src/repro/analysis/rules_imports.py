"""``backend-boundary``: the static proof that ``backend="python"`` never
touches the vectorized kernel module.

The kernels layer documents (and runtime subprocess tests pin) an
optional-dependency boundary: ``repro/sim/kernels/__init__.py`` is the
numpy-free selection layer, and :mod:`repro.sim.kernels.numpy_backend`
is imported only inside ``get_kernel`` when a run actually selects
``backend="numpy"``. This rule replaces "trust the subprocess test" with
a static argument over the import structure of the analyzed tree:

1. **No module-level import of ``numpy_backend`` anywhere.** A chain of
   module-level imports is the only way a ``backend="python"`` run could
   reach the vectorized module without calling ``get_kernel`` with
   ``"numpy"``; since *no* analyzed module imports ``numpy_backend`` at
   module level, no such chain exists.
2. **Function-level imports of ``numpy_backend`` only at the sanctioned
   lazy site** — ``get_kernel`` inside a ``kernels/__init__.py`` — whose
   python branch is the one place the backend string is dispatched.
3. **The selection layer stays numpy-free**: no ``import numpy`` (any
   scope) inside ``kernels/__init__.py``, so the module keeps importing,
   probing and erroring cleanly on machines without numpy.
4. **Closure check**: the module-level import closure of the selection
   module must contain neither ``numpy`` nor ``numpy_backend`` — this
   reports the offending *chain* when an indirect route sneaks in
   through a helper module.

Together 1-3 prove the boundary; 4 exists to make an indirect violation
debuggable rather than just detectable. The runtime subprocess tests in
``tests/test_sim_kernels.py`` remain as the backstop that the *dynamic*
behaviour (lazy import, clean degradation without numpy) matches this
static picture.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.core import Finding, Rule, SourceFile, register_rule

#: Module basename of the vectorized backend (the forbidden import).
VECTOR_BACKEND = "numpy_backend"
#: The sanctioned lazy-import function in the selection layer.
LAZY_SITE = "get_kernel"


def _is_kernels_init(src: SourceFile) -> bool:
    return src.path.name == "__init__.py" and src.path.parent.name == "kernels"


def _imported_modules(node: ast.stmt, src: SourceFile) -> list[str]:
    """Absolute-ish dotted module names referenced by an import statement."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative: resolve against this file's package
            pkg_parts = src.module.split(".")
            if src.path.name != "__init__.py":
                pkg_parts = pkg_parts[:-1]
            base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
            base = ".".join(p for p in base_parts if p)
        else:
            base = node.module or ""
        mod = f"{base}.{node.module}" if node.level and node.module else base
        # ``from pkg import name`` may bind submodules: record both the
        # package and each ``pkg.name`` candidate.
        mods = [mod] if mod else []
        mods += [f"{mod}.{alias.name}" if mod else alias.name for alias in node.names]
        return mods
    return []


class _ImportScanner(ast.NodeVisitor):
    """Collects imports with their scope (module level vs function name)."""

    def __init__(self, src: SourceFile) -> None:
        self.src = src
        self._scope: list[str] = []
        #: (statement, imported module names, enclosing function or "")
        self.imports: list[tuple[ast.stmt, list[str], str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        self._record(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._record(node)

    def _record(self, node: ast.stmt) -> None:
        scope = self._scope[-1] if self._scope else ""
        self.imports.append((node, _imported_modules(node, self.src), scope))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()


def scan_imports(src: SourceFile) -> list[tuple[ast.stmt, list[str], str]]:
    scanner = _ImportScanner(src)
    scanner.visit(src.tree)
    return scanner.imports


def _references_vector_backend(modules: Sequence[str], node: ast.stmt) -> bool:
    if any(m.split(".")[-1] == VECTOR_BACKEND for m in modules):
        return True
    if isinstance(node, ast.ImportFrom):
        return any(alias.name == VECTOR_BACKEND for alias in node.names)
    return False


def _references_numpy(modules: Sequence[str], node: ast.stmt) -> bool:
    if any(m == "numpy" or m.startswith("numpy.") for m in modules):
        return True
    if isinstance(node, ast.ImportFrom):
        base = node.module or ""
        if base == "numpy" or base.startswith("numpy."):
            return True
    return False


class BackendBoundaryRule(Rule):
    name = "backend-boundary"
    description = (
        "numpy_backend may only be imported lazily inside get_kernel, and "
        "the kernels selection layer (kernels/__init__.py) must stay "
        "numpy-free — the static proof behind backend='python' isolation"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        if src.module.split(".")[-1] == VECTOR_BACKEND:
            return  # the vectorized module itself may import numpy freely
        kernels_init = _is_kernels_init(src)
        for node, modules, scope in scan_imports(src):
            if _references_vector_backend(modules, node):
                if not (kernels_init and scope == LAZY_SITE):
                    where = (
                        "at module level"
                        if not scope
                        else f"inside {scope}()"
                    )
                    yield src.finding(
                        self.name,
                        node,
                        f"import of {VECTOR_BACKEND} {where}: the "
                        "vectorized backend may only be imported lazily "
                        f"inside {LAZY_SITE}() of the kernels selection "
                        "layer, so backend='python' runs never load it",
                    )
            if kernels_init and _references_numpy(modules, node):
                yield src.finding(
                    self.name,
                    node,
                    "import numpy inside kernels/__init__.py: the "
                    "selection layer is numpy-free by contract (probe "
                    "with importlib.util.find_spec instead)",
                )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        by_module = {f.module: f for f in files}
        edges: dict[str, list[str]] = {}
        for src in files:
            outs: list[str] = []
            for _node, modules, scope in scan_imports(src):
                if scope:
                    continue  # module-level edges only
                outs.extend(modules)
            edges[src.module] = outs
        for src in files:
            if not _is_kernels_init(src):
                continue
            chain = _find_chain(src.module, edges, by_module)
            if chain and len(chain) > 2:
                yield src.finding(
                    self.name,
                    None,
                    "the kernels selection layer reaches "
                    f"{chain[-1]} through module-level imports: "
                    f"{' -> '.join(chain)}",
                )


def _find_chain(
    root: str,
    edges: dict[str, list[str]],
    by_module: dict[str, SourceFile],
) -> list[str] | None:
    """BFS for a module-level import chain from ``root`` to numpy or the
    vectorized backend; returns the chain or None."""
    seen = {root}
    queue: list[list[str]] = [[root]]
    while queue:
        chain = queue.pop(0)
        for dep in edges.get(chain[-1], []):
            if dep == "numpy" or dep.startswith("numpy.") or (
                dep.split(".")[-1] == VECTOR_BACKEND
            ):
                return chain + [dep]
            if dep in by_module and dep not in seen:
                seen.add(dep)
                queue.append(chain + [dep])
    return None


register_rule(BackendBoundaryRule())
