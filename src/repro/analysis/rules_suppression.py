"""``stale-suppression``: every escape hatch must still be earning its keep.

Suppression comments are the documented-exception mechanism, which makes
them the one place a real invariant violation can hide forever: once the
underlying code is fixed (or the rule changes), the ``# replint:
disable=...`` comment keeps silencing whatever lands on that line next.
This rule closes the loop — a suppression that silenced *nothing* during
the run is itself a finding, as is one naming a rule that does not
exist.

The detection cannot live in :meth:`Rule.check_file` because it needs
the run-wide usage ledger (which suppressions consumed findings from
which *executed* rules — ``--select`` must not make unrelated
suppressions look dead). The semantics therefore run inside
:func:`repro.analysis.core.analyze_paths` after filtering; this class is
the registry entry that gives the pass a name, a ``--select`` handle and
a ``--list-rules`` row. Assessment rules:

* a suppression for rule R is assessed only when R executed this run;
* ``disable=all`` is assessed only on a full (no ``--select``) run;
* a rule name no registered rule owns is reported on any run;
* ``# replint: disable=stale-suppression`` (on the suppression's own
  line, or file-wide) is the explicit opt-out — a suppression naming
  this rule is never assessed, and stale reports are themselves
  filtered through the normal suppression table.

One level only: a suppression that *only* silences stale-suppression
findings is not re-assessed for staleness.
"""

from __future__ import annotations

from repro.analysis.core import STALE_RULE, Rule, register_rule


class StaleSuppressionRule(Rule):
    """Marker entry: the detection runs in ``analyze_paths`` (see module doc)."""

    name = STALE_RULE
    description = (
        "every '# replint: disable' comment must still silence a finding "
        "of a known rule"
    )


register_rule(StaleSuppressionRule())
