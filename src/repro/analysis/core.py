"""The ``replint`` framework: files, findings, rules, suppressions, runner.

The checker is deliberately small: a :class:`SourceFile` wraps one parsed
module (source text, AST, best-effort dotted module name, suppression
table), a :class:`Rule` contributes findings either per file
(:meth:`Rule.check_file`) or once over the whole analyzed set
(:meth:`Rule.check_project` — import-graph and registry rules need the
global view), and :func:`analyze_paths` walks the requested paths, runs
every registered rule and filters suppressed findings.

Suppression vocabulary (the ``# replint:`` comment family)::

    x = risky()            # replint: disable=RULE[,RULE2]   same line
    # replint: disable-next=RULE                             next line
    # replint: disable-file=RULE                             whole file

``disable=all`` silences every rule at that granularity. Suppressions
are the *documented exception* mechanism — pair them with a reason in
the surrounding comment, the way the engine modules do.

Adding a rule is one module: subclass :class:`Rule`, instantiate it
through :func:`register_rule`, and import the module from
``repro.analysis`` so registration runs (see the existing ``rules_*``
modules for the idiom, and the "Statically enforced invariants" section
of :mod:`repro.sim` for what each shipped rule pins).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: The magic token that silences every rule in a suppression comment.
ALL_RULES = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """One parsed python module plus its suppression table."""

    path: Path
    text: str
    tree: ast.Module
    #: Best-effort dotted module name (``repro.sim.kernels``); for files
    #: outside any package this is just the stem.
    module: str
    #: line number -> rule names silenced on that line (may hold ``all``).
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rule names silenced for the whole file (may hold ``all``).
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        src = cls(
            path=path, text=text, tree=tree, module=module_name_for(path)
        )
        src._scan_suppressions()
        return src

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if m is None:
                continue
            rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
            kind = m.group("kind")
            if kind == "disable-file":
                self.file_suppressions.update(rules)
            elif kind == "disable-next":
                self.line_suppressions.setdefault(lineno + 1, set()).update(rules)
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, finding: Finding) -> bool:
        if self.file_suppressions & {finding.rule, ALL_RULES}:
            return True
        at_line = self.line_suppressions.get(finding.line, set())
        return bool(at_line & {finding.rule, ALL_RULES})

    def finding(
        self, rule: str, node: ast.AST | None, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (or the file head)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=rule, path=str(self.path), line=line, col=col, message=message
        )


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` package chain."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    pkg = path.parent
    while (pkg / "__init__.py").exists():
        parts.insert(0, pkg.name)
        pkg = pkg.parent
    return ".".join(parts) if parts else path.stem


class Rule:
    """Base class for one named invariant check."""

    #: Unique kebab-case rule id (what suppressions and --select use).
    name: str = ""
    #: One-line summary for ``--list-rules``.
    description: str = ""

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        """Whole-project findings over the full analyzed set (default: none)."""
        return iter(())


#: The rule registry: rule name -> instance, in registration order.
RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register a rule instance (names must be unique and kebab-case)."""
    if not rule.name:
        raise ValueError(f"rule {rule!r} has no name")
    if rule.name in RULES:
        raise ValueError(f"rule {rule.name!r} already registered")
    RULES[rule.name] = rule
    return rule


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise FileNotFoundError(f"replint: no such path: {path}")
        else:
            candidates = []
        for cand in candidates:
            if any(part.startswith(".") for part in cand.parts):
                continue  # hidden dirs (.git, .tox, ...)
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield cand


def load_files(paths: Iterable[str | Path]) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every python file under ``paths``.

    Unparseable files become ``parse-error`` findings rather than a
    crash — a syntax error must fail the lint run, not hide it.
    """
    files: list[SourceFile] = []
    errors: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            files.append(SourceFile.load(path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=int(lineno),
                    col=0,
                    message=f"cannot parse: {exc}",
                )
            )
    return files, errors


def analyze_paths(
    paths: Iterable[str | Path], *, select: Sequence[str] | None = None
) -> list[Finding]:
    """Run the (optionally selected) rules over ``paths``.

    Returns the surviving findings sorted by location; an empty list
    means the tree is clean.
    """
    files, findings = load_files(paths)
    by_path = {str(f.path): f for f in files}
    rules = list(RULES.values())
    if select:
        unknown = sorted(set(select) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(RULES)})"
            )
        rules = [RULES[name] for name in select]
    for rule in rules:
        for src in files:
            findings.extend(rule.check_file(src))
        findings.extend(rule.check_project(files))
    kept = []
    for finding in findings:
        src = by_path.get(finding.path)
        if src is not None and src.suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def render_report(
    findings: Sequence[Finding], *, as_json: bool, num_files: int
) -> str:
    """Human or machine rendering of one analysis run."""
    if as_json:
        return json.dumps(
            {
                "version": 1,
                "files": num_files,
                "rules": sorted(RULES),
                "findings": [f.as_json() for f in findings],
                "ok": not findings,
            },
            indent=1,
            sort_keys=True,
        )
    if not findings:
        return f"replint: {num_files} files clean ({len(RULES)} rules)"
    lines = [f.render() for f in findings]
    lines.append(
        f"replint: {len(findings)} finding(s) in {num_files} files "
        f"(suppress a documented exception with '# replint: disable=RULE')"
    )
    return "\n".join(lines)
