"""The ``replint`` framework: files, findings, rules, suppressions, runner.

The checker is deliberately small: a :class:`SourceFile` wraps one parsed
module (source text, AST, best-effort dotted module name, suppression
table), a :class:`Rule` contributes findings either per file
(:meth:`Rule.check_file`) or once over the whole analyzed set
(:meth:`Rule.check_project` — import-graph and registry rules need the
global view), and :func:`analyze_paths` walks the requested paths, runs
every registered rule and filters suppressed findings.

Suppression vocabulary (the ``# replint:`` comment family)::

    x = risky()            # replint: disable=RULE[,RULE2]   same line
    # replint: disable-next=RULE                             next line
    # replint: disable-file=RULE                             whole file

``disable=all`` silences every rule at that granularity. Suppressions
are the *documented exception* mechanism — pair them with a reason in
the surrounding comment, the way the engine modules do. Suppressions are
recognised only in real comment tokens (a mention inside a docstring or
string literal is inert), and each one is accountable: a suppression
whose rule no longer fires at its scope is itself reported by the
``stale-suppression`` rule, so dead escape hatches cannot accumulate.

Adding a rule is one module: subclass :class:`Rule`, instantiate it
through :func:`register_rule`, and import the module from
``repro.analysis`` so registration runs (see the existing ``rules_*``
modules for the idiom, the "Writing a replint rule" guide in
:mod:`repro.analysis`, and the "Statically enforced invariants" section
of :mod:`repro.sim` for what each shipped rule pins).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: The magic token that silences every rule in a suppression comment.
ALL_RULES = "all"

#: The rule name under which unusable suppressions are reported. The
#: marker Rule subclass lives in ``rules_suppression``; the detection
#: itself runs inside :func:`analyze_paths` because it needs to know
#: which suppressions were consumed by which executed rules.
STALE_RULE = "stale-suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``doc`` carries the owning rule's one-line description and
    ``fingerprint`` a stable identity (rule + path + normalized line
    *content*, so pure line-number shifts do not change it) — both are
    filled in by :func:`analyze_paths` so JSON reports can be diffed
    across runs.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    doc: str = ""
    fingerprint: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "doc": self.doc,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Suppression:
    """One ``# replint: disable...`` comment, with its usage ledger.

    ``used`` collects the rule names this suppression actually silenced
    during a run (:data:`ALL_RULES` when a ``disable=all`` consumed a
    finding of any rule); the stale-suppression pass reads it to report
    escape hatches that no longer do anything.
    """

    kind: str  # "disable" | "disable-next" | "disable-file"
    line: int  # line of the comment itself
    rules: frozenset[str]
    used: set[str] = field(default_factory=set)

    @property
    def target_line(self) -> int | None:
        """Line the suppression applies to (None = whole file)."""
        if self.kind == "disable":
            return self.line
        if self.kind == "disable-next":
            return self.line + 1
        return None

    def matches(self, finding: Finding) -> bool:
        if finding.rule == STALE_RULE and finding.rule not in self.rules:
            # ``disable=all`` must not shield its own staleness report —
            # opting out of the dead-suppression audit takes an explicit
            # ``disable=stale-suppression``.
            return False
        if not self.rules & {finding.rule, ALL_RULES}:
            return False
        target = self.target_line
        return target is None or target == finding.line

    def describe(self) -> str:
        return f"# replint: {self.kind}={','.join(sorted(self.rules))}"


@dataclass
class SourceFile:
    """One parsed python module plus its suppression table."""

    path: Path
    text: str
    tree: ast.Module
    #: Best-effort dotted module name (``repro.sim.kernels``); for files
    #: outside any package this is just the stem.
    module: str
    #: Every suppression comment found in the file, in line order.
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        return cls.from_text(path, path.read_text())

    @classmethod
    def from_text(cls, path: Path, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=str(path))
        src = cls(
            path=path, text=text, tree=tree, module=module_name_for(path)
        )
        src._scan_suppressions()
        return src

    def _comment_lines(self) -> Iterator[tuple[int, str]]:
        """(line, comment-text) pairs from real COMMENT tokens only.

        Tokenizing (rather than regex-scanning every raw line) keeps
        suppression *examples* inside docstrings and string literals —
        this module's own docstring included — from registering as live
        suppressions.
        """
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # The file parsed as AST, so this is near-unreachable; fall
            # back to raw lines rather than losing suppressions.
            for lineno, line in enumerate(self.text.splitlines(), start=1):
                if "#" in line:
                    yield lineno, line[line.index("#"):]

    def _scan_suppressions(self) -> None:
        for lineno, comment in self._comment_lines():
            m = _SUPPRESS_RE.search(comment)
            if m is None:
                continue
            rules = frozenset(
                r.strip() for r in m.group("rules").split(",") if r.strip()
            )
            if rules:
                self.suppressions.append(
                    Suppression(kind=m.group("kind"), line=lineno, rules=rules)
                )

    def consume(self, finding: Finding) -> bool:
        """Filter one finding, recording which suppressions silenced it."""
        matched = [s for s in self.suppressions if s.matches(finding)]
        for sup in matched:
            sup.used.add(
                finding.rule if finding.rule in sup.rules else ALL_RULES
            )
        return bool(matched)

    def suppressed(self, finding: Finding) -> bool:
        """Whether a finding is silenced (no usage bookkeeping)."""
        return any(s.matches(finding) for s in self.suppressions)

    def finding(
        self, rule: str, node: ast.AST | None, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (or the file head)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=rule, path=str(self.path), line=line, col=col, message=message
        )


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` package chain."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    pkg = path.parent
    while (pkg / "__init__.py").exists():
        parts.insert(0, pkg.name)
        pkg = pkg.parent
    return ".".join(parts) if parts else path.stem


class Rule:
    """Base class for one named invariant check."""

    #: Unique kebab-case rule id (what suppressions and --select use).
    name: str = ""
    #: One-line summary for ``--list-rules``.
    description: str = ""

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        """Whole-project findings over the full analyzed set (default: none)."""
        return iter(())


#: The rule registry: rule name -> instance, in registration order.
RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register a rule instance (names must be unique and kebab-case)."""
    if not rule.name:
        raise ValueError(f"rule {rule!r} has no name")
    if rule.name in RULES:
        raise ValueError(f"rule {rule.name!r} already registered")
    RULES[rule.name] = rule
    return rule


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise FileNotFoundError(f"replint: no such path: {path}")
        else:
            candidates = []
        for cand in candidates:
            if any(part.startswith(".") for part in cand.parts):
                continue  # hidden dirs (.git, .tox, ...)
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield cand


def load_files(paths: Iterable[str | Path]) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every python file under ``paths``.

    Unparseable files become ``parse-error`` findings rather than a
    crash — a syntax error must fail the lint run, not hide it.
    """
    files: list[SourceFile] = []
    errors: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            files.append(SourceFile.load(path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=int(lineno),
                    col=0,
                    message=f"cannot parse: {exc}",
                )
            )
    return files, errors


def _stale_findings(
    files: Sequence[SourceFile],
    executed: frozenset[str],
    *,
    full_run: bool,
) -> Iterator[Finding]:
    """Report suppressions that silenced nothing this run.

    A suppression is only *assessable* for rules that actually executed
    (``--select`` must not make unrelated suppressions look dead);
    ``disable=all`` is assessable only on a full run. A rule name no
    registered rule owns can never fire and is reported on any run. A
    suppression naming ``stale-suppression`` itself is the explicit
    opt-out and is never assessed.
    """
    for src in files:
        for sup in src.suppressions:
            if STALE_RULE in sup.rules:
                continue
            if ALL_RULES in sup.rules:
                if full_run and not sup.used:
                    yield Finding(
                        rule=STALE_RULE,
                        path=str(src.path),
                        line=sup.line,
                        col=0,
                        message=(
                            f"{sup.describe()!r} matched no finding of any "
                            "rule — the blanket suppression is dead weight; "
                            "remove it (or narrow it to the rule it was for)"
                        ),
                    )
                continue
            for rule in sorted(sup.rules):
                if rule not in RULES:
                    yield Finding(
                        rule=STALE_RULE,
                        path=str(src.path),
                        line=sup.line,
                        col=0,
                        message=(
                            f"{sup.describe()!r} suppresses unknown rule "
                            f"{rule!r} — it can never fire (typo, or a "
                            "rule that was removed?)"
                        ),
                    )
                elif rule in executed and rule not in sup.used:
                    yield Finding(
                        rule=STALE_RULE,
                        path=str(src.path),
                        line=sup.line,
                        col=0,
                        message=(
                            f"{sup.describe()!r} matched no {rule} finding "
                            "— the rule no longer fires here; remove the "
                            "stale suppression"
                        ),
                    )


def _enrich(
    findings: list[Finding], by_path: dict[str, SourceFile]
) -> list[Finding]:
    """Attach the rule doc and a stable fingerprint to each finding.

    The fingerprint hashes ``rule + path + normalized line content`` (the
    stripped source line, so inserting lines above a finding does not
    change its identity) plus an occurrence counter for repeated
    identical lines.
    """
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for f in findings:
        src = by_path.get(f.path)
        line_text = ""
        if src is not None:
            lines = src.text.splitlines()
            if 1 <= f.line <= len(lines):
                line_text = lines[f.line - 1].strip()
        key = (f.rule, Path(f.path).as_posix(), line_text)
        occ = seen.get(key, 0)
        seen[key] = occ + 1
        digest = hashlib.sha1(
            "\x00".join((*key, str(occ))).encode()
        ).hexdigest()[:16]
        rule = RULES.get(f.rule)
        doc = " ".join(rule.description.split()) if rule is not None else ""
        out.append(replace(f, doc=doc, fingerprint=digest))
    return out


def analyze_paths(
    paths: Iterable[str | Path], *, select: Sequence[str] | None = None
) -> list[Finding]:
    """Run the (optionally selected) rules over ``paths``.

    Returns the surviving findings sorted by location; an empty list
    means the tree is clean. Each finding carries the owning rule's
    one-line doc and a stable fingerprint (see :class:`Finding`).
    """
    files, findings = load_files(paths)
    by_path = {str(f.path): f for f in files}
    rules = list(RULES.values())
    if select:
        unknown = sorted(set(select) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(RULES)})"
            )
        rules = [RULES[name] for name in select]
    executed = frozenset(r.name for r in rules)
    for rule in rules:
        for src in files:
            findings.extend(rule.check_file(src))
        findings.extend(rule.check_project(files))
    kept = []
    for finding in findings:
        src = by_path.get(finding.path)
        if src is not None and src.consume(finding):
            continue
        kept.append(finding)
    if STALE_RULE in executed:
        for stale in _stale_findings(files, executed, full_run=select is None):
            src = by_path.get(stale.path)
            # A stale finding may be silenced by *another* suppression
            # (# replint: disable=stale-suppression); the subject never
            # matches its own report because stale-suppression is
            # excluded from assessment above.
            if src is not None and src.consume(stale):
                continue
            kept.append(stale)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return _enrich(kept, by_path)


def render_report(
    findings: Sequence[Finding], *, as_json: bool, num_files: int
) -> str:
    """Human or machine rendering of one analysis run."""
    if as_json:
        return json.dumps(
            {
                "version": 2,
                "files": num_files,
                "rules": sorted(RULES),
                "findings": [f.as_json() for f in findings],
                "ok": not findings,
            },
            indent=1,
            sort_keys=True,
        )
    if not findings:
        return f"replint: {num_files} files clean ({len(RULES)} rules)"
    lines = [f.render() for f in findings]
    lines.append(
        f"replint: {len(findings)} finding(s) in {num_files} files "
        f"(suppress a documented exception with '# replint: disable=RULE')"
    )
    return "\n".join(lines)
