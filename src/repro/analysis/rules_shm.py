"""``shm-hygiene``: every shared-memory block must have a cleanup owner.

A ``multiprocessing.shared_memory`` block outlives its creating process
unless somebody calls ``close()`` *and* ``unlink()`` — a leaked name
survives interpreter exit and trips the resource tracker. The repo's
cleanup contract (see :mod:`repro.sim.sharedcells`) is
parent-creates/parent-unlinks; this rule pins the shape of that
contract statically:

* a ``SharedMemory(create=True, ...)`` call must either be the context
  expression of a ``with`` statement, sit inside a ``try`` whose
  ``finally`` calls both ``.close()`` and ``.unlink()``, or be assigned
  to an attribute of a class that defines a ``close()`` method calling
  both (the owner-object pattern ``SharedCellBatch`` uses);
* a bare ``publish_cells(...)`` call must be used as a context manager
  (``with publish_cells(...) as batch:``) — it is the unlink-on-exit
  wrapper, and calling it without entering it publishes nothing but
  still looks like it worked.

Worker-side attachment (``SharedMemory(name=...)`` without
``create=True``) is exempt: attaching never owns the name, and the
parent's unlink already bounds its lifetime.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register_rule


def _is_shared_memory_create(node: ast.Call) -> bool:
    func = node.func
    called = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if called != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return False


def _is_publish_cells(node: ast.Call) -> bool:
    func = node.func
    called = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return called == "publish_cells"


def _with_context_exprs(tree: ast.Module) -> set[int]:
    """ids of Call nodes used directly as ``with`` context expressions."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    out.add(id(expr))
    return out


def _calls_close_and_unlink(nodes: list[ast.stmt]) -> bool:
    attrs = {
        sub.func.attr
        for stmt in nodes
        for sub in ast.walk(stmt)
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
    }
    return {"close", "unlink"} <= attrs


def _try_finally_guarded(tree: ast.Module) -> set[int]:
    """ids of Call nodes in a function holding a try whose finally both
    closes and unlinks (create-then-``try/finally`` is the idiom, so the
    guard is function-scoped rather than try-body-scoped)."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        guarded = any(
            isinstance(stmt, ast.Try) and _calls_close_and_unlink(stmt.finalbody)
            for fn_stmt in node.body
            for stmt in ast.walk(fn_stmt)
        )
        if guarded:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    out.add(id(sub))
    return out


def _class_closes_and_unlinks(cls: ast.ClassDef) -> bool:
    """Whether the class defines a ``close``/``__exit__`` that calls both
    ``.close()`` and ``.unlink()``."""
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name in (
            "close",
            "__exit__",
            "__del__",
        ):
            if _calls_close_and_unlink(node.body):
                return True
    return False


class ShmHygieneRule(Rule):
    name = "shm-hygiene"
    description = (
        "SharedMemory(create=True) sites need a with-block or an owning "
        "class whose close() both closes and unlinks; publish_cells must "
        "be entered as a context manager"
    )

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        with_exprs = _with_context_exprs(src.tree)
        finally_guarded = _try_finally_guarded(src.tree)
        # Map every node to its enclosing class (for the owner pattern).
        enclosing_class: dict[int, ast.ClassDef] = {}
        for cls in ast.walk(src.tree):
            if isinstance(cls, ast.ClassDef):
                for sub in ast.walk(cls):
                    enclosing_class.setdefault(id(sub), cls)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_shared_memory_create(node):
                if id(node) in with_exprs or id(node) in finally_guarded:
                    continue
                cls = enclosing_class.get(id(node))
                if cls is not None and _class_closes_and_unlinks(cls):
                    continue
                yield src.finding(
                    self.name,
                    node,
                    "SharedMemory(create=True) without a cleanup owner: "
                    "wrap it in a with-block or give the owning class a "
                    "close() that calls both .close() and .unlink() — a "
                    "leaked name survives interpreter exit",
                )
            elif _is_publish_cells(node) and id(node) not in with_exprs:
                yield src.finding(
                    self.name,
                    node,
                    "publish_cells(...) outside a with-statement: the "
                    "batch is only unlinked by the context manager's "
                    "exit — use `with publish_cells(...) as batch:`",
                )


register_rule(ShmHygieneRule())
