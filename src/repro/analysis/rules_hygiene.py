"""``mutable-default`` and ``dead-import``: baseline code hygiene.

Two classic footguns the bigger rules kept tripping over while this
checker was being built, kept as their own cheap rules:

* **mutable-default** — a ``def f(x=[])`` / ``x={}`` / ``x=set()``
  default is shared across *calls*; in a codebase whose workers memoize
  aggressively that's a latent cross-replication state leak. Flagged for
  list/dict/set displays, comprehensions, and bare ``list()`` /
  ``dict()`` / ``set()`` calls in any default position.
* **dead-import** — a module-level import whose bound name is never used
  in the module. Dead imports are how boundary violations start (an
  unused ``import numpy`` in the wrong module is one refactor away from
  a real one), so the backend-boundary story wants them gone. The check
  is deliberately conservative: ``__init__.py`` files are exempt
  (imports *are* their API), as are ``from __future__`` imports,
  explicit re-exports (``import x as x``), and names listed in
  ``__all__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register_rule

_MUTABLE_CALLS = ("list", "dict", "set", "OrderedDict", "defaultdict", "deque")


def _is_mutable_default(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    name = "mutable-default"
    description = "function defaults must not be mutable objects"

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield src.finding(
                        self.name,
                        default,
                        f"mutable default argument in {node.name}(): the "
                        "object is shared across calls — default to None "
                        "and create it in the body",
                    )


def dead_imports(src: SourceFile) -> list[tuple[str, ast.stmt]]:
    """``(bound name, import statement)`` pairs for unused imports.

    Shared between the ``dead-import`` rule and the ``--fix`` rewriter
    so both agree exactly on what counts as dead. Exemptions:
    ``__init__.py`` files (imports are their API), ``from __future__``,
    explicit re-exports (``import x as x``), and ``__all__`` names.
    """
    if src.path.name == "__init__.py":
        return []
    bound: list[tuple[str, ast.stmt]] = []
    for node in src.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bound.append((name, node))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue  # explicit re-export idiom
                bound.append((alias.asname or alias.name, node))
    if not bound:
        return []
    used: set[str] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # `import a.b` then `a.b.c`: the root Name node covers it.
            pass
    used |= _all_exports(src.tree)
    # Name nodes inside the import statements themselves don't exist
    # (import targets are alias objects, not Names), so collecting
    # every Name id cannot self-mark an import as used.
    return [(name, stmt) for name, stmt in bound if name not in used]


class DeadImportRule(Rule):
    name = "dead-import"
    description = "module-level imports must be used (or re-exported)"

    def check_file(self, src: SourceFile) -> Iterator[Finding]:
        for name, stmt in dead_imports(src):
            yield src.finding(
                self.name,
                stmt,
                f"import {name!r} is never used in this module — dead "
                "imports are how boundary violations start; remove it "
                "(or re-export explicitly with 'as')",
            )


def _all_exports(tree: ast.Module) -> set[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return {
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        }
    return set()


register_rule(MutableDefaultRule())
register_rule(DeadImportRule())
