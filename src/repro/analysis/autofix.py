"""``--fix``: mechanical rewrites for findings with one obvious fix.

Only ``dead-import`` is autofixable today — the fix (delete the unused
binding) is purely mechanical and cannot change behavior, which is the
bar for anything this module touches. The fixer shares its detection
with the rule (:func:`repro.analysis.rules_hygiene.dead_imports`), so
``--fix`` removes exactly what the rule reports, nothing more:

* suppressed findings are left alone (a ``# replint:
  disable=dead-import`` keeps its import);
* a statement whose every binding is dead is deleted whole, comments on
  the same line included;
* a statement with a mix of live and dead aliases (``from x import a,
  b``) is rewritten with only the live aliases, via ``ast.unparse`` —
  same-line comments do not survive that rewrite, which is the one
  behavior-adjacent edge and is why mixed statements are rare in a tree
  this rule keeps clean.

Fixing runs per file until a pass removes nothing (dropping one import
can orphan another), re-parsing between passes so line numbers stay
honest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.core import SourceFile, iter_python_files
from repro.analysis.rules_hygiene import DeadImportRule, dead_imports

_RULE = DeadImportRule()


@dataclass(frozen=True)
class Fix:
    """One applied rewrite: which names left which file."""

    path: str
    line: int
    removed: tuple[str, ...]

    def render(self) -> str:
        names = ", ".join(self.removed)
        return f"{self.path}:{self.line}: removed dead import(s): {names}"


def _rewrite_once(src: SourceFile) -> tuple[str | None, list[Fix]]:
    """One fix pass over one parsed file: (new text | None, fixes)."""
    dead = [
        (name, stmt)
        for name, stmt in dead_imports(src)
        if not src.suppressed(
            src.finding(_RULE.name, stmt, f"import {name!r} is never used")
        )
    ]
    if not dead:
        return None, []
    by_stmt: dict[int, list[str]] = {}
    stmts: dict[int, ast.stmt] = {}
    for name, stmt in dead:
        by_stmt.setdefault(id(stmt), []).append(name)
        stmts[id(stmt)] = stmt
    lines = src.text.splitlines(keepends=True)
    fixes: list[Fix] = []
    # Rewrite bottom-up so earlier line numbers stay valid.
    for stmt_id in sorted(
        by_stmt, key=lambda sid: stmts[sid].lineno, reverse=True
    ):
        stmt = stmts[stmt_id]
        removed = by_stmt[stmt_id]
        start, end = stmt.lineno - 1, (stmt.end_lineno or stmt.lineno)
        live = [
            alias
            for alias in getattr(stmt, "names", [])
            if (alias.asname or alias.name.split(".")[0]) not in removed
        ]
        if live:
            pruned = ast.copy_location(stmt, stmt)
            pruned.names = live  # type: ignore[attr-defined]
            indent = lines[start][: len(lines[start]) - len(lines[start].lstrip())]
            replacement = indent + ast.unparse(pruned) + "\n"
            lines[start:end] = [replacement]
        else:
            del lines[start:end]
        fixes.append(
            Fix(path=str(src.path), line=stmt.lineno, removed=tuple(sorted(removed)))
        )
    return "".join(lines), list(reversed(fixes))


def fix_paths(paths: Iterable[str | Path]) -> list[Fix]:
    """Apply every dead-import fix under ``paths``; returns what changed."""
    all_fixes: list[Fix] = []
    for path in iter_python_files(paths):
        while True:
            try:
                src = SourceFile.load(path)
            except (SyntaxError, ValueError, UnicodeDecodeError):
                break  # the analyze pass will report it as parse-error
            new_text, fixes = _rewrite_once(src)
            if new_text is None:
                break
            path.write_text(new_text)
            all_fixes.extend(fixes)
    return all_fixes
