"""``validation-coverage``: no statistically unvalidated engine ships.

The validation harness (:mod:`repro.validation`) is the runtime
statistical merge gate: gate-severity checks compare each engine's
simulated means and distributions against the queueing closed forms. But
the harness only gates what a check covers — a sixth engine (or a third
kernel backend) could be registered, pass lint, tests and the golden
gate, and never have its statistics cross-checked at all. This project
rule closes the loop against the *live* registries:

* every registered engine must have at least one **gate-severity**
  validation check (any tier) exercising it;
* every non-reference kernel backend an engine advertises must be
  covered by at least one gate-severity check that runs on that backend
  (the reference ``python`` backend is implied by the engine-level
  requirement).

Like the golden/bench coverage rules, the rule triggers only when
``repro.sim.registry`` is in the analyzed set and imports the live
registries, so a synthetic engine registered by a test is held to the
same standard as a shipped one.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.analysis.core import Finding, Rule, SourceFile, register_rule
from repro.analysis.rules_coverage import (
    PYTHON_BACKEND,
    _import_registry,
    _registry_source,
)


class ValidationCoverageRule(Rule):
    name = "validation-coverage"
    description = (
        "every registered engine and non-reference backend must have a "
        "gate-severity validation check cross-checking it against the "
        "closed forms"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        src = _registry_source(files)
        if src is None:
            return
        registry, err = _import_registry(src, self.name)
        if err is not None:
            yield err
            return
        try:
            from repro.validation import available_checks
        except Exception as exc:  # pragma: no cover - broken tree
            yield src.finding(
                self.name, None, f"cannot import repro.validation: {exc}"
            )
            return
        gates = [c for c in available_checks() if c.severity == "gate"]
        for engine in registry.available_engines():
            yield from self._check_engine(src, engine, gates)

    def _check_engine(
        self, src: SourceFile, engine: Any, gates: Sequence[Any]
    ) -> Iterator[Finding]:
        mine = [c for c in gates if c.engine == engine.name]
        if not mine:
            yield src.finding(
                self.name,
                None,
                f"engine {engine.name!r} has no gate-severity validation "
                "check — the statistical merge gate never cross-checks it "
                "against a closed form; register one in repro.validation "
                "(see the contract in repro/validation/__init__.py)",
            )
            return
        for backend in engine.backends:
            if backend == PYTHON_BACKEND:
                continue
            if not any(backend in c.backends for c in mine):
                yield src.finding(
                    self.name,
                    None,
                    f"engine {engine.name!r} advertises backend "
                    f"{backend!r} but no gate-severity validation check "
                    "runs on that backend — a biased kernel would merge "
                    "unvalidated; extend a check's backends tuple or "
                    "register a backend-specific check",
                )


register_rule(ValidationCoverageRule())
