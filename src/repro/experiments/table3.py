"""Table III: r_s = E[R_s]/E[N] — remaining *saturated* services per packet.

Section 4.6's looseness probe for Theorem 14. The paper reports r_s at
rho = 0.99 for n in {5, 10, 15, 20, 25} and finds a parity split: even n
values sit near 1.25 (below s-bar = 3/2) while odd n values sit near 2
(below s-bar < 3) — the printed column is (1.875, 1.250, 2.106, 1.230,
2.209). It also notes "the dependence of r_s on the arrival rate is
minimal", which we re-check by running a second load.

Shape claims asserted by ``bench_table3``: r_s < s-bar(n) for every n;
even-n r_s < odd-n r_s (the parity split); and r_s moves little with rho.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.saturation import s_bar
from repro.experiments.configs import GridConfig
from repro.experiments.grid import CellResult, run_grid
from repro.util.tables import Table

#: The paper's Table III operating point.
TABLE3_RHO = 0.99


@dataclass(frozen=True)
class Table3Config:
    """Sizing for the Table III column (a thin slice of the grid)."""

    ns: tuple[int, ...] = (5, 10, 15, 20, 25)
    rhos: tuple[float, ...] = (TABLE3_RHO,)
    base_warmup: float = 2000.0
    base_horizon: float = 12000.0
    seed: int = 31415
    convention: str = "table1"
    replications: int = 1

    def to_grid(self) -> GridConfig:
        """View as a GridConfig (flat windows; the rho is fixed and high)."""
        return GridConfig(
            ns=self.ns,
            rhos=self.rhos,
            base_warmup=self.base_warmup,
            base_horizon=self.base_horizon,
            congestion_cap=1.0,  # windows are already sized for rho=.99
            seed=self.seed,
            convention=self.convention,
            replications=self.replications,
        )


#: Benchmark preset: smaller meshes, shorter windows, lighter second rho.
QUICK3 = Table3Config(
    ns=(4, 5, 6, 7),
    rhos=(0.9,),
    base_warmup=400.0,
    base_horizon=4000.0,
)

#: Paper-scale preset.
FULL3 = Table3Config()


@dataclass(frozen=True)
class Table3Result:
    """All cells plus the rendered table."""

    cells: list[CellResult]

    def render(self) -> str:
        """Monospace table in the paper's layout (n, r_s), with s-bar."""
        t = Table(
            title="Table III: Simulation Measurement of rs",
            headers=["n", "rho", "rs (Sim.)", "s_bar", "rs/s_bar"],
        )
        for c in self.cells:
            sb = s_bar(c.spec.n)
            t.add_row(
                [c.spec.n, c.spec.rho, c.r_saturated, sb, c.r_saturated / sb]
            )
        return t.render()


def run(
    config: Table3Config = QUICK3,
    *,
    processes: int | None = None,
    replications: int | None = None,
) -> Table3Result:
    """Regenerate Table III at the given sizing preset.

    ``replications`` overrides the config's per-cell replication count
    (the :class:`~repro.sim.ReplicationEngine` pools the seeds).
    """
    if replications is not None:
        config = replace(config, replications=replications)
    return Table3Result(cells=run_grid(config.to_grid(), processes=processes))


def shape_checks(result: Table3Result) -> list[str]:
    """Violated Table III shape claims (empty = all hold)."""
    problems: list[str] = []
    even = [c for c in result.cells if c.spec.n % 2 == 0]
    odd = [c for c in result.cells if c.spec.n % 2 == 1]
    for c in result.cells:
        sb = s_bar(c.spec.n)
        tag = f"(n={c.spec.n}, rho={c.spec.rho})"
        if not c.r_saturated < sb:
            problems.append(
                f"{tag}: rs={c.r_saturated:.3f} not below s_bar={sb:.3f}"
            )
        if c.r_saturated <= 0:
            problems.append(f"{tag}: rs={c.r_saturated:.3f} should be positive")
    if even and odd:
        max_even = max(c.r_saturated for c in even)
        min_odd = min(c.r_saturated for c in odd)
        if not max_even < min_odd:
            problems.append(
                f"parity split violated: max even rs {max_even:.3f} "
                f">= min odd rs {min_odd:.3f}"
            )
    return problems
