"""Section 5.2: higher-dimensional arrays.

Regenerates the extension the paper sketches: for the square k-dimensional
array under dimension-order greedy routing we derive (in
:mod:`repro.core.kd_bounds`) the per-axis Theorem 6 rate profile, the
upper bound, d-bar, and the even-side s-bar = 1 + (k-1)/2 — so the
rho -> 1 gap generalises from the paper's 3 to **k + 1**.

The experiment tabulates the bound sandwich over k and validates a 3-D
array by simulation: the measured delay must fall between the generic
Theorem 12 lower bound and the k-D upper bound, and the measured per-edge
utilisation must match the per-axis rate profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.generic_bounds import GenericBounds, generic_bounds
from repro.core.kd_bounds import (
    kd_asymptotic_gap_even,
    kd_delay_upper_bound,
    kd_edge_rates,
    kd_lambda_for_load,
    kd_mean_distance,
)
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyKDRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.array_mesh import KDArray
from repro.util.tables import Table


@dataclass(frozen=True)
class HigherDimsConfig:
    """Sizing for the higher-dimensions experiment."""

    table_side: int = 4
    table_ks: tuple[int, ...] = (2, 3, 4)
    table_rho: float = 0.8
    sim_side: int = 4
    sim_k: int = 3
    sim_rho: float = 0.7
    warmup: float = 300.0
    horizon: float = 3000.0
    seed: int = 555


QUICK_KD = HigherDimsConfig(horizon=2000.0)
FULL_KD = HigherDimsConfig(
    table_ks=(2, 3, 4, 5), sim_rho=0.85, warmup=1000.0, horizon=12000.0
)


@dataclass(frozen=True)
class HigherDimsResult:
    """Bound table over k plus the simulated 3-D validation point."""

    rows: list[tuple[int, float, float, float, float]]
    sim_k: int
    sim_side: int
    sim_rho: float
    sim_bounds: GenericBounds
    t_sim: float
    t_ci: float
    max_util_err: float

    def render(self) -> str:
        t = Table(
            title=(
                f"Higher-dimensional arrays (side m={self.sim_side}, "
                f"rho={self.sim_rho}): bound sandwich over k"
            ),
            headers=["k", "nbar_k", "LB Thm12", "UB", "gap@rho->1 (k+1)"],
        )
        for k, nbar, lo, hi, gap in self.rows:
            t.add_row([k, nbar, lo, hi, gap])
        gb = self.sim_bounds
        extra = (
            f"\nsimulated k={self.sim_k}: LB {gb.lower_best:.3f} <= "
            f"T(sim) {self.t_sim:.3f}+/-{self.t_ci:.3f} <= UB {gb.upper:.3f}; "
            f"max |util - closed-form rate| = {self.max_util_err:.4f}"
        )
        return t.render() + extra


def run(config: HigherDimsConfig = QUICK_KD) -> HigherDimsResult:
    """Regenerate the Section 5.2 extension."""
    m = config.table_side
    rows = []
    for k in config.table_ks:
        lam = kd_lambda_for_load(m, k, config.table_rho)
        array = KDArray((m,) * k)
        router = GreedyKDRouter(array)
        dests = UniformDestinations(array.num_nodes)
        gb = generic_bounds(router, dests, lam)
        rows.append(
            (
                k,
                kd_mean_distance(m, k),
                gb.lower_markov,
                kd_delay_upper_bound(m, k, lam),
                kd_asymptotic_gap_even(m, k),
            )
        )
    # Simulated validation point.
    m_s, k_s = config.sim_side, config.sim_k
    lam = kd_lambda_for_load(m_s, k_s, config.sim_rho)
    array = KDArray((m_s,) * k_s)
    router = GreedyKDRouter(array)
    dests = UniformDestinations(array.num_nodes)
    gb = generic_bounds(router, dests, lam)
    sim = NetworkSimulation(router, dests, lam, seed=config.seed)
    res = sim.run(config.warmup, config.horizon, track_utilization=True)
    closed = kd_edge_rates(array, lam)
    return HigherDimsResult(
        rows=rows,
        sim_k=k_s,
        sim_side=m_s,
        sim_rho=config.sim_rho,
        sim_bounds=gb,
        t_sim=res.mean_delay,
        t_ci=res.delay_half_width,
        max_util_err=float(np.abs(res.utilization - closed).max()),
    )


def shape_checks(result: HigherDimsResult) -> list[str]:
    """Violated Section 5.2 claims."""
    problems: list[str] = []
    for k, nbar, lo, hi, gap in result.rows:
        if not lo <= hi:
            problems.append(f"(k={k}): lower bound {lo:.3f} above upper {hi:.3f}")
        if abs(gap - (k + 1)) > 1e-12:
            problems.append(f"(k={k}): asymptotic gap {gap} != k+1")
        if hi < nbar:
            problems.append(f"(k={k}): upper bound below the mean distance")
    gb = result.sim_bounds
    slack = result.t_ci + 0.05 * result.t_sim
    if result.t_sim + slack < gb.lower_best:
        problems.append(
            f"simulated T {result.t_sim:.3f} below LB {gb.lower_best:.3f}"
        )
    if result.t_sim - slack > gb.upper:
        problems.append(
            f"simulated T {result.t_sim:.3f} above UB {gb.upper:.3f}"
        )
    if result.max_util_err > 0.08:
        problems.append(
            f"per-edge utilisation off by {result.max_util_err:.3f} from the "
            "k-D closed form"
        )
    return problems
