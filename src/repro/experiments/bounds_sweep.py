"""Bounds sweep: upper vs lower bounds vs simulation across the load range.

This is the paper's analytical headline turned into a regenerable series:
for an even and an odd side length, sweep rho toward 1 and tabulate the
Theorem 7 upper bound, every lower bound (Theorems 8/10/12/14 + trivial),
the simulated truth, and the upper/best-lower ratio. The claims:

* every lower bound <= simulated T <= upper bound (within CI);
* the upper/best-lower ratio converges to ``2 s-bar`` — 3 for even n,
  below 6 for odd n (Theorem 14);
* the Theorem 12 bound improves on Theorem 10 by the factor
  ``d / d-bar = 2(n-1)/(n - 1/2)`` (about 2);
* the saturated bound overtakes the others as rho -> 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lower_bounds import BoundSummary, asymptotic_gap, bound_summary
from repro.core.rates import lambda_for_load
from repro.experiments.grid import CellSpec, simulate_cell
from repro.util.parallel import pmap
from repro.util.tables import Table


@dataclass(frozen=True)
class SweepConfig:
    """Sizing for the bounds sweep."""

    ns: tuple[int, ...] = (8, 9)
    rhos: tuple[float, ...] = (0.5, 0.8, 0.9, 0.95, 0.99)
    simulate: bool = True
    base_warmup: float = 200.0
    base_horizon: float = 1500.0
    congestion_cap: float = 10.0
    seed: int = 777


QUICK_SWEEP = SweepConfig(rhos=(0.5, 0.8, 0.9), base_horizon=1000.0)
FULL_SWEEP = SweepConfig(
    rhos=(0.5, 0.8, 0.9, 0.95, 0.99, 0.999),
    base_warmup=500.0,
    base_horizon=5000.0,
    congestion_cap=80.0,
    simulate=True,
)


@dataclass(frozen=True)
class SweepPoint:
    """One (n, rho) point: all bounds and (optionally) the simulated T."""

    bounds: BoundSummary
    t_sim: float | None
    t_ci: float | None


@dataclass(frozen=True)
class SweepResult:
    """All sweep points plus renderers."""

    points: list[SweepPoint]

    def render(self) -> str:
        t = Table(
            title="Bounds sweep: Theorem 7 upper vs Theorems 8/10/12/14 lower",
            headers=[
                "n",
                "rho",
                "T(sim)",
                "LB triv",
                "LB ST",
                "LB Thm10",
                "LB Thm12",
                "LB Thm14",
                "UB Thm7",
                "UB/bestLB",
                "2*s_bar",
            ],
        )
        for p in self.points:
            b = p.bounds
            t.add_row(
                [
                    b.n,
                    b.rho,
                    "-" if p.t_sim is None else f"{p.t_sim:.3f}",
                    b.lower_trivial,
                    b.lower_st_oblivious,
                    b.lower_copy,
                    b.lower_markov,
                    b.lower_saturated,
                    b.upper,
                    b.gap,
                    asymptotic_gap(b.n),
                ]
            )
        return t.render()


def _simulate(args: tuple[int, float, SweepConfig]):
    n, rho, cfg = args
    scale = min(1.0 / (1.0 - rho), cfg.congestion_cap)
    spec = CellSpec(
        n=n,
        rho=rho,
        warmup=cfg.base_warmup * scale,
        horizon=cfg.base_horizon * scale,
        seed=(cfg.seed * 65537 + n * 101 + int(rho * 1000)) % 2**31,
        convention="exact",  # the bounds are parity-aware; match them
    )
    return simulate_cell(spec)


def run(config: SweepConfig = QUICK_SWEEP, *, processes: int | None = None) -> SweepResult:
    """Evaluate all bounds (and optionally simulate) over the sweep grid."""
    combos = [(n, rho) for n in config.ns for rho in config.rhos]
    sims = (
        pmap(_simulate, [(n, r, config) for n, r in combos], processes=processes)
        if config.simulate
        else [None] * len(combos)
    )
    points = []
    for (n, rho), sim in zip(combos, sims):
        lam = lambda_for_load(n, rho, "exact")
        b = bound_summary(n, lam)
        points.append(
            SweepPoint(
                bounds=b,
                t_sim=None if sim is None else sim.t_sim,
                t_ci=None if sim is None else sim.t_ci,
            )
        )
    return SweepResult(points=points)


def shape_checks(result: SweepResult) -> list[str]:
    """Violated bound-ordering / gap-convergence claims."""
    problems: list[str] = []
    for p in result.points:
        b = p.bounds
        tag = f"(n={b.n}, rho={b.rho:.3f})"
        if not b.is_consistent():
            problems.append(f"{tag}: a lower bound exceeds the upper bound")
        if p.t_sim is not None:
            slack = (p.t_ci or 0.0) + 0.05 * p.t_sim
            if p.t_sim + slack < b.lower_best:
                problems.append(
                    f"{tag}: sim T={p.t_sim:.3f} below best lower bound "
                    f"{b.lower_best:.3f}"
                )
            if p.t_sim - slack > b.upper:
                problems.append(
                    f"{tag}: sim T={p.t_sim:.3f} above upper bound {b.upper:.3f}"
                )
        # Thm 12 improves Thm 10 by ~ d/d-bar.
        expected = 2.0 * (b.n - 1) / (b.n - 0.5)
        actual = b.lower_markov / b.lower_copy
        if abs(actual - expected) > 1e-9:
            problems.append(
                f"{tag}: Thm12/Thm10 ratio {actual:.6f} != d/d-bar {expected:.6f}"
            )
    # Gap convergence (Theorem 14): evaluated analytically in the rho -> 1
    # tail, independent of the simulated grid (the gap peaks at moderate
    # load where the trivial bound hands over, then falls to 2*s_bar).
    for n in sorted({p.bounds.n for p in result.points}):
        target = asymptotic_gap(n)
        tail = [
            bound_summary(n, lambda_for_load(n, rho, "exact")).gap
            for rho in (0.99, 0.999, 0.9999)
        ]
        if abs(tail[-1] - target) / target > 0.10:
            problems.append(
                f"(n={n}): gap at rho=0.9999 is {tail[-1]:.3f}, not within "
                f"10% of 2*s_bar={target:.3f}"
            )
        if not (tail[0] >= tail[1] >= tail[2]):
            problems.append(
                f"(n={n}): gap should decrease toward 2*s_bar in the rho->1 "
                f"tail, got {[f'{g:.3f}' for g in tail]}"
            )
    return problems
