"""Experiment harness: one module per table/figure/claim of the paper.

Every experiment exposes ``run(config) -> Result`` plus a formatter that
prints the paper's row layout, so ``benchmarks/`` and
``examples/reproduce_tables.py`` share one code path. ``configs`` holds
QUICK (seconds-to-minutes, benchmark-friendly) and FULL (paper-scale)
horizon presets.
"""

from repro.experiments.configs import QUICK, FULL, GridConfig
from repro.experiments.grid import CellSpec, CellResult, simulate_cell, run_grid
from repro.experiments.sweeps import SweepRun, load_sweep_spec, run_sweep

__all__ = [
    "QUICK",
    "FULL",
    "GridConfig",
    "CellSpec",
    "CellResult",
    "simulate_cell",
    "run_grid",
    "SweepRun",
    "load_sweep_spec",
    "run_sweep",
]
