"""Figure 2: saturated edges in even- and odd-sided arrays.

The paper's Figure 2 contrasts the saturated-edge structure of even and
odd arrays — the single middle cut (even) vs the doubled cut (odd) that
drives the 3-vs-6 asymmetry of Theorem 14. We regenerate the figure as an
ASCII mesh marking saturated horizontal/vertical boundaries, and attach
the machine-checked facts: saturated-edge count (4n / 8n), the maximum
number of saturated edges on any greedy route (2 / 4), and s-bar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rates import array_edge_rates
from repro.core.saturation import (
    array_max_saturated_on_route,
    array_saturated_boundaries,
    array_saturated_count,
    max_saturated_on_route,
    s_bar,
    saturated_edge_mask,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh


def render_mesh(n: int) -> str:
    """ASCII n-by-n mesh with saturated boundaries drawn as '#'.

    Horizontal saturated edges cross the marked vertical cut(s); vertical
    saturated edges cross the marked horizontal cut(s).
    """
    cuts = set(array_saturated_boundaries(n))  # 1-based boundary index
    lines = []
    for i in range(1, n + 1):
        row = []
        for j in range(1, n + 1):
            row.append("o")
            if j < n:
                row.append("#" if j in cuts else "-")
        lines.append(" ".join(row))
        if i < n:
            sep = []
            for j in range(1, n + 1):
                sep.append("#" if i in cuts else "|")
                if j < n:
                    sep.append(" ")
            lines.append(" ".join(sep))
    return "\n".join(lines)


@dataclass(frozen=True)
class Figure2Result:
    """Rendered figure plus the checked constants for one side length."""

    n: int
    text: str
    saturated_count: int
    max_on_route: int
    s_bar: float

    def render(self) -> str:
        return (
            f"Figure 2 ({'even' if self.n % 2 == 0 else 'odd'} n={self.n}): "
            f"saturated edges = {self.saturated_count}, "
            f"max on a route = {self.max_on_route}, s_bar = {self.s_bar:.4f}\n"
            f"{self.text}"
        )


def run(n: int) -> Figure2Result:
    """Regenerate the Figure 2 panel for side n, with checks."""
    mesh = ArrayMesh(n)
    router = GreedyArrayRouter(mesh)
    mask = saturated_edge_mask(array_edge_rates(mesh, 1.0))
    count = int(mask.sum())
    if count != array_saturated_count(n):
        raise AssertionError(
            f"saturated count {count} != closed form {array_saturated_count(n)}"
        )
    max_route = max_saturated_on_route(router, mask)
    if max_route != array_max_saturated_on_route(n):
        raise AssertionError(
            f"max saturated on route {max_route} != closed form "
            f"{array_max_saturated_on_route(n)}"
        )
    return Figure2Result(
        n=n,
        text=render_mesh(n),
        saturated_count=count,
        max_on_route=max_route,
        s_bar=s_bar(n),
    )


def run_pair(even_n: int = 6, odd_n: int = 5) -> tuple[Figure2Result, Figure2Result]:
    """The paper's side-by-side even/odd panels."""
    return run(even_n), run(odd_n)
