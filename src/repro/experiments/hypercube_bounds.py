"""Section 4.5: hypercube (and butterfly) bound-gap analysis.

Regenerates the section's comparison as a table over (d, p):

* the previous gap ``2d`` (Stamoulis–Tsitsiklis / Theorem 10);
* our gap ``2(dp + 1 - p)`` (Theorem 12 with d-bar = 1 + p(d-1));
* the improvement factor, approaching ``d`` as ``p -> 0`` and equal to
  ``2d/(d+1)`` at uniform ``p = 1/2``;

and validates the machinery by *simulating* a moderate hypercube with
p-biased destinations, checking that the simulated delay falls between
the Theorem 12 lower bound and the product-form upper bound, and that the
measured per-edge utilisation matches ``lam p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hypercube_bounds import (
    butterfly_gap,
    hypercube_delay_upper_bound,
    hypercube_edge_rate,
    hypercube_gap_copy,
    hypercube_gap_markov,
    hypercube_markov_lower_bound,
    hypercube_mean_distance,
)
from repro.routing.destinations import PBiasedHypercubeDestinations
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.hypercube import Hypercube
from repro.util.tables import Table


@dataclass(frozen=True)
class HypercubeConfig:
    """Sizing for the hypercube experiment."""

    gap_dims: tuple[int, ...] = (4, 6, 8, 10)
    gap_ps: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)
    sim_d: int = 5
    sim_p: float = 0.5
    sim_rho: float = 0.8
    warmup: float = 300.0
    horizon: float = 3000.0
    seed: int = 2718


QUICK_HC = HypercubeConfig(sim_d=4, horizon=2000.0)
FULL_HC = HypercubeConfig(sim_d=7, sim_rho=0.9, warmup=1500.0, horizon=15000.0)


@dataclass(frozen=True)
class HypercubeResult:
    """Gap table plus the simulated validation point."""

    rows: list[tuple[int, float, float, float, float]]  # d, p, gap_copy, gap_markov, improvement
    sim_d: int
    sim_p: float
    sim_rho: float
    t_sim: float
    t_ci: float
    t_lower: float
    t_upper: float
    mean_distance: float
    max_util_err: float

    def render(self) -> str:
        t = Table(
            title="Hypercube bound gaps as rho -> 1 (Section 4.5)",
            headers=["d", "p", "prev gap 2d", "our gap 2(dp+1-p)", "improvement"],
        )
        for d, p, g0, g1, imp in self.rows:
            t.add_row([d, p, g0, g1, imp])
        extra = (
            f"\nsimulated d={self.sim_d}, p={self.sim_p}, rho={self.sim_rho}: "
            f"LB {self.t_lower:.3f} <= T(sim) {self.t_sim:.3f}+/-{self.t_ci:.3f} "
            f"<= UB {self.t_upper:.3f}; mean distance dp = {self.mean_distance:.3f}; "
            f"max |util - lam*p| = {self.max_util_err:.4f}\n"
            f"butterfly gap (Theorem 10, matches S-T): 2d = "
            f"{butterfly_gap(self.sim_d):.0f} at d={self.sim_d}"
        )
        return t.render() + extra


def run(config: HypercubeConfig = QUICK_HC) -> HypercubeResult:
    """Regenerate the Section 4.5 comparison."""
    rows = []
    for d in config.gap_dims:
        for p in config.gap_ps:
            g0 = hypercube_gap_copy(d)
            g1 = hypercube_gap_markov(d, p)
            rows.append((d, p, g0, g1, g0 / g1))
    d, p, rho = config.sim_d, config.sim_p, config.sim_rho
    lam = rho / p
    cube = Hypercube(d)
    router = GreedyHypercubeRouter(cube)
    destinations = PBiasedHypercubeDestinations(cube, p)
    sim = NetworkSimulation(
        router, destinations, lam, seed=config.seed
    )
    res = sim.run(config.warmup, config.horizon, track_utilization=True)
    util_target = hypercube_edge_rate(d, lam, p)
    return HypercubeResult(
        rows=rows,
        sim_d=d,
        sim_p=p,
        sim_rho=rho,
        t_sim=res.mean_delay,
        t_ci=res.delay_half_width,
        t_lower=hypercube_markov_lower_bound(d, lam, p),
        t_upper=hypercube_delay_upper_bound(d, lam, p),
        mean_distance=hypercube_mean_distance(d, p),
        max_util_err=float(np.abs(res.utilization - util_target).max()),
    )


def shape_checks(result: HypercubeResult) -> list[str]:
    """Violated Section 4.5 claims."""
    problems: list[str] = []
    for d, p, g0, g1, _imp in result.rows:
        if not g1 < g0:
            problems.append(f"(d={d}, p={p}): our gap {g1} not below 2d={g0}")
        if abs(g1 - 2 * (d * p + 1 - p)) > 1e-12:
            problems.append(f"(d={d}, p={p}): gap formula mismatch")
        if p == 0.5 and abs(g1 - (d + 1)) > 1e-12:
            problems.append(f"(d={d}): uniform-p gap should be d+1, got {g1}")
    slack = result.t_ci + 0.05 * result.t_sim
    if result.t_sim + slack < result.t_lower:
        problems.append(
            f"simulated T {result.t_sim:.3f} below lower bound {result.t_lower:.3f}"
        )
    if result.t_sim - slack > result.t_upper:
        problems.append(
            f"simulated T {result.t_sim:.3f} above upper bound {result.t_upper:.3f}"
        )
    if result.t_sim < result.mean_distance * 0.95:
        problems.append("simulated T below the mean route length")
    if result.max_util_err > 0.08:
        problems.append(
            f"per-edge utilisation off by {result.max_util_err:.3f} from lam*p"
        )
    return problems
