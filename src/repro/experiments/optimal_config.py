"""Section 5.1: optimally configured arrays vs the standard array.

Two regenerable claims:

1. **Capacity**: with unit costs and the standard budget ``D = 4n(n-1)``,
   the optimal allocation (Theorem 15) keeps the network stable for every
   ``lam < 6/(n+1)``, while the standard unit-rate array saturates at
   ``4/n`` (even n). We check this *in simulation*: at a rate above the
   standard capacity but below the optimal one, the optimally-configured
   network equilibrates (its delay stays near the Jackson prediction)
   while the standard network is unstable (occupancy grows with the
   horizon).

2. **Delay**: across the stable range of the standard network, the
   optimal allocation's delay (Jackson closed form, also an upper bound
   for deterministic service) undercuts the standard allocation's Jackson
   delay, with the gap widening toward capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optimization import (
    budget_surplus,
    optimal_capacity,
    optimal_delay,
    optimal_service_rates,
    standard_capacity,
)
from repro.core.rates import array_edge_rates
from repro.core.upper_bound import delay_upper_bound
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.util.tables import Table


@dataclass(frozen=True)
class OptimalConfig:
    """Sizing for the optimal-configuration experiment."""

    n: int = 6
    load_fractions: tuple[float, ...] = (0.4, 0.7, 0.9)
    beyond_standard_fraction: float = 0.5  # position between 4/n and 6/(n+1)
    warmup: float = 400.0
    horizon: float = 4000.0
    seed: int = 4242


QUICK_OPT = OptimalConfig(horizon=2500.0)
FULL_OPT = OptimalConfig(
    n=10, load_fractions=(0.3, 0.5, 0.7, 0.85, 0.95), warmup=1500.0, horizon=15000.0
)


@dataclass(frozen=True)
class DelayPoint:
    """Analytic + simulated delay at one per-node rate."""

    lam: float
    t_standard_jackson: float
    t_optimal_jackson: float
    t_optimal_sim: float
    t_optimal_sim_ci: float


@dataclass(frozen=True)
class OptimalResult:
    """Capacities, delay curve, and the beyond-capacity demonstration."""

    n: int
    standard_capacity: float
    optimal_capacity: float
    budget: float
    points: list[DelayPoint]
    beyond_lam: float
    beyond_optimal_sim: float
    beyond_optimal_jackson: float
    beyond_dstar: float

    def render(self) -> str:
        t = Table(
            title=(
                f"Optimal vs standard configuration (n={self.n}, "
                f"D=4n(n-1)={self.budget:.0f}): capacity "
                f"{self.standard_capacity:.4f} -> {self.optimal_capacity:.4f}"
            ),
            headers=[
                "lam",
                "T std (Jackson)",
                "T opt (Jackson)",
                "T opt (sim)",
                "+/-",
            ],
        )
        for p in self.points:
            t.add_row(
                [
                    f"{p.lam:.4f}",
                    p.t_standard_jackson,
                    p.t_optimal_jackson,
                    p.t_optimal_sim,
                    p.t_optimal_sim_ci,
                ]
            )
        extra = (
            f"\nbeyond standard capacity: lam={self.beyond_lam:.4f} "
            f"(> 4/n={self.standard_capacity:.4f}): optimal network T(sim)="
            f"{self.beyond_optimal_sim:.3f} vs Jackson {self.beyond_optimal_jackson:.3f} "
            f"(D*={self.beyond_dstar:.2f} > 0 certifies stability); the standard "
            f"network is unstable at this rate."
        )
        return t.render() + extra


def _optimal_sim(n: int, lam: float, budget: float, warmup: float, horizon: float, seed: int):
    """Simulate the deterministic-service mesh with Theorem 15 rates."""
    mesh = ArrayMesh(n)
    router = GreedyArrayRouter(mesh)
    rates = array_edge_rates(mesh, lam)
    phis = optimal_service_rates(rates, 1.0, budget)
    sim = NetworkSimulation(
        router,
        UniformDestinations(mesh.num_nodes),
        lam,
        service_rates=phis,
        seed=seed,
    )
    return sim.run(warmup, horizon)


def run(config: OptimalConfig = QUICK_OPT) -> OptimalResult:
    """Run the Section 5.1 experiment."""
    n = config.n
    budget = 4.0 * n * (n - 1)  # the standard array's total service budget
    cap_std = standard_capacity(n)
    cap_opt = optimal_capacity(n)
    mesh = ArrayMesh(n)
    points: list[DelayPoint] = []
    for k, frac in enumerate(config.load_fractions):
        lam = frac * cap_std
        rates = array_edge_rates(mesh, lam)
        t_std = delay_upper_bound(n, lam)
        t_opt = optimal_delay(rates, 1.0, budget, lam * n * n)
        res = _optimal_sim(n, lam, budget, config.warmup, config.horizon, config.seed + k)
        points.append(
            DelayPoint(
                lam=lam,
                t_standard_jackson=t_std,
                t_optimal_jackson=t_opt,
                t_optimal_sim=res.mean_delay,
                t_optimal_sim_ci=res.delay_half_width,
            )
        )
    # Beyond the standard capacity, inside the optimal one.
    beyond_lam = cap_std + config.beyond_standard_fraction * (cap_opt - cap_std)
    rates = array_edge_rates(mesh, beyond_lam)
    dstar = budget_surplus(rates, 1.0, budget)
    t_opt_beyond = optimal_delay(rates, 1.0, budget, beyond_lam * n * n)
    res = _optimal_sim(
        n, beyond_lam, budget, config.warmup, config.horizon, config.seed + 99
    )
    return OptimalResult(
        n=n,
        standard_capacity=cap_std,
        optimal_capacity=cap_opt,
        budget=budget,
        points=points,
        beyond_lam=beyond_lam,
        beyond_optimal_sim=res.mean_delay,
        beyond_optimal_jackson=t_opt_beyond,
        beyond_dstar=dstar,
    )


def shape_checks(result: OptimalResult) -> list[str]:
    """Violated Section 5.1 claims."""
    problems: list[str] = []
    n = result.n
    if n % 2 == 0 and abs(result.standard_capacity - 4.0 / n) > 1e-12:
        problems.append("standard capacity != 4/n for even n")
    if abs(result.optimal_capacity - 6.0 / (n + 1)) > 1e-12:
        problems.append("optimal capacity != 6/(n+1)")
    if result.optimal_capacity <= result.standard_capacity:
        problems.append("optimal capacity does not exceed standard capacity")
    for p in result.points:
        if p.t_optimal_jackson >= p.t_standard_jackson:
            problems.append(
                f"lam={p.lam:.4f}: optimal Jackson delay {p.t_optimal_jackson:.3f} "
                f"not below standard {p.t_standard_jackson:.3f}"
            )
        # Deterministic service under the Jackson bound (with CI slack).
        if p.t_optimal_sim - p.t_optimal_sim_ci > p.t_optimal_jackson * 1.05:
            problems.append(
                f"lam={p.lam:.4f}: simulated optimal delay {p.t_optimal_sim:.3f} "
                f"exceeds its Jackson upper bound {p.t_optimal_jackson:.3f}"
            )
    if result.beyond_dstar <= 0:
        problems.append("D* should be positive beyond the standard capacity")
    if not np.isfinite(result.beyond_optimal_sim):
        problems.append("optimal network failed to equilibrate beyond 4/n")
    if result.beyond_optimal_sim > result.beyond_optimal_jackson * 1.25:
        problems.append(
            f"beyond-capacity sim delay {result.beyond_optimal_sim:.3f} far above "
            f"Jackson bound {result.beyond_optimal_jackson:.3f} — instability?"
        )
    return problems
