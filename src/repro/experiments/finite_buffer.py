"""Loss vs. buffer size: how finite buffers erode the infinite-queue model.

The paper's bounds (and every other experiment here) assume infinite
FIFO buffers. Real routers have finite waiting room and drop packets
when it fills. This experiment sweeps the per-node buffer size ``K`` on
the standard uniform cell (the 16x16 mesh by default, the size the
finite-engine ROADMAP item calls out) through the
:class:`~repro.sim.replication.ReplicationEngine`, against the
infinite-buffer baseline (``buffer_size=None``, bit-identical to
``engine="fifo"``), and reports per-K:

* loss probability with across-replication ~95% CIs,
* the survivors' mean delay (dropped packets never complete, so tiny
  buffers *shed* exactly the packets that would have waited longest),
* mean number in system E[N].

Shape claims asserted by :func:`shape_checks`:

* conservation: every replication satisfies
  ``completed + dropped == generated``;
* the infinite-buffer baseline loses nothing;
* loss probability is non-increasing in K (up to CI slack), and the
  smallest swept buffer loses the most;
* survivor delay and E[N] never exceed the infinite-buffer baseline
  (a finite buffer can only truncate queues), and converge to it as K
  grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.replication import CellSpec, ReplicatedResult, ReplicationEngine
from repro.util.tables import Table


@dataclass(frozen=True)
class FiniteBufferConfig:
    """Sizing for the loss-vs-buffer-size sweep.

    ``buffer_sizes`` are the finite K values swept (ascending); the
    infinite-buffer baseline (``None``) is always appended.
    """

    n: int = 16
    rho: float = 0.9
    buffer_sizes: tuple[int, ...] = (0, 1, 2, 4, 8)
    scenario: str = "uniform"
    warmup: float = 50.0
    horizon: float = 400.0
    seeds: tuple[int, ...] = (11, 22, 33)


QUICK_FINITE = FiniteBufferConfig()
FULL_FINITE = FiniteBufferConfig(
    buffer_sizes=(0, 1, 2, 4, 8, 16, 32),
    warmup=300.0,
    horizon=3000.0,
    seeds=(11, 22, 33, 44, 55),
)


@dataclass(frozen=True)
class FiniteBufferResult:
    """Pooled results per buffer size; the last entry is the infinite
    baseline (``spec.engine_params_dict['buffer_size'] is None``)."""

    config: FiniteBufferConfig
    pooled: list[ReplicatedResult]

    @property
    def baseline(self) -> ReplicatedResult:
        return self.pooled[-1]

    def render(self) -> str:
        cfg = self.config
        t = Table(
            title=(
                f"Loss vs buffer size: {cfg.scenario} {cfg.n}x{cfg.n} at "
                f"rho={cfg.rho} (engine=finite, R={len(cfg.seeds)})"
            ),
            headers=["K", "loss", "+/-", "T (survivors)", "N", "dropped"],
        )
        for p in self.pooled:
            k = p.spec.engine_params_dict.get("buffer_size")
            t.add_row(
                [
                    "inf" if k is None else k,
                    p.loss_probability,
                    p.loss_half_width,
                    p.mean_delay,
                    p.mean_number,
                    p.dropped,
                ]
            )
        return t.render()


def run(
    config: FiniteBufferConfig = QUICK_FINITE, *, processes: int | None = None
) -> FiniteBufferResult:
    """Sweep K (plus the infinite baseline) in one replication batch."""
    specs = [
        CellSpec(
            scenario=config.scenario,
            n=config.n,
            rho=config.rho,
            engine="finite",
            warmup=config.warmup,
            horizon=config.horizon,
            seeds=config.seeds,
            engine_params=(("buffer_size", k),),
        )
        for k in (*config.buffer_sizes, None)
    ]
    pooled = ReplicationEngine(processes=processes).run_many(specs)
    return FiniteBufferResult(config=config, pooled=pooled)


def shape_checks(result: FiniteBufferResult) -> list[str]:
    """Violated finite-buffer claims (empty = all hold)."""
    problems: list[str] = []
    base = result.baseline
    if base.dropped != 0:
        problems.append(
            f"infinite-buffer baseline dropped {base.dropped} packets"
        )
    for p in result.pooled:
        k = p.spec.engine_params_dict.get("buffer_size")
        for rep in p.replications:
            if rep.completed + rep.dropped != rep.generated:
                problems.append(
                    f"K={k}: seed {rep.seed} leaks packets "
                    f"({rep.completed}+{rep.dropped} != {rep.generated})"
                )
    finite = result.pooled[:-1]
    losses = [p.loss_probability for p in finite]
    slack = [
        p.loss_half_width if np.isfinite(p.loss_half_width) else 0.0
        for p in finite
    ]
    for a in range(len(finite) - 1):
        if losses[a] + slack[a] < losses[a + 1] - slack[a + 1]:
            problems.append(
                f"loss increased with buffer size: K="
                f"{finite[a].spec.engine_params_dict['buffer_size']} -> "
                f"{finite[a + 1].spec.engine_params_dict['buffer_size']} "
                f"({losses[a]:.4f} -> {losses[a + 1]:.4f})"
            )
    if finite and losses[0] <= 0:
        problems.append(
            "the smallest buffer lost nothing — the sweep carries no signal"
        )
    for p in finite:
        k = p.spec.engine_params_dict["buffer_size"]
        if p.mean_delay > base.mean_delay * 1.02 + base.delay_half_width:
            problems.append(
                f"K={k}: survivor delay {p.mean_delay:.3f} exceeds the "
                f"infinite-buffer baseline {base.mean_delay:.3f}"
            )
        if p.mean_number > base.mean_number * 1.02 + base.number_half_width:
            problems.append(
                f"K={k}: E[N] {p.mean_number:.2f} exceeds the baseline "
                f"{base.mean_number:.2f} (a finite buffer only truncates)"
            )
    return problems
