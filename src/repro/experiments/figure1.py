"""Figure 1: layering the array (Lemma 2).

The paper's Figure 1 shows the label assigned to every edge of an example
array. We regenerate it two ways:

* :func:`run` renders the labelling as ASCII (one cell per node showing
  its four outgoing edge labels), and
* machine-checks the figure's *content*: the labelling layers the array
  (labels strictly increase along every greedy route), row labels occupy
  ``1..n-1`` and column labels ``n..2n-2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layering import (
    array_layering_labels,
    render_figure1,
    verify_layering,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.topology.array_mesh import ArrayMesh


@dataclass(frozen=True)
class Figure1Result:
    """Rendered figure plus the machine-checked properties."""

    n: int
    text: str
    layered: bool
    row_label_range: tuple[int, int]
    col_label_range: tuple[int, int]

    def render(self) -> str:
        status = "VALID" if self.layered else "INVALID"
        return (
            f"{self.text}\n"
            f"layering check: {status}; row labels "
            f"{self.row_label_range[0]}..{self.row_label_range[1]}, "
            f"column labels {self.col_label_range[0]}..{self.col_label_range[1]}"
        )


def run(n: int = 4) -> Figure1Result:
    """Regenerate Figure 1 for an n-by-n array."""
    mesh = ArrayMesh(n)
    labels = array_layering_labels(mesh)
    router = GreedyArrayRouter(mesh)
    h = mesh.horizontal_edge_count()
    row_labels = labels[: 2 * h]
    col_labels = labels[2 * h :]
    return Figure1Result(
        n=n,
        text=render_figure1(n),
        layered=verify_layering(router, labels),
        row_label_range=(int(np.min(row_labels)), int(np.max(row_labels))),
        col_label_range=(int(np.min(col_labels)), int(np.max(col_labels))),
    )
