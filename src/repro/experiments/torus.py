"""Section 6 open problem: the torus.

The paper's closing section observes that toroidal meshes defeat the
upper-bound machinery — "any network containing a ring of directed edges
cannot be layered, and the greedy routing scheme on the torus is clearly
not Markovian" — while the new lower-bound technique (Theorem 10) still
applies. This experiment regenerates all three facts:

1. a constructive layering obstruction (a directed edge-precedence cycle)
   exists for greedy torus routing at every side >= 4;
2. the Theorem 10 copy bound computed by the generic machinery holds in
   simulation;
3. side-by-side with the open array at the *same network load*, the torus
   achieves lower delay (its wraparound halves distances) — context for
   why the paper calls the open upper bound interesting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generic_bounds import GenericBounds, generic_bounds
from repro.core.layering import find_layering_obstruction
from repro.core.rates import edge_rates_from_routing
from repro.experiments.grid import CellSpec, simulate_cell
from repro.routing.destinations import UniformDestinations
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.torus import Torus
from repro.util.tables import Table


@dataclass(frozen=True)
class TorusConfig:
    """Sizing for the torus experiment."""

    n: int = 6
    rho: float = 0.8
    warmup: float = 300.0
    horizon: float = 3000.0
    seed: int = 606


QUICK_TORUS = TorusConfig(horizon=2000.0)
FULL_TORUS = TorusConfig(n=8, rho=0.9, warmup=1200.0, horizon=12000.0)


@dataclass(frozen=True)
class TorusResult:
    """Obstruction, bounds, and the torus-vs-array comparison."""

    n: int
    rho: float
    obstruction_cycle_len: int
    bounds: GenericBounds
    t_sim: float
    t_ci: float
    t_array_sim: float

    def render(self) -> str:
        gb = self.bounds
        t = Table(
            title=f"Torus {self.n}x{self.n} @ rho={self.rho} (Section 6)",
            headers=["quantity", "value"],
        )
        t.add_row(["layering obstruction cycle (edges)", self.obstruction_cycle_len])
        t.add_row(["mean distance", gb.mean_distance])
        t.add_row(["LB trivial", gb.lower_trivial])
        t.add_row(["LB Thm 10 (copy)", gb.lower_copy])
        t.add_row(["LB Thm 14 (saturated, s)", gb.lower_saturated])
        t.add_row(["T (sim)", self.t_sim])
        t.add_row(["T open array, same rho (sim)", self.t_array_sim])
        t.add_row(["upper bound", "none (not layered)"])
        return t.render()


def run(config: TorusConfig = QUICK_TORUS) -> TorusResult:
    """Regenerate the Section 6 torus observations."""
    n, rho = config.n, config.rho
    torus = Torus(n)
    router = GreedyTorusRouter(torus)
    dests = UniformDestinations(torus.num_nodes)
    cycle = find_layering_obstruction(router)
    # Match the network load: scale lam so max edge rate = rho.
    unit_rates = edge_rates_from_routing(router, dests, 1.0)
    lam = rho / float(unit_rates.max())
    gb = generic_bounds(router, dests, lam, layered=False, markovian=False)
    res = NetworkSimulation(router, dests, lam, seed=config.seed).run(
        config.warmup, config.horizon
    )
    array_cell = simulate_cell(
        CellSpec(
            n=n,
            rho=rho,
            warmup=config.warmup,
            horizon=config.horizon,
            seed=config.seed + 1,
            convention="exact",
        )
    )
    return TorusResult(
        n=n,
        rho=rho,
        obstruction_cycle_len=0 if cycle is None else len(cycle),
        bounds=gb,
        t_sim=res.mean_delay,
        t_ci=res.delay_half_width,
        t_array_sim=array_cell.t_sim,
    )


def shape_checks(result: TorusResult) -> list[str]:
    """Violated Section 6 claims."""
    problems: list[str] = []
    if result.obstruction_cycle_len < 2:
        problems.append("no layering obstruction found on the torus (n >= 4)")
    gb = result.bounds
    if gb.upper is not None:
        problems.append("an upper bound was claimed for the non-layered torus")
    slack = result.t_ci + 0.05 * result.t_sim
    if result.t_sim + slack < gb.lower_best:
        problems.append(
            f"simulated T {result.t_sim:.3f} below the Theorem 10 bound "
            f"{gb.lower_best:.3f}"
        )
    if result.t_sim >= result.t_array_sim:
        problems.append(
            f"torus T {result.t_sim:.3f} should beat the open array "
            f"{result.t_array_sim:.3f} at matched load (wraparound halves "
            "distances)"
        )
    return problems
