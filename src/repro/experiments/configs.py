"""Experiment sizing presets.

The paper's tables are point estimates from "a small set of simulations"
with unreported horizons; we size runs by the relaxation time of the
bottleneck queue, which grows like ``1/(1-rho)^2`` near capacity, and
expose two presets:

* ``QUICK`` — minutes on a laptop; enough for every *shape* assertion the
  benchmarks make (who wins, rough factors, parity splits);
* ``FULL`` — paper-scale statistics for EXPERIMENTS.md numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GridConfig:
    """Sizing for the (n, rho) simulation grid behind Tables I-III.

    Attributes
    ----------
    ns, rhos:
        The grid (paper: n in {5,10,15,20}, rho in {.2,.5,.8,.9,.95,.99}).
    base_warmup, base_horizon:
        Window sizes at light load; both are scaled by the congestion
        factor ``min(1/(1-rho), cap)`` so heavy-load cells warm up longer.
    congestion_cap:
        Upper cap on the congestion scaling factor.
    seed:
        Base seed; each cell derives its own (stable across runs).
    convention:
        Load convention for ``lambda_for_load`` (Table I used "table1").
    replications:
        Seeded replications per cell (seeds step by 1 from the cell
        seed). 1 keeps the paper's single-trajectory point estimates;
        more replications switch the reported CI to across-replication
        half-widths.
    """

    ns: tuple[int, ...] = (5, 10, 15, 20)
    rhos: tuple[float, ...] = (0.2, 0.5, 0.8, 0.9, 0.95, 0.99)
    base_warmup: float = 300.0
    base_horizon: float = 3000.0
    congestion_cap: float = 40.0
    seed: int = 20260612
    convention: str = "table1"
    replications: int = 1

    def warmup_for(self, rho: float) -> float:
        """Warmup scaled by congestion (longer transients near capacity)."""
        return self.base_warmup * min(1.0 / (1.0 - rho), self.congestion_cap)

    def horizon_for(self, rho: float) -> float:
        """Measurement horizon scaled by congestion."""
        return self.base_horizon * min(1.0 / (1.0 - rho), self.congestion_cap)

    def cell_seed(self, n: int, rho: float) -> int:
        """Deterministic per-cell seed."""
        return (self.seed * 1_000_003 + n * 1009 + int(round(rho * 1000))) % 2**31


#: Benchmark-friendly preset: small grid, short windows.
QUICK = GridConfig(
    ns=(5, 10),
    rhos=(0.2, 0.5, 0.8, 0.9),
    base_warmup=100.0,
    base_horizon=800.0,
    congestion_cap=8.0,
)

#: Paper-scale preset (use with multiprocessing; minutes to ~an hour).
FULL = GridConfig(
    ns=(5, 10, 15, 20),
    rhos=(0.2, 0.5, 0.8, 0.9, 0.95, 0.99),
    base_warmup=500.0,
    base_horizon=5000.0,
    congestion_cap=60.0,
)
