"""Table II: the ratio r = E[R]/E[N] — remaining services per packet.

Section 4.4 probes how loose the Theorem 12 constant is: ``r`` would equal
``d-bar`` if the bound were tight and ``n-bar-2`` if one could (incorrectly
— the paper's retracted earlier claim) replace ``d-bar`` by the mean
distance. Simulation shows ``r`` sits *below* ``n-bar-2 = 2n/3`` — packets
near the end of their route dominate the in-system population because
middle-of-array queues are the crowded ones — with ``r / n-bar-2``
settling around 0.7 for larger n, and barely depends on rho.

Shape claims asserted by ``bench_table2``: ``r < n-bar-2`` everywhere;
``r`` is nearly rho-independent (spread over rho within a few percent of
its mean); and ``r/n-bar-2 < 0.75`` for n >= 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distances import mean_distance_excluding_self
from repro.experiments.configs import GridConfig, QUICK
from repro.experiments.grid import CellResult, run_grid
from repro.util.tables import Table


@dataclass(frozen=True)
class Table2Result:
    """All grid cells plus the rendered table."""

    cells: list[CellResult]

    def render(self) -> str:
        """Monospace table in the paper's layout (n, n-bar-2, rho, r)."""
        t = Table(
            title="Table II: Simulation Measurement of r",
            headers=["n", "nbar2", "rho", "r (Sim.)", "r/nbar2"],
        )
        for c in self.cells:
            nbar2 = mean_distance_excluding_self(c.spec.n)
            t.add_row([c.spec.n, nbar2, c.spec.rho, c.r, c.r / nbar2])
        return t.render()


def run(config: GridConfig = QUICK, *, processes: int | None = None) -> Table2Result:
    """Regenerate Table II at the given sizing preset."""
    return Table2Result(cells=run_grid(config, processes=processes))


def shape_checks(result: Table2Result) -> list[str]:
    """Violated Table II shape claims (empty = all hold)."""
    problems: list[str] = []
    by_n: dict[int, list[CellResult]] = {}
    for c in result.cells:
        by_n.setdefault(c.spec.n, []).append(c)
    for n, cells in by_n.items():
        nbar2 = mean_distance_excluding_self(n)
        rs = [c.r for c in cells]
        for c in cells:
            if c.r >= nbar2:
                problems.append(
                    f"(n={n}, rho={c.spec.rho}): r={c.r:.3f} >= nbar2={nbar2:.3f}"
                )
        mean_r = sum(rs) / len(rs)
        spread = (max(rs) - min(rs)) / mean_r
        if spread > 0.10:
            problems.append(
                f"(n={n}): r should be nearly rho-independent, spread {spread:.1%}"
            )
        if n >= 10 and max(rs) / nbar2 > 0.78:
            problems.append(
                f"(n={n}): r/nbar2 = {max(rs) / nbar2:.3f} exceeds ~0.7 band"
            )
    return problems
