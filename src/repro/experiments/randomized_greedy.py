"""Section 6 remark: randomized greedy performs slightly worse.

"We note that in simulations the randomized greedy routing scheme performs
slightly worse than the standard scheme." We rerun that comparison: the
standard row-first scheme vs the fair-coin row/column-first mixture, same
mesh, same load, several seeds. The claim is directional and small, so the
check is on the seed-averaged delays with a modest tolerance.

A second check uses the analytic traffic map: by the transposition
symmetry of the uniform workload, the fair mixture's per-edge rate map is
*identical* to the standard scheme's (each right edge carries
``(lam/n) j (n-j)`` whether it serves first or second legs). So the
Jackson/product-form prediction cannot distinguish the two schemes — any
simulated difference is purely a dependence effect, which is exactly why
the paper could only study this variant by simulation (its Theorem 1 upper
bound fails: the mixture is not layered).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rates import edge_rates_from_routing, lambda_for_load
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.replication import CellSpec, ReplicationEngine
from repro.topology.array_mesh import ArrayMesh
from repro.util.tables import Table


@dataclass(frozen=True)
class RandomizedConfig:
    """Sizing for the randomized-greedy comparison."""

    n: int = 6
    rho: float = 0.8
    seeds: tuple[int, ...] = (11, 22, 33)
    warmup: float = 400.0
    horizon: float = 4000.0


QUICK_RAND = RandomizedConfig(seeds=(11, 22), horizon=2500.0)
FULL_RAND = RandomizedConfig(
    n=8, rho=0.9, seeds=(11, 22, 33, 44, 55), warmup=1500.0, horizon=15000.0
)


def _cell(scheme: str, cfg: RandomizedConfig) -> CellSpec:
    """One scheme's replicated cell (scenarios share the uniform workload)."""
    return CellSpec(
        scenario="uniform" if scheme == "standard" else "randomized",
        n=cfg.n,
        rho=cfg.rho,
        convention="exact",
        warmup=cfg.warmup,
        horizon=cfg.horizon,
        seeds=cfg.seeds,
    )


@dataclass(frozen=True)
class RandomizedResult:
    """Per-seed delays and the analytic bottleneck comparison."""

    n: int
    rho: float
    standard_delays: list[float]
    randomized_delays: list[float]
    standard_bottleneck: float
    randomized_bottleneck: float

    @property
    def mean_standard(self) -> float:
        return float(np.mean(self.standard_delays))

    @property
    def mean_randomized(self) -> float:
        return float(np.mean(self.randomized_delays))

    def render(self) -> str:
        t = Table(
            title=f"Randomized vs standard greedy (n={self.n}, rho={self.rho})",
            headers=["seed#", "T standard", "T randomized"],
        )
        for k, (a, b) in enumerate(
            zip(self.standard_delays, self.randomized_delays)
        ):
            t.add_row([k, a, b])
        return t.render() + (
            f"\nmeans: standard {self.mean_standard:.3f} vs randomized "
            f"{self.mean_randomized:.3f}; bottleneck edge rate is identical "
            f"under both schemes ({self.standard_bottleneck:.4f} vs "
            f"{self.randomized_bottleneck:.4f}) — differences are pure "
            f"dependence effects"
        )


def run(config: RandomizedConfig = QUICK_RAND, *, processes: int | None = None) -> RandomizedResult:
    """Run the comparison across seeds (parallel across schemes x seeds).

    Both schemes go through the :class:`~repro.sim.ReplicationEngine`,
    which fans every (scheme, seed) replication over one pool."""
    engine = ReplicationEngine(processes=processes)
    standard, randomized = engine.run_many(
        [_cell("standard", config), _cell("randomized", config)]
    )
    # Analytic bottleneck: randomized = even mixture of the two pure orders.
    mesh = ArrayMesh(config.n)
    lam = lambda_for_load(config.n, config.rho, "exact")
    dests = UniformDestinations(mesh.num_nodes)
    row_first = edge_rates_from_routing(GreedyArrayRouter(mesh), dests, lam)
    col_first = edge_rates_from_routing(
        GreedyArrayRouter(mesh, column_first=True), dests, lam
    )
    mixed = 0.5 * row_first + 0.5 * col_first
    return RandomizedResult(
        n=config.n,
        rho=config.rho,
        standard_delays=[r.mean_delay for r in standard.replications],
        randomized_delays=[r.mean_delay for r in randomized.replications],
        standard_bottleneck=float(row_first.max()),
        randomized_bottleneck=float(mixed.max()),
    )


def shape_checks(result: RandomizedResult) -> list[str]:
    """Violated Section 6 claims."""
    problems: list[str] = []
    # Directional: randomized should not be meaningfully better.
    if result.mean_randomized < result.mean_standard * 0.97:
        problems.append(
            f"randomized ({result.mean_randomized:.3f}) clearly beats standard "
            f"({result.mean_standard:.3f}) — contradicts the paper's remark"
        )
    if abs(result.randomized_bottleneck - result.standard_bottleneck) > 1e-9:
        problems.append(
            "the fair mixture's rate map should equal the standard scheme's "
            "(transposition symmetry)"
        )
    return problems
