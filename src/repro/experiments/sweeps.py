"""Resumable parameter sweeps: declarative specs, per-cell checkpoints.

The paper's tables are grids of replicated simulation cells, and the
long ones (Table III's rho = 0.99 column) take hours at paper scale. A
crash near the end used to mean rerunning everything. This module makes
a sweep a *restartable* artifact:

* a **sweep spec** is a JSON or CSV file declaring a list of
  :class:`~repro.sim.replication.CellSpec` cells (JSON supports shared
  ``defaults``, an explicit ``cells`` list, and a ``grid`` section whose
  cross product is expanded for you);
* every cell gets a **deterministic id** (a readable slug plus a hash of
  the canonical spec JSON) and its own directory under
  ``<out>/cells/<cell_id>/``;
* results are checkpointed **per cell, as they complete** — the
  replication engine streams finished cells through ``on_result`` and
  each is written atomically (temp file + ``os.replace``), so an
  interrupt never leaves a torn result;
* on restart, cells whose ``result.json`` already exists are **skipped**
  and only the remainder runs; the aggregate table is regenerated from
  the on-disk results, so a resumed sweep is byte-identical to an
  uninterrupted one.

Run it from the command line as ``python -m repro sweep spec.json -o
out/`` or programmatically via :func:`run_sweep` (which also accepts an
in-memory list of specs, e.g. from
:func:`repro.experiments.scenario_sweep.to_cell_specs`).

Spec formats
------------
JSON::

    {
      "defaults": {"scenario": "uniform", "warmup": 100, "horizon": 1000,
                   "seeds": [0, 1, 2, 3]},
      "grid": {"n": [4, 8], "rho": [0.5, 0.8]},
      "cells": [{"scenario": "hotspot", "n": 6, "rho": 0.7,
                 "params": {"h": 0.3}}]
    }

``grid`` lists cross-multiply (sorted key order) over ``defaults``;
``cells`` entries are appended after the grid, each merged over
``defaults`` too. ``params`` / ``engine_params`` are written as plain
objects and ``seeds`` / ``node_rate`` as arrays.

CSV: one header row of ``CellSpec`` field names, one row per cell.
Multi-valued fields use ``;`` separators — ``seeds`` as ``0;1;2``,
``params`` / ``engine_params`` as ``key=value;key=value``. Empty cells
inherit the field's default.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.sim.replication import CellSpec, ReplicatedResult, ReplicationEngine
from repro.util.tables import Table

#: Pooled statistics exported per cell into the aggregate table.
_POOLED_FIELDS = (
    "mean_delay",
    "delay_half_width",
    "mean_number",
    "number_half_width",
    "r",
    "littles_law_gap",
    "generated",
    "dropped",
    "loss_probability",
)

#: Per-replication statistics checkpointed inside each cell's result.json.
_REP_FIELDS = (
    "seed",
    "generated",
    "completed",
    "dropped",
    "mean_delay",
    "delay_half_width",
    "mean_number",
    "r",
    "littles_law_gap",
    "loss_probability",
)


# ----------------------------------------------------------------------
# Spec files -> CellSpec lists.


def _coerce(raw: str) -> object:
    """CSV value coercion, matching the CLI's ``--param`` rules."""
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _pairs(value: Any) -> tuple[tuple[str, object], ...]:
    """params/engine_params: accept dicts (JSON) or ``k=v;k=v`` (CSV)."""
    if isinstance(value, str):
        value = dict(
            (k, _coerce(v))
            for part in value.split(";")
            if part
            for k, _, v in (part.partition("="),)
        )
    return tuple(sorted(value.items()))


def _cell_from_mapping(entry: dict) -> CellSpec:
    """One spec-file entry (already merged over defaults) -> CellSpec."""
    kwargs = dict(entry)
    for key in ("params", "engine_params"):
        if key in kwargs:
            kwargs[key] = _pairs(kwargs[key])
    if "seeds" in kwargs:
        seeds = kwargs["seeds"]
        if isinstance(seeds, str):
            seeds = [int(s) for s in seeds.split(";") if s]
        elif isinstance(seeds, int):
            seeds = [seeds]
        kwargs["seeds"] = tuple(seeds)
    if isinstance(kwargs.get("node_rate"), list):
        kwargs["node_rate"] = tuple(kwargs["node_rate"])
    try:
        return CellSpec(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad sweep cell {entry!r}: {exc}") from None


def _expand_grid(grid: dict, defaults: dict) -> list[dict]:
    """Cross product of the ``grid`` lists, merged over ``defaults``."""
    entries = [dict(defaults)]
    for key in sorted(grid):
        values = grid[key]
        if not isinstance(values, list):
            values = [values]
        entries = [{**e, key: v} for e in entries for v in values]
    return entries


def load_sweep_spec(path: str | os.PathLike) -> list[CellSpec]:
    """Load a JSON or CSV sweep spec file into a list of cells."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        with path.open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        if not rows:
            raise ValueError(f"sweep spec {path} declares no cells")
        return [
            _cell_from_mapping(
                {k: _coerce(v) if k not in ("params", "engine_params", "seeds")
                 else v
                 for k, v in row.items() if v not in (None, "")}
            )
            for row in rows
        ]
    data = json.loads(path.read_text())
    defaults = data.get("defaults", {})
    entries: list[dict] = []
    if "grid" in data:
        entries += _expand_grid(data["grid"], defaults)
    for cell in data.get("cells", []):
        entries.append({**defaults, **cell})
    if not entries:
        raise ValueError(f"sweep spec {path} declares no cells")
    return [_cell_from_mapping(e) for e in entries]


# ----------------------------------------------------------------------
# Deterministic cell identity and atomic per-cell checkpoints.


def canonical_spec(spec: CellSpec) -> dict:
    """The JSON-able canonical form of a spec (tuples become lists)."""
    return asdict(spec)


def cell_id(spec: CellSpec) -> str:
    """Deterministic directory name for a cell: readable slug + spec hash.

    The hash covers the *whole* canonical spec, so any change (horizon,
    seeds, an engine knob) yields a fresh cell directory rather than a
    stale-result reuse; the slug keeps ``cells/`` listings scannable.
    """
    canon = json.dumps(canonical_spec(spec), sort_keys=True)
    digest = hashlib.sha1(canon.encode()).hexdigest()[:10]
    return f"{spec.scenario}-{spec.engine}-n{spec.n}-{digest}"


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers (and restarts) never see a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _result_payload(cid: str, result: ReplicatedResult) -> dict:
    node_rate = result.node_rate
    if not np.isscalar(node_rate):
        node_rate = [float(v) for v in node_rate]
    return {
        "cell_id": cid,
        "spec": canonical_spec(result.spec),
        "node_rate": _jsonable(node_rate),
        "pooled": {
            f: _jsonable(getattr(result, f)) for f in _POOLED_FIELDS
        },
        "replications": [
            {f: _jsonable(getattr(rep, f)) for f in _REP_FIELDS}
            for rep in result.replications
        ],
    }


def _load_result(path: Path) -> dict | None:
    """A cell's checkpoint, or None if absent/torn (torn -> rerun)."""
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None


# ----------------------------------------------------------------------
# The runner.


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep` call (fresh or resumed)."""

    out_dir: Path
    cell_ids: list[str]
    #: Cells found already checkpointed on disk and skipped this run.
    resumed: int
    #: Cells actually simulated this run.
    ran: int
    #: Per-cell aggregate rows (input order), as written to aggregate.json.
    rows: list[dict] = field(repr=False, default_factory=list)

    @property
    def aggregate_json(self) -> Path:
        return self.out_dir / "aggregate.json"

    @property
    def aggregate_csv(self) -> Path:
        return self.out_dir / "aggregate.csv"

    def render(self) -> str:
        t = Table(
            title=(
                f"Sweep: {len(self.cell_ids)} cells "
                f"({self.ran} ran, {self.resumed} resumed) -> {self.out_dir}"
            ),
            headers=["cell", "engine", "n", "R", "T", "+/-", "N", "packets"],
        )
        for row in self.rows:
            spec, pooled = row["spec"], row["pooled"]
            t.add_row(
                [
                    row["cell_id"],
                    spec["engine"],
                    spec["n"],
                    len(row["replications"]),
                    pooled["mean_delay"],
                    pooled["delay_half_width"],
                    pooled["mean_number"],
                    pooled["generated"],
                ]
            )
        return t.render()


def run_sweep(
    spec: str | os.PathLike | Sequence[CellSpec],
    out_dir: str | os.PathLike,
    *,
    processes: int | None = None,
    on_cell_complete: Callable[[str], None] | None = None,
) -> SweepRun:
    """Run (or resume) a sweep, checkpointing each cell as it completes.

    Parameters
    ----------
    spec:
        A spec file path (JSON/CSV, see the module docstring) or an
        in-memory sequence of :class:`CellSpec` cells.
    out_dir:
        Output root. Per-cell checkpoints land in ``cells/<cell_id>/``;
        the aggregate table (``aggregate.json`` / ``aggregate.csv``) is
        regenerated from those checkpoints on every call — including
        all-resumed calls, so a restart after the last cell still
        produces the aggregate.
    processes:
        Worker count for the replication engine (``None`` resolves via
        ``REPRO_PROCESSES``; the whole sweep shares one warm pool).
    on_cell_complete:
        Optional hook fired with each cell id right after its checkpoint
        is written (completion order). Used by progress displays and by
        the kill-and-resume tests to interrupt mid-sweep.

    Raises
    ------
    ValueError
        If two cells in the spec are identical — they would collide on
        one checkpoint directory; give them distinct seeds instead.
    """
    specs = (
        load_sweep_spec(spec)
        if isinstance(spec, (str, os.PathLike))
        else list(spec)
    )
    ids = [cell_id(s) for s in specs]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ValueError(f"duplicate sweep cells: {', '.join(dupes)}")
    out = Path(out_dir)
    cells_dir = out / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)

    pending: list[CellSpec] = []
    for s, cid in zip(specs, ids):
        if _load_result(cells_dir / cid / "result.json") is None:
            pending.append(s)

    def checkpoint(result: ReplicatedResult) -> None:
        cid = cell_id(result.spec)
        cdir = cells_dir / cid
        cdir.mkdir(parents=True, exist_ok=True)
        payload = _result_payload(cid, result)
        _atomic_write(
            cdir / "result.json",
            json.dumps(payload, sort_keys=True, indent=1) + "\n",
        )
        if on_cell_complete is not None:
            on_cell_complete(cid)

    if pending:
        ReplicationEngine(processes=processes).run_many(
            pending, on_result=checkpoint
        )

    rows = []
    for cid in ids:
        row = _load_result(cells_dir / cid / "result.json")
        if row is None:  # pragma: no cover - checkpoint raced away
            raise RuntimeError(f"sweep cell {cid} has no checkpoint")
        rows.append(row)
    _atomic_write(
        out / "aggregate.json",
        json.dumps({"cells": rows}, sort_keys=True, indent=1) + "\n",
    )
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["cell_id", "scenario", "engine", "n", "replications", *_POOLED_FIELDS]
    )
    for row in rows:
        writer.writerow(
            [
                row["cell_id"],
                row["spec"]["scenario"],
                row["spec"]["engine"],
                row["spec"]["n"],
                len(row["replications"]),
                *[row["pooled"][f] for f in _POOLED_FIELDS],
            ]
        )
    _atomic_write(out / "aggregate.csv", buf.getvalue())
    return SweepRun(
        out_dir=out,
        cell_ids=ids,
        resumed=len(specs) - len(pending),
        ran=len(pending),
        rows=rows,
    )
