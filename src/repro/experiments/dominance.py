"""Theorem 5 dominance, checked in simulation: FIFO <= PS = Jackson.

Three simulators on the identical array/greedy/uniform workload:

* FIFO deterministic service (the standard model),
* PS unit-work service (Theorem 1's comparator),
* FIFO exponential service (the Jackson model).

Claims checked: ``E[N_FIFO] <= E[N_PS]``; the time-weighted distribution
of N under FIFO is stochastically dominated by the PS one (the actual
statement of Theorem 1); PS equals Jackson in equilibrium mean (their
equilibria coincide, Section 3.3), both near the product-form closed form;
and mean delays are ordered FIFO <= Jackson by Little's Law.

Note: the theorem does *not* order the per-packet delay distributions —
deterministic service puts an atom at delay = path length, so
``P(D_FIFO > a) > P(D_Jackson > a)`` for small ``a`` is expected. The
delay-ECDF violation is reported as a diagnostic of that fact, not
asserted to vanish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rates import lambda_for_load
from repro.core.upper_bound import number_upper_bound
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.util.tables import Table


@dataclass(frozen=True)
class DominanceConfig:
    """Sizing for the dominance experiment."""

    n: int = 4
    rho: float = 0.7
    warmup: float = 300.0
    horizon: float = 4000.0
    seed: int = 1234


QUICK_DOM = DominanceConfig(horizon=2500.0)
FULL_DOM = DominanceConfig(n=5, rho=0.8, warmup=1000.0, horizon=20000.0)


def _ndist_samples(dist: dict[int, float]) -> tuple[np.ndarray, np.ndarray]:
    """Unpack a time-weighted N distribution into values and weights."""
    ks = np.array(sorted(dist))
    ws = np.array([dist[int(k)] for k in ks])
    return ks, ws


def _weighted_tail_violation(
    x: dict[int, float], y: dict[int, float]
) -> float:
    """max_a [P(X > a) - P(Y > a)] for time-weighted integer distributions."""
    kmax = max(max(x), max(y))
    grid = np.arange(kmax + 1)
    kx, wx = _ndist_samples(x)
    ky, wy = _ndist_samples(y)
    tail_x = np.array([wx[kx > a].sum() for a in grid])
    tail_y = np.array([wy[ky > a].sum() for a in grid])
    return float(max(0.0, (tail_x - tail_y).max()))


@dataclass(frozen=True)
class DominanceResult:
    """Mean occupancies, the tail-violation statistic, and the closed form."""

    n: int
    rho: float
    lam: float
    n_fifo: float
    n_ps: float
    n_jackson: float
    n_productform: float
    tail_violation_fifo_vs_ps: float
    delay_violation_fifo_vs_jackson: float
    t_fifo: float
    t_jackson: float

    def render(self) -> str:
        t = Table(
            title=(
                f"Theorem 5 dominance (n={self.n}, rho={self.rho}): "
                "E[N] under three service models"
            ),
            headers=["model", "E[N]"],
            float_digits=3,
        )
        t.add_row(["FIFO deterministic (standard)", self.n_fifo])
        t.add_row(["PS unit work (Thm 1 comparator)", self.n_ps])
        t.add_row(["FIFO exponential (Jackson)", self.n_jackson])
        t.add_row(["product-form closed form", self.n_productform])
        return (
            t.render()
            + f"\nmax tail violation P(N_FIFO>a)-P(N_PS>a): "
            f"{self.tail_violation_fifo_vs_ps:.4f}"
            + f"\nmax delay-ECDF violation FIFO vs Jackson: "
            f"{self.delay_violation_fifo_vs_jackson:.4f} (expected > 0: the "
            f"theorem orders N(t) and mean delays, not delay distributions)"
            + f"\nmean delays: FIFO {self.t_fifo:.3f} <= Jackson {self.t_jackson:.3f}"
        )


def run(config: DominanceConfig = QUICK_DOM) -> DominanceResult:
    """Run the three-way comparison."""
    n, rho = config.n, config.rho
    lam = lambda_for_load(n, rho, "exact")
    mesh = ArrayMesh(n)
    router = GreedyArrayRouter(mesh)
    dests = UniformDestinations(mesh.num_nodes)
    fifo = NetworkSimulation(router, dests, lam, seed=config.seed).run(
        config.warmup,
        config.horizon,
        track_number_distribution=True,
        collect_delays=True,
    )
    ps = PSNetworkSimulation(router, dests, lam, seed=config.seed + 1).run(
        config.warmup, config.horizon, track_number_distribution=True
    )
    jackson = NetworkSimulation(
        router, dests, lam, service="exponential", seed=config.seed + 2
    ).run(config.warmup, config.horizon, collect_delays=True)
    closed = number_upper_bound(n, lam)
    from repro.queueing.dominance import dominance_violation as _dv

    return DominanceResult(
        n=n,
        rho=rho,
        lam=lam,
        n_fifo=fifo.mean_number,
        n_ps=ps.mean_number,
        n_jackson=jackson.mean_number,
        n_productform=closed,
        tail_violation_fifo_vs_ps=_weighted_tail_violation(
            fifo.number_distribution, ps.number_distribution
        ),
        delay_violation_fifo_vs_jackson=_dv(fifo.delays, jackson.delays),
        t_fifo=fifo.mean_delay,
        t_jackson=jackson.mean_delay,
    )


def shape_checks(result: DominanceResult) -> list[str]:
    """Violated Theorem 5 / Section 3.3 claims (with Monte-Carlo slack)."""
    problems: list[str] = []
    if result.n_fifo > result.n_ps * 1.03:
        problems.append(
            f"E[N_FIFO]={result.n_fifo:.3f} above E[N_PS]={result.n_ps:.3f}"
        )
    if abs(result.n_ps - result.n_productform) / result.n_productform > 0.15:
        problems.append(
            f"PS mean {result.n_ps:.3f} far from product form "
            f"{result.n_productform:.3f}"
        )
    if abs(result.n_jackson - result.n_productform) / result.n_productform > 0.15:
        problems.append(
            f"Jackson mean {result.n_jackson:.3f} far from product form "
            f"{result.n_productform:.3f}"
        )
    if result.tail_violation_fifo_vs_ps > 0.04:
        problems.append(
            f"FIFO-vs-PS tail violation {result.tail_violation_fifo_vs_ps:.4f} "
            "exceeds noise budget"
        )
    if result.t_fifo > result.t_jackson * 1.03:
        problems.append(
            f"mean delay ordering violated: FIFO {result.t_fifo:.3f} above "
            f"Jackson {result.t_jackson:.3f}"
        )
    return problems
