"""The shared (n, rho) simulation grid behind Tables I, II and III.

One simulated cell yields everything the three tables need — the mean
delay T (Table I), the ratio r = E[R]/E[N] (Table II) and
r_s = E[R_s]/E[N] (Table III) — because the engine integrates N(t), R(t)
and R_s(t) in a single pass. ``simulate_cell`` is a top-level function so
:func:`repro.util.parallel.pmap` can fan cells across processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.md1_approx import delay_md1_estimate
from repro.core.rates import array_edge_rates, lambda_for_load
from repro.core.saturation import saturated_edge_mask
from repro.core.upper_bound import delay_upper_bound
from repro.experiments.configs import GridConfig
from repro.routing.destinations import UniformDestinations
from repro.routing.greedy import GreedyArrayRouter
from repro.sim.fifo_network import NetworkSimulation
from repro.topology.array_mesh import ArrayMesh
from repro.util.parallel import pmap


@dataclass(frozen=True)
class CellSpec:
    """One simulation cell: an (n, rho) grid point with its window/seed."""

    n: int
    rho: float
    warmup: float
    horizon: float
    seed: int
    convention: str = "table1"


@dataclass(frozen=True)
class CellResult:
    """Everything measured and predicted at one grid point.

    Simulated: ``t_sim`` (mean delay, with ``t_ci`` ~95% half-width),
    ``mean_number``, ``r``, ``r_saturated``, ``littles_gap`` (consistency
    diagnostic), ``generated`` (sample size).
    Analytic at the same lambda: ``t_est_paper`` / ``t_est_pk`` (Section
    4.2 estimate, both variants) and ``t_upper`` (Theorem 7).
    """

    spec: CellSpec
    lam: float
    t_sim: float
    t_ci: float
    mean_number: float
    r: float
    r_saturated: float
    littles_gap: float
    generated: int
    t_est_paper: float
    t_est_pk: float
    t_upper: float


def simulate_cell(spec: CellSpec) -> CellResult:
    """Simulate one (n, rho) cell of the paper's grid.

    Builds the standard model — n-by-n mesh, greedy row-first routing,
    uniform destinations, unit service — at ``lam = lambda_for_load(n,
    rho, convention)``, runs ``warmup + horizon`` with the saturated-edge
    mask tracked, and pairs the measurements with the analytic values.
    """
    mesh = ArrayMesh(spec.n)
    router = GreedyArrayRouter(mesh)
    destinations = UniformDestinations(mesh.num_nodes)
    lam = lambda_for_load(spec.n, spec.rho, spec.convention)
    mask = saturated_edge_mask(array_edge_rates(mesh, lam))
    sim = NetworkSimulation(
        router,
        destinations,
        lam,
        saturated_mask=mask,
        seed=spec.seed,
    )
    res = sim.run(spec.warmup, spec.horizon)
    return CellResult(
        spec=spec,
        lam=lam,
        t_sim=res.mean_delay,
        t_ci=res.delay_half_width,
        mean_number=res.mean_number,
        r=res.r,
        r_saturated=res.r_saturated,
        littles_gap=res.littles_law_gap,
        generated=res.generated,
        t_est_paper=delay_md1_estimate(spec.n, lam, variant="paper"),
        t_est_pk=delay_md1_estimate(spec.n, lam, variant="pk"),
        t_upper=delay_upper_bound(spec.n, lam),
    )


def grid_specs(config: GridConfig) -> list[CellSpec]:
    """Materialise every cell spec of a grid config."""
    return [
        CellSpec(
            n=n,
            rho=rho,
            warmup=config.warmup_for(rho),
            horizon=config.horizon_for(rho),
            seed=config.cell_seed(n, rho),
            convention=config.convention,
        )
        for n in config.ns
        for rho in config.rhos
    ]


def run_grid(config: GridConfig, *, processes: int | None = None) -> list[CellResult]:
    """Simulate the whole grid, cells fanned across a process pool."""
    return pmap(simulate_cell, grid_specs(config), processes=processes)
