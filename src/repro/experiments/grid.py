"""The shared (n, rho) simulation grid behind Tables I, II and III.

One simulated cell yields everything the three tables need — the mean
delay T (Table I), the ratio r = E[R]/E[N] (Table II) and
r_s = E[R_s]/E[N] (Table III) — because the engine integrates N(t), R(t)
and R_s(t) in a single pass. Cells run through the
:class:`~repro.sim.replication.ReplicationEngine`: every (cell, seed)
pair fans out over one flat process-pool map, and with
``config.replications > 1`` each grid point reports across-replication
means and CIs instead of single-trajectory point estimates. With the
default single replication the numbers are bit-identical to a direct
:class:`~repro.sim.NetworkSimulation` run at the cell's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.md1_approx import delay_md1_estimate
from repro.core.rates import lambda_for_load
from repro.core.upper_bound import delay_upper_bound
from repro.experiments.configs import GridConfig
from repro.sim.replication import CellSpec as ReplicationSpec
from repro.sim.replication import ReplicatedResult, ReplicationEngine


@dataclass(frozen=True)
class CellSpec:
    """One simulation cell: an (n, rho) grid point with its window/seed."""

    n: int
    rho: float
    warmup: float
    horizon: float
    seed: int
    convention: str = "table1"
    replications: int = 1

    def to_replication(self) -> ReplicationSpec:
        """View as a replication-engine spec (standard-model scenario).

        Replication seeds step by 1 from the cell seed, so replication 0
        reproduces the single-seed cell exactly.
        """
        return ReplicationSpec(
            scenario="uniform",
            n=self.n,
            rho=self.rho,
            convention=self.convention,
            warmup=self.warmup,
            horizon=self.horizon,
            seeds=tuple(self.seed + k for k in range(self.replications)),
            track_saturated=True,
        )


@dataclass(frozen=True)
class CellResult:
    """Everything measured and predicted at one grid point.

    Simulated: ``t_sim`` (mean delay, with ``t_ci`` ~95% half-width —
    within-run batch means for a single replication, across-replication
    otherwise), ``mean_number``, ``r``, ``r_saturated``, ``littles_gap``
    (consistency diagnostic), ``generated`` (sample size over all
    replications).
    Analytic at the same lambda: ``t_est_paper`` / ``t_est_pk`` (Section
    4.2 estimate, both variants) and ``t_upper`` (Theorem 7).
    """

    spec: CellSpec
    lam: float
    t_sim: float
    t_ci: float
    mean_number: float
    r: float
    r_saturated: float
    littles_gap: float
    generated: int
    t_est_paper: float
    t_est_pk: float
    t_upper: float


def cell_result(spec: CellSpec, pooled: ReplicatedResult) -> CellResult:
    """Pair one cell's pooled simulation outcome with the analytic values."""
    lam = lambda_for_load(spec.n, spec.rho, spec.convention)
    return CellResult(
        spec=spec,
        lam=lam,
        t_sim=pooled.mean_delay,
        t_ci=pooled.delay_half_width,
        mean_number=pooled.mean_number,
        r=pooled.r,
        r_saturated=pooled.r_saturated,
        littles_gap=pooled.littles_law_gap,
        generated=pooled.generated,
        t_est_paper=delay_md1_estimate(spec.n, lam, variant="paper"),
        t_est_pk=delay_md1_estimate(spec.n, lam, variant="pk"),
        t_upper=delay_upper_bound(spec.n, lam),
    )


def simulate_cell(spec: CellSpec) -> CellResult:
    """Simulate one (n, rho) cell of the paper's grid, in-process.

    The standard model — n-by-n mesh, greedy row-first routing, uniform
    destinations, unit service — at ``lam = lambda_for_load(n, rho,
    convention)`` with the saturated-edge mask tracked.
    """
    pooled = ReplicationEngine(processes=1).run(spec.to_replication())
    return cell_result(spec, pooled)


def grid_specs(config: GridConfig) -> list[CellSpec]:
    """Materialise every cell spec of a grid config."""
    return [
        CellSpec(
            n=n,
            rho=rho,
            warmup=config.warmup_for(rho),
            horizon=config.horizon_for(rho),
            seed=config.cell_seed(n, rho),
            convention=config.convention,
            replications=config.replications,
        )
        for n in config.ns
        for rho in config.rhos
    ]


def run_grid(config: GridConfig, *, processes: int | None = None) -> list[CellResult]:
    """Simulate the whole grid, (cell, seed) pairs fanned across a pool."""
    specs = grid_specs(config)
    engine = ReplicationEngine(processes=processes)
    pooled = engine.run_many([s.to_replication() for s in specs])
    return [cell_result(s, p) for s, p in zip(specs, pooled)]
