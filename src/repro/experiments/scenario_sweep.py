"""Scenario sweep: the replication engine across workloads *and* engines.

The paper only simulates uniform traffic on the mesh with the FIFO
event-driven simulator; this experiment fans the same measurement
machinery across the scenario registry (hot-spot, transpose,
distance-biased, torus — every workload calibrated to the *same* network
load ``rho`` by its own bottleneck edge) crossed with any subset of the
engine registry (``fifo``, ``slotted``, ``rushed``, ``ps``), with R
seeded replications per (scenario, engine) cell pooled into
across-replication CIs. Every cell is one declarative
:class:`~repro.sim.replication.CellSpec`; the cross product is built from
names alone, so a new scenario or a new registered engine is sweepable
with zero code here.

Shape claims asserted by the checks (consequences of the load
calibration, not of uniformity, so they must survive every workload):

* every replication drains — generated packets all complete;
* the two delay estimators (direct average vs Little's Law) agree — only
  asserted for engines whose registry entry says Little's Law applies to
  their delay statistic (the rushed makespan is exempt by design);
* pooled CIs are well-formed (positive, and small relative to the mean).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.registry import get_engine
from repro.sim.replication import CellSpec, ReplicatedResult, ReplicationEngine
from repro.util.tables import Table


@dataclass(frozen=True)
class ScenarioSweepConfig:
    """Sizing for the scenario sweep.

    ``n`` sizes the mesh/torus scenarios; the bit-reversal hypercube uses
    ``cube_dim`` (its node count is ``2**cube_dim``). ``engines`` names
    registry engines to cross with the scenarios (every scenario runs on
    every listed engine).
    """

    scenarios: tuple[str, ...] = ("hotspot", "transpose", "geometric", "torus")
    engines: tuple[str, ...] = ("fifo",)
    n: int = 6
    cube_dim: int = 4
    rho: float = 0.7
    warmup: float = 150.0
    horizon: float = 1200.0
    seeds: tuple[int, ...] = (101, 202, 303)


QUICK_SCEN = ScenarioSweepConfig()
FULL_SCEN = ScenarioSweepConfig(
    scenarios=("hotspot", "transpose", "bitreversal", "geometric", "torus"),
    engines=("fifo", "slotted"),
    n=10,
    cube_dim=6,
    rho=0.8,
    warmup=500.0,
    horizon=6000.0,
    seeds=(101, 202, 303, 404, 505),
)


@dataclass(frozen=True)
class ScenarioSweepResult:
    """Pooled results, one per (scenario, engine) cell."""

    rho: float
    pooled: list[ReplicatedResult]

    def render(self) -> str:
        t = Table(
            title=f"Scenario sweep at rho={self.rho} (ReplicationEngine)",
            headers=["scenario", "engine", "n", "R", "T", "+/-", "N", "littles gap"],
        )
        for p in self.pooled:
            t.add_row(
                [
                    p.spec.scenario,
                    p.spec.engine,
                    p.spec.n,
                    len(p.replications),
                    p.mean_delay,
                    p.delay_half_width,
                    p.mean_number,
                    p.littles_law_gap,
                ]
            )
        return t.render()


def to_cell_specs(config: ScenarioSweepConfig = QUICK_SCEN) -> list[CellSpec]:
    """The sweep's scenario x engine cross product as declarative cells.

    Exposed separately from :func:`run` so the same cell list can feed
    the resumable sweep runner (:mod:`repro.experiments.sweeps`) — e.g.
    ``run_sweep(to_cell_specs(FULL_SCEN), "out/scen")`` checkpoints each
    (scenario, engine) cell and survives interrupts.
    """
    return [
        CellSpec(
            scenario=name,
            n=config.cube_dim if name == "bitreversal" else config.n,
            rho=config.rho,
            engine=engine,
            warmup=config.warmup,
            horizon=config.horizon,
            seeds=config.seeds,
        )
        for name in config.scenarios
        for engine in config.engines
    ]


def run(
    config: ScenarioSweepConfig = QUICK_SCEN, *, processes: int | None = None
) -> ScenarioSweepResult:
    """Sweep scenarios x engines, fanning every (cell, seed) pair at once."""
    pooled = ReplicationEngine(processes=processes).run_many(to_cell_specs(config))
    return ScenarioSweepResult(rho=config.rho, pooled=pooled)


def run_resumable(
    config: ScenarioSweepConfig = QUICK_SCEN,
    out_dir: str | None = None,
    *,
    processes: int | None = None,
):
    """Run the sweep through the resumable checkpointing runner.

    Each (scenario, engine) cell lands in ``<out_dir>/cells/`` as it
    completes; rerunning after an interrupt skips the finished cells.
    Returns the :class:`repro.experiments.sweeps.SweepRun`.
    """
    from repro.experiments.sweeps import run_sweep

    return run_sweep(
        to_cell_specs(config),
        out_dir if out_dir is not None else "scenario_sweep_out",
        processes=processes,
    )


def shape_checks(result: ScenarioSweepResult) -> list[str]:
    """Violated sweep claims (empty = all hold)."""
    problems: list[str] = []
    for p in result.pooled:
        tag = f"({p.spec.scenario}, {p.spec.engine}, n={p.spec.n})"
        for rep in p.replications:
            if rep.completed != rep.generated:
                problems.append(
                    f"{tag}: seed {rep.seed} lost packets "
                    f"({rep.completed}/{rep.generated})"
                )
        if get_engine(p.spec.engine).littles_law:
            # The rushed makespan is not a Little's-Law sojourn time, so
            # only engines flagged littles_law assert the estimator
            # agreement; the CI checks below apply to every engine.
            if p.littles_law_gap > 0.2:
                problems.append(
                    f"{tag}: Little's-Law estimators disagree by "
                    f"{p.littles_law_gap:.1%}"
                )
        hw = p.delay_half_width
        if not np.isfinite(hw) or hw <= 0:
            problems.append(f"{tag}: ill-formed pooled CI {hw}")
        elif hw > 0.5 * p.mean_delay:
            problems.append(
                f"{tag}: pooled CI {hw:.3f} too wide for T={p.mean_delay:.3f}"
            )
    return problems
