"""Table I: simulated mean delay vs the M/D/1 independence estimate.

Paper layout: rows (n, rho) over n in {5, 10, 15, 20} and rho in
{.2, .5, .8, .9, .95, .99}; columns T(Sim.) and T(Est.). We add the
textbook-P-K estimate variant and the Theorem 7 upper bound as extra
columns, and report the simulation's confidence half-width (the paper
reports point estimates only).

Shape claims this table supports (asserted by ``bench_table1``):

* the estimate tracks simulation closely at light load (rho <= 0.5);
* for n >= 10 at heavy load the estimate *over*-estimates T — the paper's
  observation that "the dependence inherent in the network actually helps
  performance";
* T(Sim.) always sits below the Theorem 7 upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.configs import GridConfig, QUICK
from repro.experiments.grid import CellResult, run_grid
from repro.util.tables import Table


@dataclass(frozen=True)
class Table1Result:
    """All grid cells plus the rendered table."""

    cells: list[CellResult]

    def render(self) -> str:
        """Monospace table in the paper's row order."""
        t = Table(
            title="Table I: Simulation vs M/D/1 Estimate",
            headers=[
                "n",
                "rho",
                "T(Sim.)",
                "+/-",
                "T(Est. paper)",
                "T(Est. P-K)",
                "T(UB Thm7)",
            ],
        )
        for c in self.cells:
            t.add_row(
                [
                    c.spec.n,
                    c.spec.rho,
                    c.t_sim,
                    c.t_ci,
                    c.t_est_paper,
                    c.t_est_pk,
                    c.t_upper,
                ]
            )
        return t.render()


def run(
    config: GridConfig = QUICK,
    *,
    processes: int | None = None,
    replications: int | None = None,
) -> Table1Result:
    """Regenerate Table I at the given sizing preset.

    ``replications`` overrides the config's per-cell replication count;
    with more than one, the "+/-" column becomes the across-replication
    ~95% half-width from the :class:`~repro.sim.ReplicationEngine` pool.
    """
    if replications is not None:
        config = replace(config, replications=replications)
    return Table1Result(cells=run_grid(config, processes=processes))


def shape_checks(result: Table1Result) -> list[str]:
    """Return a list of violated shape claims (empty = all hold).

    Tolerances are loose enough for QUICK horizons: light-load agreement
    within 15%, heavy-load over-estimation with 5% slack, and the upper
    bound honored with CI slack.
    """
    problems: list[str] = []
    for c in result.cells:
        tag = f"(n={c.spec.n}, rho={c.spec.rho})"
        if c.spec.rho <= 0.5:
            rel = abs(c.t_sim - c.t_est_paper) / c.t_est_paper
            if rel > 0.15:
                problems.append(
                    f"{tag}: light-load estimate off by {rel:.1%} (>15%)"
                )
        if c.spec.rho >= 0.9 and c.spec.n >= 10:
            if c.t_sim > c.t_est_paper * 1.05:
                problems.append(
                    f"{tag}: estimate should over-estimate at heavy load, "
                    f"sim {c.t_sim:.2f} > est {c.t_est_paper:.2f}"
                )
        if c.t_sim - c.t_ci > c.t_upper:
            problems.append(
                f"{tag}: simulation {c.t_sim:.2f} exceeds Theorem 7 upper "
                f"bound {c.t_upper:.2f}"
            )
        if c.littles_gap > 0.15:
            problems.append(
                f"{tag}: Little's-law estimators disagree by {c.littles_gap:.1%}"
            )
    return problems
