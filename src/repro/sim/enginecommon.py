"""Shared constructor policy for the four simulation engines.

Before this module, :class:`~repro.sim.fifo_network.NetworkSimulation`,
:class:`~repro.sim.slotted.SlottedNetworkSimulation`,
:class:`~repro.sim.rushed_network.RushedNetworkSimulation` and
:class:`~repro.sim.ps_network.PSNetworkSimulation` each carried a
near-verbatim copy of the same constructor block: resolve the source-node
list, validate the per-node rates (:func:`~repro.util.validation.check_node_rates`),
build the pinned source CDF used by the ``side='right'`` boundary-safe
draw, decide whether the uniform fast-id block draw applies, and resolve
the shared path cache (:func:`~repro.routing.pathcache.resolve_path_cache`).
:class:`EngineCommon` is that block, written once.

The one load-bearing difference between the copies is *which source order
the fast-id predicate demands*:

* the event-driven engines (fifo, rushed) draw fast ids as node ids
  directly (``rng.integers(0, num_nodes)``), so any ordering of a full
  source set works — they require only **sorted** equality with
  ``range(num_nodes)``;
* the slotted engine's vectorized compat kernel replays the legacy
  per-packet stream where a drawn id *is* the source's index, so it
  requires the **identity** order ``source_nodes == range(num_nodes)``;
* the PS engine has no fast-id path at all.

That difference is expressed as the ``fast_id_order`` mode
(:data:`SORTED_IDS` / :data:`IDENTITY_IDS` / :data:`NO_FAST_IDS`) instead
of being re-derived, slightly differently, in four places. The
identity-vs-sorted regression tests pin it.

The remaining shared validation — per-edge service rates and the
saturated-edge mask — lives here too (:func:`resolve_service_rates`,
:func:`resolve_saturated_mask`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution, UniformDestinations
from repro.routing.pathcache import resolve_path_cache
from repro.util.validation import check_node_rates, check_positive, pinned_cdf

#: Fast-id source-order requirements (see module docstring).
SORTED_IDS, IDENTITY_IDS, NO_FAST_IDS = "sorted", "identity", "none"


class EngineCommon:
    """The source-rate / fast-id / path-cache policy all engines share.

    Parameters
    ----------
    router:
        Routing scheme (carries the topology).
    destinations:
        Destination law (its type decides the uniform-destination flag).
    node_rate:
        Per-source Poisson rate; a scalar broadcasts over every source,
        a sequence must align with ``source_nodes``.
    source_nodes:
        Generating nodes (default: all nodes).
    fast_id_order:
        Which source ordering the engine's fast-id block draw requires:
        :data:`SORTED_IDS` (event-driven engines), :data:`IDENTITY_IDS`
        (the slotted compat kernel) or :data:`NO_FAST_IDS` (PS).
    path_cache, use_path_cache:
        Passed to :func:`~repro.routing.pathcache.resolve_path_cache`.

    Attributes
    ----------
    source_nodes, node_rates, total_rate:
        The validated source set and its rates.
    uniform_sources:
        Every listed source generates at (numerically) the same rate.
    source_cdf:
        Pinned CDF over ``node_rates`` for the ``side='right'`` draw — a
        draw landing exactly on a CDF boundary (e.g. ``u = 0.0`` with a
        leading zero-rate source) can never select a zero-rate source.
        Always built (it is RNG-free and cheap), even on paths that only
        consult it for non-uniform rates.
    uniform_dests:
        The destination law is :class:`UniformDestinations`.
    fast_ids:
        The engine may draw ``(src, dst)`` id pairs from a single uniform
        integer block (requires uniform sources over *all* nodes in the
        engine's required order, and uniform destinations).
    path_cache:
        The resolved shared path cache.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        source_nodes: Sequence[int] | None = None,
        fast_id_order: str = SORTED_IDS,
        path_cache=None,
        use_path_cache: bool = True,
    ) -> None:
        if fast_id_order not in (SORTED_IDS, IDENTITY_IDS, NO_FAST_IDS):
            raise ValueError(
                f"fast_id_order must be '{SORTED_IDS}', '{IDENTITY_IDS}' or "
                f"'{NO_FAST_IDS}', got {fast_id_order!r}"
            )
        self.router = router
        self.topology = router.topology
        self.destinations = destinations
        self.source_nodes = (
            list(range(self.topology.num_nodes))
            if source_nodes is None
            else [int(s) for s in source_nodes]
        )
        if not self.source_nodes:
            raise ValueError("at least one source node is required")
        if np.isscalar(node_rate):
            check_positive(node_rate, "node_rate")
            self.node_rates = np.full(len(self.source_nodes), float(node_rate))
        else:
            self.node_rates = check_node_rates(
                node_rate, len(self.source_nodes), "node_rate"
            )
        self.total_rate = float(self.node_rates.sum())
        self.uniform_sources = bool(
            np.allclose(self.node_rates, self.node_rates[0])
        )
        self.source_cdf = pinned_cdf(self.node_rates)
        self.uniform_dests = isinstance(destinations, UniformDestinations)
        all_nodes = list(range(self.topology.num_nodes))
        if fast_id_order == SORTED_IDS:
            order_ok = sorted(self.source_nodes) == all_nodes
        elif fast_id_order == IDENTITY_IDS:
            order_ok = self.source_nodes == all_nodes
        else:
            order_ok = False
        self.fast_ids = self.uniform_sources and self.uniform_dests and order_ok
        self.path_cache = resolve_path_cache(
            router, path_cache=path_cache, use_path_cache=use_path_cache
        )

    def install(self, sim) -> None:
        """Install the shared attribute surface on an engine instance.

        Engines keep the exact pre-extraction attribute names
        (``_uniform_sources``, ``_source_cdf``, ``_fast_ids``, ...) so
        their hot loops — and any test reaching into them — are untouched.
        """
        sim.router = self.router
        sim.topology = self.topology
        sim.destinations = self.destinations
        sim.source_nodes = self.source_nodes
        sim.node_rates = self.node_rates
        sim.total_rate = self.total_rate
        sim._uniform_sources = self.uniform_sources
        sim._source_cdf = self.source_cdf
        sim._uniform_dests = self.uniform_dests
        sim._fast_ids = self.fast_ids
        sim.path_cache = self.path_cache


def resolve_service_rates(
    service_rates: float | Sequence[float], num_edges: int
) -> np.ndarray:
    """Validate per-edge service rates ``phi_e`` (a scalar broadcasts)."""
    if np.isscalar(service_rates):
        phi = np.full(num_edges, float(service_rates))
    else:
        phi = np.asarray(service_rates, dtype=float)
        if phi.shape != (num_edges,):
            raise ValueError(
                f"service_rates must have {num_edges} entries, got {phi.shape}"
            )
    if np.any(phi <= 0):
        raise ValueError("service rates must be positive")
    return phi


def resolve_saturated_mask(
    saturated_mask: Sequence[bool] | None, num_edges: int
) -> list[bool] | None:
    """Validate the optional boolean per-edge saturation mask."""
    if saturated_mask is None:
        return None
    mask = np.asarray(saturated_mask, dtype=bool)
    if mask.shape != (num_edges,):
        raise ValueError(
            f"saturated_mask must have {num_edges} entries, got {mask.shape}"
        )
    return mask.tolist()
