"""Measurement helpers: batch means and time-batched accumulators.

Simulation outputs are autocorrelated, so naive standard errors are badly
optimistic. The classic remedy — and the one used here — is the method of
batch means: split the measurement window into a moderate number of equal
time batches, average within each batch, and treat the batch averages as
approximately independent samples. With 32-64 batches the residual
correlation is small for the horizons our experiments use, and the
half-width is honest enough for shape comparisons against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchMeans:
    """Summary of a batch-means estimate.

    Attributes
    ----------
    mean:
        Overall (weight-pooled) mean.
    half_width:
        ~95% confidence half-width from the batch spread (1.96 standard
        errors of the batch means); ``nan`` with fewer than 2 non-empty
        batches.
    batches:
        Number of non-empty batches used.
    """

    mean: float
    half_width: float
    batches: int


def batch_means(sums: np.ndarray, weights: np.ndarray) -> BatchMeans:
    """Pool per-batch sums and weights into a batch-means estimate.

    Parameters
    ----------
    sums:
        Per-batch totals (e.g. summed delays, or integrated N over time).
    weights:
        Per-batch denominators (packet counts, or batch durations).
    """
    sums = np.asarray(sums, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if sums.shape != weights.shape:
        raise ValueError("sums and weights must have the same shape")
    mask = weights > 0
    k = int(mask.sum())
    total_w = float(weights[mask].sum())
    if k == 0 or total_w == 0.0:
        return BatchMeans(mean=float("nan"), half_width=float("nan"), batches=0)
    mean = float(sums[mask].sum() / total_w)
    if k < 2:
        return BatchMeans(mean=mean, half_width=float("nan"), batches=k)
    per_batch = sums[mask] / weights[mask]
    se = float(per_batch.std(ddof=1) / np.sqrt(k))
    return BatchMeans(mean=mean, half_width=1.96 * se, batches=k)


class TimeBatchAccumulator:
    """Accumulate a per-event quantity into fixed time batches.

    Events that land before ``start`` or after ``end`` are ignored; the
    window ``[start, end)`` is split into ``num_batches`` equal slots.
    Used for per-packet delays (sum of delays / packet counts per batch)
    and equally applicable to any event-indexed series.
    """

    def __init__(self, start: float, end: float, num_batches: int = 32) -> None:
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if num_batches < 1:
            raise ValueError("num_batches must be at least 1")
        self.start = float(start)
        self.end = float(end)
        self.num_batches = int(num_batches)
        self._width = (self.end - self.start) / self.num_batches
        self.sums = np.zeros(self.num_batches)
        self.weights = np.zeros(self.num_batches)

    def add(self, t: float, value: float, weight: float = 1.0) -> None:
        """Record ``value`` (with ``weight``) at time ``t``."""
        if not self.start <= t < self.end:
            return
        idx = int((t - self.start) / self._width)
        if idx >= self.num_batches:  # guard against floating-point edge
            idx = self.num_batches - 1
        self.sums[idx] += value
        self.weights[idx] += weight

    def add_batch(
        self, ts: np.ndarray, values: np.ndarray, weight: float = 1.0
    ) -> None:
        """Vectorized :meth:`add`: record ``values[i]`` at ``ts[i]``.

        Same semantics per element — out-of-window times are ignored and
        every kept element carries ``weight`` — in two scatter-adds
        (the numpy kernels' bulk path).
        """
        ts = np.asarray(ts, dtype=float)
        values = np.asarray(values, dtype=float)
        inside = (ts >= self.start) & (ts < self.end)
        if not inside.any():
            return
        idx = ((ts[inside] - self.start) / self._width).astype(np.int64)
        np.clip(idx, 0, self.num_batches - 1, out=idx)
        np.add.at(self.sums, idx, values[inside])
        np.add.at(self.weights, idx, weight)

    def summary(self) -> BatchMeans:
        """Batch-means estimate over the accumulated batches."""
        return batch_means(self.sums, self.weights)
