"""Engine registry: one declarative front door for all four simulators.

A registered :class:`Engine` bundles everything the facade layers
(:class:`~repro.sim.replication.CellSpec` /
:class:`~repro.sim.replication.ReplicationEngine`, the CLI, the
experiment sweeps) need to know about a simulator:

* its canonical name (``"fifo"``, ``"slotted"``, ``"rushed"``, ``"ps"``)
  and accepted aliases (``"event"`` is the historical alias for the FIFO
  event-driven engine);
* the service laws it supports;
* its **engine-specific knobs** as typed :class:`EngineParam` metadata —
  e.g. the FIFO/rushed ``event_queue`` structure, the slotted
  ``batch_rng`` draw order, per-edge ``service_rates`` — validated when a
  :class:`CellSpec` is built, long before a worker process touches them;
* capability flags (saturated-edge tracking, per-packet maxima, whether
  Little's-Law and the Theorem 7 bound sandwich are meaningful for its
  delay statistic);
* a ``run_cell`` entry point that builds the simulator for one resolved
  cell and runs one seeded replication.

``ReplicationEngine`` dispatches every replication through
:func:`get_engine`, so *any* registered engine — including new ones
added by :func:`register_engine` — is immediately reachable from
``CellSpec(engine=...)``, ``python -m repro simulate --engine ...`` and
the experiment sweeps, with no per-engine kwargs sprawl.

Engine-specific parameters
--------------------------
``fifo`` (alias ``event``)
    ``event_queue``: ``"calendar"`` or ``"heap"`` — the stochastic-service
    priority structure (outputs are bit-identical either way);
    ``service_rates``: per-edge ``phi_e`` (scalar broadcasts; pass a tuple
    to keep the spec hashable); ``backend``: the kernel backend
    (``"python"`` is the bit-identical reference, ``"numpy"`` the
    vectorized whole-trajectory solver — see :mod:`repro.sim.kernels`).
``slotted``
    ``batch_rng``: fully batched draw order (blocked Poisson counts plus
    per-slot source/destination/coin batches). **Default True** since the
    registry redesign — pass ``batch_rng=False`` for the legacy
    per-packet-compatible stream (see the deprecation note in
    :mod:`repro.sim.slotted`). ``backend`` as for ``fifo`` (the numpy
    slot kernel requires ``batch_rng=True``).
``rushed``
    ``event_queue`` and ``service_rates`` as for ``fifo``. The number of
    copies per packet is not a free knob: Theorem 10's construction sends
    exactly one copy to every queue on the route, so the copy count is
    the path length by definition.
``ps``
    ``service_rates`` as for ``fifo`` (the PS discipline itself has no
    further parameters: equal sharing of ``phi_e`` among the customers
    present), plus ``event_queue`` — PS completions are re-planned
    stochastic times, so its versioned-event loop runs on the same
    pluggable priority structure (bit-identical across all kinds).
``finite``
    ``event_queue`` and ``service_rates`` as for ``fifo``, plus
    ``buffer_size``: per-node waiting room (a non-negative int broadcasts
    over all nodes, a tuple gives one value per node, ``None`` — the
    default — reproduces the infinite-buffer ``fifo`` engine
    bit-for-bit). ``backend`` as for ``fifo`` — numpy only with
    ``buffer_size=None`` (tail-drop admission is state-dependent).

Kernel backends
---------------
Engines whose hot loops live in :mod:`repro.sim.kernels` expose the
``backend`` param and advertise it via :attr:`Engine.backends`. The
contract in one line: ``backend="python"`` (the default) is bit-identical
to the pre-kernel engines and pinned by the golden fixtures;
``backend="numpy"`` is seed-stable and statistically equivalent but not
draw-order-identical, and is pinned by distribution-level parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Integral, Real
from typing import Any, Callable, Mapping

from repro.sim.eventqueue import CALENDAR, QUEUE_KINDS
from repro.sim.fifo_network import DETERMINISTIC, EXPONENTIAL, NetworkSimulation
from repro.sim.kernels import KERNEL_BACKENDS, PYTHON_BACKEND
from repro.sim.finite_buffer import FiniteBufferNetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.result import SimResult
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation

FIFO, SLOTTED, RUSHED, PS, FINITE = "fifo", "slotted", "rushed", "ps", "finite"

#: Value-kind tags for :class:`EngineParam` validation.
BOOL, CHOICE, RATE_OR_RATES = "bool", "choice", "rate-or-rates"
SIZE_OR_SIZES = "size-or-sizes"


@dataclass(frozen=True)
class EngineParam:
    """Typed metadata for one engine-specific knob.

    ``kind`` selects the validation rule: :data:`BOOL` (a real ``bool``),
    :data:`CHOICE` (a string from ``choices``), :data:`RATE_OR_RATES`
    (a positive scalar, or a tuple of per-edge values — tuples, not
    lists/arrays, so the owning spec stays hashable and picklable) or
    :data:`SIZE_OR_SIZES` (``None``, a non-negative int, or a tuple of
    non-negative per-node ints — the finite-buffer vocabulary).
    """

    name: str
    kind: str
    default: object
    doc: str
    choices: tuple[str, ...] = ()

    def validate(self, value: object) -> None:
        """Raise ``ValueError`` unless ``value`` fits this parameter."""
        if self.kind == BOOL:
            if not isinstance(value, bool):
                raise ValueError(
                    f"engine param {self.name!r} expects a bool, got {value!r}"
                )
        elif self.kind == CHOICE:
            if value not in self.choices:
                raise ValueError(
                    f"engine param {self.name!r} must be one of "
                    f"{'/'.join(self.choices)}, got {value!r}"
                )
        elif self.kind == RATE_OR_RATES:
            scalar = isinstance(value, Real) and not isinstance(value, bool)
            seq = isinstance(value, tuple) and all(
                isinstance(v, Real) and not isinstance(v, bool) for v in value
            )
            if not (scalar or seq):
                raise ValueError(
                    f"engine param {self.name!r} expects a number or a tuple "
                    f"of numbers, got {value!r}"
                )
        elif self.kind == SIZE_OR_SIZES:
            def _size(v: object) -> bool:
                return (
                    isinstance(v, Integral)
                    and not isinstance(v, bool)
                    and int(v) >= 0
                )

            scalar = value is None or _size(value)
            seq = isinstance(value, tuple) and all(_size(v) for v in value)
            if not (scalar or seq):
                raise ValueError(
                    f"engine param {self.name!r} expects None, a non-negative "
                    f"int, or a tuple of non-negative ints, got {value!r}"
                )
        else:  # pragma: no cover - registry authoring error
            raise ValueError(f"unknown EngineParam kind {self.kind!r}")

    def describe(self) -> str:
        """One-line ``name=default`` rendering for listings."""
        opts = f" ({'/'.join(self.choices)})" if self.choices else ""
        return f"{self.name}={self.default!r}{opts}"


@dataclass(frozen=True)
class Engine:
    """A registry entry: metadata plus the cell-replication entry point.

    ``run_cell(spec, seed, node_rate, mask, net, cache)`` builds the
    simulator for one resolved cell (scenario network ``net``, calibrated
    ``node_rate``, optional saturation ``mask``, shared path ``cache``)
    and runs the single replication for ``seed``, returning a
    :class:`~repro.sim.result.SimResult`. ``supports_saturated`` /
    ``supports_maxima`` gate the :class:`CellSpec` tracking flags;
    ``supports_delays`` / ``supports_number_distribution`` gate the
    sample-collection flags (raw per-packet delays; the time-weighted
    number-in-system distribution) the validation harness relies on;
    ``littles_law`` marks engines whose ``mean_delay`` satisfies Little's
    Law against ``mean_number`` (the rushed makespan does not);
    ``bound_sandwich`` marks engines whose standard-model delay the
    Theorem 7 sandwich brackets; ``backends`` lists the kernel backends
    the engine's hot loop can run on (every engine has the reference
    ``"python"``; only kernel-layer engines also offer ``"numpy"``).
    """

    name: str
    description: str
    services: tuple[str, ...]
    params: tuple[EngineParam, ...]
    run_cell: Callable[..., SimResult]
    aliases: tuple[str, ...] = ()
    supports_saturated: bool = False
    supports_maxima: bool = False
    supports_delays: bool = False
    supports_number_distribution: bool = False
    littles_law: bool = True
    bound_sandwich: bool = False
    backends: tuple[str, ...] = (PYTHON_BACKEND,)

    def param(self, name: str) -> EngineParam:
        for p in self.params:
            if p.name == name:
                return p
        known = (
            "; ".join(p.describe() for p in self.params)
            or "it accepts no engine params"
        )
        raise ValueError(
            f"engine {self.name!r} has no param {name!r} — valid params: "
            f"{known} (see `python -m repro engines`)"
        )

    def validate_params(self, params: Mapping[str, object]) -> None:
        """Validate an ``engine_params`` mapping against the metadata."""
        for key, value in params.items():
            self.param(key).validate(value)


_REGISTRY: dict[str, Engine] = {}
_ALIASES: dict[str, str] = {}


def register_engine(engine: Engine) -> Engine:
    """Add an engine to the registry (name and aliases must be unused)."""
    for name in (engine.name, *engine.aliases):
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"engine name {name!r} already registered")
    _REGISTRY[engine.name] = engine
    for alias in engine.aliases:
        _ALIASES[alias] = engine.name
    return engine


def engine_names(*, with_aliases: bool = False) -> list[str]:
    """Registered canonical names (optionally plus aliases), sorted."""
    names = list(_REGISTRY)
    if with_aliases:
        names += list(_ALIASES)
    return sorted(names)


def canonical_engine(name: str) -> str:
    """Resolve an engine name or alias to its canonical registry name."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    known = ", ".join(engine_names(with_aliases=True))
    raise ValueError(f"unknown engine {name!r} (known: {known})")


def get_engine(name: str) -> Engine:
    """Look up an engine by canonical name or alias."""
    return _REGISTRY[canonical_engine(name)]


def available_engines() -> list[Engine]:
    """All registered engines, sorted by canonical name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Built-in engines.

_EVENT_QUEUE_PARAM = EngineParam(
    "event_queue",
    CHOICE,
    CALENDAR,
    "priority structure for the stochastic-service loop (bit-identical "
    "either way; calendar adapts its bucket width by Brown's rule, "
    "calendar-fixed pins the initial width)",
    choices=QUEUE_KINDS,
)
_SERVICE_RATES_PARAM = EngineParam(
    "service_rates",
    RATE_OR_RATES,
    1.0,
    "per-edge service rates phi_e (scalar broadcasts; tuple for per-edge)",
)
_BACKEND_PARAM = EngineParam(
    "backend",
    CHOICE,
    PYTHON_BACKEND,
    "kernel backend for the hot loop (see repro.sim.kernels): python is "
    "the bit-identical reference pinned by the golden fixtures; numpy is "
    "the vectorized whole-trajectory solver — seed-stable and "
    "statistically equivalent, but not draw-order-identical",
    choices=KERNEL_BACKENDS,
)

#: Engine params consumed by ``run()`` rather than the constructor; the
#: cell builders split ``engine_params`` on this set.
_RUN_PARAMS = frozenset({"batch_rng"})


def _fifo_cell(
    spec: Any, seed: int, node_rate: Any, mask: Any, net: Any, cache: Any
) -> SimResult:
    sim = NetworkSimulation(
        net.router,
        net.destinations,
        node_rate,
        service=spec.service,
        source_nodes=net.source_nodes,
        saturated_mask=mask,
        seed=seed,
        path_cache=cache,
        **spec.engine_params_dict,
    )
    return sim.run(
        spec.warmup,
        spec.horizon,
        track_maxima=spec.track_maxima,
        collect_delays=spec.collect_delays,
        track_number_distribution=spec.track_number_distribution,
    )


def _slotted_cell(
    spec: Any, seed: int, node_rate: Any, mask: Any, net: Any, cache: Any
) -> SimResult:
    # The slotted engine splits its knobs: ``backend`` selects the kernel
    # at construction, ``batch_rng`` is a per-run draw-order flag.
    ep = spec.engine_params_dict
    ctor_params = {k: v for k, v in ep.items() if k not in _RUN_PARAMS}
    run_params = {k: v for k, v in ep.items() if k in _RUN_PARAMS}
    sim = SlottedNetworkSimulation(
        net.router,
        net.destinations,
        node_rate,
        tau=spec.tau,
        source_nodes=net.source_nodes,
        saturated_mask=mask,
        seed=seed,
        path_cache=cache,
        **ctor_params,
    )
    warmup_slots = int(round(spec.warmup / spec.tau))
    horizon_slots = max(1, int(round(spec.horizon / spec.tau)))
    return sim.run(
        warmup_slots,
        horizon_slots,
        track_maxima=spec.track_maxima,
        collect_delays=spec.collect_delays,
        **run_params,
    )


def _rushed_cell(
    spec: Any, seed: int, node_rate: Any, mask: Any, net: Any, cache: Any
) -> SimResult:
    sim = RushedNetworkSimulation(
        net.router,
        net.destinations,
        node_rate,
        source_nodes=net.source_nodes,
        saturated_mask=mask,
        seed=seed,
        path_cache=cache,
        **spec.engine_params_dict,
    )
    return sim.run(spec.warmup, spec.horizon, track_maxima=spec.track_maxima)


def _finite_cell(
    spec: Any, seed: int, node_rate: Any, mask: Any, net: Any, cache: Any
) -> SimResult:
    sim = FiniteBufferNetworkSimulation(
        net.router,
        net.destinations,
        node_rate,
        service=spec.service,
        source_nodes=net.source_nodes,
        saturated_mask=mask,
        seed=seed,
        path_cache=cache,
        **spec.engine_params_dict,
    )
    return sim.run(
        spec.warmup,
        spec.horizon,
        track_maxima=spec.track_maxima,
        collect_delays=spec.collect_delays,
        track_number_distribution=spec.track_number_distribution,
    )


def _ps_cell(
    spec: Any, seed: int, node_rate: Any, mask: Any, net: Any, cache: Any
) -> SimResult:
    sim = PSNetworkSimulation(
        net.router,
        net.destinations,
        node_rate,
        source_nodes=net.source_nodes,
        seed=seed,
        path_cache=cache,
        **spec.engine_params_dict,
    )
    return sim.run(
        spec.warmup,
        spec.horizon,
        collect_delays=spec.collect_delays,
        track_number_distribution=spec.track_number_distribution,
    )


register_engine(
    Engine(
        name=FIFO,
        aliases=("event",),
        description=(
            "event-driven FIFO servers: the paper's standard model "
            "(deterministic service) and the Jackson model (exponential)"
        ),
        services=(DETERMINISTIC, EXPONENTIAL),
        params=(_EVENT_QUEUE_PARAM, _SERVICE_RATES_PARAM, _BACKEND_PARAM),
        run_cell=_fifo_cell,
        supports_saturated=True,
        supports_maxima=True,
        supports_delays=True,
        supports_number_distribution=True,
        bound_sandwich=True,
        backends=KERNEL_BACKENDS,
    )
)
register_engine(
    Engine(
        name=SLOTTED,
        description=(
            "Section 5.2 slotted time: Poisson batch per slot, one "
            "unit-slot transmission per non-empty edge"
        ),
        services=(DETERMINISTIC,),
        params=(
            EngineParam(
                "batch_rng",
                BOOL,
                True,
                "fully batched draw order (False replays the legacy "
                "per-packet-compatible stream; the numpy backend "
                "requires True)",
            ),
            _BACKEND_PARAM,
        ),
        run_cell=_slotted_cell,
        supports_saturated=True,
        supports_maxima=True,
        supports_delays=True,
        bound_sandwich=True,
        backends=KERNEL_BACKENDS,
    )
)
register_engine(
    Engine(
        name=RUSHED,
        description=(
            "Theorem 10 'rushed' copy system Q1: one copy per route queue "
            "served immediately; mean_delay is the per-packet makespan"
        ),
        services=(DETERMINISTIC,),
        params=(_EVENT_QUEUE_PARAM, _SERVICE_RATES_PARAM),
        run_cell=_rushed_cell,
        supports_saturated=True,
        supports_maxima=True,
        littles_law=False,  # makespan, not a Little's-Law sojourn time
    )
)
register_engine(
    Engine(
        name=FINITE,
        description=(
            "finite-buffer FIFO loss engine: the fifo model with per-node "
            "waiting room K and tail-drop loss (buffer_size=None is "
            "bit-identical to fifo)"
        ),
        services=(DETERMINISTIC, EXPONENTIAL),
        params=(
            _EVENT_QUEUE_PARAM,
            _SERVICE_RATES_PARAM,
            EngineParam(
                "buffer_size",
                SIZE_OR_SIZES,
                None,
                "per-node waiting room, excluding the packet in service "
                "(int broadcasts; tuple is per-node; None = infinite "
                "buffers, bit-identical to the fifo engine)",
            ),
            _BACKEND_PARAM,
        ),
        run_cell=_finite_cell,
        supports_saturated=True,
        supports_maxima=True,
        supports_delays=True,
        supports_number_distribution=True,
        # Loss breaks both identities: mean_delay averages survivors
        # only, so neither Little's Law against the *offered* rate nor
        # the Theorem 7 sandwich brackets it once drops occur.
        littles_law=False,
        bound_sandwich=False,
        # numpy only with buffer_size=None (the constructor rejects the
        # combination otherwise — tail-drop admission is state-dependent).
        backends=KERNEL_BACKENDS,
    )
)
register_engine(
    Engine(
        name=PS,
        description=(
            "processor sharing (the Theorem 5 comparator): equal split of "
            "phi_e among the customers present; product-form equilibrium"
        ),
        services=(DETERMINISTIC,),
        # PS completions are re-planned stochastic times, so its
        # versioned-event loop rides the pluggable queue too.
        params=(_SERVICE_RATES_PARAM, _EVENT_QUEUE_PARAM),
        run_cell=_ps_cell,
        supports_delays=True,
        supports_number_distribution=True,
    )
)
